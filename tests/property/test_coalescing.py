"""Property: single-flight coalescing keeps audit granularity honest.

When N sim processes miss on the same audit ID concurrently, the
session sends one RPC and the rest join it.  The audited behaviour must
be indistinguishable from one access: exactly one key-service log entry
per concurrency window, and every joiner receives identical key bytes
(no joiner ever gets a key without a fresh in-window log entry).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import KeypadConfig, KeyService, MetadataService, ServiceSession
from repro.core.client import KeyCreate, KeyFetch
from repro.harness import build_keypad_rig
from repro.net import THREE_G, Link
from repro.sim import Simulation

AUDIT_ID = b"\x42" * 24


def _session(rtt: float, pipelining: bool) -> tuple[Simulation, KeyService, ServiceSession]:
    sim = Simulation()
    key_service = KeyService(sim)
    metadata_service = MetadataService(sim)
    session = ServiceSession(
        sim, "laptop-1", b"secret" * 6, key_service, metadata_service,
        Link(sim, rtt=rtt), Link(sim, rtt=rtt),
        pipelining=pipelining, coalesce_fetches=True,
    )
    return sim, key_service, session


@given(
    n_readers=st.integers(min_value=2, max_value=12),
    rounds=st.integers(min_value=1, max_value=3),
    rtt=st.sampled_from([0.0015, 0.025, 0.3]),
    pipelining=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_concurrent_fetches_log_exactly_once_per_window(
    n_readers, rounds, rtt, pipelining
):
    sim, key_service, session = _session(rtt, pipelining)

    def setup():
        yield from session.create(KeyCreate(AUDIT_ID))
        return None

    sim.run_process(setup())

    for _ in range(rounds):
        keys: list[bytes] = []

        def reader():
            key = yield from session.fetch(KeyFetch(AUDIT_ID))
            keys.append(key)
            return None

        def burst():
            procs = [sim.process(reader()) for _ in range(n_readers)]
            yield sim.all_of(procs)
            return None

        before = len(key_service.access_log.entries(kind="fetch"))
        sim.run_process(burst())
        after = len(key_service.access_log.entries(kind="fetch"))

        # One wire fetch — hence one audit record — per burst...
        assert after - before == 1
        # ...and every concurrent reader got the same key bytes.
        assert len(keys) == n_readers
        assert len(set(keys)) == 1
    assert key_service.access_log.verify_chain()


def test_fs_level_concurrent_reads_share_one_audit_entry():
    """All transport flags on: 8 processes re-reading an expired file
    produce 8 blocking key fetches at the FS layer but one RPC (and one
    log entry) on the wire, with identical plaintext for every reader."""
    config = KeypadConfig(
        texp=50.0, prefetch="none", ibe_enabled=False
    ).with_fast_transport()
    rig = build_keypad_rig(network=THREE_G, config=config, n_blocks=1 << 14)
    path = "/home/doc"

    def setup():
        yield from rig.fs.mkdir("/home")
        yield from rig.fs.create(path)
        yield from rig.fs.write(path, 0, b"secret data")
        yield rig.sim.timeout(200.0)  # the cached key expires
        return None

    rig.run(setup())
    audit_id = rig.run(rig.fs.audit_id_of(path))
    fetches_before = rig.fs.stats["blocking_key_fetches"]

    def entries_for(aid):
        return [
            e for e in rig.key_service.access_log.entries(kind="fetch")
            if e.fields.get("audit_id") == aid
        ]

    log_before = len(entries_for(audit_id))
    datas: list[bytes] = []

    def reader():
        data = yield from rig.fs.read(path, 0, 6)
        datas.append(data)
        return None

    def burst():
        procs = [rig.sim.process(reader()) for _ in range(8)]
        yield rig.sim.all_of(procs)
        return None

    rig.run(burst())
    assert datas == [b"secret"] * 8
    assert rig.fs.stats["blocking_key_fetches"] - fetches_before == 8
    assert len(entries_for(audit_id)) - log_before == 1
    assert rig.key_service.access_log.verify_chain()
