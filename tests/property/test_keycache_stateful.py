"""Stateful property test: the key cache against a reference model.

Hypothesis drives arbitrary interleavings of put/get/restrict/extend/
evict/advance-time and checks the cache against a simple timestamp
model:

* an entry is visible iff its modelled expiry is in the future,
* secure erasure: evicted key material is zeroed,
* occupancy accounting never goes negative and matches the live count.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.sim import Simulation
from repro.core.keycache import KeyCache

IDS = [bytes([i]) * 24 for i in range(5)]


class KeyCacheMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.sim = Simulation()
        # No refresh function: expiry semantics are purely time-based,
        # which is what the model can mirror exactly.
        self.cache = KeyCache(self.sim, refresh_fn=None)
        self.model_expiry: dict[bytes, float] = {}

    ids = Bundle("ids")

    @rule(target=ids, index=st.integers(min_value=0, max_value=len(IDS) - 1))
    def pick_id(self, index):
        return IDS[index]

    @rule(audit_id=ids, texp=st.floats(min_value=0.5, max_value=50.0))
    def put(self, audit_id, texp):
        self.cache.put(audit_id, b"r" * 32, b"d" * 32, texp=texp)
        self.model_expiry[audit_id] = self.sim.now + texp

    @rule(audit_id=ids)
    def get(self, audit_id):
        entry = self.cache.get(audit_id)
        expected_alive = self.model_expiry.get(audit_id, 0.0) > self.sim.now
        assert (entry is not None) == expected_alive

    @rule(audit_id=ids, remaining=st.floats(min_value=0.1, max_value=10.0))
    def restrict(self, audit_id, remaining):
        self.cache.restrict(audit_id, remaining)
        if audit_id in self.model_expiry:
            self.model_expiry[audit_id] = min(
                self.model_expiry[audit_id], self.sim.now + remaining
            )

    @rule(audit_id=ids, texp=st.floats(min_value=0.5, max_value=50.0))
    def extend(self, audit_id, texp):
        alive = self.model_expiry.get(audit_id, 0.0) > self.sim.now
        present = self.cache.peek(audit_id) is not None
        self.cache.extend(audit_id, texp)
        # extend only affects entries still physically present (watchers
        # may not have purged an expired one yet — it stays invisible).
        if present and alive:
            self.model_expiry[audit_id] = self.sim.now + texp
        elif present and not alive:
            # Extending an expired-but-unpurged entry revives it; the
            # implementation allows this only until the watcher runs.
            self.model_expiry[audit_id] = self.sim.now + texp

    @rule(audit_id=ids)
    def evict(self, audit_id):
        entry = self.cache.peek(audit_id)
        self.cache.evict(audit_id)
        self.model_expiry.pop(audit_id, None)
        if entry is not None:
            assert entry.data_key == b"\x00" * 32  # securely erased

    @rule(dt=st.floats(min_value=0.1, max_value=30.0))
    def advance(self, dt):
        self.sim.run(until=self.sim.now + dt)

    @invariant()
    def snapshot_matches_model(self):
        visible = set(self.cache.snapshot())
        expected = {
            a for a, exp in self.model_expiry.items() if exp > self.sim.now
        }
        assert visible == expected

    @invariant()
    def occupancy_sane(self):
        assert self.cache.occupancy.current == len(self.cache._entries)
        assert self.cache.occupancy.peak >= self.cache.occupancy.current


TestKeyCacheStateful = KeyCacheMachine.TestCase
TestKeyCacheStateful.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
