"""Federation under arbitrary partition/crash schedules: the audit
invariant, post-heal convergence, and membership/election recovery.

Hypothesis draws random fault schedules — whole-region partitions and
replica crashes, every window auto-healing before the run ends — while
one geo-routed device per region keeps fetching fresh keys.  After the
world settles the merged cross-region timeline must still satisfy:

* zero false negatives — every fetch the device *completed* appears in
  the merged timeline with at least k witnessing replicas;
* convergence — every entry appended on either side of a split appears
  exactly once (no missing entries, no duplicate groups, nothing lost);
* recovery — gossip marks the whole federation alive again, and every
  election shard settles on exactly one leader that all observers agree
  on.
"""

from __future__ import annotations

import hashlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    FaultPlan,
    FederatedKeyClient,
    FederationGroup,
    Topology,
)
from repro.cluster.faults import FaultEvent, FaultInjector
from repro.cluster.gossip import ALIVE
from repro.cluster.merge import ClusterAuditLog
from repro.crypto.drbg import HmacDrbg
from repro.crypto.secretshare import split_secret
from repro.errors import ReproError
from repro.net.netem import WLAN
from repro.sim import Simulation

#: one replica per region so a severed region is always under the
#: k=2 threshold: in-region fetch attempts leave split-confined entries
TOPO = Topology.symmetric(
    regions=("us", "eu", "ap"), replicas_per_region=1, threshold=2,
    rtt_ms=40.0, gossip_interval=0.5, suspect_after=1.5, dead_after=3.0,
    lease_duration=4.0, election_shards=2,
)

FETCH_EVERY = 2.0
N_FETCHES = 15          # last fetch starts at t=28
SETTLE_UNTIL = 60.0     # all fault windows end by 28 + 8 = 36

fault_schedules = st.lists(
    st.tuples(
        st.sampled_from(["region:us", "region:eu", "region:ap",
                         "replica:0", "replica:1", "replica:2"]),
        st.floats(min_value=0.5, max_value=25.0),
        st.floats(min_value=1.0, max_value=8.0),
    ),
    max_size=4,
)


def _ids(region: str) -> list[bytes]:
    """Distinct audit ids per logical fetch, so merge groups are 1:1
    with fetch attempts."""
    return [
        hashlib.sha256(b"fed-prop|%s|%d" % (region.encode(), i)).digest()[:24]
        for i in range(N_FETCHES)
    ]


def _key_for(audit_id: bytes) -> bytes:
    return hashlib.sha256(b"fed-prop-key|" + audit_id).digest()


def _run_world(schedule):
    sim = Simulation()
    group = FederationGroup(sim, TOPO, seed=b"fed-prop")
    group.start_gossip()

    share_drbg = HmacDrbg(b"fed-prop-shares", b"fleet-shares")
    clients, completed = {}, {}
    fault_links: dict = {}
    boundary: dict = {}
    for region in TOPO.region_names:
        device_id = f"dev-{region}"
        # 2 ms access network on top of the inter-region matrix
        links = group.device_links(WLAN, region, f"{device_id}-keys")
        for j, link in enumerate(links):
            fault_links[link.name] = link
            far = group.region_labels[j]
            if far != region:
                boundary.setdefault(region, []).append(link)
                boundary.setdefault(far, []).append(link)
        clients[region] = FederatedKeyClient(
            sim, device_id, b"secret-" + region.encode(), group, links,
            home_region=region, dedup_window=30.0,
        )
        completed[region] = []
        for audit_id in _ids(region):
            shares = split_secret(_key_for(audit_id), TOPO.threshold,
                                  TOPO.total_replicas, share_drbg)
            for j, replica in enumerate(group.replicas):
                replica.preload_key(device_id, audit_id, shares[j])

    injector = FaultInjector(
        sim, links={**fault_links, **group.gossip_links}, group=group)
    for region in TOPO.region_names:
        injector.register_region(
            region,
            boundary.get(region, []) + group.gossip_links_crossing(region))
    plan = FaultPlan([
        FaultEvent(at, "partition" if target.startswith("region") else
                   "crash", target, duration)
        for target, at, duration in schedule
    ])
    injector.run(plan)

    def driver(region):
        client = clients[region]
        for audit_id in _ids(region):
            try:
                key = yield from client.fetch(audit_id)
                assert key == _key_for(audit_id)
                completed[region].append(audit_id)
            except ReproError:
                pass  # under-threshold inside a fault window
            yield sim.timeout(FETCH_EVERY)

    def settle():
        yield sim.timeout(SETTLE_UNTIL)

    procs = [sim.process(driver(region), name=f"drive-{region}")
             for region in TOPO.region_names]
    procs.append(sim.process(settle(), name="settle"))
    sim.run_until(sim.all_of(procs))
    return sim, group, completed


@given(schedule=fault_schedules)
@settings(max_examples=10, deadline=None)
def test_partition_schedules_never_violate_the_audit_invariant(schedule):
    sim, group, completed = _run_world(schedule)
    log = ClusterAuditLog(group, TOPO.threshold, window=30.0)

    # Zero false negatives: every completed fetch is in the merged
    # timeline with at least k witnesses.
    witnessed = {}
    for access in log.merged():
        if access.kind == "fetch":
            witnessed[(access.device_id, access.audit_id)] = access.witnesses
    for region, ids in completed.items():
        for audit_id in ids:
            count = witnessed.get((f"dev-{region}", audit_id), 0)
            assert count >= TOPO.threshold, (
                f"completed fetch of {audit_id.hex()[:12]} by dev-{region} "
                f"has only {count} witnesses")

    # Post-heal convergence: nothing missing, duplicated, or lost.
    report = log.convergence_report()
    assert report["converged"], report
    # Any split the merge classified names a real region.
    for divergence in log.divergences():
        if divergence.kind == "region-split":
            assert divergence.detail.split()[1].rstrip(":") in TOPO.region_names

    # Membership healed: every observer sees the whole federation alive.
    for agent in group.agents:
        assert set(agent.statuses().values()) == {ALIVE}

    # Election settled: one leader per shard, agreed by all observers.
    now = sim.now
    for shard in range(TOPO.election_shards):
        leaders = {
            agent.leases.leader_of(shard, now) for agent in group.agents
        }
        assert len(leaders) == 1 and None not in leaders, (
            f"shard {shard} leaders disagree: {leaders}")
