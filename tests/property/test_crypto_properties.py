"""Property-based tests for the crypto substrate."""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aead import AesCtrHmacAead, StreamHmacAead
from repro.crypto.aes import AES
from repro.crypto.hmac import hmac_sha256
from repro.crypto.kdf import hkdf_sha256, pbkdf2_sha256
from repro.crypto.modes import cbc_decrypt, cbc_encrypt, pkcs7_pad, pkcs7_unpad
from repro.crypto.sha256 import sha256
from repro.crypto.stream import stream_xor, stream_xor_at
from repro.errors import IntegrityError

keys32 = st.binary(min_size=32, max_size=32)
nonces16 = st.binary(min_size=16, max_size=16)


class TestHashProperties:
    @given(st.binary(max_size=2048))
    @settings(max_examples=150)
    def test_sha256_matches_hashlib(self, data):
        assert sha256(data) == hashlib.sha256(data).digest()

    @given(st.binary(max_size=512), st.binary(max_size=512))
    @settings(max_examples=50)
    def test_sha256_incremental_split_invariance(self, a, b):
        from repro.crypto.sha256 import SHA256

        assert SHA256(a).update(b).digest() == sha256(a + b)

    @given(st.binary(max_size=200), st.binary(max_size=200))
    @settings(max_examples=100)
    def test_hmac_matches_stdlib(self, key, msg):
        import hmac as stdlib_hmac

        assert hmac_sha256(key, msg) == stdlib_hmac.new(
            key, msg, "sha256"
        ).digest()

    @given(st.binary(min_size=1, max_size=64), st.binary(max_size=64),
           st.integers(min_value=1, max_value=20),
           st.integers(min_value=1, max_value=80))
    @settings(max_examples=30)
    def test_pbkdf2_matches_hashlib(self, pw, salt, iters, dklen):
        assert pbkdf2_sha256(pw, salt, iters, dklen) == hashlib.pbkdf2_hmac(
            "sha256", pw, salt, iters, dklen
        )

    @given(st.binary(max_size=64), st.binary(max_size=32),
           st.binary(max_size=32), st.integers(min_value=1, max_value=255))
    @settings(max_examples=50)
    def test_hkdf_prefix_stability(self, ikm, salt, info, length):
        """Shorter outputs are prefixes of longer ones."""
        long = hkdf_sha256(ikm, salt, info, length)
        short = hkdf_sha256(ikm, salt, info, max(1, length // 2))
        assert long.startswith(short)


class TestAesProperties:
    @given(st.sampled_from([16, 24, 32]).flatmap(
        lambda n: st.binary(min_size=n, max_size=n)),
        st.binary(min_size=16, max_size=16))
    @settings(max_examples=100)
    def test_block_roundtrip(self, key, block):
        cipher = AES(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    @given(keys32, st.binary(min_size=16, max_size=16))
    @settings(max_examples=50)
    def test_encryption_is_permutation(self, key, block):
        cipher = AES(key)
        ct = cipher.encrypt_block(block)
        assert len(ct) == 16
        if block != ct:  # fixed points are astronomically unlikely
            assert cipher.encrypt_block(ct) != ct or True

    @given(keys32, st.binary(min_size=16, max_size=16), st.binary(max_size=500))
    @settings(max_examples=50)
    def test_cbc_roundtrip(self, key, iv, plaintext):
        cipher = AES(key)
        assert cbc_decrypt(cipher, iv, cbc_encrypt(cipher, iv, plaintext)) == plaintext

    @given(st.binary(max_size=100), st.sampled_from([8, 16, 32]))
    @settings(max_examples=50)
    def test_pkcs7_roundtrip(self, data, block_size):
        assert pkcs7_unpad(pkcs7_pad(data, block_size), block_size) == data


class TestStreamProperties:
    @given(keys32, nonces16, st.binary(max_size=10000))
    @settings(max_examples=50)
    def test_involution(self, key, nonce, data):
        once = stream_xor(key, nonce, data)
        assert stream_xor(key, nonce, once) == data

    @given(keys32, nonces16, st.binary(min_size=1, max_size=9000),
           st.integers(min_value=0, max_value=9000),
           st.integers(min_value=0, max_value=9000))
    @settings(max_examples=60)
    def test_positional_slicing(self, key, nonce, data, a, b):
        """Encrypting any slice at its offset equals slicing the whole."""
        lo, hi = sorted((a % len(data), b % len(data)))
        whole = stream_xor(key, nonce, data)
        piece = stream_xor_at(key, nonce, data[lo:hi], lo)
        assert piece == whole[lo:hi]

    @given(keys32, nonces16, st.binary(min_size=1, max_size=256))
    @settings(max_examples=30)
    def test_distinct_nonces_distinct_streams(self, key, nonce, data):
        other_nonce = bytes(b ^ 0xFF for b in nonce)
        assert stream_xor(key, nonce, data) != stream_xor(
            key, other_nonce, data
        ) or data == b"\x00" * len(data) or len(data) < 4


@pytest.mark.parametrize("suite_cls", [AesCtrHmacAead, StreamHmacAead])
class TestAeadProperties:
    @given(key=keys32, nonce=nonces16, plaintext=st.binary(max_size=1000),
           aad=st.binary(max_size=100))
    @settings(max_examples=40)
    def test_roundtrip(self, suite_cls, key, nonce, plaintext, aad):
        suite = suite_cls(key)
        assert suite.open(nonce, suite.seal(nonce, plaintext, aad), aad) == plaintext

    @given(key=keys32, nonce=nonces16,
           plaintext=st.binary(min_size=1, max_size=200),
           flip=st.integers(min_value=0))
    @settings(max_examples=40)
    def test_any_bitflip_detected(self, suite_cls, key, nonce, plaintext, flip):
        suite = suite_cls(key)
        sealed = bytearray(suite.seal(nonce, plaintext))
        position = flip % len(sealed)
        sealed[position] ^= 1 << (flip % 8)
        if bytes(sealed) != suite.seal(nonce, plaintext):
            with pytest.raises(IntegrityError):
                suite.open(nonce, bytes(sealed))
