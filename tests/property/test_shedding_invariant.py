"""Overload shedding never creates audit false negatives.

The frontend's contract (PROTOCOL.md §10): a shed request is refused
*before* any key material is touched, and an admitted ``key.fetch``
that returns key material is durably logged before its reply.  So under
any overload pattern — any mix of devices, deadlines, queue bounds,
scheduling policy, and group-commit size — the access log must hold
exactly one fetch record per request that actually got a key.  A
missing record would be a Keypad false negative: a thief reads a file
and forensics never learns.
"""

from __future__ import annotations

from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.services import KeyService
from repro.costmodel import DEFAULT_COSTS
from repro.errors import OverloadSheddedError, ReproError
from repro.sim import Simulation

AUDIT_IDS = [bytes([tag]) * 24 for tag in range(4)]
DEVICES = [f"dev-{i}" for i in range(3)]

#: slow enough that a handful of concurrent requests overloads one
#: worker and both shed paths (queue-full and deadline) actually fire.
SLOW_COSTS = replace(
    DEFAULT_COSTS, service_log_append=0.02, service_key_lookup=0.01
)

_OP = st.tuples(
    st.integers(min_value=0, max_value=len(DEVICES) - 1),   # device
    st.integers(min_value=0, max_value=len(AUDIT_IDS) - 1),  # key
    st.floats(min_value=0.0, max_value=0.08),                # start time
    st.one_of(st.none(),                                     # deadline
              st.floats(min_value=0.001, max_value=0.2)),
)


@given(
    ops=st.lists(_OP, min_size=1, max_size=30),
    policy=st.sampled_from(["drr", "fifo"]),
    workers=st.integers(min_value=1, max_value=2),
    queue_limit=st.integers(min_value=1, max_value=3),
    coalesce=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=40, deadline=None)
def test_shedding_never_loses_audit_records(
    ops, policy, workers, queue_limit, coalesce
):
    sim = Simulation()
    service = KeyService(sim, costs=SLOW_COSTS, seed=b"shed-prop",
                         name="keys")
    for device in DEVICES:
        service.enroll_device(device, b"s" * 16)
        for audit_id in AUDIT_IDS:
            service.preload_key(device, audit_id, b"k" * 32)
    frontend = service.install_frontend(
        workers=workers, queue_limit=queue_limit, policy=policy,
        coalesce=coalesce,
    )

    got_key: dict[tuple[str, bytes], int] = {}
    outcomes = {"completed": 0, "shed": 0, "failed": 0}

    def one(seq, device, audit_id, start, deadline_offset):
        yield sim.timeout(start)
        deadline = (sim.now + deadline_offset
                    if deadline_offset is not None else None)
        try:
            result = yield from frontend.dispatch(
                device, "key.fetch",
                # unique token per request: dedup must never hide a
                # record this test is owed.
                {"audit_id": audit_id, "token": b"tok-%d" % seq},
                deadline=deadline,
            )
        except OverloadSheddedError:
            outcomes["shed"] += 1
        except ReproError:
            outcomes["failed"] += 1
        else:
            assert result["key"] == b"k" * 32
            outcomes["completed"] += 1
            pair = (device, audit_id)
            got_key[pair] = got_key.get(pair, 0) + 1

    procs = [
        sim.process(
            one(seq, DEVICES[d], AUDIT_IDS[k], start, deadline),
            name=f"op-{seq}",
        )
        for seq, (d, k, start, deadline) in enumerate(ops)
    ]
    sim.run_until(sim.all_of(procs))

    assert sum(outcomes.values()) == len(ops)

    logged: dict[tuple[str, bytes], int] = {}
    for entry in service.access_log:
        if entry.kind == "fetch":
            pair = (entry.device_id, entry.fields["audit_id"])
            logged[pair] = logged.get(pair, 0) + 1

    # Zero false negatives: every key handed out has its record — and
    # zero phantom records: shed requests wrote nothing.
    assert logged == got_key
    assert sum(logged.values()) == outcomes["completed"]
    # Metrics agree with the client's view.
    assert frontend.metrics.shed == outcomes["shed"]
    assert frontend.metrics.completed == outcomes["completed"]
