"""The calendar scheduler is trace-equivalent to the heap oracle.

Random fleets of interacting processes — timeouts, bare-delay sleeps,
shared events, a queue, child joins, cross-process interrupts — run once
under ``Simulation(kernel="heap")`` and once under ``"calendar"``.  The
full observable trace (resume times, delivered values, interrupt causes,
final process outcomes) must match exactly: same floats, same order.

Delay pools deliberately include duplicates (same-instant FIFO ties),
zeros (the now-deque fast path), sub-microsecond values, and far-future
magnitudes (the far heap + wheel rebase), so the structural edge cases
of the calendar queue all get traffic.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Interrupt, Simulation

# Duplicates force (time, seq) ties; the spread forces bucket reuse,
# far-heap promotion, and wheel rebase.
_DELAYS = st.sampled_from(
    [0.0, 0.0, 1e-6, 0.001, 0.25, 0.5, 1.0, 1.0, 3.7, 100.0, 1e5]
)
_N_EVENTS = 3
_MAX_PROCS = 4

_OP = st.one_of(
    st.tuples(st.just("timeout"), _DELAYS),
    st.tuples(st.just("bare"), _DELAYS),
    st.tuples(st.just("set"), st.integers(0, _N_EVENTS - 1),
              st.integers(0, 5)),
    st.tuples(st.just("wait"), st.integers(0, _N_EVENTS - 1)),
    st.tuples(st.just("put"), st.integers(0, 5)),
    st.tuples(st.just("get")),
    st.tuples(st.just("join"), _DELAYS),
    st.tuples(st.just("interrupt"), st.integers(0, _MAX_PROCS - 1)),
)

_SCRIPTS = st.lists(
    st.lists(_OP, min_size=1, max_size=6),
    min_size=1, max_size=_MAX_PROCS,
)


def _run_world(kernel: str, scripts) -> tuple[list, list]:
    sim = Simulation(kernel=kernel)
    trace: list = []
    events = [sim.event() for _ in range(_N_EVENTS)]
    queue = sim.queue()
    procs: list = []

    def body(pid: int, script):
        for i, op in enumerate(script):
            tag = op[0]
            try:
                if tag == "timeout":
                    yield sim.timeout(op[1])
                elif tag == "bare":
                    yield op[1]
                elif tag == "set":
                    if not events[op[1]].triggered:
                        events[op[1]].succeed(op[2])
                elif tag == "wait":
                    value = yield events[op[1]]
                    trace.append(("got", pid, i, value, sim.now))
                elif tag == "put":
                    queue.put(op[1])
                elif tag == "get":
                    value = yield queue.get()
                    trace.append(("item", pid, i, value, sim.now))
                elif tag == "join":
                    def child(delay=op[1]):
                        yield sim.timeout(delay)
                        return delay

                    value = yield sim.process(child())
                    trace.append(("join", pid, i, value, sim.now))
                elif tag == "interrupt":
                    target = op[1]
                    if target < len(procs):
                        procs[target].interrupt(("by", pid, i))
            except Interrupt as exc:
                trace.append(("intr", pid, i, exc.cause, sim.now))
                continue
            trace.append(("step", pid, i, sim.now))
        return ("done", pid)

    for pid, script in enumerate(scripts):
        procs.append(sim.process(body(pid, script), name=f"p{pid}"))
    sim.run()
    final = [(p.triggered, p.ok, repr(p.value) if p.triggered else None)
             for p in procs]
    return trace, final


@settings(max_examples=80, deadline=None)
@given(scripts=_SCRIPTS)
def test_calendar_matches_heap_trace(scripts):
    heap_trace, heap_final = _run_world("heap", scripts)
    cal_trace, cal_final = _run_world("calendar", scripts)
    assert cal_trace == heap_trace
    assert cal_final == heap_final


@settings(max_examples=30, deadline=None)
@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=1e7, allow_nan=False),
        min_size=1, max_size=60,
    )
)
def test_calendar_pops_arbitrary_float_delays_in_order(delays):
    """Pure scheduling: arbitrary float delays come back time-sorted and
    FIFO within ties, matching the heap exactly."""
    def fire_order(kernel: str) -> list:
        sim = Simulation(kernel=kernel)
        out: list = []

        def waiter(k: int, d: float):
            yield sim.timeout(d)
            out.append((sim.now, k))

        for k, d in enumerate(delays):
            sim.process(waiter(k, d))
        sim.run()
        return out

    assert fire_order("calendar") == fire_order("heap")
