"""THE property: zero false negatives, under arbitrary attacks.

The paper's §3.2 invariant, adapted for caching/prefetching (§3.3):
for any file F accessed by an attacker after Tloss, either an audit
record for F's ID exists with timestamp after Tloss − Texp, or the
access is impossible.  Hypothesis drives random pre-theft usage and
random post-theft attacker behaviour (device-software reads, raw-disk
reads with extracted memory, service-assisted decryption) and checks
the reconstructed report every time.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attack import OfflineAttacker
from repro.core import KeypadConfig
from repro.errors import ReproError
from repro.forensics import AuditTool, analyze_fidelity
from repro.harness import build_keypad_rig
from repro.net import LAN

N_FILES = 6
PATHS = [f"/home/f{i}" for i in range(N_FILES)]

# Pre-theft owner behaviour: which files are touched and when.
owner_actions = st.lists(
    st.tuples(st.integers(min_value=0, max_value=N_FILES - 1),
              st.floats(min_value=0.1, max_value=200.0)),
    max_size=8,
)

# Post-theft attacker behaviour.
attacker_actions = st.lists(
    st.tuples(
        st.sampled_from(["fs_read", "offline_memory", "offline_service"]),
        st.integers(min_value=0, max_value=N_FILES - 1),
    ),
    min_size=1,
    max_size=8,
)


def _check_zero_false_negatives(owner, attacker, texp, idle, config,
                                crash_replica=None):
    rig = build_keypad_rig(network=LAN, config=config, n_blocks=1 << 14)

    def setup():
        yield from rig.fs.mkdir("/home")
        for path in PATHS:
            yield from rig.fs.create(path)
            yield from rig.fs.write(path, 0, b"secret " + path.encode())
        for index, delay in owner:
            yield rig.sim.timeout(delay)
            yield from rig.fs.read(PATHS[index], 0, 8)
        yield rig.sim.timeout(idle)

    rig.run(setup())
    t_loss = rig.sim.now

    if crash_replica is not None and rig.replica_group is not None:
        # One replica dies inside the exposure window; every attacker
        # access below happens against the degraded cluster.
        rig.replica_group.crash(crash_replica)

    memory = rig.fs.key_cache.snapshot()
    offline = OfflineAttacker(
        rig.lower, "hunter2", memory_snapshot=memory, services=rig.services
    )
    offline_no_service = OfflineAttacker(
        rig.lower, "hunter2", memory_snapshot=memory
    )
    truly_accessed: set[bytes] = set()

    def attack():
        for kind, index in attacker:
            path = PATHS[index]
            try:
                if kind == "fs_read":
                    # Thief drives the device's own Keypad software.
                    data = yield from rig.fs.read(path, 0, 8)
                    if data:
                        audit_id = yield from rig.fs.audit_id_of(path)
                        truly_accessed.add(audit_id)
                elif kind == "offline_memory":
                    result = yield from offline_no_service.try_read(path)
                    if result.success:
                        header = yield from offline_no_service.read_header(path)
                        truly_accessed.add(header.audit_id)
                else:
                    result = yield from offline.try_read(path)
                    if result.success:
                        header = yield from offline.read_header(path)
                        truly_accessed.add(header.audit_id)
            except ReproError:
                continue
        return None

    rig.run(attack())

    if rig.replica_group is not None:
        # The forensic tool reads the merged per-replica timeline, which
        # must also cross-check clean (the crash may not fabricate
        # disagreements between the surviving logs).
        cluster_log = rig.cluster_audit_log()
        key_log = cluster_log
        assert cluster_log.divergences("laptop-1") == []
    else:
        key_log = rig.key_service
    tool = AuditTool(key_log, rig.metadata_service)
    report = tool.report(t_loss=t_loss, texp=texp)
    analysis = analyze_fidelity(report, truly_accessed)
    assert analysis.zero_false_negatives, (
        f"missed accesses: {analysis.false_negatives}"
    )
    # And the logs themselves must verify.
    assert report.logs_intact


@given(owner=owner_actions, attacker=attacker_actions,
       texp=st.sampled_from([5.0, 50.0, 300.0]),
       idle=st.floats(min_value=0.0, max_value=400.0),
       prefetch=st.sampled_from(["none", "dir:2"]))
@settings(max_examples=25, deadline=None)
def test_zero_false_negatives_under_random_attacks(
    owner, attacker, texp, idle, prefetch
):
    config = KeypadConfig(texp=texp, prefetch=prefetch, ibe_enabled=False)
    _check_zero_false_negatives(owner, attacker, texp, idle, config)


@given(owner=owner_actions, attacker=attacker_actions,
       texp=st.sampled_from([5.0, 50.0, 300.0]),
       idle=st.floats(min_value=0.0, max_value=400.0),
       prefetch=st.sampled_from(["none", "dir:2"]))
@settings(max_examples=15, deadline=None)
def test_zero_false_negatives_with_fast_transport(
    owner, attacker, texp, idle, prefetch
):
    """The invariant must survive every transport optimisation at once:
    pipelining, single-flight coalescing, write-behind batching, and a
    sharded key-service log (the ablation's 'fast' arm)."""
    config = KeypadConfig(
        texp=texp, prefetch=prefetch, ibe_enabled=False
    ).with_fast_transport()
    _check_zero_false_negatives(owner, attacker, texp, idle, config)


@given(owner=owner_actions, attacker=attacker_actions,
       texp=st.sampled_from([5.0, 50.0, 300.0]),
       idle=st.floats(min_value=0.0, max_value=400.0),
       prefetch=st.sampled_from(["none", "dir:2"]),
       crash_replica=st.integers(min_value=0, max_value=2))
@settings(max_examples=15, deadline=None)
def test_zero_false_negatives_replicated_with_crashed_replica(
    owner, attacker, texp, idle, prefetch, crash_replica
):
    """The invariant must survive the whole extension stack at once —
    fast transport (pipelining + coalescing + write-behind + shards)
    over a 2-of-3 secret-shared cluster — with an arbitrary replica
    crashed inside the exposure window, judged from the merged
    per-replica timeline."""
    config = (
        KeypadConfig(texp=texp, prefetch=prefetch, ibe_enabled=False)
        .with_fast_transport()
        .with_replication(2, 3)
    )
    _check_zero_false_negatives(owner, attacker, texp, idle, config,
                                crash_replica=crash_replica)


@given(st.data())
@settings(max_examples=10, deadline=None)
def test_unreported_files_are_unreadable_cold(data):
    """Contrapositive: if a file is NOT in the report, a cold attacker
    without service access cannot read it."""
    config = KeypadConfig(texp=10.0, prefetch="none", ibe_enabled=False)
    rig = build_keypad_rig(network=LAN, config=config, n_blocks=1 << 14)

    def setup():
        yield from rig.fs.mkdir("/home")
        for path in PATHS:
            yield from rig.fs.create(path)
            yield from rig.fs.write(path, 0, b"secret")
        yield rig.sim.timeout(100.0)  # everything expires

    rig.run(setup())
    t_loss = rig.sim.now
    attacker = OfflineAttacker(rig.lower, "hunter2")  # cold, no services

    target = data.draw(st.sampled_from(PATHS))

    def attack():
        result = yield from attacker.try_read(target)
        return result

    result = rig.run(attack())
    assert not result.success

    tool = AuditTool(rig.key_service, rig.metadata_service)
    report = tool.report(t_loss=t_loss, texp=config.texp)
    assert report.compromised_ids == set()
