"""Deadline expiry never violates THE invariant (zero false negatives).

The per-operation deadline (:class:`repro.core.context.OpContext`) can
interrupt a VFS op at any point: before the key fetch hits the wire,
mid-flight inside a serial or pipelined RPC, or mid-prefetch-batch.
Whatever the interruption point, the §3.2 guarantee must hold — an
operation either returned plaintext (and its key fetch is in the
key-service log, logged *before* the answer) or it failed with
:class:`DeadlineExpiredError` before any plaintext was produced.

Hypothesis drives random pre-theft usage, then a thief who hammers the
device's own Keypad software under a random (often sub-RTT) op
deadline.  Every read that returns data lands in ``truly_accessed``;
the reconstructed audit report must cover them all.  Reads killed by
the deadline contribute nothing — and must not need to.
"""

from __future__ import annotations

from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import KeypadConfig
from repro.errors import DeadlineExpiredError, ReproError
from repro.forensics import AuditTool, analyze_fidelity
from repro.harness import build_keypad_rig
from repro.net import THREE_G

N_FILES = 6
PATHS = [f"/home/f{i}" for i in range(N_FILES)]

# Pre-theft owner behaviour: which files are touched and when.
owner_actions = st.lists(
    st.tuples(st.integers(min_value=0, max_value=N_FILES - 1),
              st.floats(min_value=0.1, max_value=200.0)),
    max_size=6,
)

# Post-theft reads through the device's own software.
thief_reads = st.lists(
    st.integers(min_value=0, max_value=N_FILES - 1),
    min_size=1, max_size=8,
)

# 3G RTT is 0.3s: budgets straddle it, so some ops expire mid-RPC and
# some squeak through — both sides of the race get exercised.
deadlines = st.floats(min_value=0.01, max_value=1.5)


def _check_deadline_invariant(owner, reads, deadline, texp, idle, config,
                              concurrent=False):
    rig = build_keypad_rig(network=THREE_G, config=config, n_blocks=1 << 14)

    def setup():
        yield from rig.fs.mkdir("/home")
        for path in PATHS:
            yield from rig.fs.create(path)
            yield from rig.fs.write(path, 0, b"secret " + path.encode())
        for index, delay in owner:
            yield rig.sim.timeout(delay)
            yield from rig.fs.read(PATHS[index], 0, 8)
        yield rig.sim.timeout(idle)

    rig.run(setup())
    t_loss = rig.sim.now

    # The thief drives the stolen device under an op deadline (ops now
    # race the wire; setup above ran unbounded so the world is intact).
    rig.fs.config = replace(rig.fs.config, op_deadline=deadline)

    truly_accessed: set[bytes] = set()
    expiries = [0]

    def read_one(path):
        try:
            data = yield from rig.fs.read(path, 0, 8)
        except DeadlineExpiredError:
            # Observable failure, no plaintext: nothing to audit.
            expiries[0] += 1
            return
        except ReproError:
            return
        if data:
            audit_id = yield from rig.fs.audit_id_of(path)
            truly_accessed.add(audit_id)

    def attack_serial():
        for index in reads:
            yield from read_one(PATHS[index])
            yield rig.sim.timeout(0.05)

    def attack_concurrent():
        # Simultaneous reads share pipelined batches and coalesced
        # fetches, so one expiry can interrupt a multi-file RPC.
        procs = [
            rig.sim.process(read_one(PATHS[index]), name=f"thief-{i}")
            for i, index in enumerate(reads)
        ]
        yield rig.sim.all_of(procs)

    rig.run(attack_concurrent() if concurrent else attack_serial())

    tool = AuditTool(rig.key_service, rig.metadata_service)
    report = tool.report(t_loss=t_loss, texp=texp)
    analysis = analyze_fidelity(report, truly_accessed)
    assert analysis.zero_false_negatives, (
        f"missed accesses: {analysis.false_negatives} "
        f"(deadline={deadline}, expiries={expiries[0]})"
    )
    assert report.logs_intact


@given(owner=owner_actions, reads=thief_reads, deadline=deadlines,
       texp=st.sampled_from([5.0, 50.0]),
       idle=st.floats(min_value=0.0, max_value=200.0))
@settings(max_examples=15, deadline=None)
def test_deadline_expiry_mid_fetch_keeps_invariant(
    owner, reads, deadline, texp, idle
):
    """Serial transport: expiry races each key fetch individually."""
    config = KeypadConfig(texp=texp, prefetch="none", ibe_enabled=False)
    _check_deadline_invariant(owner, reads, deadline, texp, idle, config)


@given(owner=owner_actions, reads=thief_reads, deadline=deadlines,
       texp=st.sampled_from([5.0, 50.0]),
       idle=st.floats(min_value=0.0, max_value=200.0))
@settings(max_examples=15, deadline=None)
def test_deadline_expiry_mid_prefetch_keeps_invariant(
    owner, reads, deadline, texp, idle
):
    """Directory prefetch: a miss fans out a batch fetch for siblings;
    the deadline can cut that batch down mid-flight."""
    config = KeypadConfig(texp=texp, prefetch="dir:3", ibe_enabled=False)
    _check_deadline_invariant(owner, reads, deadline, texp, idle, config)


@given(owner=owner_actions, reads=thief_reads, deadline=deadlines,
       texp=st.sampled_from([5.0, 50.0]),
       idle=st.floats(min_value=0.0, max_value=200.0))
@settings(max_examples=15, deadline=None)
def test_deadline_expiry_mid_pipelined_batch_keeps_invariant(
    owner, reads, deadline, texp, idle
):
    """Fast transport + concurrent reads: expiries interrupt pipelined
    in-flight windows and coalesced single-flight fetches."""
    config = KeypadConfig(
        texp=texp, prefetch="dir:2", ibe_enabled=False
    ).with_fast_transport()
    _check_deadline_invariant(owner, reads, deadline, texp, idle, config,
                              concurrent=True)


@given(owner=owner_actions, reads=thief_reads, deadline=deadlines,
       texp=st.sampled_from([5.0, 50.0]),
       idle=st.floats(min_value=0.0, max_value=200.0))
@settings(max_examples=10, deadline=None)
def test_deadline_expiry_traced_keeps_invariant(
    owner, reads, deadline, texp, idle
):
    """Tracing on top of deadlines: span bookkeeping through the
    interrupt path must not perturb the audit trail either."""
    config = KeypadConfig(
        texp=texp, prefetch="dir:2", ibe_enabled=False
    ).with_tracing()
    _check_deadline_invariant(owner, reads, deadline, texp, idle, config)


@given(reads=thief_reads, deadline=st.floats(min_value=0.01, max_value=0.25))
@settings(max_examples=10, deadline=None)
def test_expired_read_retried_unbounded_is_logged(reads, deadline):
    """After a sub-RTT expiry, lifting the deadline and re-reading the
    same file must both succeed and appear in the report — the aborted
    attempt leaves no wedged state behind."""
    config = KeypadConfig(texp=5.0, prefetch="none", ibe_enabled=False)
    rig = build_keypad_rig(network=THREE_G, config=config, n_blocks=1 << 14)

    def setup():
        yield from rig.fs.mkdir("/home")
        for path in PATHS:
            yield from rig.fs.create(path)
            yield from rig.fs.write(path, 0, b"secret")
        yield rig.sim.timeout(60.0)  # all keys expired

    rig.run(setup())
    t_loss = rig.sim.now
    target = PATHS[reads[0]]

    rig.fs.config = replace(rig.fs.config, op_deadline=deadline)

    def bounded():
        try:
            yield from rig.fs.read(target, 0, 8)
            return False
        except DeadlineExpiredError:
            return True

    expired = rig.run(bounded())

    rig.fs.config = replace(rig.fs.config, op_deadline=None)

    def unbounded():
        data = yield from rig.fs.read(target, 0, 8)
        audit_id = yield from rig.fs.audit_id_of(target)
        return data, audit_id

    data, audit_id = rig.run(unbounded())
    assert data == b"secret"[:8]

    report = AuditTool(rig.key_service, rig.metadata_service).report(
        t_loss=t_loss, texp=config.texp
    )
    analysis = analyze_fidelity(report, {audit_id})
    assert analysis.zero_false_negatives
    assert report.logs_intact
    # Sub-RTT budgets over 3G cannot complete a cold fetch.
    if deadline < 0.15:
        assert expired
