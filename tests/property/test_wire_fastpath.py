"""Fast-wire equivalences, held to the real codec under random payloads.

The serial RPC fast path never builds wire bytes; it relies on two
exact mirrors of the codec:

* ``marshal_request_len`` / ``marshal_response_len`` — the byte length
  of the message the codec *would* produce, computed tag-for-tag;
* ``normalize_value`` — the semantic effect of a marshal/unmarshal
  round-trip (tuples→lists, dict keys→str, whitespace-only→empty).

If either mirror drifts from the codec, wire sizes (and so every
latency and byte counter in the tables) silently diverge between fast
and full mode — these properties pin them together.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.wire import (
    marshal_request,
    marshal_request_len,
    marshal_response,
    marshal_response_len,
    normalize_value,
    unmarshal,
)

_TEXT = st.text(alphabet=st.characters(codec="utf-8"), max_size=40)

_SCALAR = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 80), max_value=2 ** 80),
    st.floats(allow_nan=False, allow_infinity=False),
    _TEXT,
    st.binary(max_size=64),
)

_VALUE = st.recursive(
    _SCALAR,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(_TEXT, children, max_size=4),
        st.dictionaries(st.integers(-99, 99), children, max_size=3),
    ),
    max_leaves=14,
)

_PARAMS = st.dictionaries(_TEXT, _VALUE, max_size=4)


@settings(max_examples=150, deadline=None)
@given(method=_TEXT, params=_PARAMS)
def test_request_len_matches_codec(method, params):
    assert marshal_request_len(method, params) == \
        len(marshal_request(method, params))


@settings(max_examples=150, deadline=None)
@given(payload=_VALUE)
def test_response_len_matches_codec(payload):
    assert marshal_response_len(payload) == len(marshal_response(payload))


@settings(max_examples=150, deadline=None)
@given(payload=_VALUE)
def test_normalize_matches_roundtrip(payload):
    assert normalize_value(payload) == \
        unmarshal(marshal_response(payload)).payload
