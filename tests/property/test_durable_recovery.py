"""Kill-anywhere recovery, driven by hypothesis.

The durable audit store's contract: crash the process at *any*
append/seal/checkpoint boundary, recover from the spilled blobs alone,
and

1. the recovered seal + entry chain verifies;
2. the recovered log is exactly the flushed prefix — byte-identical
   (sequence + chain hash) to a never-crashed flat ``AppendOnlyLog``
   mirror fed the same records;
3. at most the unflushed tail is lost, and the loss is *detected*
   (``lost_entries`` in the recovery stats), never silent;
4. the rebuilt views answer identically to a scan of the recovered
   log — whether or not a checkpoint was restored along the way.

A random op script (appends across devices, force-seals, checkpoints)
runs against every flush policy, and a crash image is taken after
*every* op, so each script exercises every boundary it contains.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.auditstore import (
    AppendOnlyLog,
    BlobImage,
    DurableAuditStore,
)
from repro.auditstore.log import DISCLOSING_KINDS
from repro.storage.backend import BlobStore

DEVICES = [f"dev-{i}" for i in range(3)]
AUDIT_IDS = [bytes([i]) * 24 for i in range(4)]
KINDS = ["fetch", "create", "evict"]

ops = st.lists(
    st.one_of(
        st.tuples(st.just("append"),
                  st.integers(min_value=0, max_value=len(DEVICES) - 1),
                  st.integers(min_value=0, max_value=len(AUDIT_IDS) - 1),
                  st.integers(min_value=0, max_value=len(KINDS) - 1)),
        st.tuples(st.just("seal")),
        st.tuples(st.just("checkpoint")),
    ),
    min_size=1,
    max_size=24,
)

configs = st.tuples(
    st.sampled_from(["every-append", "every-seal", "every-n"]),
    st.integers(min_value=1, max_value=4),      # flush_every
    st.integers(min_value=2, max_value=5),      # segment_entries
)


def _check_crash_image(image, mirror, live, total):
    """One crash boundary: recover from ``image`` and check 1-4."""
    flushed = live.stats()["durable"]["flushed_entries"]
    recovered = DurableAuditStore.recover(
        BlobImage(image),
        name="key-access",
        segment_entries=live.segment_entries,
        entries_before=total,
    )
    # (1) the chain verifies
    assert recovered.verify_chain()
    # (2) exactly the flushed prefix, on the mirror's chain
    assert len(recovered) == flushed
    assert (
        [(e.sequence, e.chain_hash) for e in recovered]
        == [(e.sequence, e.chain_hash) for e in list(mirror)[:flushed]]
    )
    # (3) the loss is bounded by the unflushed tail and never silent
    assert recovered.recovery["lost_entries"] == total - flushed
    # (4) views answer what a scan of the recovered log answers
    views = recovered.views
    assert views.stats()["ingested"] == flushed
    for device in DEVICES:
        assert (
            [(e.sequence, e.chain_hash)
             for e in views.device_timeline(device)]
            == [(e.sequence, e.chain_hash)
                for e in recovered.entries(device_id=device)]
        )
    disclosing = [
        (e.sequence, e.chain_hash)
        for e in list(mirror)[:flushed]
        if e.kind in DISCLOSING_KINDS
    ]
    assert (
        [(e.sequence, e.chain_hash) for e in views.accesses_after(-1.0)]
        == disclosing
    )


@given(script=ops, config=configs)
@settings(max_examples=60, deadline=None)
def test_kill_anywhere_recovers_the_flushed_prefix(script, config):
    flush_policy, flush_every, segment_entries = config
    store = BlobStore("memory")
    ns = store.namespace("audit/prop")
    live = DurableAuditStore.create(
        ns,
        name="key-access",
        segment_entries=segment_entries,
        flush_policy=flush_policy,
        flush_every=flush_every,
    )
    mirror = AppendOnlyLog(name="key-access")

    total = 0
    t = 0.0
    for op in script:
        if op[0] == "append":
            _, dev, aid, kind = op
            t += 1.0
            live.append(t, DEVICES[dev], KINDS[kind],
                        audit_id=AUDIT_IDS[aid])
            mirror.append(t, DEVICES[dev], KINDS[kind],
                          audit_id=AUDIT_IDS[aid])
            total += 1
        elif op[0] == "seal":
            live.force_seal()
        else:
            live.checkpoint()
        # crash here — at every boundary the script contains
        _check_crash_image(ns.snapshot(), mirror, live, total)

    # the survivor itself still verifies and matches the mirror
    assert live.verify_chain()
    assert [e.chain_hash for e in live] == [e.chain_hash for e in mirror]
