"""Property suite for the event-sourced audit store.

Two families of invariants, driven by hypothesis:

1. **View/scan equivalence (zero false negatives).**  Whatever
   interleaving of appends, group commits, force-seals, compactions,
   and view rebuilds produced the store, each materialized view must
   answer exactly what the equivalent flat-log scan answers — in
   particular the post-theft window view may never omit a disclosing
   record at or after ``Tloss − Texp`` (the paper's §3.2 invariant,
   read-side edition).  The segmented store's entry chain must also be
   byte-identical to a flat ``AppendOnlyLog`` fed the same records.

2. **Tamper evidence.**  Flipping any byte of any record in any sealed
   (including compacted) segment, truncating a segment, or deleting a
   sealed segment outright must make ``verify_chain`` fail.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.auditstore import AppendOnlyLog, SegmentedAuditStore
from repro.auditstore.log import DISCLOSING_KINDS

DEVICES = [f"dev-{i}" for i in range(4)]
AUDIT_IDS = [bytes([i]) * 24 for i in range(5)]
KINDS = list(DISCLOSING_KINDS[:4]) + ["evict-notify", "revoke"]

# One record: (timestamp, device index, kind index, audit-id index).
records = st.tuples(
    st.floats(min_value=0.0, max_value=1000.0,
              allow_nan=False, allow_infinity=False),
    st.integers(min_value=0, max_value=len(DEVICES) - 1),
    st.integers(min_value=0, max_value=len(KINDS) - 1),
    st.integers(min_value=0, max_value=len(AUDIT_IDS) - 1),
)

# An op script: single appends, group commits, admin actions.
ops = st.lists(
    st.one_of(
        st.tuples(st.just("append"), records),
        st.tuples(st.just("batch"), st.lists(records, min_size=1,
                                             max_size=5)),
        st.tuples(st.just("seal"), st.none()),
        st.tuples(st.just("compact"), st.none()),
        st.tuples(st.just("rebuild"), st.none()),
    ),
    min_size=1,
    max_size=40,
)


def _materialize(op_script, segment_entries, auto_compact):
    """Run one script against a segmented store and a flat mirror."""
    store = SegmentedAuditStore(
        name="p", segment_entries=segment_entries, auto_compact=auto_compact
    )
    flat = AppendOnlyLog(name="p")

    def rec(record):
        ts, dev, kind, aid = record
        return (ts, DEVICES[dev], KINDS[kind],
                {"audit_id": AUDIT_IDS[aid]})

    for op, arg in op_script:
        if op == "append":
            ts, dev, kind, fields = rec(arg)
            store.append(ts, dev, kind, **fields)
            flat.append(ts, dev, kind, **fields)
        elif op == "batch":
            batch = [rec(r) for r in arg]
            store.append_many(batch)
            flat.append_many(batch)
        elif op == "seal":
            store.force_seal()
        elif op == "compact":
            store.compact()
        else:
            store.views.rebuild()
    return store, flat


@given(op_script=ops,
       segment_entries=st.integers(min_value=2, max_value=16),
       auto_compact=st.booleans(),
       since=st.floats(min_value=0.0, max_value=1000.0,
                       allow_nan=False, allow_infinity=False))
@settings(max_examples=120, deadline=None)
def test_views_always_equal_the_raw_scan(op_script, segment_entries,
                                         auto_compact, since):
    store, flat = _materialize(op_script, segment_entries, auto_compact)

    # The segmented store is indistinguishable from the flat log.
    assert [e.chain_hash for e in store] == [e.chain_hash for e in flat]
    assert store.verify_chain() and flat.verify_chain()
    assert len(store) == len(flat)

    # Post-theft window view == scan, with and without a device filter
    # (zero false negatives: no disclosing record after `since` may be
    # missing from the view's answer).
    scan = [e for e in flat.entries(since=since)
            if e.kind in DISCLOSING_KINDS]
    assert store.views.accesses_after(since) == scan
    for device in DEVICES:
        scan_d = [e for e in scan if e.device_id == device]
        assert store.views.accesses_after(since, device_id=device) == scan_d

        # Per-device timeline view == scan.
        assert store.views.device_timeline(device) == (
            flat.entries(device_id=device)
        )

    # Per-file access set view == scan.
    for audit_id in AUDIT_IDS:
        scan_f = [e for e in flat
                  if e.kind in DISCLOSING_KINDS
                  and e.fields.get("audit_id") == audit_id]
        assert store.views.file_accesses(audit_id) == scan_f

    # Random access and tails agree with the flat log too.
    if len(store):
        mid = len(store) // 2
        assert store.entry_at(mid) == flat.entry_at(mid)
        assert store.tail(mid) == flat.tail(mid)


@given(op_script=ops,
       segment_entries=st.integers(min_value=2, max_value=8),
       data=st.data())
@settings(max_examples=120, deadline=None)
def test_verify_chain_catches_any_tampered_sealed_byte(op_script,
                                                       segment_entries,
                                                       data):
    store, _ = _materialize(op_script, segment_entries, True)
    sealed = [s for s in store.segments if s.sealed and len(s)]
    if not sealed:
        return  # script too short to seal anything — vacuous case
    assert store.verify_chain()

    segment = data.draw(st.sampled_from(sealed), label="segment")
    attack = data.draw(st.sampled_from(
        ["flip-kind", "flip-timestamp", "flip-device", "truncate",
         "drop-segment"]), label="attack")

    if attack == "drop-segment":
        store.segments.remove(segment)
        assert not store.verify_chain()
        return

    offset = data.draw(
        st.integers(min_value=0, max_value=len(segment) - 1), label="offset"
    )
    if attack == "truncate":
        if segment.compacted:
            del segment._packed[-1]
        else:
            del segment._live[-1]
        assert not store.verify_chain()
        return

    entry = segment.entry_at(offset)
    if attack == "flip-kind":
        evil = dc_replace(entry, kind=entry.kind + "x")
    elif attack == "flip-timestamp":
        evil = dc_replace(entry, timestamp=entry.timestamp + 1.0)
    else:
        evil = dc_replace(entry, device_id="mallory")
    if segment.compacted:
        segment._packed[offset] = (
            evil.sequence, evil.timestamp, evil.device_id, evil.kind,
            tuple(sorted(evil.fields.items())), evil.chain_hash,
        )
    else:
        segment._live[offset] = evil
    assert not store.verify_chain()


@given(op_script=ops, segment_entries=st.integers(min_value=2, max_value=8))
@settings(max_examples=60, deadline=None)
def test_rebuild_is_idempotent_and_compaction_invisible(op_script,
                                                        segment_entries):
    """Rebuilding views from scratch and compacting every sealed
    segment must never change any answer."""
    store, flat = _materialize(op_script, segment_entries, False)
    before = store.views.accesses_after(0.0)
    store.compact()
    assert store.views.accesses_after(0.0) == before
    store.views.rebuild()
    assert store.views.accesses_after(0.0) == before
    assert store.verify_chain()
    assert [e.chain_hash for e in store] == [e.chain_hash for e in flat]
