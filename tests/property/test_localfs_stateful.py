"""Stateful property test: LocalFileSystem vs a dict-based model.

Hypothesis drives interleavings of create/write/read/rename/unlink/
truncate/mkdir and checks full observable equivalence after each step,
including directory listings — a deeper exercise of the rename and
allocation paths than the stateless sequences in test_fs_properties.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.errors import FileSystemError
from repro.sim import Simulation
from repro.storage import BlockDevice, BufferCache, LocalFileSystem

NAMES = ["a", "b", "c"]
DIRS = ["/", "/d1", "/d1/sub"]


def _paths():
    return st.tuples(st.sampled_from(DIRS), st.sampled_from(NAMES)).map(
        lambda t: (t[0].rstrip("/") + "/" + t[1])
    )


class LocalFsMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.sim = Simulation()
        device = BlockDevice(self.sim, n_blocks=1 << 13)
        cache = BufferCache(self.sim, device, capacity_blocks=64)
        self.fs = LocalFileSystem(self.sim, cache)
        self.model_files: dict[str, bytes] = {}
        self.model_dirs = {"/"}
        for d in DIRS:
            if d != "/":
                self.sim.run_process(self.fs.mkdir(d))
                self.model_dirs.add(d)

    # -- helpers ------------------------------------------------------------
    def _run(self, gen):
        return self.sim.run_process(gen)

    def _both(self, model_fn, real_gen):
        model_exc = real_exc = None
        model_result = real_result = None
        try:
            model_result = model_fn()
        except FileSystemError as exc:
            model_exc = exc
        try:
            real_result = self._run(real_gen)
        except FileSystemError as exc:
            real_exc = exc
        assert (model_exc is None) == (real_exc is None), (
            model_exc, real_exc
        )
        return model_result, real_result, model_exc

    # -- rules ----------------------------------------------------------------
    @rule(path=_paths())
    def create(self, path):
        def model():
            parent = path.rsplit("/", 1)[0] or "/"
            if parent not in self.model_dirs:
                raise FileSystemError(path)
            if path in self.model_files or path in self.model_dirs:
                raise FileSystemError(path)
            self.model_files[path] = b""

        self._both(model, self.fs.create(path))

    @rule(path=_paths(), offset=st.integers(min_value=0, max_value=9000),
          data=st.binary(min_size=1, max_size=500))
    def write(self, path, offset, data):
        def model():
            if path not in self.model_files:
                raise FileSystemError(path)
            buf = bytearray(self.model_files[path])
            if len(buf) < offset:
                buf.extend(bytes(offset - len(buf)))
            buf[offset:offset + len(data)] = data
            self.model_files[path] = bytes(buf)

        self._both(model, self.fs.write(path, offset, data))

    @rule(path=_paths(), offset=st.integers(min_value=0, max_value=9000),
          size=st.integers(min_value=1, max_value=1000))
    def read(self, path, offset, size):
        def model():
            if path not in self.model_files:
                raise FileSystemError(path)
            return self.model_files[path][offset:offset + size]

        model_result, real_result, exc = self._both(
            model, self.fs.read(path, offset, size)
        )
        if exc is None:
            assert real_result == model_result

    @rule(path=_paths(), size=st.integers(min_value=0, max_value=9000))
    def truncate(self, path, size):
        def model():
            if path not in self.model_files:
                raise FileSystemError(path)
            data = self.model_files[path]
            if size <= len(data):
                self.model_files[path] = data[:size]
            else:
                self.model_files[path] = data + bytes(size - len(data))

        self._both(model, self.fs.truncate(path, size))

    @rule(path=_paths())
    def unlink(self, path):
        def model():
            if path not in self.model_files:
                raise FileSystemError(path)
            del self.model_files[path]

        self._both(model, self.fs.unlink(path))

    @rule(old=_paths(), new=_paths())
    def rename(self, old, new):
        def model():
            if old not in self.model_files:
                raise FileSystemError(old)
            parent = new.rsplit("/", 1)[0] or "/"
            if parent not in self.model_dirs or new in self.model_dirs:
                raise FileSystemError(new)
            data = self.model_files.pop(old)
            self.model_files[new] = data

        self._both(model, self.fs.rename(old, new))

    # -- invariants ---------------------------------------------------------------
    @invariant()
    def directory_listings_agree(self):
        for directory in DIRS:
            expected_files = {
                p.rsplit("/", 1)[1]
                for p in self.model_files
                if (p.rsplit("/", 1)[0] or "/") == directory
            }
            expected_dirs = {
                d.rsplit("/", 1)[1]
                for d in self.model_dirs
                if d != "/" and (d.rsplit("/", 1)[0] or "/") == directory
            }
            actual = set(self._run(self.fs.readdir(directory)))
            assert actual == expected_files | expected_dirs, directory

    @invariant()
    def sizes_agree(self):
        for path, data in self.model_files.items():
            attr = self._run(self.fs.getattr(path))
            assert attr.size == len(data), path


TestLocalFsStateful = LocalFsMachine.TestCase
TestLocalFsStateful.settings = settings(
    max_examples=25, stateful_step_count=25, deadline=None
)
