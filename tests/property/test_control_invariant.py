"""Runtime reconfiguration never creates audit false negatives.

The control channel (docs/CONTROL.md) can change Texp or revoke the
device *mid-window* — while keys fetched under the old policy are
still cached.  The paper's §3.2 invariant must survive any such
timing: for any file an attacker accesses after Tloss, an audit record
exists inside the reconstructed window, where the forensic window is
computed from the *largest* Texp that was ever in effect (the admin
action log tells the auditor exactly when policy changed, so this is
information the tool really has).

Two mechanisms carry the proof obligation:

* ``KeyCache.retarget_texp`` — a Texp decrease shortens live cache
  entries immediately and never lengthens one in place, so no key
  outlives both policies' windows;
* key-service revocation — a revoked device's *cold* reads are refused
  before key material moves, so they add nothing to what the report
  must contain.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import KeypadConfig, mount, open_control
from repro.attack import OfflineAttacker
from repro.errors import ReproError, RevokedError
from repro.forensics import AuditTool, analyze_fidelity
from repro.harness.experiment import DEVICE_ID
from repro.net.netem import LAN

N_FILES = 5
PATHS = [f"/home/f{i}" for i in range(N_FILES)]

# Pre-theft owner behaviour: which files are touched and when.
owner_actions = st.lists(
    st.tuples(st.integers(min_value=0, max_value=N_FILES - 1),
              st.floats(min_value=0.1, max_value=120.0)),
    max_size=6,
)

# Post-theft attacker behaviour.
attacker_actions = st.lists(
    st.tuples(
        st.sampled_from(["fs_read", "offline_memory", "offline_service"]),
        st.integers(min_value=0, max_value=N_FILES - 1),
    ),
    min_size=1,
    max_size=6,
)


def _drive(rig, ctl, owner, idle, admin_script):
    """Owner workload and scripted admin actions, concurrently."""

    def setup():
        yield from rig.fs.mkdir("/home")
        for path in PATHS:
            yield from rig.fs.create(path)
            yield from rig.fs.write(path, 0, b"secret " + path.encode())
        for index, delay in owner:
            yield rig.sim.timeout(delay)
            try:
                yield from rig.fs.read(PATHS[index], 0, 8)
            except ReproError:
                # e.g. the admin revoked this very device mid-run;
                # the owner's reads failing is not the invariant's
                # concern, missing *logged* accesses would be.
                continue
        yield rig.sim.timeout(idle)

    procs = [
        rig.sim.process(setup(), name="owner"),
        rig.sim.process(admin_script(), name="admin"),
    ]
    rig.sim.run_until(rig.sim.all_of(procs))


def _attack_and_audit(rig, attacker, t_loss, report_texp):
    memory = rig.fs.key_cache.snapshot()
    offline = OfflineAttacker(
        rig.lower, "hunter2", memory_snapshot=memory, services=rig.services
    )
    offline_cold = OfflineAttacker(rig.lower, "hunter2",
                                   memory_snapshot=memory)
    truly_accessed: set[bytes] = set()

    def attack():
        for kind, index in attacker:
            path = PATHS[index]
            try:
                if kind == "fs_read":
                    data = yield from rig.fs.read(path, 0, 8)
                    if data:
                        audit_id = yield from rig.fs.audit_id_of(path)
                        truly_accessed.add(audit_id)
                elif kind == "offline_memory":
                    result = yield from offline_cold.try_read(path)
                    if result.success:
                        header = yield from offline_cold.read_header(path)
                        truly_accessed.add(header.audit_id)
                else:
                    result = yield from offline.try_read(path)
                    if result.success:
                        header = yield from offline.read_header(path)
                        truly_accessed.add(header.audit_id)
            except ReproError:
                continue
        return None

    rig.run(attack())

    tool = AuditTool(rig.key_service, rig.metadata_service)
    report = tool.report(t_loss=t_loss, texp=report_texp)
    analysis = analyze_fidelity(report, truly_accessed)
    assert analysis.zero_false_negatives, (
        f"missed accesses: {analysis.false_negatives}"
    )
    assert report.logs_intact


@given(owner=owner_actions, attacker=attacker_actions,
       texp0=st.sampled_from([5.0, 50.0]),
       new_texp=st.sampled_from([0.0, 2.0, 50.0, 200.0]),
       change_at=st.floats(min_value=0.5, max_value=150.0),
       idle=st.floats(min_value=0.0, max_value=120.0))
@settings(max_examples=20, deadline=None)
def test_midwindow_texp_change_keeps_zero_false_negatives(
    owner, attacker, texp0, new_texp, change_at, idle
):
    config = KeypadConfig(texp=texp0, prefetch="none", ibe_enabled=False)
    rig = mount(network=LAN, config=config, n_blocks=1 << 14)
    ctl = open_control(rig)

    def admin():
        yield rig.sim.timeout(change_at)
        yield from ctl.set_texp(new_texp)

    _drive(rig, ctl, owner, idle, admin)
    t_loss = rig.sim.now
    # The auditor reconstructs with the largest window any key could
    # have lived under — derivable from the admin action log.
    assert any(a["verb"] == "set_texp" for a in ctl.server.actions)
    _attack_and_audit(rig, attacker, t_loss, max(texp0, new_texp))


@given(owner=owner_actions, attacker=attacker_actions,
       texp0=st.sampled_from([5.0, 50.0]),
       revoke_at=st.floats(min_value=0.5, max_value=150.0),
       idle=st.floats(min_value=0.0, max_value=120.0))
@settings(max_examples=20, deadline=None)
def test_midwindow_revocation_keeps_zero_false_negatives(
    owner, attacker, texp0, revoke_at, idle
):
    config = KeypadConfig(texp=texp0, prefetch="none", ibe_enabled=False)
    rig = mount(network=LAN, config=config, n_blocks=1 << 14)
    ctl = open_control(rig)

    def admin():
        yield rig.sim.timeout(revoke_at)
        yield from ctl.revoke(DEVICE_ID)

    _drive(rig, ctl, owner, idle, admin)
    t_loss = rig.sim.now
    _attack_and_audit(rig, attacker, t_loss, texp0)


@given(data=st.data())
@settings(max_examples=10, deadline=None)
def test_no_cold_read_decryptable_after_control_revocation(data):
    """The acceptance bar stated sharply: once the control channel has
    revoked the device, zero post-revocation cold reads are
    decryptable — neither through the device's own FS nor through a
    service-assisted offline attacker."""
    config = KeypadConfig(texp=10.0, prefetch="none", ibe_enabled=False)
    rig = mount(network=LAN, config=config, n_blocks=1 << 14)
    ctl = open_control(rig)

    def setup():
        yield from rig.fs.mkdir("/home")
        for path in PATHS:
            yield from rig.fs.create(path)
            yield from rig.fs.write(path, 0, b"secret")
        yield from ctl.revoke(DEVICE_ID)

    rig.run(setup())
    rig.fs.key_cache.evict_all()  # cold: no residual plaintext keys
    offline = OfflineAttacker(rig.lower, "hunter2", services=rig.services)

    target = data.draw(st.sampled_from(PATHS))

    def attack():
        try:
            yield from rig.fs.read(target, 0, 8)
        except RevokedError:
            pass
        else:
            raise AssertionError("fs read served after revocation")
        result = yield from offline.try_read(target)
        return result

    result = rig.run(attack())
    assert not result.success
