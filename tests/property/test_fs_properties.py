"""Property-based tests: file-system layers against a model FS.

Random operation sequences are applied both to a trivial in-memory
model and to the real stack (localfs alone, EncFS over it, Keypad over
it); observable results must agree, and for the encrypted layers the
device must never contain plaintext content.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import KeypadConfig
from repro.errors import FileSystemError
from repro.harness import build_encfs_rig, build_ext3_rig, build_keypad_rig
from repro.net import LAN

# ---------------------------------------------------------------------------
# A tiny model file system (dict of path -> bytes).
# ---------------------------------------------------------------------------


@dataclass
class ModelFs:
    files: dict[str, bytearray] = field(default_factory=dict)
    dirs: set = field(default_factory=lambda: {"/"})

    def parent_ok(self, path: str) -> bool:
        parent = path.rsplit("/", 1)[0] or "/"
        return parent in self.dirs

    def create(self, path):
        if not self.parent_ok(path) or path in self.files or path in self.dirs:
            raise FileSystemError(path)
        self.files[path] = bytearray()

    def mkdir(self, path):
        if not self.parent_ok(path) or path in self.files or path in self.dirs:
            raise FileSystemError(path)
        self.dirs.add(path)

    def write(self, path, offset, data):
        if path not in self.files:
            raise FileSystemError(path)
        buf = self.files[path]
        if len(buf) < offset:
            buf.extend(bytes(offset - len(buf)))
        buf[offset:offset + len(data)] = data

    def read(self, path, offset, size):
        if path not in self.files:
            raise FileSystemError(path)
        return bytes(self.files[path][offset:offset + size])

    def unlink(self, path):
        if path not in self.files:
            raise FileSystemError(path)
        del self.files[path]

    def rename(self, old, new):
        if old not in self.files or not self.parent_ok(new):
            raise FileSystemError(old)
        if new in self.dirs:
            raise FileSystemError(new)
        data = self.files.pop(old)
        self.files[new] = data


# Operation strategy: ops reference a small pool of names so that
# collisions (create-over-existing, rename chains) actually happen.
_NAMES = ["a", "b", "c", "d"]
_DIRS = ["/", "/d1", "/d2"]


def _paths():
    return st.tuples(st.sampled_from(_DIRS), st.sampled_from(_NAMES)).map(
        lambda t: (t[0].rstrip("/") + "/" + t[1])
    )


_OPS = st.one_of(
    st.tuples(st.just("create"), _paths()),
    st.tuples(st.just("write"), _paths(),
              st.integers(min_value=0, max_value=5000),
              st.binary(min_size=1, max_size=300)),
    st.tuples(st.just("read"), _paths(),
              st.integers(min_value=0, max_value=5000),
              st.integers(min_value=1, max_value=600)),
    st.tuples(st.just("unlink"), _paths()),
    st.tuples(st.just("rename"), _paths(), _paths()),
)


def _apply(model, real_apply, ops):
    """Run ops against model and real FS; compare outcome classes."""
    for op in ops:
        kind = op[0]
        model_exc = real_exc = None
        model_result = real_result = None
        try:
            if kind == "create":
                model.create(op[1])
            elif kind == "write":
                model.write(op[1], op[2], op[3])
            elif kind == "read":
                model_result = model.read(op[1], op[2], op[3])
            elif kind == "unlink":
                model.unlink(op[1])
            elif kind == "rename":
                model.rename(op[1], op[2])
        except FileSystemError as exc:
            model_exc = exc
        try:
            real_result = real_apply(op)
        except FileSystemError as exc:
            real_exc = exc
        assert (model_exc is None) == (real_exc is None), (op, model_exc, real_exc)
        if kind == "read" and model_exc is None:
            assert real_result == model_result, op


def _real_apply_factory(rig):
    def apply(op):
        kind = op[0]
        if kind == "create":
            return rig.run(rig.fs.create(op[1]))
        if kind == "write":
            return rig.run(rig.fs.write(op[1], op[2], op[3]))
        if kind == "read":
            return rig.run(rig.fs.read(op[1], op[2], op[3]))
        if kind == "unlink":
            return rig.run(rig.fs.unlink(op[1]))
        if kind == "rename":
            return rig.run(rig.fs.rename(op[1], op[2]))
        raise AssertionError(kind)

    return apply


def _setup_dirs(rig):
    for d in _DIRS:
        if d != "/":
            rig.run(rig.fs.mkdir(d))


class TestFsEquivalence:
    @given(ops=st.lists(_OPS, max_size=25))
    @settings(max_examples=40, deadline=None)
    def test_localfs_matches_model(self, ops):
        rig = build_ext3_rig(n_blocks=1 << 14)
        _setup_dirs(rig)
        model = ModelFs()
        model.dirs |= set(_DIRS)
        _apply(model, _real_apply_factory(rig), ops)

    @given(ops=st.lists(_OPS, max_size=20))
    @settings(max_examples=25, deadline=None)
    def test_encfs_matches_model(self, ops):
        rig = build_encfs_rig(n_blocks=1 << 14)
        _setup_dirs(rig)
        model = ModelFs()
        model.dirs |= set(_DIRS)
        _apply(model, _real_apply_factory(rig), ops)

    @given(ops=st.lists(_OPS, max_size=15))
    @settings(max_examples=15, deadline=None)
    def test_keypad_matches_model(self, ops):
        config = KeypadConfig(texp=1000.0, prefetch="none", ibe_enabled=False)
        rig = build_keypad_rig(network=LAN, config=config, n_blocks=1 << 14)
        _setup_dirs(rig)
        model = ModelFs()
        model.dirs |= set(_DIRS)
        _apply(model, _real_apply_factory(rig), ops)

    @given(ops=st.lists(_OPS, max_size=15))
    @settings(max_examples=10, deadline=None)
    def test_keypad_with_ibe_matches_model(self, ops):
        config = KeypadConfig(texp=1000.0, prefetch="none", ibe_enabled=True)
        rig = build_keypad_rig(network=LAN, config=config, n_blocks=1 << 14)
        _setup_dirs(rig)
        model = ModelFs()
        model.dirs |= set(_DIRS)
        _apply(model, _real_apply_factory(rig), ops)


class TestCiphertextProperties:
    @given(data=st.binary(min_size=16, max_size=2000))
    @settings(max_examples=20, deadline=None)
    def test_plaintext_never_on_disk_encfs(self, data):
        rig = build_encfs_rig(n_blocks=1 << 14)

        def proc():
            yield from rig.fs.create("/f")
            yield from rig.fs.write("/f", 0, data)
            yield from rig.lower.cache.sync()

        rig.run(proc())
        raw = b"".join(rig.device.peek_raw(b) for b in rig.device.blocks_in_use())
        # No 16-byte window of the plaintext may appear on the device.
        for i in range(0, max(1, len(data) - 16), 16):
            window = data[i:i + 16]
            if window != bytes(len(window)):  # skip all-zero windows
                assert window not in raw

    @given(data=st.binary(min_size=16, max_size=1000))
    @settings(max_examples=12, deadline=None)
    def test_plaintext_never_on_disk_keypad(self, data):
        config = KeypadConfig(texp=1000.0, prefetch="none", ibe_enabled=False)
        rig = build_keypad_rig(network=LAN, config=config, n_blocks=1 << 14)

        def proc():
            yield from rig.fs.create("/f")
            yield from rig.fs.write("/f", 0, data)
            yield from rig.lower.cache.sync()

        rig.run(proc())
        raw = b"".join(rig.device.peek_raw(b) for b in rig.device.blocks_in_use())
        for i in range(0, max(1, len(data) - 16), 16):
            window = data[i:i + 16]
            if window != bytes(len(window)):
                assert window not in raw
