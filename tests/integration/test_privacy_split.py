"""The two-provider privacy split (§3.1).

"The key service sees only accesses to opaque IDs and keys, while the
metadata service learns the file system's structure, but not the
access patterns.  Thus, privacy-concerned users can avoid exposing
full audit information to any audit service by using different key
and metadata providers."
"""

from repro.core import KeypadConfig
from repro.harness import build_keypad_rig
from repro.net import LAN


def _exercised_rig():
    config = KeypadConfig(texp=5.0, prefetch="dir:3", ibe_enabled=True)
    rig = build_keypad_rig(network=LAN, config=config)

    def usage():
        yield from rig.fs.mkdir("/home")
        yield from rig.fs.mkdir("/home/secret_project")
        yield from rig.fs.create("/home/secret_project/merger_plan.doc")
        yield from rig.fs.write("/home/secret_project/merger_plan.doc", 0,
                                b"acquire")
        yield rig.sim.timeout(30.0)
        yield from rig.fs.read("/home/secret_project/merger_plan.doc", 0, 4)
        yield from rig.fs.rename(
            "/home/secret_project/merger_plan.doc",
            "/home/secret_project/q3_plan.doc",
        )
        yield rig.sim.timeout(30.0)

    rig.run(usage())
    return rig


class TestPrivacySplit:
    def test_key_service_never_sees_names(self):
        rig = _exercised_rig()
        sensitive = ("merger", "secret_project", "q3_plan", "home")
        for entry in rig.key_service.access_log:
            blob = repr(entry.fields) + entry.kind
            for word in sensitive:
                assert word not in blob, (
                    f"key service learned a filename: {word!r} in {blob}"
                )

    def test_metadata_service_never_sees_accesses(self):
        rig = _exercised_rig()
        # Metadata log records registrations (create/rename/dirs) only;
        # the read at t≈30 left no trace here.
        kinds = {e.kind for e in rig.metadata_service.metadata_log}
        assert kinds <= {"file", "dir", "xattr"}
        # And the number of metadata events is independent of how often
        # the file was read.
        n_before = len(rig.metadata_service.metadata_log)

        def more_reads():
            for _ in range(10):
                yield rig.sim.timeout(20.0)
                yield from rig.fs.read("/home/secret_project/q3_plan.doc", 0, 4)

        rig.run(more_reads())
        assert len(rig.metadata_service.metadata_log) == n_before

    def test_key_service_ids_are_opaque_random(self):
        """Audit IDs carry no structure an observer could exploit."""
        rig = _exercised_rig()
        ids = [
            e.fields["audit_id"] for e in rig.key_service.access_log
            if "audit_id" in e.fields
        ]
        assert ids
        for audit_id in ids:
            assert len(audit_id) == 24  # 192-bit random
        # IDs of sibling files share no common prefix (no locality leak).
        distinct = set(ids)
        if len(distinct) >= 2:
            a, b = sorted(distinct)[:2]
            assert a[:4] != b[:4]

    def test_only_collusion_reveals_full_picture(self):
        """Joining both logs (what the device owner does at forensics
        time) IS the full audit — neither log alone suffices."""
        from repro.forensics import AuditTool

        rig = _exercised_rig()
        tool = AuditTool(rig.key_service, rig.metadata_service)
        report = tool.report(t_loss=0.0, texp=5.0)
        # The joined view has both the access times AND the paths.
        assert any(
            r.path and "q3_plan" in r.path and r.timestamp >= 0
            for r in report.records
        )
