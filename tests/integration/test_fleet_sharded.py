"""Sharded fleet runs are observably identical to single-process runs.

``run_fleet(fleet_shards=N)`` partitions the device population across
forked worker processes that advance in conservative lockstep with the
parent's server shard.  The contract is *byte identity*: the summary
and every per-device stat must match the unsharded run exactly — same
floats, same ordering — at any shard count.  These tests hold that
contract on a small fleet with a live control plane (a Texp change and
a mid-run revocation), the same moving parts the big arms exercise.

The fast wire mode the shard transport relies on is separately pinned
to the full codec path: a run with ``_WIRE_FULL`` forced on (channels
really marshal, MAC and seal every message) must produce the same
tables as the default fast mode.
"""

import pytest

from repro.net import LAN
from repro.workloads import fleet_shard
from repro.workloads.fleet import ControlEvent, run_fleet

_CONTROL = [
    ControlEvent(at=1.0, verb="set_texp", params={"texp": 60}),
    ControlEvent(at=2.0, verb="revoke", params={"device_id": "dev-00003"}),
]

_sharding = pytest.mark.skipif(
    not fleet_shard.available(LAN),
    reason="fork start method unavailable",
)


def _run(n_shards: int) -> tuple:
    result = run_fleet(
        devices=60,
        duration=4.0,
        seed=b"shard-ident",
        scanner_fraction=0.1,
        frontend={"policy": "drr"},
        control=list(_CONTROL),
        fleet_shards=n_shards,
    )
    return result.summary(), [vars(s) for s in result.stats]


@_sharding
@pytest.mark.parametrize("n_shards", [2, 4])
def test_sharded_fleet_matches_unsharded(n_shards):
    assert _run(n_shards) == _run(1)


@_sharding
def test_env_var_selects_shards(monkeypatch):
    baseline = _run(1)
    monkeypatch.setenv("KEYPAD_FLEET_SHARDS", "2")
    assert _run(None) == baseline


def test_replicas_fall_back_to_single_process():
    # Replicated services route per-call; the shard transport only
    # understands one server shard, so this must silently run inline.
    result = run_fleet(
        devices=20, duration=2.0, seed=b"shard-repl",
        replicas=2, threshold=1, fleet_shards=4,
    )
    assert result.summary()["requested"] > 0


def test_fast_wire_matches_full_codec(monkeypatch):
    fast = _run(1)
    monkeypatch.setattr("repro.net.rpc._WIRE_FULL", True)
    assert _run(1) == fast
