"""Workload-generator tests: op-count shapes match the paper's anchors."""

import pytest

from repro.attack import run_scenario
from repro.core import KeypadConfig
from repro.forensics import AuditTool
from repro.harness import build_ext3_rig, build_keypad_rig
from repro.net import LAN
from repro.workloads import (
    ApacheCompileWorkload,
    CopyPhotoAlbumWorkload,
    FindInHierarchyWorkload,
    OFFICE_TASKS,
    UsageTraceWorkload,
    average_over_windows,
    prepare_office_environment,
    task_by_name,
)


class TestApacheWorkload:
    def test_full_scale_op_counts_match_paper(self):
        """Paper: 75,744 reads+writes; ~1000 metadata ops; 486 distinct
        protected files fetched at Texp=100 s without prefetching."""
        rig = build_ext3_rig()
        w = ApacheCompileWorkload(scale=1.0)
        rig.run(w.prepare(rig.fs))
        counter = rig.run(w.run(rig.fs))
        assert 70_000 <= counter.content_ops <= 80_000
        assert 900 <= counter.metadata_ops <= 1_200

    def test_distinct_file_population(self):
        w = ApacheCompileWorkload(scale=1.0)
        # sources + headers = the 486 key fetches the paper reports.
        assert w.n_src_dirs * w.sources_per_dir + w.n_headers == 486

    def test_scaled_run_shrinks(self):
        rig = build_ext3_rig()
        w = ApacheCompileWorkload(scale=0.1)
        rig.run(w.prepare(rig.fs))
        counter = rig.run(w.run(rig.fs))
        assert counter.content_ops < 10_000

    def test_deterministic(self):
        def once():
            rig = build_ext3_rig()
            w = ApacheCompileWorkload(scale=0.05)
            rig.run(w.prepare(rig.fs))
            rig.run(w.run(rig.fs))
            return (w.counter.as_dict(), rig.sim.now)

        assert once() == once()

    def test_cpu_charge_only_with_sim(self):
        rig = build_ext3_rig()
        w = ApacheCompileWorkload(scale=0.05)
        rig.run(w.prepare(rig.fs))
        t0 = rig.sim.now
        rig.run(w.run(rig.fs, rig.sim))
        with_cpu = rig.sim.now - t0

        rig2 = build_ext3_rig()
        w2 = ApacheCompileWorkload(scale=0.05)
        rig2.run(w2.prepare(rig2.fs))
        t0 = rig2.sim.now
        rig2.run(w2.run(rig2.fs))
        without_cpu = rig2.sim.now - t0
        assert with_cpu > without_cpu * 2


class TestOfficeWorkloads:
    @pytest.fixture(scope="class")
    def office_rig(self):
        config = KeypadConfig(texp=100.0, prefetch="dir:3", ibe_enabled=False)
        rig = build_keypad_rig(network=LAN, config=config)
        rig.run(prepare_office_environment(rig.fs))
        return rig

    def test_all_tasks_run(self, office_rig):
        rig = office_rig
        for task in OFFICE_TASKS:
            counter = rig.run(task.run(rig.fs, rig.sim))
            assert counter.total >= 0  # completed without error

    def test_save_as_is_metadata_heavy(self, office_rig):
        """Paper: OO save = 11 FS ops, 7 of them metadata."""
        rig = office_rig
        task = task_by_name("OpenOffice", "Save as")
        counter = rig.run(task.run(rig.fs, rig.sim))
        assert counter.metadata_ops + counter.unlinks >= 5
        assert counter.content_ops >= 2

    def test_launch_tasks_read_many_files(self, office_rig):
        rig = office_rig
        counter = rig.run(task_by_name("OpenOffice", "Launch").run(rig.fs, rig.sim))
        assert counter.reads == 45  # 3 dirs x 15 mapped files

    def test_task_lookup_unknown(self):
        with pytest.raises(KeyError):
            task_by_name("Emacs", "Launch")


class TestScanWorkloads:
    def test_find_in_hierarchy_ops(self):
        rig = build_ext3_rig()
        w = FindInHierarchyWorkload()
        rig.run(w.prepare(rig.fs))
        counter = rig.run(w.run(rig.fs))
        # 95 files x 2 chunks = 190 reads (the paper's ~57 s / 0.3 s RTT
        # unoptimized cost over 3G).
        assert counter.reads == 190

    def test_copy_album_ops(self):
        rig = build_ext3_rig()
        w = CopyPhotoAlbumWorkload()
        rig.run(w.prepare(rig.fs))
        counter = rig.run(w.run(rig.fs))
        assert counter.creates == 35
        assert counter.reads == 35 * 4
        assert counter.writes == 35 * 4

    def test_copy_album_idempotent(self):
        rig = build_ext3_rig()
        w = CopyPhotoAlbumWorkload()
        rig.run(w.prepare(rig.fs))
        rig.run(w.run(rig.fs))
        counter = rig.run(w.run(rig.fs))  # second copy overwrites
        assert counter.unlinks == 35


class TestUsageTrace:
    def test_trace_runs_and_sessions_recorded(self):
        config = KeypadConfig(texp=100.0, prefetch="dir:3", ibe_enabled=False)
        rig = build_keypad_rig(network=LAN, config=config)
        w = UsageTraceWorkload(days=1.0, seed=5)
        rig.run(w.prepare(rig.fs))
        counter = rig.run(w.run(rig.fs, rig.sim))
        assert counter.total > 50
        assert len(w.sessions) >= 2
        for start, end in w.sessions:
            assert end > start

    def test_average_over_windows(self):
        samples = [(0.0, 0), (10.0, 5), (20.0, 0)]
        # Value is 5 during [10, 20).
        assert average_over_windows(samples, [(10.0, 20.0)]) == pytest.approx(5.0)
        assert average_over_windows(samples, [(0.0, 20.0)]) == pytest.approx(2.5)
        assert average_over_windows(samples, [(15.0, 25.0)]) == pytest.approx(2.5)
        assert average_over_windows(samples, []) == 0.0


class TestThiefScenarioRatios:
    """§5.2: FP-to-accessed ratios for the three thief scenarios."""

    def _run(self, scenario):
        config = KeypadConfig(texp=100.0, prefetch="dir:3", ibe_enabled=False)
        rig = build_keypad_rig(network=LAN, config=config)
        rig.run(prepare_office_environment(rig.fs))

        def idle():
            yield rig.sim.timeout(600.0)

        rig.run(idle())
        rig.fs.key_cache.evict_all()
        rig.fs.prefetch_policy.reset()
        t_loss = rig.sim.now
        result = rig.run(run_scenario(rig.fs, scenario))
        tool = AuditTool(rig.key_service, rig.metadata_service)
        report = tool.report(t_loss=t_loss, texp=config.texp)
        fp, total = result.fp_ratio(report.compromised_ids)
        return fp, total, result, report

    def test_thunderbird_scenario(self):
        fp, total, _result, _report = self._run("thunderbird")
        # Paper: 3:30.  Shape: high precision, a few prefetch FPs.
        assert 0 < fp <= 6
        assert 25 <= total <= 50
        assert fp / total < 0.2

    def test_document_editor_scenario(self):
        fp, total, _result, _report = self._run("document-editor")
        # Paper: 6:67.
        assert 3 <= fp <= 10
        assert 55 <= total <= 75
        assert fp / total < 0.2

    def test_firefox_profile_scenario(self):
        fp, total, _result, _report = self._run("firefox-profile")
        # Paper: 0:12 — reading every profile file gives zero FPs.
        assert fp == 0
        assert total == 12

    def test_firefox_cache_bad_case_localized(self):
        fp, total, result, report = self._run("firefox-cache")
        # Many FPs, but every false positive is in the cache directory.
        assert fp > 10
        paths = report.compromised_paths()
        fp_ids = report.compromised_ids - result.accessed_ids
        for audit_id in fp_ids:
            assert paths[audit_id].startswith("/home/user/.mozilla/cache/")

    def test_zero_false_negatives_all_scenarios(self):
        from repro.forensics import analyze_fidelity

        for scenario in ("thunderbird", "document-editor", "firefox-profile",
                         "firefox-cache"):
            fp, total, result, report = self._run(scenario)
            analysis = analyze_fidelity(report, result.accessed_ids)
            assert analysis.zero_false_negatives, scenario
