"""Tests for the beyond-prototype extensions:

* application-launch key-profile prefetching (§5.1.2 suggestion),
* asynchronous (IBE-mode) directory registration (§4 "should be
  possible to add"),
* xattr metadata tracking (§4 setfattr remark),
* raw-disk offline attack via the fsck parser (true custom tooling).
"""

import pytest

from repro.core import KeypadConfig
from repro.forensics import AuditTool
from repro.harness import build_keypad_rig
from repro.net import LAN, THREE_G
from repro.workloads import prepare_office_environment, task_by_name


class TestLaunchProfilePrefetch:
    def _rig(self):
        config = KeypadConfig(texp=100.0, prefetch="none", ibe_enabled=False)
        rig = build_keypad_rig(network=THREE_G, config=config)
        rig.run(prepare_office_environment(rig.fs))
        return rig

    def _cool(self, rig):
        def cool():
            yield rig.sim.timeout(500.0)

        rig.run(cool())
        rig.fs.key_cache.evict_all()

    def test_profiled_launch_is_faster(self):
        rig = self._rig()
        task = task_by_name("OpenOffice", "Launch")
        self._cool(rig)

        # First (cold, profiled) launch: record the working set.
        rig.fs.begin_launch_profile("openoffice")
        start = rig.sim.now
        rig.run(task.run(rig.fs, rig.sim))
        unprofiled_time = rig.sim.now - start
        profile = rig.fs.end_launch_profile()
        assert len(profile) == 45  # 3 dirs x 15 mapped files

        # Later launch: prefetch the profile, then launch.
        self._cool(rig)
        start = rig.sim.now

        def profiled_launch():
            fetched = yield from rig.fs.prefetch_launch_profile("openoffice")
            assert fetched == 45
            yield from task.run(rig.fs, rig.sim)

        rig.run(profiled_launch())
        profiled_time = rig.sim.now - start
        # One batched request replaces 45 sequential blocking fetches.
        assert profiled_time < unprofiled_time / 2

    def test_profile_prefetch_is_audited(self):
        rig = self._rig()
        task = task_by_name("OpenOffice", "Launch")
        rig.fs.begin_launch_profile("oo")
        rig.run(task.run(rig.fs, rig.sim))
        rig.fs.end_launch_profile()
        self._cool(rig)
        t_loss = rig.sim.now

        def prefetch():
            yield from rig.fs.prefetch_launch_profile("oo")

        rig.run(prefetch())
        report = AuditTool(rig.key_service, rig.metadata_service).report(
            t_loss=t_loss, texp=100.0
        )
        # Profile prefetches show up as compromised (conservative).
        assert len(report.compromised_ids) == 45

    def test_unknown_app_prefetches_nothing(self):
        rig = self._rig()

        def prefetch():
            fetched = yield from rig.fs.prefetch_launch_profile("emacs")
            return fetched

        assert rig.run(prefetch()) == 0

    def test_nested_recording_rejected(self):
        rig = self._rig()
        rig.fs.begin_launch_profile("a")
        with pytest.raises(ValueError):
            rig.fs.begin_launch_profile("b")
        rig.fs.end_launch_profile()
        with pytest.raises(ValueError):
            rig.fs.end_launch_profile()


class TestAsyncDirectoryRegistration:
    def test_mkdir_does_not_block_on_3g(self):
        blocking = KeypadConfig(ibe_enabled=True, ibe_for_directories=False)
        async_cfg = KeypadConfig(ibe_enabled=True, ibe_for_directories=True)

        def mkdir_time(config):
            rig = build_keypad_rig(network=THREE_G, config=config)

            def proc():
                t0 = rig.sim.now
                yield from rig.fs.mkdir("/projects")
                return rig.sim.now - t0

            return rig.run(proc())

        assert mkdir_time(async_cfg) < 0.05
        assert mkdir_time(blocking) > 0.29

    def test_file_unlock_waits_for_dir_ack(self):
        """A file created in a not-yet-registered directory must not
        unlock before the directory's metadata is durable."""
        config = KeypadConfig(ibe_enabled=True, ibe_for_directories=True,
                              registration_retry_delay=1.0)
        rig = build_keypad_rig(network=THREE_G, config=config)

        def proc():
            yield from rig.fs.mkdir("/newdir")
            yield from rig.fs.create("/newdir/file.txt")
            yield rig.sim.timeout(30.0)  # everything settles
            header = rig.fs._header_cache.get("/newdir/file.txt")
            return header.locked

        assert rig.run(proc()) is False
        # And the path resolves fully on the service side.
        def get_id():
            audit_id = yield from rig.fs.audit_id_of("/newdir/file.txt")
            return audit_id

        audit_id = rig.run(get_id())
        assert rig.metadata_service.path_of(audit_id) == "/newdir/file.txt"

    def test_path_never_partially_unknown(self):
        """Even mid-flight, the metadata service never records a file
        under an unknown directory (ordering guarantee)."""
        config = KeypadConfig(ibe_enabled=True, ibe_for_directories=True,
                              registration_retry_delay=0.5)
        rig = build_keypad_rig(network=THREE_G, config=config)

        def proc():
            yield from rig.fs.mkdir("/d")
            yield from rig.fs.create("/d/f")
            yield rig.sim.timeout(60.0)

        rig.run(proc())
        for entry in rig.metadata_service.metadata_log.entries(kind="file"):
            path = rig.metadata_service.path_of(entry.fields["audit_id"])
            assert "<unknown>" not in path


class TestXattrTracking:
    def test_xattr_registered_with_service(self):
        config = KeypadConfig(ibe_enabled=False, track_xattrs=True)
        rig = build_keypad_rig(network=LAN, config=config)

        def proc():
            yield from rig.fs.create("/f")
            yield from rig.fs.set_xattr("/f", "user.classification", b"secret")
            yield from rig.fs.set_xattr("/f", "user.classification", b"top-secret")
            audit_id = yield from rig.fs.audit_id_of("/f")
            return audit_id

        audit_id = rig.run(proc())
        assert rig.metadata_service.xattrs_of(audit_id) == {
            "user.classification": b"top-secret"
        }
        history = rig.metadata_service.metadata_log.entries(kind="xattr")
        assert len(history) == 2  # append-only

    def test_untracked_by_default(self):
        rig = build_keypad_rig(network=LAN, config=KeypadConfig(ibe_enabled=False))

        def proc():
            yield from rig.fs.create("/f")
            yield from rig.fs.set_xattr("/f", "user.x", b"v")
            audit_id = yield from rig.fs.audit_id_of("/f")
            return audit_id

        audit_id = rig.run(proc())
        assert rig.metadata_service.xattrs_of(audit_id) == {}

    def test_unprotected_files_not_registered(self):
        config = KeypadConfig(ibe_enabled=False, track_xattrs=True,
                              protected_prefixes=("/home",))
        rig = build_keypad_rig(network=LAN, config=config)

        def proc():
            yield from rig.fs.mkdir("/etc")
            yield from rig.fs.create("/etc/cfg")
            yield from rig.fs.set_xattr("/etc/cfg", "user.x", b"v")

        rig.run(proc())
        assert not rig.metadata_service.metadata_log.entries(kind="xattr")


class TestRawDiskAttack:
    def test_thief_parses_synced_disk_but_reads_nothing(self):
        from repro.storage.fsck import parse_raw_disk

        config = KeypadConfig(texp=5.0, prefetch="none", ibe_enabled=False)
        rig = build_keypad_rig(network=LAN, config=config)

        def proc():
            yield from rig.fs.mkdir("/home")
            yield from rig.fs.create("/home/secret.txt")
            yield from rig.fs.write("/home/secret.txt", 0, b"cleartext secret")
            yield from rig.lower.sync()
            yield rig.sim.timeout(60.0)

        rig.run(proc())
        # The thief dd's the drive and parses it with his own tools.
        image = parse_raw_disk(rig.device.snapshot(), block_size=4096)
        files = image.walk_files()
        assert len(files) == 1
        content = image.read_file(files[0])
        assert b"cleartext secret" not in content  # ciphertext only
        # Even the Keypad header yields nothing without the volume key.
        assert b"KPAD" in content  # header magic is plaintext by design
