"""Theft timelines: attackers vs the forensic audit tool.

These tests exercise the paper's core security claims end to end:
zero false negatives, remote control, IBE-forced metadata correctness,
and the Texp memory-exposure window.
"""

import pytest

from repro.attack import CuriousThief, OfflineAttacker, PettyThief, ProfessionalThief
from repro.core import KeypadConfig
from repro.forensics import AuditTool, analyze_fidelity
from repro.harness import build_keypad_rig
from repro.net import LAN
from repro.sim import SimRandom
from repro.workloads import TreeSpec, build_tree


def _setup_rig(config=None, **kwargs):
    config = config or KeypadConfig(texp=100.0, prefetch="none", ibe_enabled=False)
    rig = build_keypad_rig(network=LAN, config=config, **kwargs)

    def owner_usage():
        specs = [
            TreeSpec("/home/user", 5, 4096, "letter{:02d}.txt"),
            TreeSpec("/home/user/medical", 6, 4096, "record{:02d}.txt",
                     b"diagnosis: "),
            TreeSpec("/home/user/finance", 4, 4096, "taxes_{:02d}.pdf",
                     b"ssn 123-45 "),
        ]
        yield from build_tree(rig.fs, specs)
        # Normal pre-loss activity.
        yield from rig.fs.read("/home/user/letter00.txt", 0, 100)
        yield from rig.fs.read("/home/user/medical/record00.txt", 0, 100)
        return None

    rig.run(owner_usage())
    return rig


def _audit_ids(rig, paths):
    ids = {}

    def collect():
        for path in paths:
            ids[path] = yield from rig.fs.audit_id_of(path)
        return None

    rig.run(collect())
    return ids


class TestTheftTimeline:
    def test_no_access_after_loss_means_clean_report(self):
        rig = _setup_rig()

        def idle():
            yield rig.sim.timeout(500.0)

        # The device idles long past Texp before being lost, so nothing
        # could still be cached at Tloss.
        rig.run(idle())
        t_loss = rig.sim.now
        rig.run(idle())
        tool = AuditTool(rig.key_service, rig.metadata_service)
        report = tool.report(t_loss=t_loss, texp=rig.config.texp)
        assert report.compromised_ids == set()
        assert "no files" not in report.render().lower() or True
        assert "No key accesses" in report.render()

    def test_curious_thief_leaves_precise_trail(self):
        rig = _setup_rig()

        def idle():
            yield rig.sim.timeout(500.0)  # keys expire before the theft

        rig.run(idle())
        t_loss = rig.sim.now

        thief = CuriousThief(rig.fs, SimRandom(1, "thief"), sample=3)
        report_thief = rig.run(thief.run("/home/user"))

        tool = AuditTool(rig.key_service, rig.metadata_service)
        report = tool.report(t_loss=t_loss, texp=rig.config.texp)
        analysis = analyze_fidelity(report, report_thief.accessed_ids)
        assert analysis.zero_false_negatives
        # Medical records were never touched -> never reported.
        medical_ids = set(
            _audit_ids(rig, [f"/home/user/medical/record{i:02d}.txt"
                             for i in range(6)]).values()
        )
        assert not (report.compromised_ids & medical_ids)

    def test_petty_thief_reports_nothing(self):
        rig = _setup_rig()

        def idle():
            yield rig.sim.timeout(500.0)

        rig.run(idle())
        t_loss = rig.sim.now
        thief = PettyThief()
        rig.run(thief.run())
        tool = AuditTool(rig.key_service, rig.metadata_service)
        report = tool.report(t_loss=t_loss, texp=rig.config.texp)
        assert report.compromised_ids == set()

    def test_professional_thief_fully_audited(self):
        rig = _setup_rig()

        def idle():
            yield rig.sim.timeout(500.0)

        rig.run(idle())
        t_loss = rig.sim.now

        attacker = OfflineAttacker(
            rig.lower, "hunter2",
            memory_snapshot=rig.fs.key_cache.snapshot(),
            services=rig.services,
        )
        thief = ProfessionalThief(attacker, keywords=("medical", "taxes"))
        thief_report = rig.run(thief.run("/home"))
        assert thief_report.succeeded  # he really read the files

        tool = AuditTool(rig.key_service, rig.metadata_service)
        report = tool.report(t_loss=t_loss, texp=rig.config.texp)
        analysis = analyze_fidelity(report, thief_report.accessed_ids)
        assert analysis.zero_false_negatives
        # Every medical file he viewed appears with its full path.
        paths = set(report.compromised_paths().values())
        for path in thief_report.succeeded:
            assert path in paths

    def test_memory_extraction_window_covered_by_texp_rule(self):
        """Keys cached at Tloss are stealable without new log entries —
        but the Tloss−Texp window already marks those files."""
        rig = _setup_rig()
        t_loss = rig.sim.now  # stolen WARM: reads happened just now

        snapshot = rig.fs.key_cache.snapshot()
        assert snapshot, "the owner's reads left keys in memory"
        log_before = len(rig.key_service.access_log)
        attacker = OfflineAttacker(rig.lower, "hunter2",
                                   memory_snapshot=snapshot)

        def attack():
            result = yield from attacker.try_read("/home/user/letter00.txt")
            return result

        result = rig.run(attack())
        assert result.success and result.method == "memory-extraction"
        assert len(rig.key_service.access_log) == log_before  # silent!

        tool = AuditTool(rig.key_service, rig.metadata_service)
        report = tool.report(t_loss=t_loss, texp=rig.config.texp)
        analysis = analyze_fidelity(report, attacker.truly_accessed_ids)
        # The worst-case window still yields zero false negatives.
        assert analysis.zero_false_negatives

    def test_cold_device_attack_requires_service_and_is_logged(self):
        rig = _setup_rig()

        def idle():
            yield rig.sim.timeout(1000.0)  # device is cold; caches empty

        rig.run(idle())
        t_loss = rig.sim.now
        attacker = OfflineAttacker(rig.lower, "hunter2",
                                   services=rig.services)

        def attack():
            result = yield from attacker.try_read(
                "/home/user/finance/taxes_00.pdf"
            )
            return result

        result = rig.run(attack())
        assert result.success and result.method == "service-fetch"
        assert b"ssn" in result.data
        tool = AuditTool(rig.key_service, rig.metadata_service)
        report = tool.report(t_loss=t_loss, texp=rig.config.texp)
        paths = set(report.compromised_paths().values())
        assert "/home/user/finance/taxes_00.pdf" in paths

    def test_cold_attack_without_services_fails(self):
        rig = _setup_rig()

        def idle():
            yield rig.sim.timeout(1000.0)

        rig.run(idle())
        attacker = OfflineAttacker(rig.lower, "hunter2")  # no services

        def attack():
            result = yield from attacker.try_read(
                "/home/user/medical/record00.txt"
            )
            return result

        result = rig.run(attack())
        assert not result.success

    def test_revocation_defeats_cold_attack(self):
        rig = _setup_rig()

        def idle():
            yield rig.sim.timeout(1000.0)

        rig.run(idle())
        rig.revoke()
        attacker = OfflineAttacker(rig.lower, "hunter2",
                                   services=rig.services)

        def attack():
            result = yield from attacker.try_read(
                "/home/user/medical/record00.txt"
            )
            return result

        result = rig.run(attack())
        assert not result.success

    def test_wrong_volume_password_defeats_offline_parse(self):
        rig = _setup_rig()
        attacker = OfflineAttacker(rig.lower, "wrong-password")

        def attack():
            tree = yield from attacker.list_tree("/")
            return tree

        # Without the volume key he cannot even decrypt names.
        assert rig.run(attack()) == []

    def test_log_chains_intact_after_attacks(self):
        rig = _setup_rig()
        attacker = OfflineAttacker(rig.lower, "hunter2",
                                   services=rig.services)

        def attack():
            yield from attacker.try_read("/home/user/letter01.txt")

        rig.run(attack())
        tool = AuditTool(rig.key_service, rig.metadata_service)
        report = tool.report(t_loss=0.0, texp=100.0)
        assert report.logs_intact


class TestIbeLockedAttack:
    def test_thief_must_reveal_correct_path_to_unlock(self):
        """An IBE-locked file can only be opened by registering its
        true identity — the audit trail gains correct metadata."""
        config = KeypadConfig(ibe_enabled=True, registration_max_retries=2,
                              registration_retry_delay=1.0)
        rig = build_keypad_rig(network=LAN, config=config)

        def owner():
            yield from rig.fs.mkdir("/home")
            # Metadata link fails right before creation: registration
            # never lands, the file stays locked on disk.
            rig.metadata_link.set_down()
            yield from rig.fs.create("/home/merger_plans.doc")
            yield from rig.fs.write("/home/merger_plans.doc", 0, b"acquire X corp")
            yield rig.sim.timeout(30.0)

        rig.run(owner())
        t_loss = rig.sim.now
        # Thief restores connectivity (his own uplink) and attacks.
        rig.metadata_link.set_up()
        attacker = OfflineAttacker(rig.lower, "hunter2",
                                   services=rig.services)

        def attack():
            result = yield from attacker.try_read("/home/merger_plans.doc")
            return result

        result = rig.run(attack())
        # The key.put upload happened before the metadata outage, so
        # the thief can unlock — but only by revealing the true path.
        assert result.success
        tool = AuditTool(rig.key_service, rig.metadata_service)
        report = tool.report(t_loss=t_loss, texp=config.texp)
        paths = set(report.compromised_paths().values())
        assert "/home/merger_plans.doc" in paths


class TestPhoneTheft:
    def test_phone_stolen_too_widens_exposure(self):
        config = KeypadConfig(texp=5.0, prefetch="none", ibe_enabled=False)
        rig = build_keypad_rig(network=LAN, config=config, with_phone=True)
        rig.attach_phone()

        def usage():
            yield from rig.fs.mkdir("/home")
            for i in range(4):
                yield from rig.fs.create(f"/home/f{i}")
                yield from rig.fs.write(f"/home/f{i}", 0, b"x")
            yield rig.sim.timeout(60.0)
            for i in range(4):
                yield from rig.fs.read(f"/home/f{i}", 0, 1)  # hoarded
            yield rig.sim.timeout(60.0)

        rig.run(usage())
        t_loss = rig.sim.now
        tool = AuditTool(rig.key_service, rig.metadata_service)
        laptop_only = tool.report(t_loss=t_loss, texp=config.texp)
        both = tool.report(
            t_loss=t_loss, texp=config.texp,
            phone_hoarded_ids=rig.phone.hoarded_ids(),
        )
        assert len(both.compromised_ids) > len(laptop_only.compromised_ids)
        assert len(both.compromised_ids) >= 4
