"""Integration tests: the full Keypad stack over simulated networks."""

import pytest

from repro.core import KeypadConfig
from repro.errors import (
    LockedFileError,
    NetworkUnavailableError,
    RevokedError,
)
from repro.harness import build_keypad_rig
from repro.net import LAN, THREE_G


def _rig(**kwargs):
    kwargs.setdefault("network", LAN)
    return build_keypad_rig(**kwargs)


class TestBasicOperation:
    def test_create_write_read(self):
        rig = _rig()

        def proc():
            yield from rig.fs.mkdir("/home")
            yield from rig.fs.create("/home/doc.txt")
            yield from rig.fs.write("/home/doc.txt", 0, b"sensitive content")
            data = yield from rig.fs.read("/home/doc.txt", 0, 100)
            return data

        assert rig.run(proc()) == b"sensitive content"

    def test_every_cold_access_is_logged(self):
        config = KeypadConfig(texp=100.0, prefetch="none", ibe_enabled=False)
        rig = _rig(config=config)

        def proc():
            yield from rig.fs.create("/f")
            yield from rig.fs.write("/f", 0, b"x")
            audit_id = yield from rig.fs.audit_id_of("/f")
            return audit_id

        audit_id = rig.run(proc())
        entries = [
            e for e in rig.key_service.access_log
            if e.fields.get("audit_id") == audit_id
        ]
        assert entries, "file creation must produce a key-service record"

    def test_cold_read_after_expiry_logs_fetch(self):
        config = KeypadConfig(texp=10.0, prefetch="none", ibe_enabled=False)
        rig = _rig(config=config)

        def proc():
            yield from rig.fs.create("/f")
            yield from rig.fs.write("/f", 0, b"x")
            yield rig.sim.timeout(60.0)  # key expired (unused)
            yield from rig.fs.read("/f", 0, 1)
            audit_id = yield from rig.fs.audit_id_of("/f")
            return audit_id

        audit_id = rig.run(proc())
        fetches = [
            e for e in rig.key_service.access_log
            if e.kind == "fetch" and e.fields.get("audit_id") == audit_id
        ]
        assert len(fetches) == 1

    def test_warm_cache_avoids_service(self):
        config = KeypadConfig(texp=100.0, prefetch="none", ibe_enabled=False)
        rig = _rig(config=config)

        def proc():
            yield from rig.fs.create("/f")
            yield from rig.fs.write("/f", 0, b"x" * 100)
            before = len(rig.key_service.access_log)
            for offset in range(0, 100, 10):
                yield from rig.fs.read("/f", offset, 10)
            after = len(rig.key_service.access_log)
            return after - before

        assert rig.run(proc()) == 0

    def test_metadata_path_reconstruction(self):
        config = KeypadConfig(ibe_enabled=False)
        rig = _rig(config=config)

        def proc():
            yield from rig.fs.mkdir("/home")
            yield from rig.fs.mkdir("/home/bob")
            yield from rig.fs.create("/home/bob/taxes.pdf")
            audit_id = yield from rig.fs.audit_id_of("/home/bob/taxes.pdf")
            return audit_id

        audit_id = rig.run(proc())
        assert rig.metadata_service.path_of(audit_id) == "/home/bob/taxes.pdf"

    def test_rename_updates_metadata(self):
        config = KeypadConfig(ibe_enabled=False)
        rig = _rig(config=config)

        def proc():
            yield from rig.fs.mkdir("/tmp")
            yield from rig.fs.mkdir("/home")
            yield from rig.fs.create("/tmp/irs_form.pdf")
            yield from rig.fs.write("/tmp/irs_form.pdf", 0, b"1040EZ")
            yield from rig.fs.rename("/tmp/irs_form.pdf", "/home/prepared_taxes_2011.pdf")
            data = yield from rig.fs.read_all("/home/prepared_taxes_2011.pdf")
            audit_id = yield from rig.fs.audit_id_of("/home/prepared_taxes_2011.pdf")
            return data, audit_id

        data, audit_id = rig.run(proc())
        assert data == b"1040EZ"
        assert rig.metadata_service.path_of(audit_id) == "/home/prepared_taxes_2011.pdf"
        history = rig.metadata_service.history_of(audit_id)
        assert len(history) == 2  # create + rename, append-only

    def test_directory_rename_updates_children_paths(self):
        config = KeypadConfig(ibe_enabled=False)
        rig = _rig(config=config)

        def proc():
            yield from rig.fs.mkdir("/projects")
            yield from rig.fs.mkdir("/projects/alpha")
            yield from rig.fs.create("/projects/alpha/plan.doc")
            audit_id = yield from rig.fs.audit_id_of("/projects/alpha/plan.doc")
            yield from rig.fs.rename("/projects/alpha", "/projects/omega")
            data_ok = yield from rig.fs.exists("/projects/omega/plan.doc")
            # The file is still accessible through the new path.
            yield from rig.fs.write("/projects/omega/plan.doc", 0, b"v2")
            return audit_id, data_ok

        audit_id, data_ok = rig.run(proc())
        assert data_ok
        assert rig.metadata_service.path_of(audit_id) == "/projects/omega/plan.doc"


class TestIbeFlow:
    def test_ibe_create_is_usable_immediately(self):
        config = KeypadConfig(ibe_enabled=True)
        rig = _rig(network=THREE_G, config=config)

        def proc():
            yield from rig.fs.create("/f")
            yield from rig.fs.write("/f", 0, b"written in the 1s window")
            data = yield from rig.fs.read_all("/f")
            return data

        assert rig.run(proc()) == b"written in the 1s window"

    def test_ibe_create_unlocks_in_background(self):
        config = KeypadConfig(ibe_enabled=True)
        rig = _rig(network=THREE_G, config=config)

        def proc():
            yield from rig.fs.create("/f")
            yield rig.sim.timeout(30.0)  # registration completes
            header = yield from rig.fs._header("/f")
            return header.locked

        assert rig.run(proc()) is False
        assert rig.fs.stats["ibe_locks"] == 1
        assert rig.fs.stats["ibe_unlocks"] == 1

    def test_ibe_rename_registers_correct_path(self):
        config = KeypadConfig(ibe_enabled=True)
        rig = _rig(network=THREE_G, config=config)

        def proc():
            yield from rig.fs.mkdir("/docs")
            yield from rig.fs.create("/f")
            yield rig.sim.timeout(10.0)
            yield from rig.fs.rename("/f", "/docs/renamed.txt")
            yield rig.sim.timeout(30.0)
            audit_id = yield from rig.fs.audit_id_of("/docs/renamed.txt")
            return audit_id

        audit_id = rig.run(proc())
        assert rig.metadata_service.path_of(audit_id) == "/docs/renamed.txt"

    def test_locked_file_unreadable_after_window_without_service(self):
        """Thief scenario: block metadata traffic right after a create;
        after the 1-second in-flight window the file must be locked."""
        config = KeypadConfig(ibe_enabled=True, registration_max_retries=3,
                              registration_retry_delay=1.0)
        rig = _rig(network=THREE_G, config=config)

        def proc():
            yield from rig.fs.create("/secret")
            yield from rig.fs.write("/secret", 0, b"top secret")
            # The thief severs connectivity before registration lands.
            rig.key_link.set_down()
            rig.metadata_link.set_down()
            yield rig.sim.timeout(30.0)  # in-flight window long gone
            yield from rig.fs.read("/secret", 0, 10)

        with pytest.raises((LockedFileError, NetworkUnavailableError)):
            rig.run(proc())

    def test_ibe_registration_retries_through_outage(self):
        config = KeypadConfig(ibe_enabled=True, registration_retry_delay=2.0)
        rig = _rig(network=THREE_G, config=config)

        def proc():
            rig.metadata_link.set_down()
            yield from rig.fs.create("/f")
            yield rig.sim.timeout(20.0)
            header1 = rig.fs._header_cache.get("/f")
            rig.metadata_link.set_up()
            rig.key_link.set_up() if not rig.key_link.available else None
            yield rig.sim.timeout(30.0)
            header2 = rig.fs._header_cache.get("/f")
            return header1.locked, header2.locked

        locked_during, locked_after = rig.run(proc())
        assert locked_during is True
        assert locked_after is False

    def test_crash_recovery_unlock_via_real_ibe(self):
        """After losing all client memory, a locked file is recovered
        through a real IBE extract+decrypt round with the service."""
        config = KeypadConfig(ibe_enabled=True, registration_max_retries=2,
                              registration_retry_delay=1.0)
        rig = _rig(network=LAN, config=config)

        def proc():
            # Create while disconnected so the file stays locked.
            rig.metadata_link.set_down()
            rig.key_link.set_down()
            yield from rig.fs.create("/f")
            yield from rig.fs.write("/f", 0, b"pre-crash data")
            yield rig.sim.timeout(60.0)  # registration gave up
            # Crash: all volatile state gone.
            rig.fs.key_cache.evict_all()
            rig.fs._header_cache.clear()
            rig.fs._pending_unlocks.clear()
            rig.metadata_link.set_up()
            rig.key_link.set_up()
            # But the remote key never reached the service -> the file
            # is permanently unreadable (and unreadable == not exposed).
            try:
                yield from rig.fs.read("/f", 0, 5)
                return "readable"
            except Exception as exc:
                return type(exc).__name__

        result = rig.run(proc())
        assert result in ("RpcError", "LockedFileError")

    def test_crash_recovery_after_key_upload(self):
        """If key.put landed but meta registration didn't, recovery
        works and forces correct metadata to be logged."""
        config = KeypadConfig(ibe_enabled=True, registration_max_retries=2,
                              registration_retry_delay=1.0)
        rig = _rig(network=LAN, config=config)

        def proc():
            yield from rig.fs.create("/f")  # key.put succeeds...
            yield from rig.fs.write("/f", 0, b"data")
            # ...but sever metadata before the register lands.
            rig.metadata_link.set_down()
            yield rig.sim.timeout(0.0005)

            yield rig.sim.timeout(60.0)
            rig.fs.key_cache.evict_all()
            rig.fs._header_cache.clear()
            rig.fs._pending_unlocks.clear()
            rig.metadata_link.set_up()
            data = yield from rig.fs.read("/f", 0, 4)
            audit_id = yield from rig.fs.audit_id_of("/f")
            return data, audit_id

        data, audit_id = rig.run(proc())
        assert data == b"data"
        # Recovery forced a correct-path registration.
        assert rig.metadata_service.path_of(audit_id) == "/f"
        assert rig.fs.stats["blocking_unlocks"] >= 1


class TestPartialCoverage:
    def test_unprotected_files_skip_services(self):
        config = KeypadConfig(
            ibe_enabled=False, protected_prefixes=("/home", "/tmp")
        )
        rig = _rig(config=config)

        def proc():
            yield from rig.fs.mkdir("/usr")
            yield from rig.fs.create("/usr/libfoo.so")
            yield from rig.fs.write("/usr/libfoo.so", 0, b"ELF...")
            data = yield from rig.fs.read_all("/usr/libfoo.so")
            return data, len(rig.key_service.access_log)

        data, log_len = rig.run(proc())
        assert data == b"ELF..."
        assert log_len == 0  # no audit traffic for unprotected files

    def test_protected_files_tracked(self):
        config = KeypadConfig(
            ibe_enabled=False, protected_prefixes=("/home",)
        )
        rig = _rig(config=config)

        def proc():
            yield from rig.fs.mkdir("/home")
            yield from rig.fs.create("/home/medical.txt")
            return len(rig.key_service.access_log)

        assert rig.run(proc()) > 0

    def test_unprotected_content_still_encrypted(self):
        config = KeypadConfig(protected_prefixes=("/home",), ibe_enabled=False)
        rig = _rig(config=config)
        secret = b"locally encrypted but unaudited"

        def proc():
            yield from rig.fs.mkdir("/var")
            yield from rig.fs.create("/var/cache.bin")
            yield from rig.fs.write("/var/cache.bin", 0, secret)
            yield from rig.fs.lower.cache.sync()
            return None

        rig.run(proc())
        raw = b"".join(
            rig.device.peek_raw(b) for b in rig.device.blocks_in_use()
        )
        assert secret not in raw


class TestRemoteControl:
    def test_revoked_device_cannot_fetch(self):
        config = KeypadConfig(texp=5.0, prefetch="none", ibe_enabled=False)
        rig = _rig(config=config)

        def proc():
            yield from rig.fs.create("/f")
            yield from rig.fs.write("/f", 0, b"secret")
            yield rig.sim.timeout(30.0)  # cache expired
            rig.revoke()
            yield from rig.fs.read("/f", 0, 6)

        with pytest.raises(RevokedError):
            rig.run(proc())

    def test_revocation_logged(self):
        rig = _rig(config=KeypadConfig(ibe_enabled=False))
        rig.revoke()
        assert any(e.kind == "revoke" for e in rig.key_service.access_log)


class TestDisconnection:
    def test_disconnected_access_fails_without_phone(self):
        config = KeypadConfig(texp=5.0, prefetch="none", ibe_enabled=False)
        rig = _rig(config=config)

        def proc():
            yield from rig.fs.create("/f")
            yield from rig.fs.write("/f", 0, b"data")
            yield rig.sim.timeout(30.0)
            rig.key_link.set_down()
            yield from rig.fs.read("/f", 0, 4)

        with pytest.raises(NetworkUnavailableError):
            rig.run(proc())

    def test_hibernate_evicts_and_notifies(self):
        config = KeypadConfig(texp=1000.0, prefetch="none", ibe_enabled=False)
        rig = _rig(config=config)

        def proc():
            yield from rig.fs.create("/f")
            yield from rig.fs.write("/f", 0, b"data")
            assert len(rig.fs.key_cache) == 1
            yield from rig.fs.hibernate()
            return len(rig.fs.key_cache.snapshot())

        assert rig.run(proc()) == 0
        assert any(e.kind == "evict" for e in rig.key_service.access_log)


class TestPrefetching:
    def _populate(self, rig, n=8):
        def proc():
            yield from rig.fs.mkdir("/album")
            for i in range(n):
                yield from rig.fs.create(f"/album/photo{i:02d}.jpg")
                yield from rig.fs.write(f"/album/photo{i:02d}.jpg", 0, b"JPEG" * 16)
            return None

        rig.run(proc())

    def test_directory_prefetch_reduces_blocking_fetches(self):
        config = KeypadConfig(texp=100.0, prefetch="dir:3", ibe_enabled=False)
        rig = _rig(config=config)
        self._populate(rig)

        def scan():
            yield rig.sim.timeout(500.0)  # all keys expired
            for i in range(8):
                yield from rig.fs.read(f"/album/photo{i:02d}.jpg", 0, 4)
            return rig.fs.stats["blocking_key_fetches"]

        blocking_after = rig.run(scan())
        # Only the first 3 misses block; the rest are served by the
        # prefetched batch.
        assert blocking_after <= rig.fs.stats["prefetched_keys"] + 3
        assert rig.fs.stats["prefetch_batches"] >= 1

    def test_prefetch_creates_log_entries_false_positives(self):
        config = KeypadConfig(texp=100.0, prefetch="dir:1", ibe_enabled=False)
        rig = _rig(config=config)
        self._populate(rig, n=5)

        def scan():
            yield rig.sim.timeout(500.0)
            yield from rig.fs.read("/album/photo00.jpg", 0, 4)
            return None

        rig.run(scan())
        prefetch_entries = [
            e for e in rig.key_service.access_log if e.kind == "prefetch"
        ]
        assert len(prefetch_entries) == 4  # the 4 untouched siblings

    def test_no_prefetch_no_false_positives(self):
        config = KeypadConfig(texp=100.0, prefetch="none", ibe_enabled=False)
        rig = _rig(config=config)
        self._populate(rig, n=5)

        def scan():
            yield rig.sim.timeout(500.0)
            yield from rig.fs.read("/album/photo00.jpg", 0, 4)
            return None

        rig.run(scan())
        assert not any(e.kind == "prefetch" for e in rig.key_service.access_log)


class TestPairedDevice:
    def test_phone_serves_disconnected_reads(self):
        config = KeypadConfig(texp=5.0, prefetch="none", ibe_enabled=False)
        rig = _rig(config=config, with_phone=True)
        rig.attach_phone()

        def proc():
            yield from rig.fs.create("/f")
            yield from rig.fs.write("/f", 0, b"mobile data")
            yield rig.sim.timeout(30.0)  # laptop cache expired
            # Warm the phone hoard with one connected read.
            yield from rig.fs.read("/f", 0, 1)
            yield rig.sim.timeout(30.0)
            # Now fully disconnected from the services...
            rig.phone_key_uplink.set_down()
            rig.phone_metadata_uplink.set_down()
            data = yield from rig.fs.read("/f", 0, 11)
            return data

        assert rig.run(proc()) == b"mobile data"
        assert rig.phone.stats["hoard_hits"] >= 1

    def test_phone_uploads_deferred_logs(self):
        config = KeypadConfig(texp=5.0, prefetch="none", ibe_enabled=False)
        rig = _rig(config=config, with_phone=True)
        rig.attach_phone()

        def proc():
            yield from rig.fs.create("/f")
            yield from rig.fs.write("/f", 0, b"x")
            yield rig.sim.timeout(30.0)
            yield from rig.fs.read("/f", 0, 1)  # hoard warm-up
            yield rig.sim.timeout(30.0)
            rig.phone_key_uplink.set_down()
            yield from rig.fs.read("/f", 0, 1)  # disconnected, hoard hit
            disconnected_time = rig.sim.now
            yield rig.sim.timeout(100.0)
            rig.phone_key_uplink.set_up()
            yield rig.sim.timeout(60.0)  # flusher uploads
            return disconnected_time

        t_disc = rig.run(proc())
        uploaded = [
            e for e in rig.key_service.access_log
            if e.kind.startswith("paired-") and e.device_id == "phone-1"
        ]
        assert uploaded, "phone must upload its local access log"
        assert any(abs(e.timestamp - t_disc) < 1.0 for e in uploaded)
        assert rig.phone.pending_upload_count == 0

    def test_phone_speeds_up_3g(self):
        """Paired phone over Bluetooth beats direct 3G for cold reads."""
        config = KeypadConfig(texp=100.0, prefetch="none", ibe_enabled=False)

        def cold_read_time(with_phone):
            rig = _rig(network=THREE_G, config=config, with_phone=with_phone)
            if with_phone:
                rig.attach_phone()

            def proc():
                yield from rig.fs.mkdir("/d")
                for i in range(6):
                    yield from rig.fs.create(f"/d/f{i}")
                    yield from rig.fs.write(f"/d/f{i}", 0, b"x")
                yield rig.sim.timeout(600.0)  # expire everything
                t0 = rig.sim.now
                for i in range(6):
                    yield from rig.fs.read(f"/d/f{i}", 0, 1)
                return rig.sim.now - t0

            return rig.run(proc())

        direct = cold_read_time(False)
        paired = cold_read_time(True)
        assert paired < direct
