"""End-to-end theft via a raw dd image only.

The most literal reading of the §6 threat model: the thief powers the
laptop off, images the drive, and attacks the *image* on his own
machine — our code path never touches the victim's live objects.
"""

import pytest

from repro.attack import OfflineAttacker
from repro.core import KeypadConfig
from repro.forensics import AuditTool, analyze_fidelity
from repro.harness import build_keypad_rig
from repro.net import LAN
from repro.storage.fsck import RawDiskFs, parse_raw_disk


@pytest.fixture()
def stolen_world():
    config = KeypadConfig(texp=20.0, prefetch="none", ibe_enabled=False)
    rig = build_keypad_rig(network=LAN, config=config)

    def owner():
        yield from rig.fs.mkdir("/home")
        yield from rig.fs.create("/home/payroll.xls")
        yield from rig.fs.write("/home/payroll.xls", 0, b"salaries: CEO $1")
        yield from rig.fs.create("/home/wallpaper.jpg")
        yield from rig.fs.write("/home/wallpaper.jpg", 0, b"\xff\xd8JFIF")
        # The on-disk state must be durable for the image to see it.
        yield from rig.lower.sync()
        yield rig.sim.timeout(120.0)

    rig.run(owner())
    t_loss = rig.sim.now
    dd_image = rig.device.snapshot()  # the thief's dd of the platter
    return rig, t_loss, dd_image


class TestDdImageAttack:
    def test_attack_runs_entirely_on_the_image(self, stolen_world):
        rig, t_loss, dd_image = stolen_world
        image_fs = RawDiskFs(parse_raw_disk(dd_image, block_size=4096))
        attacker = OfflineAttacker(
            image_fs, "hunter2", services=rig.services
        )

        def attack():
            tree = yield from attacker.list_tree("/home")
            result = yield from attacker.try_read("/home/payroll.xls")
            return tree, result

        tree, result = rig.run(attack())
        assert "/home/payroll.xls" in tree
        assert result.success
        assert b"salaries" in result.data

        report = AuditTool(rig.key_service, rig.metadata_service).report(
            t_loss=t_loss, texp=20.0
        )
        analysis = analyze_fidelity(report, attacker.truly_accessed_ids)
        assert analysis.zero_false_negatives
        paths = set(report.compromised_paths().values())
        assert "/home/payroll.xls" in paths
        assert "/home/wallpaper.jpg" not in paths

    def test_image_without_services_is_useless(self, stolen_world):
        rig, _t_loss, dd_image = stolen_world
        image_fs = RawDiskFs(parse_raw_disk(dd_image, block_size=4096))
        attacker = OfflineAttacker(image_fs, "hunter2")  # no services

        def attack():
            result = yield from attacker.try_read("/home/payroll.xls")
            return result

        result = rig.run(attack())
        assert not result.success

    def test_image_is_read_only(self, stolen_world):
        from repro.errors import InvalidArgument

        rig, _t_loss, dd_image = stolen_world
        image_fs = RawDiskFs(parse_raw_disk(dd_image, block_size=4096))

        def mutate():
            yield from image_fs.create("/evil")

        with pytest.raises(InvalidArgument):
            rig.run(mutate())

    def test_post_image_writes_invisible(self, stolen_world):
        """The image is a point-in-time copy: later owner activity
        (on a recovered device) never appears in it."""
        rig, _t_loss, dd_image = stolen_world

        def more_activity():
            yield from rig.fs.create("/home/after_theft.txt")
            yield from rig.fs.write("/home/after_theft.txt", 0, b"new")
            yield from rig.lower.sync()

        rig.run(more_activity())
        image_fs = RawDiskFs(parse_raw_disk(dd_image, block_size=4096))
        attacker = OfflineAttacker(image_fs, "hunter2")

        def attack():
            tree = yield from attacker.list_tree("/home")
            return tree

        tree = rig.run(attack())
        assert "/home/after_theft.txt" not in tree
