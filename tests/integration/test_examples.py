"""Smoke tests: every example script runs to completion."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent.parent / "examples"

EXAMPLES = [
    "quickstart",
    "alice_corporate_laptop",
    "bob_usb_stick",
    "paired_device_trip",
    "thief_forensics_deep_dive",
    "reproduce_figure7",
]


def _load_and_run(name: str) -> None:
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    _load_and_run(name)
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"
