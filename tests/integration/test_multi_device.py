"""Multiple devices, shared audit services, concurrent applications.

Covers §6 properties the single-device tests can't: per-device
revocation, per-device log attribution, spurious-entry resistance, and
transport-key ratcheting — plus FS integrity under concurrently
running applications (sim processes interleave at every yield).
"""

import pytest

from repro.core import (
    DeviceServices,
    KeypadConfig,
    KeypadFS,
    KeyService,
    MetadataService,
)
from repro.crypto.ibe import TOY
from repro.encfs import Volume
from repro.errors import RevokedError
from repro.forensics import AuditTool
from repro.harness import build_keypad_rig
from repro.net import LAN, Link
from repro.sim import Simulation
from repro.storage import BlockDevice, BufferCache, LocalFileSystem


def _two_device_world():
    """One simulation, one pair of services, two independent laptops."""
    sim = Simulation()
    key_service = KeyService(sim, seed=b"shared-ks")
    metadata_service = MetadataService(sim, ibe_params=TOY,
                                       master_seed=b"shared-pkg")
    world = {"sim": sim, "key": key_service, "meta": metadata_service}
    for name in ("alpha", "beta"):
        device = BlockDevice(sim, n_blocks=1 << 14)
        cache = BufferCache(sim, device, capacity_blocks=1 << 14)
        lower = LocalFileSystem(sim, cache)
        services = DeviceServices(
            sim, f"laptop-{name}", f"secret-{name}".encode() * 2,
            key_service, metadata_service,
            Link(sim, rtt=0.001), Link(sim, rtt=0.001),
        )
        fs = KeypadFS(
            sim, lower, Volume(f"pw-{name}"), services,
            config=KeypadConfig(texp=20.0, prefetch="none", ibe_enabled=False),
            drbg_seed=f"dev-{name}".encode(),
        )
        world[name] = fs
    return world


class TestMultiDevice:
    def test_devices_get_distinct_keys_and_logs(self):
        world = _two_device_world()
        sim = world["sim"]

        def usage(fs, tag):
            yield from fs.create(f"/{tag}.txt")
            yield from fs.write(f"/{tag}.txt", 0, tag.encode())
            audit_id = yield from fs.audit_id_of(f"/{tag}.txt")
            return audit_id

        id_a = sim.run_process(usage(world["alpha"], "alpha"))
        id_b = sim.run_process(usage(world["beta"], "beta"))
        assert id_a != id_b
        log_devices = {
            e.device_id for e in world["key"].access_log
            if e.fields.get("audit_id") in (id_a, id_b)
        }
        assert log_devices == {"laptop-alpha", "laptop-beta"}

    def test_revoking_one_device_spares_the_other(self):
        world = _two_device_world()
        sim = world["sim"]

        def setup(fs, tag):
            yield from fs.create(f"/{tag}.txt")
            yield from fs.write(f"/{tag}.txt", 0, b"x")
            yield sim.timeout(60.0)  # caches expire

        sim.run_process(setup(world["alpha"], "alpha"))
        sim.run_process(setup(world["beta"], "beta"))
        world["key"].revoke_device("laptop-alpha")

        def read(fs, tag):
            data = yield from fs.read(f"/{tag}.txt", 0, 1)
            return data

        with pytest.raises(RevokedError):
            sim.run_process(read(world["alpha"], "alpha"))
        assert sim.run_process(read(world["beta"], "beta")) == b"x"

    def test_spurious_entries_cannot_hide_real_accesses(self):
        """§6: 'an attacker cannot use such actions to hide their
        actual accesses of confidential data.'"""
        world = _two_device_world()
        sim = world["sim"]
        fs = world["alpha"]

        def setup():
            yield from fs.create("/secret.txt")
            yield from fs.write("/secret.txt", 0, b"secret")
            audit_id = yield from fs.audit_id_of("/secret.txt")
            yield sim.timeout(100.0)
            return audit_id

        audit_id = sim.run_process(setup())
        t_loss = sim.now

        def noisy_attack():
            # Flood the log with unrelated fetches, then do the real read.
            for i in range(20):
                yield from fs.services.fetch_key(audit_id, kind="fetch")
            data = yield from fs.read("/secret.txt", 0, 6)
            return data

        sim.run_process(noisy_attack())
        report = AuditTool(world["key"], world["meta"]).report(
            t_loss=t_loss, texp=20.0
        )
        assert audit_id in report.compromised_ids

    def test_one_device_cannot_fetch_while_impersonating_another(self):
        """Requests are authenticated per device secret."""
        world = _two_device_world()
        sim = world["sim"]
        fs_a = world["alpha"]

        def setup():
            yield from fs_a.create("/a.txt")
            audit_id = yield from fs_a.audit_id_of("/a.txt")
            return audit_id

        audit_id = sim.run_process(setup())
        # beta's channel claims to be laptop-alpha.
        beta_channel = world["beta"].services.key_channel
        beta_channel.device_id = "laptop-alpha"

        def impersonate():
            result = yield from beta_channel.call("key.fetch", audit_id=audit_id)
            return result

        from repro.errors import AuthorizationError

        with pytest.raises(AuthorizationError):
            sim.run_process(impersonate())


class TestConcurrentApplications:
    def test_two_apps_interleave_safely(self):
        rig = build_keypad_rig(
            network=LAN,
            config=KeypadConfig(texp=50.0, prefetch="dir:3", ibe_enabled=True),
        )

        def setup():
            yield from rig.fs.mkdir("/shared")
            yield from rig.fs.mkdir("/app_a")
            yield from rig.fs.mkdir("/app_b")

        rig.run(setup())

        def app(tag, n_files):
            for i in range(n_files):
                path = f"/{tag}/file{i:03d}"
                yield from rig.fs.create(path)
                yield from rig.fs.write(path, 0, f"{tag}-{i}".encode() * 10)
                yield rig.sim.timeout(0.01)
                data = yield from rig.fs.read(path, 0, 32)
                assert data.startswith(f"{tag}-{i}".encode())
                # Cross-directory traffic stresses shared state.
                shared = f"/shared/{tag}{i:03d}"
                yield from rig.fs.create(shared)
                yield from rig.fs.rename(shared, shared + ".done")
            return tag

        proc_a = rig.sim.process(app("app_a", 15))
        proc_b = rig.sim.process(app("app_b", 15))
        done = rig.sim.all_of([proc_a, proc_b])
        assert rig.sim.run_until(done) == ["app_a", "app_b"]

        def verify():
            names = yield from rig.fs.readdir("/shared")
            return names

        names = rig.run(verify())
        assert len(names) == 30
        assert all(n.endswith(".done") for n in names)

    def test_concurrent_reads_of_same_file(self):
        rig = build_keypad_rig(
            network=LAN,
            config=KeypadConfig(texp=50.0, prefetch="none", ibe_enabled=False),
        )

        def setup():
            yield from rig.fs.create("/hot")
            yield from rig.fs.write("/hot", 0, b"shared data" * 100)

        rig.run(setup())
        rig.fs.key_cache.evict_all()

        def reader(offset):
            data = yield from rig.fs.read("/hot", offset, 11)
            return data

        procs = [rig.sim.process(reader(i * 11)) for i in range(8)]
        results = rig.sim.run_until(rig.sim.all_of(procs))
        assert all(r == b"shared data" for r in results)
