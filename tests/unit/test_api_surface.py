"""The stable facade contract: ``repro.api``, the config builder, the
deprecation shims, and the CLI exit-code taxonomy.

``repro.api.__all__`` is snapshotted here on purpose — renaming or
dropping a public name should fail a test, not a downstream script.
"""

from __future__ import annotations

import warnings

import pytest

import repro.api as api
from repro.cli import exit_code_for
from repro.core.policy import KeypadConfig
from repro.errors import (
    AuthorizationError,
    ConfigError,
    ControlError,
    DeadlineExpiredError,
    KeypadError,
    NetworkUnavailableError,
    OverloadSheddedError,
    ServiceUnavailableError,
)

#: the published surface, frozen.  Additions belong at the end of the
#: matching group in repro/api.py *and* here; removals are breaking.
API_SURFACE = sorted([
    # rig construction
    "mount", "build_keypad_rig", "build_encfs_rig", "build_ext3_rig",
    "build_nfs_rig", "KeypadRig", "BaselineRig", "Simulation",
    # configuration
    "KeypadConfig", "KeypadConfigBuilder", "coverage_for_prefixes",
    "CostModel", "DEFAULT_COSTS",
    # core sessions / services
    "KeypadFS", "KeyService", "MetadataService", "DeviceServices",
    "ServiceSession", "KeyCreate", "KeyFetch", "OpContext", "Span",
    "TraceCollector",
    # cluster
    "ReplicaGroup", "ReplicatedKeyClient", "ReplicatedDeviceServices",
    "ClusterAuditLog", "Region", "Topology", "FederationGroup",
    "FederatedKeyClient",
    # forensics
    "AuditTool", "AuditReport",
    # audit store (event-sourced log + materialized views)
    "AppendOnlyLog", "ShardedLog", "LogEntry",
    "SegmentedAuditStore", "AuditSegment", "AuditViews",
    # durable audit store (segment spill + crash recovery)
    "DurableAuditStore", "BlobImage", "FLUSH_POLICIES",
    # fleet scale
    "run_fleet", "FleetResult", "DeviceProfile", "ServiceFrontend",
    "ControlEvent",
    # runtime control plane
    "open_control", "ControlServer", "ControlClient", "PolicyEpoch",
    # pluggable storage backends
    "StorageBackend", "StorageStack", "BACKENDS", "make_backend",
    "BlobStore", "BlobNamespace", "volume_contents",
    # networks
    "NetEnv", "Link", "LAN", "WLAN", "BROADBAND", "DSL", "THREE_G",
    "BLUETOOTH", "ALL_NETWORKS", "PAPER_SWEEP_RTTS",
    # errors
    "ReproError", "FileSystemError", "KeypadError",
    "NetworkUnavailableError", "RpcError", "ServiceUnavailableError",
    "DeadlineExpiredError", "OverloadSheddedError", "RevokedError",
    "AuthorizationError", "LockedFileError", "ConfigError",
    "ControlError", "AuditRecoveryError",
])


class TestApiSurface:
    def test_all_matches_snapshot(self):
        assert sorted(api.__all__) == API_SURFACE

    def test_every_name_resolves(self):
        for name in api.__all__:
            assert getattr(api, name) is not None, name

    def test_mount_is_build_keypad_rig(self):
        assert api.mount is api.build_keypad_rig


class TestDeprecationShims:
    def test_core_names_warn_but_resolve(self):
        with pytest.warns(DeprecationWarning, match="repro.api"):
            from repro.core import KeypadFS  # noqa: F401
        from repro.core.fs import KeypadFS as direct

        with pytest.warns(DeprecationWarning):
            import repro.core as core

            assert core.KeypadFS is direct

    def test_net_names_warn_but_resolve(self):
        with pytest.warns(DeprecationWarning, match="repro.net.netem"):
            from repro.net import LAN  # noqa: F401
        from repro.net.netem import LAN as direct

        with pytest.warns(DeprecationWarning):
            import repro.net as net

            assert net.LAN is direct

    def test_every_historical_name_still_importable(self):
        import repro.core as core
        import repro.net as net

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            for name in core.__all__:
                assert getattr(core, name) is not None, name
            for name in net.__all__:
                assert getattr(net, name) is not None, name

    def test_unknown_name_raises_attribute_error(self):
        import repro.core as core

        with pytest.raises(AttributeError):
            core.NoSuchThing  # noqa: B018

    def test_services_logstore_warns_but_resolves(self):
        import repro.core.services.logstore as logstore

        with pytest.warns(DeprecationWarning, match="repro.auditstore.log"):
            moved = logstore.AppendOnlyLog
        from repro.auditstore.log import AppendOnlyLog as direct

        assert moved is direct
        with pytest.warns(DeprecationWarning):
            assert logstore.ShardedLog is not None
            assert logstore.LogEntry is not None
        with pytest.raises(AttributeError):
            logstore.NoSuchThing  # noqa: B018

    def test_storage_fsiface_warns_but_resolves(self):
        import repro.storage.fsiface as fsiface

        with pytest.warns(DeprecationWarning, match="repro.storage.backend"):
            moved = fsiface.FsInterface
        from repro.storage.backend import FsInterface as direct

        assert moved is direct
        with pytest.raises(AttributeError):
            fsiface.NoSuchThing  # noqa: B018

    def test_submodule_imports_stay_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            import repro.auditstore  # noqa: F401
            import repro.auditstore.log  # noqa: F401
            import repro.core.fs  # noqa: F401
            import repro.net.rpc  # noqa: F401
            import repro.storage.backend  # noqa: F401
            import repro.control  # noqa: F401


class TestConfigBuilder:
    def test_empty_builder_is_default_config(self):
        assert KeypadConfig.builder().build() == KeypadConfig()

    def test_shims_equal_builder(self):
        base = KeypadConfig()
        assert base.with_fast_transport() == (
            KeypadConfig.builder().fast_transport().build()
        )
        with pytest.warns(DeprecationWarning, match="federation"):
            shim = base.with_replication(2, 3)
        assert shim == KeypadConfig.builder().replication(k=2, m=3).build()
        assert base.with_tracing(op_deadline=5.0) == (
            KeypadConfig.builder().tracing(op_deadline=5.0).build()
        )
        assert base.with_texp(30.0) == (
            KeypadConfig.builder().texp(30.0).build()
        )

    def test_bundles_chain(self):
        config = (
            KeypadConfig.builder()
            .fast_transport(key_shards=2)
            .replication(k=2, m=3, replica_deadline=1.5)
            .tracing()
            .frontend(workers=16, policy="fifo")
            .build()
        )
        assert config.pipelining and config.key_shards == 2
        assert config.replicas == 3 and config.replica_threshold == 2
        assert config.replica_deadline == 1.5
        assert config.tracing
        assert config.frontend_enabled
        assert config.frontend_workers == 16
        assert config.frontend_knobs()["policy"] == "fifo"

    def test_builder_from_base(self):
        base = KeypadConfig(texp=42.0)
        built = KeypadConfig.builder(base).frontend().build()
        assert built.texp == 42.0 and built.frontend_enabled

    def test_replication_validates(self):
        with pytest.raises(ValueError):
            KeypadConfig.builder().replication(k=4, m=3)

    def test_build_rejects_contradictions_in_any_order(self):
        # The same contradictory bundle must fail regardless of the
        # order the steps were chained in — build() validates the whole
        # config once, with one uniform error type.
        with pytest.raises(ConfigError):
            KeypadConfig.builder().texp(-1.0).build()
        with pytest.raises(ConfigError):
            # texp_inflight (default 1.0) must never exceed texp.
            KeypadConfig.builder().texp(0.5).build()
        with pytest.raises(ConfigError):
            # a contradictory base is caught at build, not at mount
            base = KeypadConfig(replicas=1, replica_threshold=2)
            KeypadConfig.builder(base).build()
        with pytest.raises(ConfigError):
            KeypadConfig.builder().storage("floppy").build()

    def test_texp_zero_is_the_no_caching_arm(self):
        # texp=0 is the paper's "unoptimized" configuration, not an
        # error; only negatives are contradictions.
        assert KeypadConfig.builder().texp(0.0).build().texp == 0.0

    def test_bundle_steps_reject_runtime_verbs(self):
        # Control-channel verbs are not config knobs; naming one in a
        # builder step must fail at the step, with a pointer to the
        # control channel, not silently ride into the mount.
        with pytest.raises(ConfigError, match="control"):
            KeypadConfig.builder().replication(k=2, m=3, drain=True)

    def test_mount_freezes_runtime_only_knobs(self):
        from repro.core.policy import PolicyEpoch

        epoch = PolicyEpoch(KeypadConfig())
        with pytest.raises(ConfigError, match="mount-frozen"):
            epoch.update(replicas=3)
        epoch.update(texp=7.0)
        assert epoch.config.texp == 7.0 and epoch.epoch == 1

    def test_flags_off_defaults_unchanged(self):
        config = KeypadConfig()
        assert not config.frontend_enabled
        assert not config.pipelining
        assert config.replicas == 1
        assert not config.tracing
        assert config.storage_backend == "ext3"


class TestExitCodes:
    def test_taxonomy_maps_to_distinct_codes(self):
        codes = {
            exit_code_for(OverloadSheddedError("x")),
            exit_code_for(DeadlineExpiredError("x")),
            exit_code_for(ServiceUnavailableError("x")),
            exit_code_for(KeypadError("x")),
            exit_code_for(ControlError("x")),
        }
        assert len(codes) == 5

    def test_control_error_maps_to_six(self):
        assert exit_code_for(ControlError("x")) == 6
        # ConfigError is a config-time error, not a control-channel
        # fault: it keeps the generic code.
        assert exit_code_for(ConfigError("x")) == 1

    def test_shed_beats_unavailable(self):
        # OverloadSheddedError IS-A ServiceUnavailableError (existing
        # fault handling keeps working); the CLI still distinguishes it.
        assert issubclass(OverloadSheddedError, ServiceUnavailableError)
        assert exit_code_for(OverloadSheddedError("x")) == 5
        assert exit_code_for(DeadlineExpiredError("x")) == 3
        assert exit_code_for(NetworkUnavailableError("x")) == 4
        assert exit_code_for(AuthorizationError("x")) == 1
