"""Fault injection is deterministic: same seed, same event traces."""

from __future__ import annotations

import pytest

from repro.cluster import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    ReplicaGroup,
    ReplicatedDeviceServices,
)
from repro.core.client import KeyCreate, KeyFetch
from repro.core.services.metadataservice import MetadataService
from repro.errors import KeypadError
from repro.net.link import Link
from repro.sim import Simulation, SimRandom, SimulationError

AUDIT_ID = bytes(range(24))


def test_fault_event_validation_and_roundtrip():
    event = FaultEvent(4.0, "crash", "replica:1", duration=6.0)
    assert FaultEvent.from_dict(event.to_dict()) == event
    with pytest.raises(ValueError):
        FaultEvent(1.0, "meteor-strike", "replica:0")
    with pytest.raises(ValueError):
        FaultEvent(-1.0, "crash", "replica:0")


def test_plan_sorts_events_and_serializes():
    plan = FaultPlan([
        FaultEvent(9.0, "link-up", "link:a"),
        FaultEvent(2.0, "link-down", "link:a"),
    ])
    assert [e.at for e in plan] == [2.0, 9.0]
    assert FaultPlan.from_list(plan.to_list()).to_list() == plan.to_list()


def test_random_outages_are_seed_deterministic():
    def generate(seed):
        return FaultPlan.random_outages(
            SimRandom(seed, "fault-plan"), horizon=200.0, replica_count=3,
            link_names=["keys-r0", "keys-r1", "keys-r2"],
        )

    plan_a, plan_b = generate(42), generate(42)
    assert plan_a.to_list() == plan_b.to_list()
    assert len(plan_a) > 0
    assert generate(43).to_list() != plan_a.to_list()


def test_unknown_targets_are_rejected():
    sim = Simulation()
    injector = FaultInjector(sim, {})
    with pytest.raises(SimulationError):
        injector._apply(FaultEvent(0.0, "link-down", "link:nope"))
    with pytest.raises(SimulationError):
        injector._apply(FaultEvent(0.0, "crash", "replica:0"))


def _run_once(seed: int) -> tuple[list, list, list, int]:
    """A replicated client under a seeded random outage schedule.

    Returns (injector trace, per-link traces, completed-read times,
    failure count) — everything that could differ between runs.
    """
    sim = Simulation()
    group = ReplicaGroup(sim, 3, 2)
    links = [Link(sim, 0.03, name=f"keys-r{i}") for i in range(3)]
    services = ReplicatedDeviceServices(
        sim, "laptop-1", b"device-secret-tests-0123", group, links,
        MetadataService(sim), Link(sim, 0.03, name="meta"),
        backoff=0.05, rng=SimRandom(seed, "cluster-client"),
    )
    plan = FaultPlan.random_outages(
        SimRandom(seed, "fault-plan"), horizon=60.0, replica_count=3,
        link_names=[link.name for link in links], rate=0.2,
    )
    injector = FaultInjector(
        sim, {link.name: link for link in links}, group,
        jitter_rng=SimRandom(seed, "fault-jitter"),
    )
    injector.run(plan)

    completed: list[float] = []
    failures = 0

    def workload():
        nonlocal failures
        yield from services.create(KeyCreate(audit_id=AUDIT_ID))
        for _ in range(12):
            yield sim.timeout(5.0)
            try:
                yield from services.fetch(KeyFetch(audit_id=AUDIT_ID))
            except KeypadError:
                failures += 1
            else:
                completed.append(sim.now)

    sim.run_process(workload())
    return injector.trace, [link.trace for link in links], completed, failures


def test_same_seed_runs_produce_identical_event_traces():
    first = _run_once(7)
    second = _run_once(7)
    assert first == second
    # The schedule actually exercised outage windows.
    assert len(first[0]) > 0
    assert any(trace for trace in first[1])


def test_different_seeds_diverge():
    assert _run_once(7)[0] != _run_once(8)[0]


def test_windowed_faults_revert_and_are_traced():
    sim = Simulation()
    group = ReplicaGroup(sim, 3, 2)
    link = Link(sim, 0.03, name="keys-r0")
    injector = FaultInjector(sim, {"keys-r0": link}, group)
    injector.run(FaultPlan([
        FaultEvent(1.0, "crash", "replica:1", duration=2.0),
        FaultEvent(1.5, "link-down", "link:keys-r0", duration=1.0),
        FaultEvent(2.0, "delay", "link:keys-r0", duration=1.0, value=0.5),
    ]))
    sim.run(until=10.0)
    assert group.replicas[1].server.available
    assert link.available
    assert link.rtt == pytest.approx(0.03)
    assert injector.trace == [
        (1.0, "crash replica:1"),
        (1.5, "down link:keys-r0"),
        (2.0, "delay link:keys-r0 +0.5"),
        (2.5, "up link:keys-r0"),
        (3.0, "recover replica:1"),
        (3.0, "delay link:keys-r0 -0.5"),
    ]
    assert [(t, e) for t, e in link.trace] == [(1.5, "down"), (2.5, "up")]
