"""Tests for the optional per-block content-MAC mode."""

import pytest

from repro.encfs import EncfsFS, Volume
from repro.errors import IntegrityError
from repro.sim import Simulation
from repro.storage import BlockDevice, BufferCache, LocalFileSystem


@pytest.fixture()
def rig():
    sim = Simulation()
    device = BlockDevice(sim, n_blocks=1 << 14)
    cache = BufferCache(sim, device, capacity_blocks=1 << 14)
    lower = LocalFileSystem(sim, cache)
    volume = Volume("pw")
    fs = EncfsFS(sim, lower, volume, verify_content=True)
    return sim, device, lower, volume, fs


def run(sim, gen):
    return sim.run_process(gen)


class TestContentMacs:
    def test_roundtrip(self, rig):
        sim, _, _, _, fs = rig

        def proc():
            yield from fs.create("/f")
            yield from fs.write("/f", 0, b"verified content")
            data = yield from fs.read("/f", 0, 100)
            return data

        assert run(sim, proc()) == b"verified content"

    def test_multiblock_roundtrip(self, rig):
        sim, _, _, _, fs = rig
        payload = bytes(i % 251 for i in range(3 * 4096 + 777))

        def proc():
            yield from fs.create("/f")
            yield from fs.write("/f", 0, payload)
            data = yield from fs.read_all("/f")
            return data

        assert run(sim, proc()) == payload

    def test_partial_overwrite_keeps_verification(self, rig):
        sim, _, _, _, fs = rig

        def proc():
            yield from fs.create("/f")
            yield from fs.write("/f", 0, b"a" * 10000)
            yield from fs.write("/f", 5000, b"PATCH")
            data = yield from fs.read_all("/f")
            return data

        data = run(sim, proc())
        assert data[5000:5005] == b"PATCH"
        assert len(data) == 10000

    def test_reads_at_odd_offsets(self, rig):
        sim, _, _, _, fs = rig
        payload = bytes(range(256)) * 64  # 16 KiB

        def proc():
            yield from fs.create("/f")
            yield from fs.write("/f", 0, payload)
            piece = yield from fs.read("/f", 4000, 300)
            return piece

        assert run(sim, proc()) == payload[4000:4300]

    def test_ciphertext_bitflip_detected(self, rig):
        sim, _, lower, volume, fs = rig

        def proc():
            yield from fs.create("/f")
            yield from fs.write("/f", 0, b"tamper target data")
            # The thief flips one ciphertext bit on the lower layer.
            stored_path = volume.encrypt_path("/f")
            raw = yield from lower.read(stored_path, fs.HEADER_LEN, 4)
            flipped = bytes([raw[0] ^ 0x80]) + raw[1:]
            yield from lower.write(stored_path, fs.HEADER_LEN, flipped)
            yield from fs.read("/f", 0, 10)

        with pytest.raises(IntegrityError, match="MAC mismatch"):
            run(sim, proc())

    def test_without_macs_bitflip_is_silent(self):
        """The EncFS-default contrast: no MACs, garbage decrypts."""
        sim = Simulation()
        device = BlockDevice(sim, n_blocks=1 << 14)
        cache = BufferCache(sim, device, capacity_blocks=1 << 14)
        lower = LocalFileSystem(sim, cache)
        volume = Volume("pw")
        fs = EncfsFS(sim, lower, volume, verify_content=False)

        def proc():
            yield from fs.create("/f")
            yield from fs.write("/f", 0, b"tamper target data")
            stored_path = volume.encrypt_path("/f")
            raw = yield from lower.read(stored_path, fs.HEADER_LEN, 1)
            yield from lower.write(
                stored_path, fs.HEADER_LEN, bytes([raw[0] ^ 0x80])
            )
            data = yield from fs.read("/f", 0, 18)
            return data

        data = sim.run_process(proc())
        assert data != b"tamper target data"  # silently corrupted

    def test_truncate_retags(self, rig):
        sim, _, _, _, fs = rig

        def proc():
            yield from fs.create("/f")
            yield from fs.write("/f", 0, b"x" * 9000)
            yield from fs.truncate("/f", 5000)
            data = yield from fs.read_all("/f")
            return data

        assert run(sim, proc()) == b"x" * 5000

    def test_truncate_to_zero(self, rig):
        sim, _, _, _, fs = rig

        def proc():
            yield from fs.create("/f")
            yield from fs.write("/f", 0, b"x" * 5000)
            yield from fs.truncate("/f", 0)
            yield from fs.write("/f", 0, b"fresh")
            data = yield from fs.read_all("/f")
            return data

        assert run(sim, proc()) == b"fresh"

    def test_keypad_supports_macs_too(self):
        from repro.core import KeypadConfig, KeypadFS
        from repro.harness.experiment import build_keypad_rig

        rig = build_keypad_rig(
            config=KeypadConfig(texp=100.0, prefetch="none", ibe_enabled=False)
        )
        # Rebuild the FS layer with MACs on (same lower state).
        fs = KeypadFS(
            rig.sim, rig.lower, rig.volume, rig.services,
            config=rig.config, verify_content=True,
        )

        def proc():
            yield from fs.create("/f")
            yield from fs.write("/f", 0, b"keypad verified")
            data = yield from fs.read_all("/f")
            return data

        assert rig.sim.run_process(proc()) == b"keypad verified"
