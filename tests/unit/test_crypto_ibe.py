"""IBE subsystem tests: field, curve, pairing, and Boneh-Franklin."""

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.crypto.ibe import (
    TOY,
    PrivateKeyGenerator,
    decrypt,
    get_params,
)
from repro.crypto.ibe.boneh_franklin import IbeCiphertext, _hash_to_point
from repro.crypto.ibe.fp2 import Fp2
from repro.crypto.ibe.pairing import modified_pairing
from repro.crypto.numbers import (
    cbrt_mod,
    invmod,
    is_probable_prime,
    sqrt_mod,
)
from repro.errors import CryptoError, IntegrityError


@pytest.fixture(scope="module")
def params():
    return get_params(TOY)


@pytest.fixture(scope="module")
def pkg():
    return PrivateKeyGenerator(TOY, master_seed=b"test-master")


class TestNumbers:
    def test_primality_known_values(self):
        assert is_probable_prime(2)
        assert is_probable_prime(97)
        assert is_probable_prime(2**127 - 1)  # Mersenne prime
        assert not is_probable_prime(1)
        assert not is_probable_prime(0)
        assert not is_probable_prime(561)  # Carmichael number
        assert not is_probable_prime(2**128 + 1)

    def test_invmod(self):
        p = 10007
        for a in (1, 2, 3, 9999, 123):
            assert (a * invmod(a, p)) % p == 1
        with pytest.raises(ZeroDivisionError):
            invmod(0, p)
        with pytest.raises(ValueError):
            invmod(6, 9)

    def test_sqrt_mod_both_prime_shapes(self):
        for p in (10007, 1000003, 2**61 - 1):  # includes p ≡ 1 (mod 4)
            for x in (2, 5, 1234):
                square = (x * x) % p
                root = sqrt_mod(square, p)
                assert (root * root) % p == square
    def test_sqrt_mod_rejects_non_residue(self):
        p = 10007
        non_residue = next(
            x for x in range(2, 100) if pow(x, (p - 1) // 2, p) == p - 1
        )
        with pytest.raises(ValueError):
            sqrt_mod(non_residue, p)

    def test_cbrt_mod(self):
        p = 10007  # 10007 % 3 == 2
        for x in (2, 42, 9999):
            cube = pow(x, 3, p)
            assert pow(cbrt_mod(cube, p), 3, p) == cube
        with pytest.raises(ValueError):
            cbrt_mod(4, 10009)  # 10009 % 3 == 1


class TestFp2:
    P = 10007  # ≡ 3 (mod 4)

    def test_mul_matches_definition(self):
        x = Fp2(3, 4, self.P)
        y = Fp2(5, 6, self.P)
        # (3+4i)(5+6i) = 15 + 18i + 20i + 24i² = (15−24) + 38i
        assert x * y == Fp2(-9, 38, self.P)

    def test_square_matches_mul(self):
        x = Fp2(1234, 5678, self.P)
        assert x.square() == x * x

    def test_inverse(self):
        x = Fp2(37, 91, self.P)
        assert (x * x.inverse()).is_one()

    def test_pow_agrees_with_repeated_mul(self):
        x = Fp2(3, 7, self.P)
        acc = Fp2.one(self.P)
        for _ in range(13):
            acc = acc * x
        assert x.pow(13) == acc

    def test_negative_pow(self):
        x = Fp2(3, 7, self.P)
        assert (x.pow(-3) * x.pow(3)).is_one()

    def test_conjugate_norm_in_base_field(self):
        x = Fp2(3, 7, self.P)
        norm = x * x.conjugate()
        assert norm.b == 0

    def test_to_bytes_fixed_width(self):
        x = Fp2(1, 2, self.P)
        assert len(x.to_bytes()) == 2 * ((self.P.bit_length() + 7) // 8)


class TestCurve:
    def test_generator_on_curve_and_order(self, params):
        curve = params.curve
        assert curve.contains(params.generator)
        assert curve.multiply(params.generator, params.q).infinity
        assert not curve.multiply(params.generator, 2).infinity

    def test_group_law_associativity_sample(self, params):
        curve = params.curve
        g = params.generator
        a = curve.multiply(g, 7)
        b = curve.multiply(g, 11)
        c = curve.multiply(g, 13)
        left = curve.add(curve.add(a, b), c)
        right = curve.add(a, curve.add(b, c))
        assert left == right == curve.multiply(g, 31)

    def test_identity_and_inverse(self, params):
        curve = params.curve
        g = params.generator
        assert curve.add(g, curve.infinity) == g
        assert curve.add(g, curve.negate(g)).infinity

    def test_scalar_mult_distributes(self, params):
        curve = params.curve
        g = params.generator
        assert curve.multiply(g, 20) == curve.add(
            curve.multiply(g, 9), curve.multiply(g, 11)
        )

    def test_distortion_map_leaves_curve_invariant(self, params):
        curve = params.curve
        pt = curve.multiply(params.generator, 5)
        phi = curve.distort(pt)
        assert curve.contains(phi)
        assert phi != pt

    def test_hash_to_point_is_on_curve_with_right_order(self, params):
        for ident in (b"a", b"/home/taxes_2011.pdf", b"\x00" * 50):
            pt = _hash_to_point(params, ident)
            assert params.curve.contains(pt)
            assert params.curve.multiply(pt, params.q).infinity
            assert not pt.infinity

    def test_hash_to_point_deterministic_and_distinct(self, params):
        a1 = _hash_to_point(params, b"file-a")
        a2 = _hash_to_point(params, b"file-a")
        b = _hash_to_point(params, b"file-b")
        assert a1 == a2
        assert a1 != b


class TestPairing:
    def test_non_degenerate(self, params):
        e = modified_pairing(params.curve, params.generator, params.generator, params.q)
        assert not e.is_one()
        assert not e.is_zero()

    def test_output_has_order_q(self, params):
        e = modified_pairing(params.curve, params.generator, params.generator, params.q)
        assert e.pow(params.q).is_one()

    def test_bilinearity(self, params):
        curve, g, q = params.curve, params.generator, params.q
        e_gg = modified_pairing(curve, g, g, q)
        for a, b in [(2, 3), (17, 91), (12345, 67890)]:
            lhs = modified_pairing(curve, curve.multiply(g, a), curve.multiply(g, b), q)
            assert lhs == e_gg.pow(a * b)

    def test_linearity_in_first_argument(self, params):
        curve, g, q = params.curve, params.generator, params.q
        a = curve.multiply(g, 5)
        b = curve.multiply(g, 9)
        lhs = modified_pairing(curve, curve.add(a, b), g, q)
        rhs = modified_pairing(curve, a, g, q) * modified_pairing(curve, b, g, q)
        assert lhs == rhs

    def test_infinity_pairs_to_one(self, params):
        e = modified_pairing(params.curve, params.curve.infinity, params.generator, params.q)
        assert e.is_one()


class TestBonehFranklin:
    def test_encrypt_decrypt_roundtrip(self, pkg):
        pub = pkg.public()
        ident = b"dir7/prepared_taxes_2011.pdf|ID42"
        ct = pub.encrypt(ident, b"the wrapped data key")
        sk = pkg.extract(ident)
        assert decrypt(pkg.params, sk, ct) == b"the wrapped data key"

    def test_wrong_identity_key_fails(self, pkg):
        pub = pkg.public()
        ct = pub.encrypt(b"identity-A", b"payload")
        wrong = pkg.extract(b"identity-B")
        with pytest.raises((IntegrityError, CryptoError)):
            decrypt(pkg.params, wrong, ct)

    def test_ciphertexts_randomized(self, pkg):
        pub = pkg.public()
        c1 = pub.encrypt(b"id", b"payload")
        c2 = pub.encrypt(b"id", b"payload")
        assert (c1.u_x, c1.u_y) != (c2.u_x, c2.u_y)
        sk = pkg.extract(b"id")
        assert decrypt(pkg.params, sk, c1) == decrypt(pkg.params, sk, c2)

    def test_tampered_ciphertext_rejected(self, pkg):
        pub = pkg.public()
        ct = pub.encrypt(b"id", b"payload")
        tampered = IbeCiphertext(
            u_x=ct.u_x,
            u_y=ct.u_y,
            sealed=bytes([ct.sealed[0] ^ 1]) + ct.sealed[1:],
        )
        with pytest.raises(IntegrityError):
            decrypt(pkg.params, pkg.extract(b"id"), tampered)

    def test_off_curve_point_rejected(self, pkg):
        pub = pkg.public()
        ct = pub.encrypt(b"id", b"payload")
        bogus = IbeCiphertext(u_x=ct.u_x + 1, u_y=ct.u_y, sealed=ct.sealed)
        with pytest.raises(CryptoError):
            decrypt(pkg.params, pkg.extract(b"id"), bogus)

    def test_different_masters_incompatible(self):
        pkg_a = PrivateKeyGenerator(TOY, master_seed=b"A")
        pkg_b = PrivateKeyGenerator(TOY, master_seed=b"B")
        ct = pkg_a.public().encrypt(b"id", b"payload")
        with pytest.raises((IntegrityError, CryptoError)):
            decrypt(pkg_b.params, pkg_b.extract(b"id"), ct)

    def test_extract_deterministic(self, pkg):
        assert pkg.extract(b"id").point == pkg.extract(b"id").point

    def test_empty_payload(self, pkg):
        pub = pkg.public()
        ct = pub.encrypt(b"id", b"")
        assert decrypt(pkg.params, pkg.extract(b"id"), ct) == b""

    def test_ciphertext_size_accounting(self, pkg):
        ct = pkg.public().encrypt(b"id", b"x" * 48)
        coord = (pkg.params.p.bit_length() + 7) // 8
        assert ct.size_bytes(pkg.params) == 2 * coord + len(ct.sealed)


class TestParams:
    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            get_params("BOGUS")

    def test_params_cached(self):
        assert get_params(TOY) is get_params(TOY)

    def test_structure(self, params):
        assert (params.p + 1) % params.q == 0
        assert params.p % 12 == 11
        assert is_probable_prime(params.p)
        assert is_probable_prime(params.q)
