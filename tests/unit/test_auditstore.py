"""Unit tests for :mod:`repro.auditstore`: the segmented store, the
materialized views, the service/config wiring, the incremental cluster
merge, the control verbs, and the forensics CLI contract."""

from __future__ import annotations

import pytest

from repro.auditstore import (
    AppendOnlyLog,
    AuditViews,
    SegmentedAuditStore,
    make_audit_log,
)
from repro.auditstore.log import DISCLOSING_KINDS
from repro.cluster.merge import ClusterAuditLog
from repro.core.policy import KeypadConfig, validate_config
from repro.core.services.keyservice import KeyService
from repro.errors import ConfigError, ControlError
from repro.harness import build_keypad_rig
from repro.net.netem import LAN
from repro.sim import Simulation


def _fill(log, n=10, kind="fetch", device="dev-1", t0=0.0):
    for i in range(n):
        log.append(t0 + i * 1.0, device, kind, audit_id=bytes([i % 5]) * 24)


class TestMakeAuditLog:
    def test_flat_single(self):
        log = make_audit_log("x", store="flat")
        assert isinstance(log, AppendOnlyLog)

    def test_flat_sharded_needs_router(self):
        with pytest.raises(ValueError, match="router"):
            make_audit_log("x", store="flat", shards=2)

    def test_segmented_ignores_shards(self):
        log = make_audit_log("x", store="segmented", shards=4)
        assert isinstance(log, SegmentedAuditStore)

    def test_unknown_store_rejected(self):
        with pytest.raises(ValueError, match="unknown audit store"):
            make_audit_log("x", store="cloud")


class TestSegmentedStore:
    def test_chain_identical_to_flat(self):
        store = SegmentedAuditStore(segment_entries=3)
        flat = AppendOnlyLog()
        _fill(store, 10)
        _fill(flat, 10)
        assert [e.chain_hash for e in store] == [e.chain_hash for e in flat]
        assert store.verify_chain()

    def test_segments_roll_and_seal(self):
        store = SegmentedAuditStore(segment_entries=4)
        _fill(store, 10)
        assert len(store.segments) == 3
        assert [s.sealed for s in store.segments] == [True, True, False]
        # Seal hashes chain: each sealed segment records one.
        seals = [s.seal_hash for s in store.segments if s.sealed]
        assert all(seals) and len(set(seals)) == len(seals)

    def test_group_commit_counts_once(self):
        store = SegmentedAuditStore(segment_entries=4)
        store.append_many([
            (float(i), "d", "fetch", {"audit_id": b"a" * 24})
            for i in range(6)
        ])
        assert store.group_commits == 1 and store.appends == 0
        assert len(store) == 6 and store.seals == 1

    def test_entry_at_and_tail_cross_segments(self):
        store = SegmentedAuditStore(segment_entries=3)
        _fill(store, 10)
        assert store.entry_at(0).sequence == 0
        assert store.entry_at(9).sequence == 9
        assert [e.sequence for e in store.tail(7)] == [7, 8, 9]
        assert store.tail(10) == []
        with pytest.raises(IndexError):
            store.entry_at(10)

    def test_force_seal_empty_active_is_noop(self):
        store = SegmentedAuditStore(segment_entries=4)
        assert store.force_seal() is None
        _fill(store, 2)
        assert store.force_seal() == 0
        assert store.segments[0].sealed

    def test_compaction_is_lazy_and_invisible(self):
        store = SegmentedAuditStore(segment_entries=3, auto_compact=False)
        _fill(store, 7)
        assert not any(s.compacted for s in store.segments)
        before = list(store)
        packed = store.compact()
        assert packed == 6  # the two sealed segments
        assert list(store) == before
        assert store.verify_chain()

    def test_tamper_detection_in_compacted_segment(self):
        store = SegmentedAuditStore(segment_entries=3)
        _fill(store, 7)
        segment = store.segments[0]
        assert segment.compacted
        rec = list(segment._packed[1])
        rec[2] = "mallory"
        segment._packed[1] = tuple(rec)
        assert not store.verify_chain()

    def test_stats_shape(self):
        store = SegmentedAuditStore(segment_entries=3)
        _fill(store, 7)
        stats = store.stats()
        assert stats["store"] == "segmented"
        assert stats["entries"] == 7 and stats["segments"] == 3
        assert stats["views"]["ingested"] == 7


class TestAuditViews:
    def test_out_of_order_timestamps_still_match_scan(self):
        store = SegmentedAuditStore(segment_entries=4)
        # Phone-side report batches carry earlier clocks.
        times = [5.0, 6.0, 2.0, 7.0, 3.0, 8.0]
        for i, t in enumerate(times):
            store.append(t, "d", "fetch", audit_id=bytes([i]) * 24)
        assert store.views.out_of_order >= 1
        flat = AppendOnlyLog()
        for i, t in enumerate(times):
            flat.append(t, "d", "fetch", audit_id=bytes([i]) * 24)
        for since in (0.0, 2.5, 6.0, 9.0):
            scan = [e for e in flat.entries(since=since)
                    if e.kind in DISCLOSING_KINDS]
            assert store.views.accesses_after(since) == scan

    def test_views_over_flat_log(self):
        flat = AppendOnlyLog()
        _fill(flat, 8)
        views = AuditViews(flat)
        assert views.rebuild() == 8
        assert views.accesses_after(3.0) == [
            e for e in flat.entries(since=3.0)
            if e.kind in DISCLOSING_KINDS
        ]
        assert views.devices() == ["dev-1"]
        assert len(views.audit_ids()) == 5


class TestKeyServiceWiring:
    def test_segmented_service_answers_identically(self):
        flat_sim, seg_sim = Simulation(), Simulation()
        flat_ks = KeyService(flat_sim)
        seg_ks = KeyService(seg_sim, audit_store="segmented",
                            segment_entries=4)
        for ks in (flat_ks, seg_ks):
            for i in range(12):
                ks.access_log.append(
                    float(i), f"dev-{i % 3}",
                    "fetch" if i % 4 else "evict-notify",
                    audit_id=bytes([i % 5]) * 24,
                )
        for since in (0.0, 5.0, 11.5):
            for device in (None, "dev-1"):
                assert flat_ks.accesses_after(since, device) == (
                    seg_ks.accesses_after(since, device)
                )

    def test_rig_report_identical_flat_vs_segmented(self):
        from repro.forensics.audit import AuditTool

        renders = []
        for store in ("flat", "segmented"):
            config = (KeypadConfig.builder()
                      .texp(10.0)
                      .audit_store(store, segment_entries=4)
                      .build())
            rig = build_keypad_rig(network=LAN, config=config,
                                   n_blocks=1 << 14)

            def setup(rig=rig):
                yield from rig.fs.mkdir("/home")
                for name in ("a", "b", "c"):
                    yield from rig.fs.create(f"/home/{name}")
                    yield from rig.fs.write(f"/home/{name}", 0, b"s")
                yield rig.sim.timeout(20.0)
                yield from rig.fs.read("/home/b", 0, 1)

            rig.run(setup())
            tool = AuditTool(rig.key_service, rig.metadata_service)
            report = tool.report(t_loss=rig.sim.now - 15.0, texp=10.0)
            assert report.logs_intact
            renders.append(report.render())
        assert renders[0] == renders[1]


class TestIncrementalMerge:
    def _services(self, n=3):
        sim = Simulation()
        return [KeyService(sim, name=f"r{i}") for i in range(n)]

    def test_high_water_marks_advance(self):
        replicas = self._services()
        cluster = ClusterAuditLog(replicas, threshold=2)
        for r in replicas:
            _fill(r.access_log, 5)
        first = cluster.merged()
        assert cluster.merge_stats()["consumed"] == [5, 5, 5]
        # New entries on one replica only: the next merge consumes just
        # the tail, not the whole log.
        _fill(replicas[0].access_log, 3, t0=100.0)
        second = cluster.merged()
        assert cluster.merge_stats()["consumed"] == [8, 5, 5]
        assert len(second) > len(first)

    def test_merged_memo_hit_when_nothing_new(self):
        replicas = self._services()
        cluster = ClusterAuditLog(replicas, threshold=2)
        for r in replicas:
            _fill(r.access_log, 5)
        assert cluster.merged() is cluster.merged()

    def test_incremental_equals_from_scratch(self):
        replicas = self._services()
        incremental = ClusterAuditLog(replicas, threshold=2)
        for batch in range(4):
            for i, r in enumerate(replicas):
                _fill(r.access_log, 4, t0=batch * 10.0 + i * 0.1)
            incremental.merged()  # consume as we go
        fresh = ClusterAuditLog(replicas, threshold=2)
        assert incremental.merged() == fresh.merged()
        assert incremental.merged(since=15.0) == fresh.merged(since=15.0)
        assert incremental.divergences() == fresh.divergences()

    def test_stragglers_force_resort_but_stay_correct(self):
        replicas = self._services(2)
        cluster = ClusterAuditLog(replicas, threshold=1)
        _fill(replicas[0].access_log, 5, t0=100.0)
        cluster.merged()
        # A phone report batch lands with timestamps before the cache
        # tail (out-of-order on the wire is legal).
        _fill(replicas[1].access_log, 3, t0=0.0)
        cluster.merged()
        assert cluster.resorts == 1
        fresh = ClusterAuditLog(replicas, threshold=1)
        assert cluster.merged() == fresh.merged()

    def test_shrunken_log_triggers_rebuild(self):
        replicas = self._services(2)
        cluster = ClusterAuditLog(replicas, threshold=1)
        for r in replicas:
            _fill(r.access_log, 5)
        cluster.merged()
        # Tamper: truncate one replica's log under the merge.
        del replicas[0].access_log._entries[3:]
        cluster.merged()
        assert cluster.merge_stats()["rebuilds"] == 1
        fresh = ClusterAuditLog(replicas, threshold=1)
        assert cluster.merged() == fresh.merged()


class TestConfig:
    def test_builder_bundle(self):
        config = (KeypadConfig.builder()
                  .audit_store("segmented", segment_entries=64,
                               auto_compact=False)
                  .build())
        assert config.audit_store == "segmented"
        assert config.audit_segment_entries == 64
        assert not config.audit_auto_compact

    def test_defaults_flags_off(self):
        config = KeypadConfig()
        assert config.audit_store == "flat"
        assert config.audit_segment_entries == 1024
        assert config.audit_auto_compact

    def test_validation(self):
        with pytest.raises(ConfigError, match="audit_store"):
            validate_config(KeypadConfig(audit_store="parquet"))
        with pytest.raises(ConfigError, match="audit_segment_entries"):
            validate_config(KeypadConfig(audit_segment_entries=1))

    def test_mount_frozen(self):
        from repro.core.policy import PolicyEpoch

        epoch = PolicyEpoch(KeypadConfig())
        with pytest.raises(ConfigError, match="mount-frozen"):
            epoch.update(audit_store="segmented")


class TestControlVerbs:
    def _rig(self, store):
        from repro.api import open_control

        config = (KeypadConfig.builder()
                  .audit_store(store, segment_entries=4)
                  .build())
        rig = build_keypad_rig(network=LAN, config=config, n_blocks=1 << 14)

        def setup():
            yield from rig.fs.mkdir("/home")
            for name in ("a", "b", "c"):
                yield from rig.fs.create(f"/home/{name}")
                yield from rig.fs.write(f"/home/{name}", 0, b"s")

        rig.run(setup())
        return rig, open_control(rig)

    def test_audit_stats_seal_rebuild_segmented(self):
        rig, ctl = self._rig("segmented")

        def scenario():
            stats = yield from ctl.audit_stats()
            sealed = yield from ctl.audit_seal()
            rebuilt = yield from ctl.audit_rebuild()
            return stats, sealed, rebuilt

        stats, sealed, rebuilt = rig.run(scenario())
        service = stats["services"][0]
        assert service["store"] == "segmented"
        assert service["entries"] == rebuilt["rebuilt"][0]["entries"]
        assert sealed["sealed"][0]["segment"] is not None
        assert rig.key_service.access_log.verify_chain()
        # The admin action log recorded both mutations.
        verbs = [a["verb"] for a in ctl.server.actions]
        assert "audit_seal" in verbs and "audit_rebuild" in verbs

    def test_flat_store_refuses_seal_and_rebuild(self):
        rig, ctl = self._rig("flat")

        def scenario():
            stats = yield from ctl.audit_stats()
            try:
                yield from ctl.audit_seal()
            except ControlError as exc:
                return stats, str(exc)
            return stats, None

        stats, error = rig.run(scenario())
        assert stats["services"][0]["store"] == "flat"
        assert error is not None and "flat" in error

    def test_bad_index_is_control_error(self):
        rig, ctl = self._rig("segmented")

        def scenario():
            try:
                yield from ctl.audit_stats(index=9)
            except ControlError as exc:
                return str(exc)
            return None

        assert "out of range" in rig.run(scenario())


class TestOfflineViews:
    def test_bundle_views_match_scan(self):
        from repro.forensics.export import export_logs, load_bundle

        config = KeypadConfig(texp=5.0, prefetch="none")
        rig = build_keypad_rig(network=LAN, config=config, n_blocks=1 << 14)

        def setup():
            yield from rig.fs.mkdir("/home")
            for name in ("a", "b"):
                yield from rig.fs.create(f"/home/{name}")
                yield from rig.fs.write(f"/home/{name}", 0, b"s")
            yield rig.sim.timeout(10.0)
            yield from rig.fs.read("/home/a", 0, 1)

        rig.run(setup())
        bundle = export_logs(rig.key_service, rig.metadata_service)
        key_log, _ = load_bundle(bundle)
        views = key_log.views
        assert views is key_log.views  # built once, cached
        for since in (0.0, 5.0, rig.sim.now):
            assert views.accesses_after(since) == (
                key_log.accesses_after(since)
            )

    def test_offline_disclosing_matches_live_service(self):
        from repro.forensics.export import OfflineKeyLog

        assert OfflineKeyLog._DISCLOSING == DISCLOSING_KINDS


class TestForensicsCli:
    def _bundle(self, tmp_path):
        from repro.forensics.export import export_logs

        config = KeypadConfig(texp=5.0, prefetch="none")
        rig = build_keypad_rig(network=LAN, config=config, n_blocks=1 << 14)

        def setup():
            yield from rig.fs.mkdir("/home")
            yield from rig.fs.create("/home/a")
            yield from rig.fs.write("/home/a", 0, b"s")
            yield rig.sim.timeout(10.0)
            yield from rig.fs.read("/home/a", 0, 1)

        rig.run(setup())
        path = tmp_path / "bundle.json"
        path.write_text(export_logs(rig.key_service, rig.metadata_service))
        return str(path), rig.sim.now

    @pytest.mark.parametrize("view", ["timeline", "file-set", "post-theft"])
    def test_views_reconcile_exit_zero(self, tmp_path, view, capsys):
        from repro.cli import main

        bundle, t_loss = self._bundle(tmp_path)
        code = main(["forensics", "--bundle", bundle, "--tloss",
                     str(t_loss), "--texp", "5.0", "--view", view])
        out = capsys.readouterr().out
        assert code == 0
        assert "reconciled" in out

    def test_bundle_without_tloss_is_an_error(self, tmp_path):
        from repro.cli import main

        bundle, _ = self._bundle(tmp_path)
        assert main(["forensics", "--bundle", bundle]) == 1

    def test_view_scan_disagreement_exits_two(self, tmp_path, monkeypatch,
                                              capsys):
        from repro.auditstore.views import AuditViews
        from repro.cli import main

        bundle, t_loss = self._bundle(tmp_path)
        real = AuditViews.accesses_after

        def lying(self, t, device_id=None):
            return real(self, t, device_id=device_id)[:-1]  # drop one

        monkeypatch.setattr(AuditViews, "accesses_after", lying)
        code = main(["forensics", "--bundle", bundle, "--tloss",
                     str(t_loss), "--texp", "5.0", "--view", "post-theft"])
        err = capsys.readouterr().err
        assert code == 2
        assert "MISMATCH" in err
