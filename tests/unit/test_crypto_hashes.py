"""SHA-256 / HMAC / KDF / DRBG tests against published vectors."""

import hashlib
import hmac as stdlib_hmac

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.crypto.hmac import constant_time_equal, hmac_sha256
from repro.crypto.kdf import hkdf_sha256, pbkdf2_sha256
from repro.crypto.sha256 import SHA256, sha256, sha256_fast


class TestSha256:
    # NIST FIPS 180-4 example vectors.
    VECTORS = [
        (b"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
        (b"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
        (
            b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
        ),
        (
            b"a" * 1_000_000,
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0",
        ),
    ]

    @pytest.mark.parametrize("message,expected", VECTORS)
    def test_nist_vectors(self, message, expected):
        assert sha256(message).hex() == expected

    def test_incremental_update_equals_oneshot(self):
        h = SHA256()
        h.update(b"abc")
        h.update(b"dbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")
        assert h.hexdigest() == self.VECTORS[2][1]

    def test_digest_does_not_finalize(self):
        h = SHA256(b"ab")
        first = h.digest()
        assert h.digest() == first
        h.update(b"c")
        assert h.hexdigest() == self.VECTORS[1][1]

    def test_copy_is_independent(self):
        h = SHA256(b"ab")
        clone = h.copy()
        clone.update(b"c")
        h.update(b"X")
        assert clone.hexdigest() == self.VECTORS[1][1]
        assert h.hexdigest() != clone.hexdigest()

    @pytest.mark.parametrize("size", [0, 1, 55, 56, 57, 63, 64, 65, 127, 128, 1000])
    def test_boundary_lengths_match_hashlib(self, size):
        data = bytes(range(256)) * (size // 256 + 1)
        data = data[:size]
        assert sha256(data) == hashlib.sha256(data).digest()

    def test_fast_path_matches_reference(self):
        data = b"keypad" * 999
        assert sha256_fast(data) == sha256(data)

    def test_update_rejects_str(self):
        with pytest.raises(TypeError):
            SHA256().update("not bytes")


class TestHmac:
    # RFC 4231 test cases.
    def test_rfc4231_case1(self):
        key = b"\x0b" * 20
        assert hmac_sha256(key, b"Hi There").hex() == (
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        )

    def test_rfc4231_case2(self):
        assert hmac_sha256(b"Jefe", b"what do ya want for nothing?").hex() == (
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        )

    def test_rfc4231_case6_long_key(self):
        key = b"\xaa" * 131
        msg = b"Test Using Larger Than Block-Size Key - Hash Key First"
        assert hmac_sha256(key, msg).hex() == (
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        )

    @pytest.mark.parametrize("key_len", [0, 1, 32, 64, 65, 200])
    def test_matches_stdlib(self, key_len):
        key = bytes(range(key_len % 256 or 1)) * ((key_len // 256) + 1)
        key = key[:key_len]
        msg = b"keypad audit message"
        assert hmac_sha256(key, msg) == stdlib_hmac.new(key, msg, "sha256").digest()

    def test_constant_time_equal(self):
        assert constant_time_equal(b"abc", b"abc")
        assert not constant_time_equal(b"abc", b"abd")
        assert not constant_time_equal(b"abc", b"abcd")
        assert constant_time_equal(b"", b"")


class TestPbkdf2:
    def test_rfc_style_vector(self):
        # Cross-checked against hashlib.pbkdf2_hmac.
        derived = pbkdf2_sha256(b"password", b"salt", 4096, 32)
        expected = hashlib.pbkdf2_hmac("sha256", b"password", b"salt", 4096, 32)
        assert derived == expected

    @pytest.mark.parametrize("dklen", [1, 16, 32, 33, 64, 100])
    def test_lengths_match_hashlib(self, dklen):
        derived = pbkdf2_sha256(b"pw", b"na", 10, dklen)
        assert derived == hashlib.pbkdf2_hmac("sha256", b"pw", b"na", 10, dklen)

    def test_rejects_zero_iterations(self):
        with pytest.raises(ValueError):
            pbkdf2_sha256(b"pw", b"salt", 0)

    def test_rejects_zero_length(self):
        with pytest.raises(ValueError):
            pbkdf2_sha256(b"pw", b"salt", 1, 0)


class TestHkdf:
    def test_rfc5869_case1(self):
        ikm = b"\x0b" * 22
        salt = bytes.fromhex("000102030405060708090a0b0c")
        info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
        okm = hkdf_sha256(ikm, salt, info, 42)
        assert okm.hex() == (
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )

    def test_rfc5869_case3_empty_salt_info(self):
        okm = hkdf_sha256(b"\x0b" * 22, b"", b"", 42)
        assert okm.hex() == (
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8"
        )

    def test_distinct_infos_give_independent_keys(self):
        a = hkdf_sha256(b"master", b"", b"enc", 32)
        b = hkdf_sha256(b"master", b"", b"mac", 32)
        assert a != b

    def test_length_limit(self):
        with pytest.raises(ValueError):
            hkdf_sha256(b"x", b"", b"", 255 * 32 + 1)


class TestHmacDrbg:
    def test_deterministic(self):
        a = HmacDrbg(b"seed", b"ctx").generate(64)
        b = HmacDrbg(b"seed", b"ctx").generate(64)
        assert a == b

    def test_personalization_separates_streams(self):
        a = HmacDrbg(b"seed", b"one").generate(32)
        b = HmacDrbg(b"seed", b"two").generate(32)
        assert a != b

    def test_sequential_outputs_differ(self):
        drbg = HmacDrbg(b"seed")
        assert drbg.generate(32) != drbg.generate(32)

    def test_reseed_changes_stream(self):
        a = HmacDrbg(b"seed")
        b = HmacDrbg(b"seed")
        b.reseed(b"more entropy")
        assert a.generate(32) != b.generate(32)

    def test_randint_below_bounds(self):
        drbg = HmacDrbg(b"seed")
        for bound in (1, 2, 7, 256, 10**30):
            for _ in range(20):
                value = drbg.randint_below(bound)
                assert 0 <= value < bound

    def test_randint_below_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            HmacDrbg(b"s").randint_below(0)

    def test_generate_zero_bytes(self):
        assert HmacDrbg(b"s").generate(0) == b""

    def test_generate_negative_rejected(self):
        with pytest.raises(ValueError):
            HmacDrbg(b"s").generate(-1)
