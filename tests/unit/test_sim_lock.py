"""Tests for the cooperative Lock primitive."""

import pytest

from repro.sim import Lock, Simulation, SimulationError


def test_uncontended_acquire_is_immediate():
    sim = Simulation()
    lock = Lock(sim)

    def proc():
        yield from lock.acquire()
        acquired_at = sim.now
        lock.release()
        return acquired_at

    assert sim.run_process(proc()) == 0.0
    assert not lock.locked


def test_mutual_exclusion():
    sim = Simulation()
    lock = Lock(sim)
    inside = []

    def worker(tag, hold):
        yield from lock.acquire()
        try:
            inside.append(tag)
            assert len(inside) == 1, "two holders inside the lock"
            yield sim.timeout(hold)
        finally:
            inside.remove(tag)
            lock.release()

    for i in range(5):
        sim.process(worker(i, 1.0))
    sim.run()
    assert inside == []
    assert sim.now == pytest.approx(5.0)  # fully serialized


def test_fifo_ordering():
    sim = Simulation()
    lock = Lock(sim)
    order = []

    def worker(tag):
        yield from lock.acquire()
        order.append(tag)
        yield sim.timeout(1.0)
        lock.release()

    for tag in "abcd":
        sim.process(worker(tag))
    sim.run()
    assert order == ["a", "b", "c", "d"]


def test_release_unheld_rejected():
    sim = Simulation()
    lock = Lock(sim)
    with pytest.raises(SimulationError):
        lock.release()


def test_handoff_keeps_lock_held():
    sim = Simulation()
    lock = Lock(sim)
    states = []

    def first():
        yield from lock.acquire()
        yield sim.timeout(1.0)
        lock.release()
        states.append(("after-first-release", lock.locked))

    def second():
        yield from lock.acquire()
        states.append(("second-acquired", lock.locked))
        lock.release()

    sim.process(first())
    sim.process(second())
    sim.run()
    # Ownership passed directly: the lock never appeared free between
    # the two holders.
    assert ("after-first-release", True) in states
    assert ("second-acquired", True) in states
    assert not lock.locked
