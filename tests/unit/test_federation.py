"""Multi-region federation: topology, gossip, election, geo-routing,
region partitions, and the config/control surface."""

from __future__ import annotations

import pytest

from repro.cluster import (
    FaultPlan,
    FederatedDeviceServices,
    FederationGroup,
    Region,
    Topology,
)
from repro.cluster.gossip import ALIVE, DEAD
from repro.core.client import KeyCreate, KeyFetch
from repro.core.policy import KeypadConfig, PolicyEpoch
from repro.core.services.metadataservice import MetadataService
from repro.errors import ConfigError, ControlError
from repro.harness import build_keypad_rig
from repro.net.link import Link
from repro.net.netem import LAN, WLAN
from repro.sim import Simulation

AUDIT_ID = bytes(range(24))
SECRET = b"device-secret-tests-0123"

#: one small federation shape shared by most tests: 3 regions x 2,
#: k=2, 60 ms between regions, second-scale protocol timers.
TOPO = Topology.symmetric(
    regions=("us", "eu", "ap"), replicas_per_region=2, threshold=2,
    rtt_ms=60.0, gossip_interval=0.5, suspect_after=2.0, dead_after=5.0,
    lease_duration=4.0, election_shards=4,
)


def _sleep(sim, seconds):
    yield sim.timeout(seconds)


def _federation(topo=TOPO, home="eu", **session_knobs):
    sim = Simulation()
    group = FederationGroup(sim, topo)
    group.start_gossip()
    links = group.device_links(LAN, home, "keys")
    services = FederatedDeviceServices(
        sim, "laptop", SECRET, group, links,
        MetadataService(sim), Link(sim, LAN.rtt, name="meta"),
        home_region=home, **session_knobs,
    )
    return sim, group, services


# -- Topology ----------------------------------------------------------------

def test_topology_validates_shape():
    with pytest.raises(ValueError):
        Topology(regions=(), threshold=1).validate()
    with pytest.raises(ValueError):
        Topology.symmetric(regions=("us", "us")).validate()
    with pytest.raises(ValueError):
        Topology.symmetric(regions=("us", "eu"), replicas_per_region=2,
                           threshold=5).validate()
    with pytest.raises(ValueError):  # non-square matrix
        Topology(regions=(Region("us"), Region("eu")), threshold=2,
                 rtt_ms=((0.0,),)).validate()
    with pytest.raises(ValueError):  # asymmetric
        Topology(regions=(Region("us"), Region("eu")), threshold=2,
                 rtt_ms=((0.0, 10.0), (20.0, 0.0))).validate()
    with pytest.raises(ValueError):  # non-zero diagonal
        Topology(regions=(Region("us"), Region("eu")), threshold=2,
                 rtt_ms=((1.0, 10.0), (10.0, 0.0))).validate()
    TOPO.validate()  # the shared shape is well-formed


def test_topology_indexing_roundtrip_and_hashability():
    assert TOPO.total_replicas == 6
    assert TOPO.region_names == ("us", "eu", "ap")
    assert [TOPO.region_of(i) for i in range(6)] == [
        "us", "us", "eu", "eu", "ap", "ap"]
    assert TOPO.replica_indices("eu") == (2, 3)
    assert TOPO.rtt_s("us", "ap") == pytest.approx(0.060)
    assert TOPO.rtt_s("eu", "eu") == 0.0
    with pytest.raises(ValueError):
        TOPO.region_index("mars")
    assert Topology.from_dict(TOPO.to_dict()) == TOPO
    # Hashable, so it can ride inside the frozen KeypadConfig.
    assert hash(TOPO) == hash(Topology.from_dict(TOPO.to_dict()))


def test_region_labels_and_device_link_rtts():
    sim = Simulation()
    group = FederationGroup(sim, TOPO)
    assert group.region_labels == ["us", "us", "eu", "eu", "ap", "ap"]
    links = group.device_links(WLAN, "eu", "dev")
    assert [link.name for link in links] == [f"dev-r{j}" for j in range(6)]
    rtts = [round(link.rtt, 4) for link in links]
    assert rtts == [0.062, 0.062, 0.002, 0.002, 0.062, 0.062]


# -- gossip membership -------------------------------------------------------

def test_gossip_converges_then_decays_crash_then_recovers():
    sim = Simulation()
    group = FederationGroup(sim, TOPO)
    group.start_gossip()
    observer = group.agents[3]

    sim.run_process(_sleep(sim, 5.0))
    assert set(observer.statuses().values()) == {ALIVE}

    group.crash(0)
    sim.run_process(_sleep(sim, 3 * TOPO.dead_after))
    statuses = observer.statuses()
    assert statuses["key-replica-0"] == DEAD
    assert all(s == ALIVE for m, s in statuses.items()
               if m != "key-replica-0")

    group.recover(0)
    sim.run_process(_sleep(sim, 3.0))
    assert observer.statuses()["key-replica-0"] == ALIVE


def test_gossip_transitions_are_seed_deterministic():
    def run_once():
        sim = Simulation()
        group = FederationGroup(sim, TOPO)
        group.start_gossip()

        def scenario():
            yield sim.timeout(3.0)
            group.crash(5)
            yield sim.timeout(2 * TOPO.dead_after)
            group.recover(5)
            yield sim.timeout(5.0)

        sim.run_process(scenario())
        return [agent.transitions for agent in group.agents]

    first, second = run_once(), run_once()
    assert first == second
    # The crash was actually observed somewhere.
    assert any(
        (member, status) == ("key-replica-5", DEAD)
        for transitions in first
        for _, member, status in transitions
    )


# -- leader election ---------------------------------------------------------

def test_leaders_elected_deterministically_and_reelected_on_crash():
    def run_once():
        sim = Simulation()
        group = FederationGroup(sim, TOPO)
        group.start_gossip()
        sim.run_process(_sleep(sim, 6.0))
        before = dict(group.region_status()["leaders"])
        victim = int(before["0"].rsplit("-", 1)[1])
        group.crash(victim)
        sim.run_process(_sleep(sim, 3 * TOPO.dead_after))
        after = dict(group.region_status()["leaders"])
        events = list(group.agents[(victim + 1) % 6].leases.events)
        return before, victim, after, events

    before, victim, after, events = run_once()
    assert set(before) == {"0", "1", "2", "3"}
    assert all(holder for holder in before.values())
    # Shard 0 moved off the crashed holder; the others keep a leader.
    assert after["0"] is not None
    assert after["0"] != before["0"]
    assert all(after[s] is not None for s in after)
    assert any(event.startswith("claim shard=0 term=")
               for _, event in events)
    # Same seed, same world: the whole election replays identically.
    assert run_once() == (before, victim, after, events)


# -- geo-routing -------------------------------------------------------------

def test_geo_routing_fetches_from_home_region():
    sim, group, services = _federation(home="eu")
    assert services.home_region == "eu"
    ranked = services.cluster._ranked()
    assert [ep.index for ep in ranked] == [2, 3, 0, 1, 4, 5]
    key = sim.run_process(services.create(KeyCreate(audit_id=AUDIT_ID)))
    got = sim.run_process(services.fetch(KeyFetch(audit_id=AUDIT_ID)))
    assert got == key
    witnesses = [
        i for i, replica in enumerate(group.replicas)
        if any(e.kind == "fetch" for e in replica.access_log)
    ]
    assert witnesses == [2, 3]  # both shares came from eu


def test_geo_routing_falls_back_across_regions():
    sim, group, services = _federation(home="eu")
    key = sim.run_process(services.create(KeyCreate(audit_id=AUDIT_ID)))
    group.crash(2)
    group.crash(3)
    got = sim.run_process(services.fetch(KeyFetch(audit_id=AUDIT_ID)))
    assert got == key
    witnesses = [
        i for i, replica in enumerate(group.replicas)
        if any(e.kind == "fetch" for e in replica.access_log)
    ]
    assert witnesses and not set(witnesses) & {2, 3}


# -- region partitions in the fleet ------------------------------------------

def test_fleet_region_partition_is_seed_deterministic():
    from repro.workloads.fleet import run_fleet

    topo = Topology.symmetric(regions=("us", "eu", "ap"),
                              replicas_per_region=2, threshold=3,
                              rtt_ms=60.0)
    plan = FaultPlan.region_partition("eu", at=3.0, duration=3.0)

    def run_once():
        result = run_fleet(devices=9, duration=9.0, seed=b"fed-test",
                           topology=topo, faults=plan)
        return result.fault_trace, result.summary()

    (trace, summary), (trace2, summary2) = run_once(), run_once()
    assert (trace, summary) == (trace2, summary2)
    assert [what for _, what in trace] == [
        "partition region:eu", "heal region:eu"]
    assert set(summary["per_region"]) == {"us", "eu", "ap"}


def test_fleet_rejects_topology_plus_replica_args():
    from repro.workloads.fleet import run_fleet

    with pytest.raises(ValueError, match="not both"):
        run_fleet(devices=2, duration=1.0, topology=TOPO, replicas=3)


# -- config surface ----------------------------------------------------------

def test_builder_federation_sets_replication_from_topology():
    config = (KeypadConfig.builder()
              .federation(regions=("us", "eu"), replicas_per_region=2,
                          k=2, rtt_ms=40.0)
              .build())
    assert config.federation.total_replicas == 4
    assert config.replicas == 4 and config.replica_threshold == 2
    # An invalid hand-built topology fails as ConfigError at the step.
    with pytest.raises(ConfigError):
        KeypadConfig.builder().federation(
            topology=Topology(regions=(Region("us"),), threshold=9))


def test_validate_config_catches_inconsistent_federation():
    from dataclasses import replace

    config = KeypadConfig.builder().federation(topology=TOPO).build()
    with pytest.raises(ConfigError, match="federation"):
        KeypadConfig.builder(replace(config, replicas=3)).build()


def test_federation_is_mount_frozen_and_shim_warns():
    epoch = PolicyEpoch(KeypadConfig())
    with pytest.raises(ConfigError, match="mount-frozen"):
        epoch.update(federation=TOPO)
    with pytest.warns(DeprecationWarning, match="federation"):
        KeypadConfig().with_replication(2, 3)


# -- control plane -----------------------------------------------------------

def test_ctl_region_verbs_over_a_federated_rig():
    from repro.control.server import open_control

    config = KeypadConfig.builder().federation(topology=TOPO).build()
    rig = build_keypad_rig(network=LAN, config=config, home_region="ap")
    ctl = open_control(rig)

    def scenario():
        yield from rig.fs.mkdir("/home")
        yield from rig.fs.write_file("/home/a.txt", b"payload")
        yield rig.sim.timeout(6.0)  # let gossip settle and leases claim
        status = yield from ctl.region_status()
        report = yield from ctl.region_partition_report()
        return status, report

    status, report = rig.run(scenario())
    assert status["regions"]["ap"] == {"replicas": 2, "available": 2}
    assert set(status["members"]) == {f"key-replica-{i}" for i in range(6)}
    assert set(status["leaders"]) == {"0", "1", "2", "3"}
    assert report["split_count"] == 0
    assert report["convergence"]["converged"]


def test_ctl_region_verbs_refuse_flat_clusters():
    from repro.control.server import open_control

    config = KeypadConfig.builder().replication(2, 3).build()
    rig = build_keypad_rig(network=LAN, config=config)
    ctl = open_control(rig)

    def scenario():
        result = yield from ctl.region_status()
        return result

    with pytest.raises(ControlError, match="federated"):
        rig.run(scenario())


# -- CLI ---------------------------------------------------------------------

def test_cli_region_status_exit_codes():
    from repro.cli import main

    assert main(["ctl", "region-status"]) == 0
    assert main(["ctl", "region-status", "--crash-region", "eu"]) == 4


def test_cli_partition_report_detects_split_and_converges(capsys):
    from repro.cli import main

    assert main(["ctl", "partition-report", "--duration", "10"]) == 0
    out = capsys.readouterr().out
    assert "partition region:us" in out
    assert "witnessed only inside us" in out
    assert "converged" in out
