"""Replicated key-service cluster: failover, hedging, merge, forensics."""

from __future__ import annotations

import pytest

from repro.cluster import (
    ClusterAuditLog,
    ReplicaGroup,
    ReplicatedDeviceServices,
)
from repro.core import KeypadConfig
from repro.core.client import KeyCreate, KeyFetch
from repro.core.services.metadataservice import MetadataService
from repro.errors import RevokedError, ServiceUnavailableError
from repro.forensics.audit import AuditTool
from repro.harness import build_keypad_rig
from repro.harness.experiment import DEVICE_ID
from repro.net import LAN, Link
from repro.sim import Simulation

AUDIT_ID = bytes(range(24))
SECRET = b"device-secret-tests-0123"


def _cluster(m=3, k=2, rtt=0.03, **knobs):
    sim = Simulation()
    group = ReplicaGroup(sim, m, k)
    links = [Link(sim, rtt, name=f"keys-r{i}") for i in range(m)]
    services = ReplicatedDeviceServices(
        sim, DEVICE_ID, SECRET, group, links,
        MetadataService(sim), Link(sim, rtt, name="meta"), **knobs,
    )
    return sim, group, links, services


def test_create_splits_key_across_all_replicas():
    sim, group, _links, services = _cluster()
    key = sim.run_process(services.create(KeyCreate(audit_id=AUDIT_ID)))
    assert len(key) == 32
    stored = [r._shard_map(AUDIT_ID).get(AUDIT_ID) for r in group.replicas]
    assert all(s is not None for s in stored)
    # No replica holds the key itself, and all shares differ.
    assert key not in stored
    assert len(set(stored)) == 3
    # Every replica logged the create.
    for replica in group.replicas:
        assert [e.kind for e in replica.access_log] == ["create"]


def test_fetch_recombines_and_logs_on_threshold_replicas():
    sim, group, _links, services = _cluster()
    key = sim.run_process(services.create(KeyCreate(audit_id=AUDIT_ID)))
    got = sim.run_process(services.fetch(KeyFetch(audit_id=AUDIT_ID)))
    assert got == key
    logged = sum(
        1 for r in group.replicas
        if any(e.kind == "fetch" for e in r.access_log)
    )
    assert logged >= 2


def test_failover_survives_any_single_crashed_replica():
    for down in range(3):
        sim, group, _links, services = _cluster()
        key = sim.run_process(services.create(KeyCreate(audit_id=AUDIT_ID)))
        group.crash(down)
        got = sim.run_process(services.fetch(KeyFetch(audit_id=AUDIT_ID)))
        assert got == key
        assert services.cluster.metrics.failovers >= (1 if down < 2 else 0)


def test_fetch_fails_below_threshold_with_retries_counted():
    sim, group, _links, services = _cluster(max_retries=2, backoff=0.01)
    sim.run_process(services.create(KeyCreate(audit_id=AUDIT_ID)))
    group.crash(0)
    group.crash(1)

    def attempt():
        try:
            yield from services.fetch(KeyFetch(audit_id=AUDIT_ID))
        except ServiceUnavailableError:
            return "unavailable"
        return "ok"

    assert sim.run_process(attempt()) == "unavailable"
    assert services.cluster.metrics.retries == 2


def test_hedging_beats_a_lagging_replica():
    sim, group, links, services = _cluster(hedge_delay=0.05, deadline=10.0)
    sim.run_process(services.create(KeyCreate(audit_id=AUDIT_ID)))
    # Replica 0 suddenly becomes very slow (congested path).
    links[0].rtt = 5.0
    start = sim.now
    sim.run_process(services.fetch(KeyFetch(audit_id=AUDIT_ID)))
    # The hedge to replica 2 answers long before replica 0 would.
    assert sim.now - start < 1.0
    assert services.cluster.metrics.hedged >= 1


def test_deadline_expiry_counts_and_fails_over():
    sim, group, links, services = _cluster(deadline=0.2, hedge_delay=0.0)
    sim.run_process(services.create(KeyCreate(audit_id=AUDIT_ID)))
    links[1].rtt = 5.0  # replica 1 can never answer inside the deadline
    key = sim.run_process(services.fetch(KeyFetch(audit_id=AUDIT_ID)))
    assert len(key) == 32
    assert services.cluster.metrics.deadline_expiries >= 1


def test_repeated_failures_mark_replica_down_then_cooldown_expires():
    sim, group, _links, services = _cluster(
        failure_threshold=2, cooldown=5.0, hedge_delay=0.0
    )
    sim.run_process(services.create(KeyCreate(audit_id=AUDIT_ID)))
    group.crash(0)

    def drive():
        for _ in range(3):
            yield from services.fetch(KeyFetch(audit_id=AUDIT_ID))
        return services.cluster.health()

    health = sim.run_process(drive())
    assert health[0] is False
    assert services.cluster.metrics.marked_down == 1
    group.recover(0)

    def later():
        yield sim.timeout(6.0)  # cooldown expires
        return services.cluster.health()

    assert sim.run_process(later())[0] is True


def test_probe_restores_a_recovered_replica_early():
    sim, group, _links, services = _cluster(failure_threshold=1, cooldown=100.0)
    sim.run_process(services.create(KeyCreate(audit_id=AUDIT_ID)))
    group.crash(0)
    sim.run_process(services.fetch(KeyFetch(audit_id=AUDIT_ID)))
    assert services.cluster.health()[0] is False
    group.recover(0)
    assert sim.run_process(services.cluster.probe(0)) is True
    assert services.cluster.health()[0] is True


def test_create_with_one_replica_down_repairs_the_missed_share():
    sim, group, _links, services = _cluster()
    group.crash(2)
    key = sim.run_process(services.create(KeyCreate(audit_id=AUDIT_ID)))
    assert group.replicas[2]._shard_map(AUDIT_ID).get(AUDIT_ID) is None
    group.recover(2)

    def wait():
        yield sim.timeout(30.0)

    sim.run_process(wait())
    # The background repairer re-uploaded the missed share.
    assert group.replicas[2]._shard_map(AUDIT_ID).get(AUDIT_ID) is not None
    assert services.cluster.metrics.repairs == 1
    got = sim.run_process(services.fetch(KeyFetch(audit_id=AUDIT_ID)))
    assert got == key


def test_revocation_is_fatal_not_retried():
    sim, group, _links, services = _cluster()
    sim.run_process(services.create(KeyCreate(audit_id=AUDIT_ID)))
    group.revoke_device(DEVICE_ID)

    def attempt():
        yield from services.fetch(KeyFetch(audit_id=AUDIT_ID))

    with pytest.raises(RevokedError):
        sim.run_process(attempt())
    assert services.cluster.metrics.retries == 0


def test_merge_dedups_witnesses_and_detects_divergence():
    sim, group, _links, services = _cluster()
    sim.run_process(services.create(KeyCreate(audit_id=AUDIT_ID)))
    sim.run_process(services.fetch(KeyFetch(audit_id=AUDIT_ID)))
    log = ClusterAuditLog(group, threshold=2)
    merged = log.merged()
    # One create (3 witnesses) + one fetch (>= 2 witnesses), not 5 rows.
    assert [m.kind for m in merged] == ["create", "fetch"]
    assert merged[0].witnesses == 3
    assert merged[1].witnesses >= 2
    assert log.divergences(DEVICE_ID) == []

    # A key disclosed on only one replica cannot come from a correct
    # k=2 client: flag it.
    rogue = bytes(reversed(range(24)))
    group.replicas[1].access_log.append(
        sim.now, DEVICE_ID, "fetch", audit_id=rogue
    )
    kinds = [d.kind for d in log.divergences(DEVICE_ID)]
    assert kinds == ["under-replicated"]

    # Revocation on a strict subset of replicas diverges too.
    group.replicas[0].revoke_device(DEVICE_ID)
    kinds = [d.kind for d in log.divergences(DEVICE_ID)]
    assert "revocation-divergence" in kinds


def test_merge_separates_fetches_in_different_windows():
    sim, group, _links, services = _cluster()
    sim.run_process(services.create(KeyCreate(audit_id=AUDIT_ID)))

    def twice():
        yield from services.fetch(KeyFetch(audit_id=AUDIT_ID))
        yield sim.timeout(60.0)  # far beyond the merge window
        yield from services.fetch(KeyFetch(audit_id=AUDIT_ID))

    sim.run_process(twice())
    merged = ClusterAuditLog(group, threshold=2).merged()
    assert [m.kind for m in merged] == ["create", "fetch", "fetch"]


def test_audit_tool_runs_unchanged_over_cluster_log():
    config = KeypadConfig(
        texp=5.0, prefetch="none", ibe_enabled=False
    ).with_replication(2, 3)
    rig = build_keypad_rig(network=LAN, config=config, n_blocks=1 << 14)

    def usage():
        yield from rig.fs.mkdir("/home")
        yield from rig.fs.write_file("/home/secret.txt", b"top secret")
        yield rig.sim.timeout(50.0)

    rig.run(usage())
    t_loss = rig.sim.now
    rig.replica_group.crash(1)  # thief reads with a replica down

    def thief():
        yield from rig.fs.read_all("/home/secret.txt")

    rig.run(thief())
    tool = AuditTool(rig.cluster_audit_log(), rig.metadata_service)
    report = tool.report(t_loss=t_loss, texp=config.texp, device_id=DEVICE_ID)
    assert report.logs_intact
    assert "/home/secret.txt" in report.compromised_paths().values()


def test_rig_guards_phone_and_seed_path_is_untouched():
    config = KeypadConfig().with_replication(2, 3)
    with pytest.raises(ValueError):
        build_keypad_rig(network=LAN, config=config, with_phone=True)
    with pytest.raises(ValueError):
        KeypadConfig().with_replication(4, 3)
    # Default config builds the classic single-service world.
    rig = build_keypad_rig(network=LAN, n_blocks=1 << 14)
    assert rig.replica_group is None
    with pytest.raises(ValueError):
        rig.cluster_audit_log()
