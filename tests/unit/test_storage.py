"""Tests for block device, buffer cache, local FS, and VFS."""

import pytest

from repro.errors import (
    DirectoryNotEmpty,
    DiskError,
    FileExists,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    NotADirectory,
)
from repro.sim import Simulation
from repro.storage import BlockDevice, BufferCache, LocalFileSystem, Vfs
from repro.util.paths import is_ancestor, normalize, parent_of, split


@pytest.fixture()
def rig():
    sim = Simulation()
    device = BlockDevice(sim, n_blocks=4096)
    cache = BufferCache(sim, device, capacity_blocks=256)
    fs = LocalFileSystem(sim, cache)
    return sim, device, cache, fs


def run(sim, gen):
    return sim.run_process(gen)


class TestPaths:
    def test_normalize(self):
        assert normalize("/a/b/c") == "/a/b/c"
        assert normalize("a//b/./c/") == "/a/b/c"
        assert normalize("/") == "/"
        assert normalize("") == "/"

    def test_rejects_dotdot_and_nul(self):
        with pytest.raises(InvalidArgument):
            normalize("/a/../b")
        with pytest.raises(InvalidArgument):
            normalize("/a/b\x00c")

    def test_split_and_parent(self):
        assert split("/a/b") == ["a", "b"]
        assert split("/") == []
        assert parent_of("/a/b") == "/a"
        assert parent_of("/a") == "/"
        with pytest.raises(InvalidArgument):
            parent_of("/")

    def test_is_ancestor(self):
        assert is_ancestor("/a", "/a/b")
        assert is_ancestor("/", "/a")
        assert not is_ancestor("/a/b", "/a")
        assert not is_ancestor("/a", "/a")
        assert not is_ancestor("/a", "/ab")


class TestBlockDevice:
    def test_read_unwritten_block_is_zeroes(self, rig):
        sim, device, _, _ = rig
        data = run(sim, device.read_block(5))
        assert data == bytes(4096)

    def test_write_then_read(self, rig):
        sim, device, _, _ = rig
        payload = b"x" * 4096

        def proc():
            yield from device.write_block(7, payload)
            data = yield from device.read_block(7)
            return data

        assert run(sim, proc()) == payload

    def test_out_of_range_rejected(self, rig):
        sim, device, _, _ = rig
        with pytest.raises(DiskError):
            run(sim, device.read_block(4096))

    def test_short_write_rejected(self, rig):
        sim, device, _, _ = rig
        with pytest.raises(DiskError):
            run(sim, device.write_block(0, b"short"))

    def test_fault_injection(self, rig):
        sim, device, _, _ = rig
        device.fault_hook = lambda op, block: op == "read" and block == 3
        with pytest.raises(DiskError, match="injected"):
            run(sim, device.read_block(3))
        run(sim, device.read_block(4))  # unaffected

    def test_peek_raw_bypasses_simulation(self, rig):
        sim, device, _, _ = rig
        run(sim, device.write_block(2, b"\xaa" * 4096))
        assert device.peek_raw(2) == b"\xaa" * 4096
        assert device.blocks_in_use() == [2]


class TestBufferCache:
    def test_hit_avoids_device_read(self, rig):
        sim, device, cache, _ = rig

        def proc():
            yield from cache.read(9)
            yield from cache.read(9)

        run(sim, proc())
        assert device.reads == 1
        assert cache.hits == 1
        assert cache.misses == 1

    def test_writeback_on_sync(self, rig):
        sim, device, cache, _ = rig

        def proc():
            yield from cache.write(3, b"y" * 4096)
            assert device.writes == 0  # still buffered
            yield from cache.sync()

        run(sim, proc())
        assert device.writes == 1
        assert device.peek_raw(3) == b"y" * 4096

    def test_eviction_writes_dirty_victim(self):
        sim = Simulation()
        device = BlockDevice(sim, n_blocks=64)
        cache = BufferCache(sim, device, capacity_blocks=2)

        def proc():
            yield from cache.write(0, b"a" * 4096)
            yield from cache.write(1, b"b" * 4096)
            yield from cache.write(2, b"c" * 4096)  # evicts block 0

        sim.run_process(proc())
        assert device.peek_raw(0) == b"a" * 4096
        assert cache.dirty_count == 2

    def test_drop_keeps_dirty(self, rig):
        sim, device, cache, _ = rig

        def proc():
            yield from cache.read(1)       # clean
            yield from cache.write(2, b"z" * 4096)  # dirty

        run(sim, proc())
        cache.drop()
        assert cache.dirty_count == 1

        def reread():
            yield from cache.read(2)

        run(sim, reread())
        assert cache.hits >= 1  # dirty block survived the drop


class TestLocalFs:
    def test_create_write_read(self, rig):
        sim, _, _, fs = rig

        def proc():
            yield from fs.create("/hello.txt")
            yield from fs.write("/hello.txt", 0, b"hello world")
            data = yield from fs.read("/hello.txt", 0, 100)
            return data

        assert run(sim, proc()) == b"hello world"

    def test_read_at_offset(self, rig):
        sim, _, _, fs = rig

        def proc():
            yield from fs.create("/f")
            yield from fs.write("/f", 0, b"0123456789")
            data = yield from fs.read("/f", 3, 4)
            return data

        assert run(sim, proc()) == b"3456"

    def test_write_spanning_blocks(self, rig):
        sim, _, _, fs = rig
        payload = bytes(range(256)) * 40  # 10240 bytes > 2 blocks

        def proc():
            yield from fs.create("/big")
            yield from fs.write("/big", 0, payload)
            data = yield from fs.read("/big", 0, len(payload))
            return data

        assert run(sim, proc()) == payload

    def test_overwrite_middle(self, rig):
        sim, _, _, fs = rig

        def proc():
            yield from fs.create("/f")
            yield from fs.write("/f", 0, b"aaaaaaaaaa")
            yield from fs.write("/f", 4, b"BB")
            data = yield from fs.read_all("/f")
            return data

        assert run(sim, proc()) == b"aaaaBBaaaa"

    def test_sparse_write(self, rig):
        sim, _, _, fs = rig

        def proc():
            yield from fs.create("/sparse")
            yield from fs.write("/sparse", 5000, b"tail")
            attr = yield from fs.getattr("/sparse")
            head = yield from fs.read("/sparse", 0, 10)
            return attr.size, head

        size, head = run(sim, proc())
        assert size == 5004
        assert head == bytes(10)

    def test_create_requires_parent(self, rig):
        sim, _, _, fs = rig
        with pytest.raises(FileNotFound):
            run(sim, fs.create("/no/such/dir/f"))

    def test_create_exclusive(self, rig):
        sim, _, _, fs = rig

        def proc():
            yield from fs.create("/f")
            yield from fs.create("/f")

        with pytest.raises(FileExists):
            run(sim, proc())

    def test_mkdir_and_nesting(self, rig):
        sim, _, _, fs = rig

        def proc():
            yield from fs.mkdir("/a")
            yield from fs.mkdir("/a/b")
            yield from fs.create("/a/b/f")
            names = yield from fs.readdir("/a/b")
            attr = yield from fs.getattr("/a/b")
            return names, attr.is_dir

        names, is_dir = run(sim, proc())
        assert names == ["f"]
        assert is_dir

    def test_readdir_on_file_fails(self, rig):
        sim, _, _, fs = rig

        def proc():
            yield from fs.create("/f")
            yield from fs.readdir("/f")

        with pytest.raises(NotADirectory):
            run(sim, proc())

    def test_read_on_dir_fails(self, rig):
        sim, _, _, fs = rig

        def proc():
            yield from fs.mkdir("/d")
            yield from fs.read("/d", 0, 1)

        with pytest.raises(IsADirectory):
            run(sim, proc())

    def test_unlink(self, rig):
        sim, _, _, fs = rig

        def proc():
            yield from fs.create("/f")
            yield from fs.unlink("/f")
            exists = yield from fs.exists("/f")
            return exists

        assert run(sim, proc()) is False

    def test_unlink_missing(self, rig):
        sim, _, _, fs = rig
        with pytest.raises(FileNotFound):
            run(sim, fs.unlink("/ghost"))

    def test_rmdir_empty_only(self, rig):
        sim, _, _, fs = rig

        def proc():
            yield from fs.mkdir("/d")
            yield from fs.create("/d/f")
            yield from fs.rmdir("/d")

        with pytest.raises(DirectoryNotEmpty):
            run(sim, proc())

        def proc2():
            yield from fs.unlink("/d/f")
            yield from fs.rmdir("/d")
            exists = yield from fs.exists("/d")
            return exists

        assert run(sim, proc2()) is False

    def test_rename_file(self, rig):
        sim, _, _, fs = rig

        def proc():
            yield from fs.mkdir("/tmp")
            yield from fs.mkdir("/home")
            yield from fs.create("/tmp/irs_form.pdf")
            yield from fs.write("/tmp/irs_form.pdf", 0, b"tax data")
            yield from fs.rename("/tmp/irs_form.pdf", "/home/prepared_taxes_2011.pdf")
            gone = yield from fs.exists("/tmp/irs_form.pdf")
            data = yield from fs.read_all("/home/prepared_taxes_2011.pdf")
            return gone, data

        gone, data = run(sim, proc())
        assert gone is False
        assert data == b"tax data"

    def test_rename_overwrites_file(self, rig):
        sim, _, _, fs = rig

        def proc():
            yield from fs.create("/a")
            yield from fs.write("/a", 0, b"new")
            yield from fs.create("/b")
            yield from fs.write("/b", 0, b"old-old")
            yield from fs.rename("/a", "/b")
            data = yield from fs.read_all("/b")
            return data

        assert run(sim, proc()) == b"new"

    def test_rename_dir_into_descendant_rejected(self, rig):
        sim, _, _, fs = rig

        def proc():
            yield from fs.mkdir("/a")
            yield from fs.mkdir("/a/b")
            yield from fs.rename("/a", "/a/b/c")

        with pytest.raises(InvalidArgument):
            run(sim, proc())

    def test_rename_dir_over_nonempty_dir_rejected(self, rig):
        sim, _, _, fs = rig

        def proc():
            yield from fs.mkdir("/a")
            yield from fs.mkdir("/b")
            yield from fs.create("/b/f")
            yield from fs.rename("/a", "/b")

        with pytest.raises(DirectoryNotEmpty):
            run(sim, proc())

    def test_rename_noop_same_path(self, rig):
        sim, _, _, fs = rig

        def proc():
            yield from fs.create("/f")
            yield from fs.rename("/f", "/f")
            exists = yield from fs.exists("/f")
            return exists

        assert run(sim, proc()) is True

    def test_truncate_shrink_and_grow(self, rig):
        sim, _, _, fs = rig

        def proc():
            yield from fs.create("/f")
            yield from fs.write("/f", 0, b"0123456789")
            yield from fs.truncate("/f", 4)
            short = yield from fs.read_all("/f")
            yield from fs.write("/f", 6, b"zz")
            regrown = yield from fs.read_all("/f")
            return short, regrown

        short, regrown = run(sim, proc())
        assert short == b"0123"
        assert regrown == b"0123\x00\x00zz"

    def test_xattrs(self, rig):
        sim, _, _, fs = rig

        def proc():
            yield from fs.create("/f")
            yield from fs.set_xattr("/f", "user.tag", b"sensitive")
            value = yield from fs.get_xattr("/f", "user.tag")
            return value

        assert run(sim, proc()) == b"sensitive"

    def test_missing_xattr(self, rig):
        sim, _, _, fs = rig

        def proc():
            yield from fs.create("/f")
            yield from fs.get_xattr("/f", "none")

        with pytest.raises(FileNotFound):
            run(sim, proc())

    def test_unlink_frees_blocks_for_reuse(self, rig):
        sim, _, _, fs = rig

        def proc():
            yield from fs.create("/f")
            yield from fs.write("/f", 0, b"x" * 8192)
            before = len(fs._free_blocks)
            yield from fs.unlink("/f")
            return len(fs._free_blocks) - before

        # The file's two data blocks are freed (the root directory may
        # additionally recycle its own block during the rewrite).
        assert run(sim, proc()) >= 2

    def test_content_reaches_device_after_sync(self, rig):
        sim, device, _, fs = rig

        def proc():
            yield from fs.create("/f")
            yield from fs.write("/f", 0, b"PLAINTEXT-ON-DISK")
            yield from fs.sync()

        run(sim, proc())
        raw = b"".join(device.peek_raw(b) for b in device.blocks_in_use())
        assert b"PLAINTEXT-ON-DISK" in raw

    def test_mtime_advances(self, rig):
        sim, _, _, fs = rig

        def proc():
            yield from fs.create("/f")
            a1 = yield from fs.getattr("/f")
            yield sim.timeout(5.0)
            yield from fs.write("/f", 0, b"x")
            a2 = yield from fs.getattr("/f")
            return a1.mtime, a2.mtime

        t1, t2 = run(sim, proc())
        assert t2 > t1


class TestVfs:
    def test_open_read_write_seek_close(self, rig):
        sim, _, _, fs = rig
        vfs = Vfs(sim, fs)

        def proc():
            handle = yield from vfs.open("/f", create=True)
            yield from vfs.write(handle, b"hello world")
            vfs.seek(handle, 6)
            data = yield from vfs.read(handle, 5)
            vfs.close(handle)
            return data

        assert run(sim, proc()) == b"world"

    def test_open_missing_without_create(self, rig):
        sim, _, _, fs = rig
        vfs = Vfs(sim, fs)
        with pytest.raises(FileNotFound):
            run(sim, vfs.open("/ghost"))

    def test_double_close_rejected(self, rig):
        sim, _, _, fs = rig
        vfs = Vfs(sim, fs)

        def proc():
            handle = yield from vfs.open("/f", create=True)
            vfs.close(handle)
            vfs.close(handle)

        with pytest.raises(InvalidArgument):
            run(sim, proc())

    def test_sequential_reads_advance_position(self, rig):
        sim, _, _, fs = rig
        vfs = Vfs(sim, fs)

        def proc():
            handle = yield from vfs.open("/f", create=True)
            yield from vfs.write(handle, b"abcdef")
            vfs.seek(handle, 0)
            first = yield from vfs.read(handle, 3)
            second = yield from vfs.read(handle, 3)
            return first, second

        assert run(sim, proc()) == (b"abc", b"def")
