"""Fetch idempotency under retries (lost responses must not double-log).

The service durably logs BEFORE replying, so a fetch whose response is
lost to the network has already been recorded; a client that retries
would historically produce a second audit entry for one logical access.
With the retry-token dedup, a retry carrying the same token inside the
expiration window returns the key without a duplicate record — exactly
one entry per logical fetch per window — while tokenless fetches keep
the paper's original log-every-call behaviour byte-for-byte.
"""

from __future__ import annotations

import pytest

from repro.core.services.keyservice import AUDIT_ID_LEN, KeyService
from repro.errors import NetworkUnavailableError, RpcError
from repro.net.link import Link
from repro.net.rpc import RpcChannel
from repro.sim import Simulation

AUDIT_ID = bytes(range(AUDIT_ID_LEN))
DEVICE = "laptop-1"
SECRET = b"device-secret-tests-0123"
RTT = 0.3


def _rig():
    sim = Simulation()
    service = KeyService(sim)
    service.enroll_device(DEVICE, SECRET)
    link = Link(sim, RTT, name="keys")
    channel = RpcChannel(sim, link, service.server, DEVICE, SECRET)
    sim.run_process(channel.call("key.create", audit_id=AUDIT_ID))
    return sim, service, link, channel


def _fetch_entries(service) -> list:
    return service.access_log.entries(kind="fetch")


def _measure_fetch_seconds() -> float:
    sim, _service, _link, channel = _rig()
    start = sim.now
    sim.run_process(channel.call("key.fetch", audit_id=AUDIT_ID))
    return sim.now - start


def _fetch_with_lost_response(retry_params: dict) -> tuple:
    """Drop the link while the fetch response is in flight, then retry.

    Returns (service, outcome of the retry call).
    """
    fetch_seconds = _measure_fetch_seconds()
    sim, service, link, channel = _rig()

    def outage():
        # Down just before the response lands: the server has already
        # appended its audit record, the client sees a network error.
        yield sim.timeout(fetch_seconds - RTT / 4)
        link.set_down()
        yield sim.timeout(RTT)
        link.set_up()

    sim.process(outage())

    def client():
        with pytest.raises(NetworkUnavailableError):
            yield from channel.call("key.fetch", **retry_params)
        assert len(_fetch_entries(service)) == 1  # logged, reply lost
        yield sim.timeout(2 * RTT)  # wait out the outage, then retry
        response = yield from channel.call("key.fetch", **retry_params)
        return response

    response = sim.run_process(client())
    return service, response


def test_lost_response_plus_tokenless_retry_double_logs():
    # The original behaviour (and the bug this PR's tokens fix): the
    # legacy wire format has no way to tell a retry from a new fetch.
    service, response = _fetch_with_lost_response(
        {"audit_id": AUDIT_ID}
    )
    assert len(response["key"]) == 32
    assert len(_fetch_entries(service)) == 2


def test_retry_with_same_token_logs_exactly_once():
    token = b"fetch-attempt-1"
    service, response = _fetch_with_lost_response(
        {"audit_id": AUDIT_ID, "token": token, "window": 100.0}
    )
    assert len(response["key"]) == 32
    entries = _fetch_entries(service)
    assert len(entries) == 1
    assert entries[0].fields["audit_id"] == AUDIT_ID


def test_first_tokened_fetch_still_logs():
    sim, service, _link, channel = _rig()
    sim.run_process(channel.call(
        "key.fetch", audit_id=AUDIT_ID, token=b"t1", window=100.0
    ))
    assert len(_fetch_entries(service)) == 1


def test_token_reuse_after_window_expiry_logs_again():
    sim, service, _link, channel = _rig()

    def client():
        yield from channel.call(
            "key.fetch", audit_id=AUDIT_ID, token=b"t1", window=10.0
        )
        yield sim.timeout(30.0)  # a new expiration window
        yield from channel.call(
            "key.fetch", audit_id=AUDIT_ID, token=b"t1", window=10.0
        )

    sim.run_process(client())
    assert len(_fetch_entries(service)) == 2


def test_distinct_tokens_log_distinct_accesses():
    sim, service, _link, channel = _rig()

    def client():
        for token in (b"t1", b"t2"):
            yield from channel.call(
                "key.fetch", audit_id=AUDIT_ID, token=token, window=100.0
            )

    sim.run_process(client())
    assert len(_fetch_entries(service)) == 2


def test_deduped_retry_still_validates_the_audit_id():
    sim, service, _link, channel = _rig()

    def client():
        yield from channel.call(
            "key.fetch", audit_id=AUDIT_ID, token=b"t1", window=100.0
        )
        # Same token, bogus ID: the dedup path must not hand out keys
        # for IDs the service does not hold.
        with pytest.raises(RpcError):
            yield from channel.call(
                "key.fetch", audit_id=b"\xff" * AUDIT_ID_LEN,
                token=b"t1", window=100.0,
            )

    sim.run_process(client())
