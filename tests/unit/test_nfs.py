"""Tests for the NFS baseline (client caches, async writes, RTT costs)."""

import pytest

from repro.errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    InvalidArgument,
)
from repro.harness import build_nfs_rig
from repro.net import LAN, THREE_G


class TestNfsBasics:
    def test_create_write_read(self):
        rig = build_nfs_rig(LAN)

        def proc():
            yield from rig.fs.mkdir("/d")
            yield from rig.fs.create("/d/f")
            yield from rig.fs.write("/d/f", 0, b"remote data")
            data = yield from rig.fs.read("/d/f", 0, 100)
            return data

        assert rig.run(proc()) == b"remote data"

    def test_data_survives_cache_expiry(self):
        rig = build_nfs_rig(LAN)

        def proc():
            yield from rig.fs.create("/f")
            yield from rig.fs.write("/f", 0, b"payload")
            yield from rig.fs.flush()
            yield rig.sim.timeout(100.0)  # caches stale
            data = yield from rig.fs.read("/f", 0, 7)
            return data

        assert rig.run(proc()) == b"payload"

    def test_getattr_after_write(self):
        rig = build_nfs_rig(LAN)

        def proc():
            yield from rig.fs.create("/f")
            yield from rig.fs.write("/f", 0, b"12345")
            attr = yield from rig.fs.getattr("/f")
            return attr.size

        assert rig.run(proc()) == 5

    def test_rename_and_readdir(self):
        rig = build_nfs_rig(LAN)

        def proc():
            yield from rig.fs.mkdir("/a")
            yield from rig.fs.mkdir("/b")
            yield from rig.fs.create("/a/x")
            yield from rig.fs.write("/a/x", 0, b"content")
            yield from rig.fs.flush()
            yield from rig.fs.rename("/a/x", "/b/y")
            names_a = yield from rig.fs.readdir("/a")
            names_b = yield from rig.fs.readdir("/b")
            data = yield from rig.fs.read("/b/y", 0, 7)
            return names_a, names_b, data

        names_a, names_b, data = rig.run(proc())
        assert names_a == []
        assert names_b == ["y"]
        assert data == b"content"

    def test_unlink_and_rmdir(self):
        rig = build_nfs_rig(LAN)

        def proc():
            yield from rig.fs.mkdir("/d")
            yield from rig.fs.create("/d/f")
            with pytest.raises(DirectoryNotEmpty):
                yield from rig.fs.rmdir("/d")
            yield from rig.fs.unlink("/d/f")
            yield from rig.fs.rmdir("/d")
            exists = yield from rig.fs.exists("/d")
            return exists

        assert rig.run(proc()) is False

    def test_duplicate_create_rejected(self):
        rig = build_nfs_rig(LAN)

        def proc():
            yield from rig.fs.create("/f")
            yield from rig.fs.create("/f")

        with pytest.raises(FileExists):
            rig.run(proc())

    def test_missing_file(self):
        rig = build_nfs_rig(LAN)

        def proc():
            yield from rig.fs.read("/ghost", 0, 1)

        with pytest.raises(FileNotFound):
            rig.run(proc())

    def test_truncate(self):
        rig = build_nfs_rig(LAN)

        def proc():
            yield from rig.fs.create("/f")
            yield from rig.fs.write("/f", 0, b"0123456789")
            yield from rig.fs.flush()
            yield from rig.fs.truncate("/f", 4)
            yield rig.sim.timeout(100.0)
            data = yield from rig.fs.read_all("/f")
            return data

        assert rig.run(proc()) == b"0123"

    def test_no_xattr_support(self):
        rig = build_nfs_rig(LAN)

        def proc():
            yield from rig.fs.create("/f")
            yield from rig.fs.set_xattr("/f", "user.x", b"v")

        with pytest.raises(InvalidArgument):
            rig.run(proc())


class TestNfsPerformance:
    def test_async_writes_hide_rtt(self):
        rig = build_nfs_rig(THREE_G)

        def proc():
            yield from rig.fs.create("/f")
            t0 = rig.sim.now
            for i in range(10):
                yield from rig.fs.write("/f", i * 100, b"x" * 100)
            return rig.sim.now - t0

        elapsed = rig.run(proc())
        # Ten writes over 3G would cost 3s if synchronous; the async
        # buffer makes them near-free on the critical path.
        assert elapsed < 0.1

    def test_cold_reads_pay_rtt(self):
        rig = build_nfs_rig(THREE_G)

        def proc():
            yield from rig.fs.create("/f")
            yield from rig.fs.write("/f", 0, b"y" * 100)
            yield from rig.fs.flush()
            yield rig.sim.timeout(100.0)  # caches stale
            t0 = rig.sim.now
            yield from rig.fs.read("/f", 0, 100)
            return rig.sim.now - t0

        elapsed = rig.run(proc())
        assert elapsed >= 0.3  # at least one full RTT

    def test_warm_cache_read_is_local(self):
        rig = build_nfs_rig(THREE_G)

        def proc():
            yield from rig.fs.create("/f")
            yield from rig.fs.write("/f", 0, b"y" * 100)
            t0 = rig.sim.now
            yield from rig.fs.read("/f", 0, 100)  # page cache hit
            return rig.sim.now - t0

        assert rig.run(proc()) < 0.01

    def test_lookup_cache_amortizes_path_walks(self):
        rig = build_nfs_rig(THREE_G)

        def proc():
            yield from rig.fs.mkdir("/a")
            yield from rig.fs.mkdir("/a/b")
            yield from rig.fs.create("/a/b/f")
            count_before = rig.fs.rpc_count
            yield from rig.fs.exists("/a/b/f")
            return rig.fs.rpc_count - count_before

        assert rig.run(proc()) == 0  # fully cached walk
