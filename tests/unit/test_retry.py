"""Tests for the shared retry policy and generator retry loop."""

import random

import pytest

from repro.core.context import OpContext
from repro.errors import (
    DeadlineExpiredError,
    RevokedError,
    ServiceUnavailableError,
)
from repro.sim import Simulation
from repro.util.retry import RetryPolicy, retrying


class TestRetryPolicy:
    def test_delay_matches_legacy_cluster_formula(self):
        policy = RetryPolicy(base=0.25, cap=4.0, max_attempts=4, jitter=0.5)
        rng = random.Random(7)
        for attempt in range(8):
            u = rng.random()
            legacy = min(4.0, 0.25 * (2.0 ** attempt)) * (0.5 + 0.5 * u)
            assert policy.delay(attempt, u) == pytest.approx(legacy)

    def test_delay_caps(self):
        policy = RetryPolicy(base=1.0, cap=3.0, jitter=0.0)
        assert policy.delay(0) == pytest.approx(1.0)
        assert policy.delay(1) == pytest.approx(2.0)
        assert policy.delay(2) == pytest.approx(3.0)
        assert policy.delay(10) == pytest.approx(3.0)

    def test_zero_jitter_ignores_draw(self):
        policy = RetryPolicy(base=0.5, jitter=0.0)
        assert policy.delay(0, 0.0) == policy.delay(0, 0.99)

    def test_should_retry(self):
        policy = RetryPolicy(max_attempts=2)
        assert policy.should_retry(0)
        assert policy.should_retry(1)
        assert not policy.should_retry(2)


def _flaky(failures, error=ServiceUnavailableError):
    """An attempt_fn failing the first ``failures`` tries."""
    calls = []

    def attempt(i):
        calls.append(i)
        if len(calls) <= failures:
            raise error(f"try {i}")
        return "ok"
        yield  # pragma: no cover - generator marker

    return attempt, calls


class TestRetrying:
    def _run(self, sim, gen):
        return sim.run_process(gen)

    def test_retries_then_succeeds(self):
        sim = Simulation()
        attempt, calls = _flaky(2)
        policy = RetryPolicy(base=0.1, max_attempts=4, jitter=0.0)
        result = self._run(
            sim, retrying(sim, attempt, policy, random.Random(0))
        )
        assert result == "ok"
        assert calls == [0, 1, 2]
        # Backoff slept 0.1 then 0.2 sim-seconds.
        assert sim.now == pytest.approx(0.3)

    def test_exhausts_attempts(self):
        sim = Simulation()
        attempt, calls = _flaky(99)
        policy = RetryPolicy(base=0.1, max_attempts=3, jitter=0.0)
        with pytest.raises(ServiceUnavailableError):
            self._run(sim, retrying(sim, attempt, policy, random.Random(0)))
        assert calls == [0, 1, 2, 3]  # initial try + 3 retries

    def test_non_retryable_error_propagates(self):
        sim = Simulation()
        attempt, calls = _flaky(99, error=RevokedError)
        policy = RetryPolicy(max_attempts=5)
        with pytest.raises(RevokedError):
            self._run(sim, retrying(sim, attempt, policy, random.Random(0)))
        assert calls == [0]

    def test_deadline_expired_never_retried(self):
        sim = Simulation()
        attempt, calls = _flaky(99, error=DeadlineExpiredError)
        policy = RetryPolicy(max_attempts=5)
        # DeadlineExpiredError subclasses ServiceUnavailableError but the
        # loop must treat it as terminal.
        with pytest.raises(DeadlineExpiredError):
            self._run(sim, retrying(sim, attempt, policy, random.Random(0)))
        assert calls == [0]

    def test_ctx_budget_caps_retries(self):
        sim = Simulation()
        attempt, calls = _flaky(99)
        policy = RetryPolicy(base=0.1, max_attempts=10, jitter=0.0)
        ctx = OpContext(sim, "read", retry_budget=2)
        with pytest.raises(ServiceUnavailableError):
            self._run(
                sim,
                retrying(sim, attempt, policy, random.Random(0), ctx=ctx),
            )
        assert calls == [0, 1, 2]  # initial try + 2 budgeted retries
        assert ctx.retry_budget == 0

    def test_ctx_deadline_checked_before_attempt(self):
        sim = Simulation()
        attempt, calls = _flaky(99)
        policy = RetryPolicy(base=10.0, max_attempts=10, jitter=0.0)
        ctx = OpContext(sim, "read", deadline=1.0)
        with pytest.raises(DeadlineExpiredError):
            self._run(
                sim,
                retrying(sim, attempt, policy, random.Random(0), ctx=ctx),
            )
        # One failed attempt, then the backoff sleep was clamped to the
        # remaining budget and expiry surfaced before a second attempt.
        assert calls == [0]
        assert sim.now == pytest.approx(1.0)

    def test_backoff_never_sleeps_past_deadline(self):
        sim = Simulation()
        attempt, calls = _flaky(1)
        policy = RetryPolicy(base=100.0, max_attempts=4, jitter=0.0)
        ctx = OpContext(sim, "read", deadline=0.5)
        with pytest.raises(DeadlineExpiredError):
            self._run(
                sim,
                retrying(sim, attempt, policy, random.Random(0), ctx=ctx),
            )
        assert sim.now == pytest.approx(0.5)

    def test_on_retry_callback(self):
        sim = Simulation()
        attempt, _calls = _flaky(2)
        policy = RetryPolicy(base=0.1, max_attempts=4, jitter=0.0)
        seen = []
        self._run(
            sim,
            retrying(
                sim, attempt, policy, random.Random(0),
                on_retry=lambda a, d: seen.append((a, d)),
            ),
        )
        assert seen == [(0, pytest.approx(0.1)), (1, pytest.approx(0.2))]

    def test_rng_draw_order_preserved(self):
        """The loop draws exactly one uniform per retry, in order."""
        sim = Simulation()
        attempt, _calls = _flaky(2)
        policy = RetryPolicy(base=0.1, cap=4.0, max_attempts=4, jitter=0.5)
        rng = random.Random(42)
        expected = random.Random(42)
        expected_delays = [
            min(4.0, 0.1 * (2.0 ** a)) * (0.5 + 0.5 * expected.random())
            for a in range(2)
        ]
        self._run(sim, retrying(sim, attempt, policy, rng))
        assert sim.now == pytest.approx(sum(expected_delays))
