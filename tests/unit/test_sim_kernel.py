"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import Event, Interrupt, Simulation, SimulationError


def test_timeout_advances_clock():
    sim = Simulation()

    def proc():
        yield sim.timeout(1.5)
        return sim.now

    assert sim.run_process(proc()) == pytest.approx(1.5)


def test_timeouts_fire_in_order():
    sim = Simulation()
    fired = []

    def waiter(delay, tag):
        yield sim.timeout(delay)
        fired.append((sim.now, tag))

    sim.process(waiter(3.0, "c"))
    sim.process(waiter(1.0, "a"))
    sim.process(waiter(2.0, "b"))
    sim.run()
    assert fired == [(1.0, "a"), (2.0, "b"), (3.0, "c")]


def test_same_time_events_fifo():
    sim = Simulation()
    fired = []

    def waiter(tag):
        yield sim.timeout(1.0)
        fired.append(tag)

    for tag in "abcd":
        sim.process(waiter(tag))
    sim.run()
    assert fired == ["a", "b", "c", "d"]


def test_negative_timeout_rejected():
    sim = Simulation()
    with pytest.raises(SimulationError):
        sim.timeout(-1)


def test_event_succeed_delivers_value():
    sim = Simulation()
    ev = sim.event()

    def setter():
        yield sim.timeout(2.0)
        ev.succeed("payload")

    def getter():
        value = yield ev
        return (sim.now, value)

    sim.process(setter())
    assert sim.run_process(getter()) == (2.0, "payload")


def test_event_fail_raises_in_waiter():
    sim = Simulation()
    ev = sim.event()

    def setter():
        yield sim.timeout(1.0)
        ev.fail(ValueError("boom"))

    def getter():
        try:
            yield ev
        except ValueError as exc:
            return str(exc)

    sim.process(setter())
    assert sim.run_process(getter()) == "boom"


def test_event_double_trigger_rejected():
    sim = Simulation()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_yield_already_triggered_event():
    sim = Simulation()
    ev = sim.event().succeed("early")

    def getter():
        value = yield ev
        return value

    assert sim.run_process(getter()) == "early"


def test_process_join_returns_value():
    sim = Simulation()

    def child():
        yield sim.timeout(5.0)
        return 42

    def parent():
        value = yield sim.process(child())
        return (sim.now, value)

    assert sim.run_process(parent()) == (5.0, 42)


def test_process_join_propagates_exception():
    sim = Simulation()

    def child():
        yield sim.timeout(1.0)
        raise RuntimeError("child died")

    def parent():
        with pytest.raises(RuntimeError, match="child died"):
            yield sim.process(child())
        return "handled"

    assert sim.run_process(parent()) == "handled"


def test_unhandled_process_exception_surfaces_from_run():
    sim = Simulation()

    def crasher():
        yield sim.timeout(1.0)
        raise RuntimeError("unhandled")

    sim.process(crasher())
    with pytest.raises(RuntimeError, match="unhandled"):
        sim.run()


def test_yielding_non_waitable_is_an_error():
    sim = Simulation()

    def bad():
        yield "nope"

    with pytest.raises(SimulationError):
        sim.run_process(bad())


def test_yielding_negative_delay_is_an_error():
    sim = Simulation()

    def bad():
        yield -1.0

    with pytest.raises(SimulationError):
        sim.run_process(bad())


def test_bare_delay_sleep_matches_timeout():
    """`yield d` sleeps exactly like `yield sim.timeout(d)`."""
    sim = Simulation()
    trace = []

    def sleeper(delay, label):
        yield delay
        trace.append((label, sim.now))
        yield sim.timeout(delay)
        trace.append((label + "'", sim.now))

    sim.process(sleeper(1.0, "a"))
    sim.process(sleeper(0.5, "b"))
    sim.process(sleeper(0.0, "c"))
    sim.run()
    # At t=1.0 "a"'s wakeup (scheduled at t=0) precedes "b'"'s
    # (scheduled at t=0.5) — the same-instant FIFO rule, exactly as if
    # both had used sim.timeout().
    assert trace == [("c", 0.0), ("c'", 0.0), ("b", 0.5), ("a", 1.0),
                     ("b'", 1.0), ("a'", 2.0)]


def test_interrupt_cancels_bare_delay_sleep():
    sim = Simulation()

    def sleeper():
        try:
            yield 100.0
        except Interrupt as exc:
            # Sleep again after the interrupt: the stale wakeup from the
            # first sleep must not resume us early.
            yield 5.0
            return ("interrupted", sim.now, exc.cause)

    proc = sim.process(sleeper())

    def interrupter():
        yield 3.0
        proc.interrupt("now")

    sim.process(interrupter())
    sim.run()
    assert proc.value == ("interrupted", 8.0, "now")


def test_interrupt_wakes_sleeping_process():
    sim = Simulation()

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt as exc:
            return ("interrupted", sim.now, exc.cause)

    def interrupter(target):
        yield sim.timeout(3.0)
        target.interrupt("theft")

    target = sim.process(sleeper())
    sim.process(interrupter(target))
    assert sim.run_until(target) == ("interrupted", 3.0, "theft")


def test_uncaught_interrupt_terminates_quietly():
    sim = Simulation()

    def sleeper():
        yield sim.timeout(100.0)

    target = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(1.0)
        target.interrupt()

    sim.process(interrupter())
    sim.run()
    assert target.triggered and not target.ok


def test_interrupt_after_completion_is_noop():
    sim = Simulation()

    def quick():
        yield sim.timeout(1.0)
        return "done"

    proc = sim.process(quick())
    sim.run()
    proc.interrupt()  # must not raise
    assert proc.value == "done"


def test_queue_fifo_and_blocking():
    sim = Simulation()
    q = sim.queue()
    got = []

    def consumer():
        for _ in range(3):
            item = yield q.get()
            got.append((sim.now, item))

    def producer():
        q.put("x")  # consumer not yet waiting at t=0? it is; either way FIFO
        yield sim.timeout(2.0)
        q.put("y")
        yield sim.timeout(2.0)
        q.put("z")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert [item for _, item in got] == ["x", "y", "z"]
    assert got[-1][0] == 4.0


def test_all_of_collects_values():
    sim = Simulation()

    def child(delay, value):
        yield sim.timeout(delay)
        return value

    def parent():
        procs = [sim.process(child(d, d * 10)) for d in (3.0, 1.0, 2.0)]
        values = yield sim.all_of(procs)
        return (sim.now, values)

    assert sim.run_process(parent()) == (3.0, [30.0, 10.0, 20.0])


def test_all_of_empty():
    sim = Simulation()

    def parent():
        values = yield sim.all_of([])
        return values

    assert sim.run_process(parent()) == []


def test_run_until_deadlock_detected():
    sim = Simulation()
    ev = sim.event()

    def getter():
        yield ev

    proc = sim.process(getter())
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_until(proc)


def test_run_with_until_stops_clock():
    sim = Simulation()

    def ticker():
        while True:
            yield sim.timeout(10.0)

    sim.process(ticker())
    assert sim.run(until=35.0) == 35.0
    assert sim.now == 35.0


def test_nested_processes_compose():
    sim = Simulation()

    def leaf(n):
        yield sim.timeout(1.0)
        return n * 2

    def mid(n):
        value = yield sim.process(leaf(n))
        return value + 1

    def top():
        a = yield sim.process(mid(5))
        b = yield sim.process(mid(a))
        return b

    assert sim.run_process(top()) == 23


def test_any_of_returns_first_winner_index_and_value():
    sim = Simulation()

    def racer():
        winner = yield sim.any_of(
            [sim.timeout(5.0, value="slow"), sim.timeout(1.0, value="fast")]
        )
        return winner

    assert sim.run_process(racer()) == (1, "fast")
    assert sim.now == pytest.approx(1.0)


def test_any_of_with_processes_discards_the_loser():
    sim = Simulation()
    finished = []

    def worker(delay, tag):
        yield sim.timeout(delay)
        finished.append(tag)
        return tag

    def racer():
        procs = [sim.process(worker(2.0, "a")), sim.process(worker(1.0, "b"))]
        index, value = yield sim.any_of(procs)
        return index, value

    proc = sim.run_process(racer())
    assert proc == (1, "b")
    sim.run()  # the loser keeps running to completion
    assert finished == ["b", "a"]


def test_any_of_first_failure_wins():
    sim = Simulation()

    def failing():
        yield sim.timeout(0.5)
        raise ValueError("boom")

    def racer():
        yield sim.any_of([sim.timeout(10.0), sim.process(failing())])

    with pytest.raises(ValueError, match="boom"):
        sim.run_process(racer())
    assert sim.now == pytest.approx(0.5)


def test_any_of_rejects_empty_input():
    sim = Simulation()
    with pytest.raises(SimulationError):
        sim.any_of([])


def test_any_of_loser_can_be_interrupted():
    sim = Simulation()
    state = {}

    def slow():
        try:
            yield sim.timeout(100.0)
        except Interrupt:
            state["interrupted_at"] = sim.now
            return "stopped"

    def racer():
        proc = sim.process(slow())
        index, _value = yield sim.any_of([proc, sim.timeout(1.0)])
        if index == 1:
            proc.interrupt("deadline")
        return index

    assert sim.run_process(racer()) == 1
    sim.run()
    assert state["interrupted_at"] == pytest.approx(1.0)
