"""Unit tests for Keypad components: headers, cache, prefetch, services."""

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.crypto.ibe import TOY, PrivateKeyGenerator, get_params
from repro.encfs import Volume
from repro.errors import CryptoError, IntegrityError, RevokedError, RpcError
from repro.net import Link
from repro.net.rpc import RpcChannel
from repro.sim import Simulation
from repro.core import (
    DirectoryPrefetch,
    KeyCache,
    KeyService,
    MetadataService,
    NoPrefetch,
    RandomPrefetch,
    identity_string,
    make_policy,
)
from repro.core.header import (
    KEYPAD_HEADER_LEN,
    KeypadHeader,
    pack_header,
    parse_header,
    unwrap_data_key,
    wrap_data_key,
)
from repro.auditstore.log import AppendOnlyLog
from repro.core.services.metadataservice import parse_identity


class TestLogStore:
    def test_append_and_query(self):
        log = AppendOnlyLog()
        log.append(1.0, "dev", "fetch", audit_id=b"a")
        log.append(2.0, "dev", "fetch", audit_id=b"b")
        log.append(3.0, "other", "create", audit_id=b"c")
        assert len(log) == 3
        assert [e.fields["audit_id"] for e in log.entries(since=2.0)] == [b"b", b"c"]
        assert [e.fields["audit_id"] for e in log.entries(device_id="dev")] == [b"a", b"b"]
        assert [e.fields["audit_id"] for e in log.entries(kind="create")] == [b"c"]

    def test_chain_verifies(self):
        log = AppendOnlyLog()
        for i in range(10):
            log.append(float(i), "dev", "fetch", audit_id=bytes([i]))
        assert log.verify_chain()

    def test_tamper_detected(self):
        log = AppendOnlyLog()
        log.append(1.0, "dev", "fetch", audit_id=b"a")
        log.append(2.0, "dev", "fetch", audit_id=b"b")
        # A thief rewriting history in place breaks the chain.
        tampered = log._entries[0]
        object.__setattr__(tampered, "fields", {"audit_id": b"z"})
        assert not log.verify_chain()

    def test_entry_describe(self):
        log = AppendOnlyLog()
        entry = log.append(1.5, "laptop", "fetch", audit_id=b"\x01")
        text = entry.describe()
        assert "laptop" in text and "fetch" in text


class TestKeypadHeader:
    VOLUME = Volume("pw")

    def _drbg(self):
        return HmacDrbg(b"header-tests")

    def test_wrap_unwrap_roundtrip(self):
        drbg = self._drbg()
        kd = drbg.generate(32)
        kr = drbg.generate(32)
        blob = wrap_data_key(kd, kr, drbg)
        assert unwrap_data_key(blob, kr) == kd

    def test_unwrap_wrong_key_fails(self):
        drbg = self._drbg()
        blob = wrap_data_key(drbg.generate(32), b"k" * 32, drbg)
        with pytest.raises(IntegrityError):
            unwrap_data_key(blob, b"x" * 32)

    def test_normal_header_roundtrip(self):
        drbg = self._drbg()
        header = KeypadHeader(
            protected=True,
            audit_id=drbg.generate(24),
            wrapped_kd=wrap_data_key(drbg.generate(32), b"r" * 32, drbg),
        )
        raw = pack_header(header, self.VOLUME, drbg)
        assert len(raw) == KEYPAD_HEADER_LEN
        parsed = parse_header(raw, self.VOLUME)
        assert parsed == header

    def test_unprotected_header_roundtrip(self):
        drbg = self._drbg()
        header = KeypadHeader(protected=False, file_iv=drbg.generate(16))
        raw = pack_header(header, self.VOLUME, drbg)
        parsed = parse_header(raw, self.VOLUME)
        assert parsed == header
        assert not parsed.locked

    def test_locked_header_roundtrip(self):
        drbg = self._drbg()
        params = get_params(TOY)
        pkg = PrivateKeyGenerator(TOY)
        audit_id = drbg.generate(24)
        identity = identity_string("d-1", "taxes.pdf", audit_id)
        wrapped = wrap_data_key(drbg.generate(32), b"r" * 32, drbg)
        blob = pkg.public().encrypt(identity, wrapped)
        header = KeypadHeader(
            protected=True, audit_id=audit_id, ibe_blob=blob, identity=identity
        )
        raw = pack_header(header, self.VOLUME, drbg, params)
        parsed = parse_header(raw, self.VOLUME, params)
        assert parsed.locked
        assert parsed.identity == identity
        assert parsed.audit_id == audit_id
        assert parsed.ibe_blob == blob

    def test_header_wrong_volume_fails(self):
        drbg = self._drbg()
        header = KeypadHeader(protected=False, file_iv=drbg.generate(16))
        raw = pack_header(header, self.VOLUME, drbg)
        with pytest.raises(CryptoError):
            parse_header(raw, Volume("other"))

    def test_flag_tamper_detected(self):
        drbg = self._drbg()
        header = KeypadHeader(
            protected=True,
            audit_id=drbg.generate(24),
            wrapped_kd=wrap_data_key(drbg.generate(32), b"r" * 32, drbg),
        )
        raw = bytearray(pack_header(header, self.VOLUME, drbg))
        raw[4] ^= 0x01  # flip the protected flag
        with pytest.raises(CryptoError):
            parse_header(bytes(raw), self.VOLUME)

    def test_bad_magic(self):
        with pytest.raises(CryptoError):
            parse_header(b"\x00" * KEYPAD_HEADER_LEN, self.VOLUME)


class TestIdentityString:
    def test_roundtrip(self):
        audit_id = bytes(range(24))
        ident = identity_string("d-42", "prepared taxes 2011.pdf", audit_id)
        dir_id, name, parsed_id = parse_identity(ident)
        assert (dir_id, name, parsed_id) == ("d-42", "prepared taxes 2011.pdf", audit_id)

    def test_malformed_rejected(self):
        with pytest.raises(RpcError):
            parse_identity(b"no separators here")


class TestKeyCache:
    def test_hit_and_miss(self):
        sim = Simulation()
        cache = KeyCache(sim)
        cache.put(b"id1", b"r" * 32, b"d" * 32, texp=100.0)
        assert cache.get(b"id1").data_key == b"d" * 32
        assert cache.get(b"id2") is None
        assert cache.hits == 1 and cache.misses == 1

    def test_expiry_evicts_unused(self):
        sim = Simulation()
        cache = KeyCache(sim)
        cache.put(b"id1", b"r" * 32, b"d" * 32, texp=10.0)
        sim.run(until=11.0)
        assert cache.get(b"id1") is None
        assert cache.expirations == 1

    def test_used_entry_refreshes(self):
        sim = Simulation()
        calls = []

        def refresher(audit_id):
            calls.append((sim.now, audit_id))
            yield sim.timeout(0.1)
            return b"R" * 32

        cache = KeyCache(sim, refresh_fn=refresher)
        cache.put(b"id1", b"r" * 32, b"d" * 32, texp=10.0)
        cache.get(b"id1")  # mark used
        sim.run(until=15.0)
        assert calls and calls[0][1] == b"id1"
        entry = cache.get(b"id1")
        assert entry is not None
        assert entry.remote_key == b"R" * 32

    def test_refresh_failure_evicts(self):
        from repro.errors import NetworkUnavailableError

        sim = Simulation()

        def refresher(audit_id):
            yield sim.timeout(0.1)
            raise NetworkUnavailableError("offline")

        cache = KeyCache(sim, refresh_fn=refresher)
        cache.put(b"id1", b"r" * 32, b"d" * 32, texp=10.0)
        cache.get(b"id1")
        sim.run(until=15.0)
        assert cache.get(b"id1") is None

    def test_restrict_shortens_only(self):
        sim = Simulation()
        cache = KeyCache(sim)
        cache.put(b"id1", b"r" * 32, b"d" * 32, texp=100.0)
        cache.restrict(b"id1", 1.0)
        assert cache.peek(b"id1").expires_at == pytest.approx(1.0)
        cache.restrict(b"id1", 50.0)  # longer: no-op
        assert cache.peek(b"id1").expires_at == pytest.approx(1.0)

    def test_evict_all_erases(self):
        sim = Simulation()
        cache = KeyCache(sim)
        cache.put(b"id1", b"r" * 32, b"d" * 32, texp=100.0)
        entry = cache.peek(b"id1")
        count = cache.evict_all()
        assert count == 1
        assert entry.data_key == b"\x00" * 32  # securely erased
        assert cache.snapshot() == {}

    def test_snapshot_excludes_expired(self):
        sim = Simulation()
        cache = KeyCache(sim)
        cache.put(b"id1", b"r" * 32, b"d" * 32, texp=5.0)
        cache.put(b"id2", b"r" * 32, b"d" * 32, texp=50.0)
        sim.run(until=10.0)
        assert set(cache.snapshot()) == {b"id2"}

    def test_occupancy_average(self):
        sim = Simulation()
        cache = KeyCache(sim)
        cache.put(b"id1", b"r" * 32, b"d" * 32, texp=10.0)
        sim.run(until=20.0)
        # One key resident for 10 of 20 seconds → average 0.5.
        assert cache.occupancy.average(sim.now) == pytest.approx(0.5, abs=0.05)
        assert cache.occupancy.peak == 1


class TestPrefetchPolicies:
    def test_no_prefetch(self):
        policy = NoPrefetch()
        for _ in range(10):
            decision = policy.on_miss("/dir")
            assert not decision.whole_directory and decision.sample_count == 0

    def test_directory_prefetch_triggers_on_nth(self):
        policy = DirectoryPrefetch(miss_threshold=3)
        assert not policy.on_miss("/d").whole_directory
        assert not policy.on_miss("/d").whole_directory
        assert policy.on_miss("/d").whole_directory

    def test_directory_counters_independent(self):
        policy = DirectoryPrefetch(miss_threshold=2)
        policy.on_miss("/a")
        assert not policy.on_miss("/b").whole_directory
        assert policy.on_miss("/a").whole_directory

    def test_rearm_after_prefetch(self):
        policy = DirectoryPrefetch(miss_threshold=2)
        policy.on_miss("/d")
        assert policy.on_miss("/d").whole_directory
        policy.on_directory_prefetched("/d")
        assert not policy.on_miss("/d").whole_directory
        assert policy.on_miss("/d").whole_directory

    def test_random_prefetch(self):
        policy = RandomPrefetch(sample_count=4)
        assert policy.on_miss("/d").sample_count == 4

    def test_make_policy(self):
        assert isinstance(make_policy("none"), NoPrefetch)
        assert make_policy("dir:5").miss_threshold == 5
        assert make_policy("random:7").sample_count == 7
        assert make_policy("dir").miss_threshold == 3
        with pytest.raises(ValueError):
            make_policy("bogus")

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            DirectoryPrefetch(miss_threshold=0)
        with pytest.raises(ValueError):
            RandomPrefetch(sample_count=0)


def _service_rig(network_rtt=0.0):
    sim = Simulation()
    service = KeyService(sim, seed=b"test")
    link = Link(sim, rtt=network_rtt)
    secret = b"s" * 32
    service.enroll_device("laptop", secret)
    channel = RpcChannel(sim, link, service.server, "laptop", secret)
    return sim, service, channel


class TestKeyService:
    def test_create_then_fetch(self):
        sim, service, channel = _service_rig()
        audit_id = b"a" * 24

        def proc():
            created = yield from channel.call("key.create", audit_id=audit_id)
            fetched = yield from channel.call("key.fetch", audit_id=audit_id)
            return created["key"], fetched["key"]

        created, fetched = sim.run_process(proc())
        assert created == fetched
        assert len(created) == 32
        kinds = [e.kind for e in service.access_log]
        assert kinds == ["create", "fetch"]

    def test_fetch_unknown_id(self):
        sim, _service, channel = _service_rig()

        def proc():
            yield from channel.call("key.fetch", audit_id=b"x" * 24)

        with pytest.raises(RpcError):
            sim.run_process(proc())

    def test_duplicate_create_rejected(self):
        sim, _service, channel = _service_rig()

        def proc():
            yield from channel.call("key.create", audit_id=b"a" * 24)
            yield from channel.call("key.create", audit_id=b"a" * 24)

        with pytest.raises(RpcError):
            sim.run_process(proc())

    def test_put_idempotent(self):
        sim, _service, channel = _service_rig()

        def proc():
            yield from channel.call("key.put", audit_id=b"a" * 24, key=b"k" * 32)
            yield from channel.call("key.put", audit_id=b"a" * 24, key=b"k" * 32)
            fetched = yield from channel.call("key.fetch", audit_id=b"a" * 24)
            return fetched["key"]

        assert sim.run_process(proc()) == b"k" * 32

    def test_put_conflicting_key_rejected(self):
        sim, _service, channel = _service_rig()

        def proc():
            yield from channel.call("key.put", audit_id=b"a" * 24, key=b"k" * 32)
            yield from channel.call("key.put", audit_id=b"a" * 24, key=b"x" * 32)

        with pytest.raises(RpcError):
            sim.run_process(proc())

    def test_revocation_blocks_fetch(self):
        sim, service, channel = _service_rig()

        def setup():
            yield from channel.call("key.create", audit_id=b"a" * 24)

        sim.run_process(setup())
        service.revoke_device("laptop")

        def fetch():
            yield from channel.call("key.fetch", audit_id=b"a" * 24)

        with pytest.raises(RevokedError):
            sim.run_process(fetch())
        # The denial itself is logged.
        assert any(e.kind == "denied" for e in service.access_log)

    def test_batch_fetch_logs_each(self):
        sim, service, channel = _service_rig()

        def proc():
            for i in range(3):
                yield from channel.call("key.create", audit_id=bytes([i]) * 24)
            result = yield from channel.call(
                "key.fetch_batch",
                audit_ids=[bytes([0]) * 24, bytes([1]) * 24, b"?" * 24],
                kind="prefetch",
            )
            return result["keys"]

        keys = sim.run_process(proc())
        assert len(keys) == 3
        assert keys[2] == b""  # unknown ID skipped
        prefetches = [e for e in service.access_log if e.kind == "prefetch"]
        assert len(prefetches) == 2

    def test_report_batch_preserves_timestamps(self):
        sim, service, channel = _service_rig()

        def proc():
            yield sim.timeout(100.0)
            yield from channel.call(
                "key.report_batch",
                records=[
                    {"audit_id": b"a" * 24, "timestamp": 42.5, "kind": "paired-fetch"}
                ],
            )

        sim.run_process(proc())
        entry = next(e for e in service.access_log if e.kind == "paired-fetch")
        assert entry.timestamp == pytest.approx(42.5)

    def test_malformed_audit_id(self):
        sim, _service, channel = _service_rig()

        def proc():
            yield from channel.call("key.create", audit_id=b"short")

        with pytest.raises(RpcError):
            sim.run_process(proc())


class TestMetadataService:
    def _rig(self):
        sim = Simulation()
        service = MetadataService(sim, ibe_params=TOY, master_seed=b"test-pkg")
        link = Link(sim, rtt=0.0)
        secret = b"s" * 32
        service.enroll_device("laptop", secret)
        channel = RpcChannel(sim, link, service.server, "laptop", secret)
        return sim, service, channel

    def test_register_and_path_reconstruction(self):
        sim, service, channel = self._rig()
        audit_id = b"a" * 24

        def proc():
            yield from channel.call(
                "meta.register_dir", dir_id="d-home", parent_id="d-root",
                name="home",
            )
            yield from channel.call(
                "meta.register_dir", dir_id="d-docs", parent_id="d-home",
                name="docs",
            )
            yield from channel.call(
                "meta.register", audit_id=audit_id, dir_id="d-docs",
                name="taxes.pdf",
            )

        sim.run_process(proc())
        assert service.path_of(audit_id) == "/home/docs/taxes.pdf"

    def test_rename_history_append_only(self):
        sim, service, channel = self._rig()
        audit_id = b"a" * 24

        def proc():
            yield from channel.call(
                "meta.register", audit_id=audit_id, dir_id="d-root",
                name="irs_form.pdf",
            )
            yield sim.timeout(10.0)
            yield from channel.call(
                "meta.register", audit_id=audit_id, dir_id="d-root",
                name="prepared_taxes_2011.pdf",
            )

        sim.run_process(proc())
        history = service.history_of(audit_id)
        assert [h["name"] for h in history] == [
            "irs_form.pdf", "prepared_taxes_2011.pdf",
        ]
        assert service.path_of(audit_id) == "/prepared_taxes_2011.pdf"
        assert service.metadata_log.verify_chain()

    def test_ibe_registration_returns_working_key(self):
        sim, service, channel = self._rig()
        audit_id = b"a" * 24
        identity = identity_string("d-root", "secret.doc", audit_id)
        pub = service.pkg.public()
        ciphertext = pub.encrypt(identity, b"wrapped-key-bytes")

        def proc():
            response = yield from channel.call(
                "meta.register_ibe", identity=identity
            )
            return response

        response = sim.run_process(proc())
        from repro.crypto.ibe import decrypt
        from repro.crypto.ibe.boneh_franklin import IbePrivateKey
        from repro.crypto.ibe.curve import Point
        from repro.crypto.ibe.fp2 import Fp2

        params = service.pkg.params
        key = IbePrivateKey(
            identity=identity,
            point=Point(
                Fp2.from_int(response["point_x"], params.p),
                Fp2.from_int(response["point_y"], params.p),
            ),
        )
        assert decrypt(params, key, ciphertext) == b"wrapped-key-bytes"
        # The registration was recorded with the parsed path tuple.
        assert service.path_of(audit_id) == "/secret.doc"

    def test_ibe_registration_with_wrong_path_gives_useless_key(self):
        sim, service, channel = self._rig()
        audit_id = b"a" * 24
        true_identity = identity_string("d-root", "secret.doc", audit_id)
        ciphertext = service.pkg.public().encrypt(true_identity, b"payload")
        lie = identity_string("d-root", "innocuous.tmp", audit_id)

        def proc():
            response = yield from channel.call("meta.register_ibe", identity=lie)
            return response

        response = sim.run_process(proc())
        from repro.crypto.ibe import decrypt
        from repro.crypto.ibe.boneh_franklin import IbePrivateKey
        from repro.crypto.ibe.curve import Point
        from repro.crypto.ibe.fp2 import Fp2

        params = service.pkg.params
        key = IbePrivateKey(
            identity=lie,
            point=Point(
                Fp2.from_int(response["point_x"], params.p),
                Fp2.from_int(response["point_y"], params.p),
            ),
        )
        with pytest.raises((IntegrityError, CryptoError)):
            decrypt(params, key, ciphertext)

    def test_unknown_parent_rejected(self):
        sim, _service, channel = self._rig()

        def proc():
            yield from channel.call(
                "meta.register_dir", dir_id="d-x", parent_id="d-ghost", name="x"
            )

        with pytest.raises(RpcError):
            sim.run_process(proc())
