"""Tests for the extensions: FullIdent IBE and the raw-disk parser."""

import pytest

from repro.crypto.ibe import TOY, PrivateKeyGenerator
from repro.crypto.ibe.fullident import (
    FullIdentCiphertext,
    fullident_decrypt,
    make_fullident_public,
)
from repro.errors import CryptoError, FileNotFound
from repro.harness import build_encfs_rig, build_ext3_rig
from repro.storage.fsck import parse_raw_disk


@pytest.fixture(scope="module")
def pkg():
    return PrivateKeyGenerator(TOY, master_seed=b"fullident-tests")


class TestFullIdent:
    def _public(self, pkg):
        return make_fullident_public(pkg.params, pkg.public_point)

    def test_roundtrip(self, pkg):
        pub = self._public(pkg)
        ct = pub.encrypt_fullident(b"identity", b"the message")
        sk = pkg.extract(b"identity")
        assert fullident_decrypt(pkg.params, sk, ct) == b"the message"

    def test_wrong_key_rejected(self, pkg):
        pub = self._public(pkg)
        ct = pub.encrypt_fullident(b"identity-A", b"payload")
        with pytest.raises(CryptoError):
            fullident_decrypt(pkg.params, pkg.extract(b"identity-B"), ct)

    def test_mauled_w_rejected(self, pkg):
        """The CCA property BasicIdent lacks: flipping message bits is
        detected by the re-encryption check."""
        pub = self._public(pkg)
        ct = pub.encrypt_fullident(b"id", b"payload")
        mauled = FullIdentCiphertext(
            u_x=ct.u_x, u_y=ct.u_y, v=ct.v,
            w=bytes([ct.w[0] ^ 1]) + ct.w[1:],
        )
        with pytest.raises(CryptoError):
            fullident_decrypt(pkg.params, pkg.extract(b"id"), mauled)

    def test_mauled_v_rejected(self, pkg):
        pub = self._public(pkg)
        ct = pub.encrypt_fullident(b"id", b"payload")
        mauled = FullIdentCiphertext(
            u_x=ct.u_x, u_y=ct.u_y,
            v=bytes([ct.v[0] ^ 1]) + ct.v[1:], w=ct.w,
        )
        with pytest.raises(CryptoError):
            fullident_decrypt(pkg.params, pkg.extract(b"id"), mauled)

    def test_off_curve_u_rejected(self, pkg):
        pub = self._public(pkg)
        ct = pub.encrypt_fullident(b"id", b"payload")
        bogus = FullIdentCiphertext(
            u_x=ct.u_x + 1, u_y=ct.u_y, v=ct.v, w=ct.w
        )
        with pytest.raises(CryptoError):
            fullident_decrypt(pkg.params, pkg.extract(b"id"), bogus)

    def test_randomized(self, pkg):
        pub = self._public(pkg)
        c1 = pub.encrypt_fullident(b"id", b"m")
        c2 = pub.encrypt_fullident(b"id", b"m")
        assert (c1.u_x, c1.v) != (c2.u_x, c2.v)

    def test_empty_message(self, pkg):
        pub = self._public(pkg)
        ct = pub.encrypt_fullident(b"id", b"")
        assert fullident_decrypt(pkg.params, pkg.extract(b"id"), ct) == b""


class TestRawDiskParser:
    def test_reconstructs_tree_and_content(self):
        rig = build_ext3_rig(n_blocks=1 << 14)

        def populate():
            yield from rig.fs.mkdir("/docs")
            yield from rig.fs.mkdir("/docs/sub")
            yield from rig.fs.create("/docs/a.txt")
            yield from rig.fs.write("/docs/a.txt", 0, b"hello raw disk")
            yield from rig.fs.create("/docs/sub/b.bin")
            yield from rig.fs.write("/docs/sub/b.bin", 0, b"\x01" * 9000)
            yield from rig.fs.sync()

        rig.run(populate())
        image = parse_raw_disk(rig.device)
        assert image.listdir("/") == ["docs"]
        assert image.listdir("/docs") == ["a.txt", "sub"]
        assert image.read_file("/docs/a.txt") == b"hello raw disk"
        assert image.read_file("/docs/sub/b.bin") == b"\x01" * 9000
        assert image.walk_files() == ["/docs/a.txt", "/docs/sub/b.bin"]

    def test_offsets(self):
        rig = build_ext3_rig(n_blocks=1 << 14)

        def populate():
            yield from rig.fs.create("/f")
            yield from rig.fs.write("/f", 0, b"0123456789")
            yield from rig.fs.sync()

        rig.run(populate())
        image = parse_raw_disk(rig.device)
        assert image.read_file("/f", offset=3, size=4) == b"3456"

    def test_unsynced_disk_rejected(self):
        rig = build_ext3_rig(n_blocks=1 << 14)
        with pytest.raises(FileNotFound):
            parse_raw_disk(rig.device)

    def test_works_from_snapshot(self):
        rig = build_ext3_rig(n_blocks=1 << 14)

        def populate():
            yield from rig.fs.create("/f")
            yield from rig.fs.write("/f", 0, b"snapshot me")
            yield from rig.fs.sync()

        rig.run(populate())
        snapshot = rig.device.snapshot()  # the thief's dd image
        image = parse_raw_disk(snapshot, block_size=4096)
        assert image.read_file("/f") == b"snapshot me"

    def test_encfs_disk_shows_only_ciphertext(self):
        """Parsing an EncFS-backed disk: tree structure is visible
        (encrypted names), content is ciphertext."""
        rig = build_encfs_rig(n_blocks=1 << 14)
        secret = b"attorney-client privileged"

        def populate():
            yield from rig.fs.mkdir("/legal")
            yield from rig.fs.create("/legal/brief.doc")
            yield from rig.fs.write("/legal/brief.doc", 0, secret)
            yield from rig.lower.sync()

        rig.run(populate())
        image = parse_raw_disk(rig.device)
        files = image.walk_files()
        assert len(files) == 1
        assert "legal" not in files[0]  # names are encrypted
        raw = image.read_file(files[0])
        assert secret not in raw  # content is ciphertext
        # But the legitimate volume key decrypts the name.
        stored_name = files[0].rsplit("/", 1)[1]
        assert rig.volume.decrypt_name(stored_name) == "brief.doc"
