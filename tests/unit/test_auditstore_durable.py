"""Unit tests for the durable audit store: the blob namespace on the
storage seam, the segment/checkpoint codec, segment spill and group
commit under each flush policy, and kill-anywhere crash recovery."""

from __future__ import annotations

import pytest

from repro.auditstore import (
    BlobImage,
    DurableAuditStore,
    FLUSH_POLICIES,
    SegmentedAuditStore,
    decode_checkpoint,
    decode_segment,
    encode_checkpoint,
    encode_segment,
    make_audit_log,
)
from repro.auditstore.durable import _segment_blob_name
from repro.cluster.merge import ClusterAuditLog
from repro.cluster.replica import ReplicaGroup
from repro.core.services.keyservice import KeyService
from repro.costmodel import DEFAULT_COSTS
from repro.errors import AuditRecoveryError, ConfigError, FileExists
from repro.sim import Simulation
from repro.storage.backend import BlobStore, make_backend, volume_contents

GENESIS = b"\x00" * 32


def _durable(backend="memory", segment_entries=4, flush_policy="every-seal",
             flush_every=64, namespace="audit/test"):
    store = BlobStore(backend, DEFAULT_COSTS)
    log = DurableAuditStore.create(
        store.namespace(namespace),
        name="key-access",
        segment_entries=segment_entries,
        flush_policy=flush_policy,
        flush_every=flush_every,
    )
    return log, store


def _fill(log, n=10, t0=0.0, device="dev-1"):
    for i in range(n):
        log.append(t0 + i * 1.0, device, "fetch",
                   audit_id=bytes([i % 5]) * 24)


def _recover(ns, segment_entries=4, **kwargs):
    return DurableAuditStore.recover(
        BlobImage(ns.snapshot()),
        name="key-access",
        segment_entries=segment_entries,
        **kwargs,
    )


class TestBlobStore:
    def test_write_once_by_default(self):
        store = BlobStore("memory", DEFAULT_COSTS)
        store.put("a", b"one")
        with pytest.raises(FileExists):
            store.put("a", b"two")
        store.put("a", b"two", overwrite=True)
        assert store.get("a") == b"two"

    def test_namespace_isolates_and_strips_prefix(self):
        store = BlobStore("memory", DEFAULT_COSTS)
        ns_a = store.namespace("audit/a")
        ns_b = store.namespace("audit/b")
        ns_a.put("tail", b"x")
        assert ns_a.names() == ["tail"]
        assert ns_b.names() == []
        assert store.names() == ["audit/a/tail"]

    def test_memory_puts_are_free_ext3_are_not(self):
        free = BlobStore("memory", DEFAULT_COSTS)
        paid = BlobStore("ext3", DEFAULT_COSTS)
        assert free.put("a", b"x" * 5000) == 0.0
        assert paid.put("a", b"x" * 5000) > 0.0
        # two 4096-byte blocks for 5000 bytes
        assert paid.stats()["bytes_written"] == 5000

    def test_cas_deduplicates_chunk_cost(self):
        store = BlobStore("cas", DEFAULT_COSTS)
        first = store.put("a", b"y" * 4096)
        second = store.put("b", b"y" * 4096)  # same content, new name
        assert second < first

    def test_volume_contents_lists_blobs(self):
        sim = Simulation()
        backend = make_backend("memory")
        stack = backend.create(sim, DEFAULT_COSTS)
        stack.blobs.put("audit/svc/seg-00000000", b"data")
        present = sim.run_process(volume_contents(stack.fs, stack.blobs))
        assert "blob:audit/svc/seg-00000000" in present


class TestCodec:
    def test_segment_roundtrip_sealed_and_tail(self):
        inner = SegmentedAuditStore(segment_entries=4)
        _fill(inner, 6)
        sealed, tail = inner.segments[0], inner.segments[1]
        for seg in (sealed, tail):
            back = decode_segment(encode_segment(seg))
            assert back.index == seg.index
            assert back.sealed == seg.sealed
            assert [e.chain_hash for e in back] == [
                e.chain_hash for e in seg
            ]
            assert back.last_hash == seg.last_hash

    def test_decode_rejects_any_flipped_byte_region(self):
        inner = SegmentedAuditStore(segment_entries=4)
        _fill(inner, 4)
        blob = encode_segment(inner.segments[0])
        for pos in (0, len(blob) // 2, len(blob) - 1):
            bad = bytearray(blob)
            bad[pos] ^= 0xFF
            with pytest.raises(AuditRecoveryError):
                decode_segment(bytes(bad))

    def test_decode_rejects_truncation(self):
        inner = SegmentedAuditStore(segment_entries=4)
        _fill(inner, 4)
        blob = encode_segment(inner.segments[0])
        with pytest.raises(AuditRecoveryError):
            decode_segment(blob[:-1])

    def test_checkpoint_roundtrip(self):
        blob = encode_checkpoint(
            7, b"\xab" * 32, {"dev-1": [0, 1]}, {b"f" * 24: [1]},
            [(0.5, 0), (1.5, 1)], 7, 0,
        )
        back = decode_checkpoint(blob)
        assert back["upto"] == 7
        assert back["bound_hash"] == b"\xab" * 32
        assert back["timeline"] == {"dev-1": [0, 1]}


class TestFlushPolicies:
    def test_policy_names_are_closed(self):
        assert FLUSH_POLICIES == ("every-append", "every-seal", "every-n")
        with pytest.raises(ValueError):
            _durable(flush_policy="sometimes")

    def test_every_append_never_lags(self):
        log, _ = _durable(flush_policy="every-append")
        _fill(log, 7)
        assert log.stats()["durable"]["unflushed_entries"] == 0

    def test_every_seal_lags_only_the_open_tail(self):
        log, _ = _durable(flush_policy="every-seal", segment_entries=4)
        _fill(log, 7)
        durable = log.stats()["durable"]
        assert durable["flushed_entries"] == 4
        assert durable["unflushed_entries"] == 3

    def test_every_n_flushes_in_batches(self):
        log, _ = _durable(flush_policy="every-n", flush_every=3,
                          segment_entries=100)
        _fill(log, 7)
        assert log.stats()["durable"]["flushed_entries"] == 6
        _fill(log, 2, t0=100.0)
        assert log.stats()["durable"]["flushed_entries"] == 9

    def test_seal_spills_regardless_of_policy(self):
        for policy, kwargs in (("every-seal", {}), ("every-append", {}),
                               ("every-n", {"flush_every": 50})):
            log, store = _durable(flush_policy=policy, segment_entries=4,
                                  **kwargs)
            _fill(log, 5)
            assert log.stats()["durable"]["spilled_segments"] == 1
            assert store.exists("audit/test/" + _segment_blob_name(0))

    def test_every_put_charges_fsync(self):
        log, _ = _durable(backend="memory", flush_policy="every-append")
        _fill(log, 3)
        pending = log.take_pending_cost()
        assert pending == pytest.approx(3 * DEFAULT_COSTS.audit_fsync)
        assert log.take_pending_cost() == 0.0


class TestCrashRecovery:
    def test_roundtrip_preserves_every_flushed_entry(self):
        log, store = _durable(backend="ext3", flush_policy="every-append",
                              segment_entries=4)
        _fill(log, 11)
        before = log.crash()
        back = _recover(store.namespace("audit/test"),
                        entries_before=before)
        assert back.verify_chain()
        assert len(back) == 11
        assert [e.chain_hash for e in back] == [e.chain_hash for e in log]
        assert back.recovery["lost_entries"] == 0

    def test_unflushed_tail_loss_is_detected_never_silent(self):
        log, store = _durable(flush_policy="every-seal", segment_entries=4)
        _fill(log, 7)  # 4 flushed via seal, 3 dangling in the tail
        before = log.crash()
        back = _recover(store.namespace("audit/test"),
                        entries_before=before)
        assert len(back) == 4
        assert back.recovery["entries_before"] == 7
        assert back.recovery["lost_entries"] == 3

    def test_crashed_store_refuses_writes(self):
        log, _ = _durable()
        _fill(log, 2)
        log.crash()
        with pytest.raises(AuditRecoveryError):
            log.append(9.0, "dev-1", "fetch", audit_id=b"a" * 24)

    def test_recovered_store_keeps_appending_on_the_same_chain(self):
        log, store = _durable(flush_policy="every-append",
                              segment_entries=4)
        _fill(log, 6)
        log.crash()
        back = _recover(store.namespace("audit/test"))
        back.blobs = store.namespace("audit/test")
        _fill(back, 6, t0=50.0)
        assert back.verify_chain()
        assert len(back) == 12

    def test_tampered_segment_blob_refuses_recovery(self):
        log, store = _durable(flush_policy="every-append",
                              segment_entries=4)
        _fill(log, 5)
        image = store.namespace("audit/test").snapshot()
        name = _segment_blob_name(0)
        image[name] = image[name][:40] + b"\xff" + image[name][41:]
        with pytest.raises(AuditRecoveryError, match="checksum"):
            DurableAuditStore.recover(BlobImage(image), name="key-access",
                                      segment_entries=4)

    def test_missing_interior_segment_refuses_recovery(self):
        log, store = _durable(flush_policy="every-append",
                              segment_entries=2)
        _fill(log, 7)  # segments 0..2 sealed + tail
        image = store.namespace("audit/test").snapshot()
        del image[_segment_blob_name(1)]
        with pytest.raises(AuditRecoveryError):
            DurableAuditStore.recover(BlobImage(image), name="key-access",
                                      segment_entries=2)

    def test_stale_tail_blob_is_ignored(self):
        log, store = _durable(flush_policy="every-append",
                              segment_entries=4)
        _fill(log, 2)
        stale_tail = store.namespace("audit/test").get("tail")
        _fill(log, 3, t0=10.0)  # rolls: seg 0 spilled, fresh tail idx 1
        image = store.namespace("audit/test").snapshot()
        image["tail"] = stale_tail  # pretend the rewrite never landed
        back = DurableAuditStore.recover(BlobImage(image),
                                         name="key-access",
                                         segment_entries=4)
        assert back.recovery["tail_state"] == "stale"
        assert len(back) == 4  # the sealed segment alone
        assert back.verify_chain()


class TestCheckpoints:
    def test_checkpoint_restores_views_and_replays_only_the_tail(self):
        log, store = _durable(flush_policy="every-append",
                              segment_entries=4)
        _fill(log, 6)
        log.checkpoint()
        _fill(log, 3, t0=50.0)
        log.crash()
        back = _recover(store.namespace("audit/test"))
        assert back.recovery["checkpoint_used"]
        assert back.recovery["checkpoint_upto"] == 6
        assert back.recovery["view_tail_replayed"] == 3
        assert back.views.stats()["ingested"] == 9
        assert (back.views.device_timeline("dev-1")
                == list(back.entries(device_id="dev-1")))

    def test_checkpoint_ahead_of_log_is_discarded(self):
        log, store = _durable(flush_policy="every-seal",
                              segment_entries=4)
        _fill(log, 7)
        log.checkpoint()  # flushes everything, binds upto=7
        image = store.namespace("audit/test").snapshot()
        del image["tail"]  # lose the tail: log now ends at 4 < upto 7
        back = DurableAuditStore.recover(BlobImage(image),
                                         name="key-access",
                                         segment_entries=4)
        assert back.recovery["checkpoint_discarded"] == "ahead-of-log"
        assert not back.recovery["checkpoint_used"]
        assert back.views.stats()["ingested"] == len(back)

    def test_checkpoint_binding_mismatch_is_discarded(self):
        log, store = _durable(flush_policy="every-append",
                              segment_entries=4)
        _fill(log, 4)
        image = store.namespace("audit/test").snapshot()
        image["checkpoint"] = encode_checkpoint(
            4, b"\x42" * 32, {}, {}, [], 4, 0,  # wrong bound hash
        )
        back = DurableAuditStore.recover(BlobImage(image),
                                         name="key-access",
                                         segment_entries=4)
        assert back.recovery["checkpoint_discarded"] == "binding-mismatch"
        assert back.views.stats()["ingested"] == 4

    def test_rebind_refused_once_anything_flushed(self):
        log, store = _durable(flush_policy="every-append")
        _fill(log, 1)
        with pytest.raises(AuditRecoveryError, match="rebind"):
            log.rebind_blobs(store.namespace("audit/elsewhere"))

    def test_rebind_allowed_while_empty(self):
        log, store = _durable(flush_policy="every-seal")
        log.rebind_blobs(store.namespace("audit/elsewhere"))
        _fill(log, 5)
        assert store.namespace("audit/elsewhere").names() != []


class TestMakeAuditLogDurable:
    def test_durable_needs_segmented(self):
        with pytest.raises(ValueError, match="segmented"):
            make_audit_log("x", store="flat", durable=True,
                           blobs=BlobStore("memory").namespace("a"))

    def test_durable_needs_blobs(self):
        with pytest.raises(ValueError, match="blob"):
            make_audit_log("x", store="segmented", durable=True)

    def test_durable_wraps_segmented(self):
        log = make_audit_log(
            "x", store="segmented", durable=True,
            blobs=BlobStore("memory").namespace("audit/x"),
        )
        assert isinstance(log, DurableAuditStore)
        assert isinstance(log.inner, SegmentedAuditStore)


class TestServiceCrashRestart:
    def _service(self, **kwargs):
        sim = Simulation()
        kwargs.setdefault("audit_flush_policy", "every-append")
        service = KeyService(
            sim, name="svc", audit_store="segmented",
            segment_entries=4, audit_durable=True, **kwargs
        )
        return sim, service

    def test_durable_needs_segmented_store(self):
        sim = Simulation()
        with pytest.raises(ConfigError, match="segmented"):
            KeyService(sim, name="svc", audit_store="flat",
                       audit_durable=True)

    def test_restart_requires_a_prior_crash(self):
        _, service = self._service()
        with pytest.raises(ConfigError, match="crash"):
            service.restart()

    def test_crash_restart_recovers_flushed_entries(self):
        _, service = self._service()
        _fill(service.access_log, 9)
        assert service.crash() == 9
        assert not service.server.available
        stats = service.restart()
        assert service.server.available
        assert stats["durable"] and stats["lost_entries"] == 0
        assert len(service.access_log) == 9
        assert service.access_log.verify_chain()
        assert service.recovery_stats == stats

    def test_unflushed_tail_loss_is_reported(self):
        _, service = self._service(audit_flush_policy="every-seal")
        _fill(service.access_log, 6)  # 4 flushed at the seal
        service.crash()
        stats = service.restart()
        assert stats["lost_entries"] == 2
        assert len(service.access_log) == 4

    def test_tampered_blobs_leave_the_service_down(self):
        _, service = self._service()
        _fill(service.access_log, 5)
        service.crash()
        blob = service._audit_blobs.get(_segment_blob_name(0))
        service._audit_blobs.put(
            _segment_blob_name(0), blob[:-1] + b"\x00", overwrite=True
        )
        with pytest.raises(AuditRecoveryError):
            service.restart()
        assert not service.server.available

    def test_non_durable_restart_starts_empty(self):
        sim = Simulation()
        service = KeyService(sim, name="svc", audit_store="segmented",
                             segment_entries=4)
        _fill(service.access_log, 5)
        service.crash()
        stats = service.restart()
        assert not stats["durable"]
        assert stats["lost_entries"] == 5
        assert len(service.access_log) == 0

    def test_recover_drill_without_durability_is_refused(self):
        sim = Simulation()
        service = KeyService(sim, name="svc", audit_store="segmented")
        with pytest.raises(ConfigError):
            service.recover_drill()


class TestClusterKillRestart:
    def _group(self, flush_policy="every-seal"):
        sim = Simulation()
        group = ReplicaGroup(
            sim, 3, 2, audit_store="segmented", segment_entries=4,
            audit_durable=True, audit_flush_policy=flush_policy,
            audit_blobs=BlobStore("memory", DEFAULT_COSTS),
        )
        return sim, group

    def test_replicas_get_disjoint_blob_namespaces(self):
        _, group = self._group(flush_policy="every-append")
        for replica in group.replicas:
            _fill(replica.access_log, 2)
        prefixes = {r._audit_blobs.prefix for r in group.replicas}
        assert len(prefixes) == 3

    def test_kill_restart_names_the_loss_as_stale_recovery(self):
        _, group = self._group()
        for replica in group.replicas:
            _fill(replica.access_log, 6)  # 4 flushed, 2 in the tail
        assert group.kill(1) == 6
        stats = group.restart(1)
        assert stats["lost_entries"] == 2
        assert group.recovery_stats()[1] == stats
        cluster = ClusterAuditLog(group, threshold=2)
        kinds = [d.kind for d in cluster.divergences()]
        assert "stale-recovery" in kinds
        stale = [d for d in cluster.divergences()
                 if d.kind == "stale-recovery"]
        assert stale[0].replica_indices == (1,)

    def test_lossless_restart_is_not_a_divergence(self):
        _, group = self._group(flush_policy="every-append")
        for replica in group.replicas:
            _fill(replica.access_log, 6)
        group.kill(2)
        stats = group.restart(2)
        assert stats["lost_entries"] == 0
        cluster = ClusterAuditLog(group, threshold=2)
        assert all(d.kind != "stale-recovery"
                   for d in cluster.divergences())


class TestFleetFaultPlan:
    def test_mid_run_kill_restart_recovers_and_is_traced(self):
        from repro.cluster.faults import FaultPlan
        from repro.workloads.fleet import run_fleet

        result = run_fleet(
            devices=6, duration=3.0, seed=b"durable-fleet",
            replicas=3, threshold=2,
            audit_store="segmented", segment_entries=16,
            audit_durable=True, audit_flush_policy="every-append",
            faults=FaultPlan.replica_kill(1, at=1.0, duration=0.5),
            inspect=lambda group: group.recovery_stats(),
        )
        actions = [text.split()[0] for _, text in result.fault_trace]
        assert actions == ["kill", "restart"]
        stats = result.inspection[1]
        assert stats is not None and stats["durable"]
        assert stats["lost_entries"] == 0  # every-append loses nothing

    def test_fault_plan_needs_a_cluster(self):
        from repro.cluster.faults import FaultPlan
        from repro.workloads.fleet import run_fleet

        with pytest.raises(ValueError, match="replica cluster"):
            run_fleet(devices=2, duration=1.0, seed=b"x", replicas=1,
                      faults=FaultPlan.replica_kill(0, at=0.5,
                                                    duration=0.2))
