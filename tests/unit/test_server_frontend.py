"""The server-side scheduler frontend: fair queueing, admission
control, group commit, and fleet determinism."""

from __future__ import annotations

import json

import pytest

from repro.core.services import KeyService
from repro.errors import OverloadSheddedError
from repro.server import ServiceFrontend
from repro.server.scheduler import (
    DrrScheduler,
    FifoScheduler,
    Request,
    make_scheduler,
)
from repro.sim import Simulation
from repro.workloads.fleet import profile_for_index, run_fleet


def _req(device, cost=1, method="key.fetch"):
    return Request(
        device_id=device, method=method, payload={}, deadline=None,
        done=None, enqueued_at=0.0, cost=cost,
    )


class TestDrrScheduler:
    def test_round_robin_across_devices(self):
        sched = DrrScheduler(quantum=1)
        for _ in range(3):
            sched.push(_req("a"))
        sched.push(_req("b"))
        order = [sched.take().device_id for _ in range(4)]
        # b's single request is served within one round of a's burst.
        assert "b" in order[:2]

    def test_light_tenant_not_starved_by_batches(self):
        sched = DrrScheduler(quantum=1)
        for _ in range(4):
            sched.push(_req("scanner", cost=8))
        sched.push(_req("office", cost=1))
        first_two = [sched.take().device_id for _ in range(2)]
        assert "office" in first_two

    def test_cost_weighted_shares(self):
        # Two backlogged devices, one sending cost-2 requests: over a
        # long horizon they get equal *work*, so the cost-2 device is
        # served half as often.
        sched = DrrScheduler(quantum=1)
        for _ in range(20):
            sched.push(_req("heavy", cost=2))
            sched.push(_req("light", cost=1))
            sched.push(_req("light", cost=1))
        served = [sched.take() for _ in range(18)]
        work = {}
        for request in served:
            work[request.device_id] = (
                work.get(request.device_id, 0) + request.cost
            )
        assert abs(work["heavy"] - work["light"]) <= 2

    def test_wait_units_charges_own_appetite(self):
        sched = DrrScheduler(quantum=1)
        for _ in range(50):
            sched.push(_req("scanner", cost=8))
        # A light tenant's single fetch waits ~one round, not the
        # scanner's 400-unit backlog.
        light = sched.wait_units("office", 1)
        heavy = sched.wait_units("scanner", 8)
        assert light < heavy
        assert light <= 2 * 2  # ceil(1/1) rounds x 2 active x quantum + 1
        # FIFO would promise the whole backlog to everyone.
        fifo = FifoScheduler()
        for _ in range(50):
            fifo.push(_req("scanner", cost=8))
        assert fifo.wait_units("office", 1) == 401

    def test_wait_units_bounded_by_backlog(self):
        sched = DrrScheduler(quantum=1)
        sched.push(_req("a", cost=1))
        assert sched.wait_units("b", 1) <= 1 + 1

    def test_group_fill_is_charged(self):
        sched = DrrScheduler(quantum=1)
        sched.push(_req("a"))
        sched.push(_req("b"))
        sched.push(_req("b"))
        leader = sched.take()
        assert leader.device_id == "a"
        # Cross-device fill: at most one *head* request per device, so
        # a group never deepens any single tenant's share.
        fill = sched.take_matching(lambda r: r.method == "key.fetch", 4)
        assert [r.device_id for r in fill] == ["b"]
        # b consumed a pulled-forward turn: quantum granted minus cost
        # leaves it at zero credit, not ahead.
        assert sched._credit.get("b", 0.0) <= 0.0
        assert len(sched) == 1

    def test_lazy_retirement_keeps_len_consistent(self):
        sched = DrrScheduler(quantum=1)
        for device in ("a", "b", "c"):
            sched.push(_req(device))
        taken = []
        while True:
            request = sched.take()
            if request is None:
                break
            taken.append(request.device_id)
        assert sorted(taken) == ["a", "b", "c"]
        assert len(sched) == 0 and sched.take() is None

    def test_make_scheduler_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_scheduler("priority")


class _SlowServer:
    """Minimal RpcServer stand-in with a fixed per-request service time."""

    name = "fake-keys"
    available = True

    def __init__(self, sim, service_time=0.01):
        self.sim = sim
        self.service_time = service_time
        self.executed = []

    def execute(self, device_id, method, payload):
        yield self.sim.timeout(self.service_time)
        self.executed.append((device_id, method))
        return {"ok": device_id}


class TestServiceFrontend:
    def _submit(self, sim, frontend, device, deadline=None, results=None):
        def caller():
            try:
                value = yield from frontend.dispatch(
                    device, "key.fetch", {"audit_id": b"x" * 24},
                    deadline=deadline,
                )
            except Exception as exc:  # noqa: BLE001 - recorded for asserts
                results.append(exc)
            else:
                results.append(value)

        return sim.process(caller(), name=f"caller-{device}")

    def test_queue_limit_sheds(self):
        sim = Simulation()
        server = _SlowServer(sim, service_time=1.0)
        frontend = ServiceFrontend(sim, server, workers=1, queue_limit=1,
                                   coalesce=1)
        results = []
        procs = [self._submit(sim, frontend, "dev", results=results)
                 for _ in range(4)]
        sim.run_until(sim.all_of(procs))
        sheds = [r for r in results if isinstance(r, OverloadSheddedError)]
        served = [r for r in results if isinstance(r, dict)]
        # 1 in service + 1 queued; the rest shed at arrival.
        assert len(sheds) == 2 and len(served) == 2
        assert frontend.metrics.shed_queue_full == 2
        assert frontend.metrics.completed == 2

    def test_deadline_shed_is_upfront_not_silent_delay(self):
        sim = Simulation()
        server = _SlowServer(sim, service_time=1.0)
        frontend = ServiceFrontend(sim, server, workers=1, queue_limit=64,
                                   coalesce=1, service_estimate=1.0)
        results = []
        first = self._submit(sim, frontend, "busy", results=results)
        # An impossible deadline behind a 1s backlog: shed immediately
        # (at admission), not served late.
        late = self._submit(sim, frontend, "late",
                            deadline=0.5, results=results)
        sim.run_until(sim.all_of([first, late]))
        assert frontend.metrics.shed_deadline == 1
        assert any(isinstance(r, OverloadSheddedError) for r in results)
        assert sim.now == pytest.approx(1.0)  # the shed cost no service

    def test_bypass_methods_skip_the_queue(self):
        sim = Simulation()
        frontend = ServiceFrontend(sim, _SlowServer(sim), workers=1)
        assert not frontend.handles("rpc.hello")
        assert not frontend.handles("key.health")
        assert frontend.handles("key.fetch")

    def test_group_commit_amortises_log_append_not_evidence(self):
        sim = Simulation()
        service = KeyService(sim, seed=b"group-test", name="keys")
        ids = {}
        for index in range(4):
            device = f"dev-{index}"
            audit_id = bytes([index]) * 24
            service.enroll_device(device, b"s" * 16)
            service.preload_key(device, audit_id, b"k" * 32)
            ids[device] = audit_id
        frontend = service.install_frontend(workers=1, coalesce=4)

        results = []

        def caller(device):
            value = yield from frontend.dispatch(
                device, "key.fetch",
                {"audit_id": ids[device], "token": b""},
            )
            results.append((device, value))

        procs = [sim.process(caller(d), name=d) for d in ids]
        sim.run_until(sim.all_of(procs))
        assert len(results) == 4
        assert frontend.metrics.groups >= 1
        assert frontend.metrics.grouped_requests >= 2
        # Every member kept its own audit record: the log must hold one
        # fetch entry per device, exactly as 4 lone fetches would.
        fetched = [e.device_id for e in service.access_log
                   if e.kind == "fetch"]
        assert sorted(fetched) == sorted(ids)

    def test_unavailable_server_fails_batch(self):
        sim = Simulation()
        server = _SlowServer(sim)
        frontend = ServiceFrontend(sim, server, workers=1)
        server.available = False
        results = []
        proc = self._submit(sim, frontend, "dev", results=results)
        sim.run_until(sim.all_of([proc]))
        assert frontend.metrics.failed == 1
        assert not isinstance(results[0], dict)

    def test_validates_parameters(self):
        sim = Simulation()
        with pytest.raises(ValueError):
            ServiceFrontend(sim, _SlowServer(sim), workers=0)
        with pytest.raises(ValueError):
            ServiceFrontend(sim, _SlowServer(sim), queue_limit=0)


class TestFleet:
    def test_profile_mix(self):
        profiles = [profile_for_index(i, 0.10).name for i in range(100)]
        assert profiles.count("filescan") == 10
        assert profiles.count("office") + profiles.count("compile") == 90

    def test_fleet_is_deterministic(self):
        kwargs = dict(
            devices=40, duration=8.0, seed=b"determinism",
            frontend={"workers": 2, "queue_limit": 4, "policy": "drr"},
        )
        first = run_fleet(**kwargs).summary()
        second = run_fleet(**kwargs).summary()
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_fleet_against_cluster(self):
        result = run_fleet(
            devices=12, duration=6.0, seed=b"cluster-fleet",
            frontend={"workers": 2, "policy": "drr"},
            replicas=3, threshold=2,
        )
        summary = result.summary()
        assert summary["completed"] > 0
        assert summary["failed"] == 0
        # One frontend per replica; a healthy run needs (at least) the
        # k preferred replicas — the client never fans to all m.
        assert len(result.frontend_metrics) == 3
        exercised = [m for m in result.frontend_metrics if m["admitted"] > 0]
        assert len(exercised) >= 2

    def test_unbounded_legacy_path_still_works(self):
        summary = run_fleet(
            devices=10, duration=5.0, seed=b"legacy", frontend=None
        ).summary()
        assert summary["policy"] == "unbounded"
        assert summary["shed"] == 0 and summary["completed"] > 0
