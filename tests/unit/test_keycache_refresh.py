"""Key-cache refresh-lead semantics (the movie-playback guarantee)."""

import pytest

from repro.errors import NetworkUnavailableError
from repro.sim import Simulation
from repro.core.keycache import KeyCache


def _refresher(sim, rtt=0.3, log=None, fail=False):
    def refresh(audit_id):
        if log is not None:
            log.append((sim.now, audit_id))
        yield sim.timeout(rtt)
        if fail:
            raise NetworkUnavailableError("offline")
        return b"R" * 32

    return refresh


class TestRefreshLead:
    def test_in_use_key_never_misses(self):
        """Continuous use across many expirations: zero cache misses."""
        sim = Simulation()
        cache = KeyCache(sim, refresh_fn=_refresher(sim), refresh_lead=2.0)
        cache.put(b"id", b"r" * 32, b"d" * 32, texp=10.0)

        misses = []

        def reader():
            for _ in range(300):  # 60 s of 0.2 s frames, texp = 10 s
                entry = cache.get(b"id")
                if entry is None:
                    misses.append(sim.now)
                yield sim.timeout(0.2)

        sim.run_until(sim.process(reader()))
        assert misses == []
        assert cache.refreshes >= 4

    def test_refresh_starts_before_expiry(self):
        sim = Simulation()
        calls = []
        cache = KeyCache(sim, refresh_fn=_refresher(sim, log=calls),
                         refresh_lead=2.0)
        cache.put(b"id", b"r" * 32, b"d" * 32, texp=10.0)
        cache.get(b"id")  # mark used
        sim.run(until=9.0)
        assert calls and calls[0][0] == pytest.approx(8.0)  # texp - lead

    def test_unrefreshable_entry_expires_even_in_use(self):
        """In-flight (IBE-locked) keys must die on schedule."""
        sim = Simulation()
        cache = KeyCache(sim, refresh_fn=_refresher(sim), refresh_lead=2.0)
        cache.put(b"id", b"r" * 32, b"d" * 32, texp=1.0, refreshable=False)

        def reader():
            for _ in range(20):
                cache.get(b"id")
                yield sim.timeout(0.1)

        sim.run_until(sim.process(reader()))
        assert cache.refreshes == 0
        assert cache.get(b"id") is None

    def test_restrict_disables_refresh(self):
        sim = Simulation()
        cache = KeyCache(sim, refresh_fn=_refresher(sim))
        cache.put(b"id", b"r" * 32, b"d" * 32, texp=100.0)
        cache.get(b"id")
        cache.restrict(b"id", 1.0)
        sim.run(until=5.0)
        assert cache.refreshes == 0
        assert cache.get(b"id") is None

    def test_extend_reenables_refresh(self):
        sim = Simulation()
        cache = KeyCache(sim, refresh_fn=_refresher(sim))
        cache.put(b"id", b"r" * 32, b"d" * 32, texp=10.0, refreshable=False)
        cache.extend(b"id", 10.0)
        cache.get(b"id")
        sim.run(until=12.0)
        assert cache.refreshes == 1
        assert cache.get(b"id") is not None

    def test_refresh_failure_evicts(self):
        sim = Simulation()
        cache = KeyCache(sim, refresh_fn=_refresher(sim, fail=True))
        cache.put(b"id", b"r" * 32, b"d" * 32, texp=10.0)
        cache.get(b"id")
        sim.run(until=15.0)
        assert cache.get(b"id") is None

    def test_short_texp_uses_proportional_lead(self):
        """texp=1s must not trigger an immediate refresh loop."""
        sim = Simulation()
        calls = []
        cache = KeyCache(sim, refresh_fn=_refresher(sim, log=calls),
                         refresh_lead=2.0)
        cache.put(b"id", b"r" * 32, b"d" * 32, texp=1.0)
        cache.get(b"id")
        sim.run(until=0.9)
        # The lead is capped at texp/4: refresh no earlier than 0.75 s.
        assert all(t >= 0.74 for t, _ in calls)

    def test_unused_entry_still_evicted_at_expiry(self):
        sim = Simulation()
        cache = KeyCache(sim, refresh_fn=_refresher(sim), refresh_lead=2.0)
        cache.put(b"id", b"r" * 32, b"d" * 32, texp=10.0)
        sim.run(until=11.0)
        assert cache.get(b"id") is None
        assert cache.refreshes == 0
        assert cache.expirations == 1

    def test_use_during_lead_window_triggers_late_refresh(self):
        sim = Simulation()
        cache = KeyCache(sim, refresh_fn=_refresher(sim), refresh_lead=2.0)
        cache.put(b"id", b"r" * 32, b"d" * 32, texp=10.0)

        def late_reader():
            yield sim.timeout(9.0)  # after the early wake at t=8
            cache.get(b"id")

        sim.process(late_reader())
        sim.run(until=12.0)
        assert cache.refreshes == 1
        assert cache.get(b"id") is not None
