"""AES / modes / AEAD tests against FIPS-197 and SP 800-38A vectors."""

import pytest

from repro.crypto.aead import AesCtrHmacAead, StreamHmacAead
from repro.crypto.aes import AES
from repro.crypto.modes import (
    cbc_decrypt,
    cbc_encrypt,
    ctr_transform,
    pkcs7_pad,
    pkcs7_unpad,
)
from repro.errors import IntegrityError


class TestAesBlock:
    def test_fips197_aes128(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plain = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        cipher = AES(key)
        assert cipher.encrypt_block(plain) == expected
        assert cipher.decrypt_block(expected) == plain

    def test_fips197_aes192(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617")
        plain = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("dda97ca4864cdfe06eaf70a0ec0d7191")
        cipher = AES(key)
        assert cipher.encrypt_block(plain) == expected
        assert cipher.decrypt_block(expected) == plain

    def test_fips197_aes256(self):
        key = bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f"
            "101112131415161718191a1b1c1d1e1f"
        )
        plain = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("8ea2b7ca516745bfeafc49904b496089")
        cipher = AES(key)
        assert cipher.encrypt_block(plain) == expected
        assert cipher.decrypt_block(expected) == plain

    def test_sp80038a_ecb_aes128(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        cipher = AES(key)
        blocks = [
            ("6bc1bee22e409f96e93d7e117393172a", "3ad77bb40d7a3660a89ecaf32466ef97"),
            ("ae2d8a571e03ac9c9eb76fac45af8e51", "f5d3d58503b9699de785895a96fdbaaf"),
            ("30c81c46a35ce411e5fbc1191a0a52ef", "43b1cd7f598ece23881b00e3ed030688"),
        ]
        for plain_hex, ct_hex in blocks:
            assert cipher.encrypt_block(bytes.fromhex(plain_hex)).hex() == ct_hex

    @pytest.mark.parametrize("bad_len", [0, 8, 15, 17, 31])
    def test_invalid_key_length_rejected(self, bad_len):
        with pytest.raises(ValueError):
            AES(bytes(bad_len))

    def test_invalid_block_length_rejected(self):
        cipher = AES(bytes(16))
        with pytest.raises(ValueError):
            cipher.encrypt_block(b"short")
        with pytest.raises(ValueError):
            cipher.decrypt_block(b"x" * 17)


class TestCtrMode:
    def test_sp80038a_ctr_aes128(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        # SP 800-38A F.5.1: counter blocks start at f0f1...ff.
        nonce = bytes.fromhex("f0f1f2f3f4f5f6f7")
        initial = int.from_bytes(bytes.fromhex("f8f9fafbfcfdfeff"), "big")
        plain = bytes.fromhex(
            "6bc1bee22e409f96e93d7e117393172a"
            "ae2d8a571e03ac9c9eb76fac45af8e51"
        )
        expected = bytes.fromhex(
            "874d6191b620e3261bef6864990db6ce"
            "9806f66b7970fdff8617187bb9fffdff"
        )
        out = ctr_transform(AES(key), nonce, plain, initial_counter=initial)
        assert out == expected

    def test_ctr_roundtrip_odd_length(self):
        cipher = AES(bytes(32))
        data = b"not a multiple of sixteen bytes!!"
        ct = ctr_transform(cipher, b"12345678", data)
        assert ctr_transform(cipher, b"12345678", ct) == data

    def test_short_nonce_rejected(self):
        with pytest.raises(ValueError):
            ctr_transform(AES(bytes(16)), b"short", b"data")


class TestCbcMode:
    def test_sp80038a_cbc_aes128(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        iv = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plain = bytes.fromhex(
            "6bc1bee22e409f96e93d7e117393172a"
            "ae2d8a571e03ac9c9eb76fac45af8e51"
        )
        expected = bytes.fromhex(
            "7649abac8119b246cee98e9b12e9197d"
            "5086cb9b507219ee95db113a917678b2"
        )
        out = cbc_encrypt(AES(key), iv, plain, pad=False)
        assert out == expected
        assert cbc_decrypt(AES(key), iv, expected, pad=False) == plain

    def test_cbc_padded_roundtrip(self):
        cipher = AES(b"k" * 16)
        iv = b"i" * 16
        for size in (0, 1, 15, 16, 17, 100):
            data = bytes(range(size % 256 or 1))[:size]
            assert cbc_decrypt(cipher, iv, cbc_encrypt(cipher, iv, data)) == data

    def test_pkcs7(self):
        assert pkcs7_pad(b"abc") == b"abc" + b"\x0d" * 13
        assert pkcs7_unpad(pkcs7_pad(b"")) == b""
        with pytest.raises(ValueError):
            pkcs7_unpad(b"abc")  # bad length
        with pytest.raises(ValueError):
            pkcs7_unpad(b"a" * 15 + b"\x00")  # zero pad byte
        with pytest.raises(ValueError):
            pkcs7_unpad(b"a" * 14 + b"\x03\x02")  # inconsistent


@pytest.mark.parametrize("suite_cls", [AesCtrHmacAead, StreamHmacAead])
class TestAead:
    KEY = bytes(range(32))
    NONCE = b"n" * 16

    def test_roundtrip(self, suite_cls):
        suite = suite_cls(self.KEY)
        sealed = suite.seal(self.NONCE, b"secret payload", aad=b"hdr")
        assert suite.open(self.NONCE, sealed, aad=b"hdr") == b"secret payload"

    def test_tamper_detected(self, suite_cls):
        suite = suite_cls(self.KEY)
        sealed = bytearray(suite.seal(self.NONCE, b"secret payload"))
        sealed[0] ^= 1
        with pytest.raises(IntegrityError):
            suite.open(self.NONCE, bytes(sealed))

    def test_tag_tamper_detected(self, suite_cls):
        suite = suite_cls(self.KEY)
        sealed = bytearray(suite.seal(self.NONCE, b"p"))
        sealed[-1] ^= 1
        with pytest.raises(IntegrityError):
            suite.open(self.NONCE, bytes(sealed))

    def test_wrong_aad_detected(self, suite_cls):
        suite = suite_cls(self.KEY)
        sealed = suite.seal(self.NONCE, b"p", aad=b"right")
        with pytest.raises(IntegrityError):
            suite.open(self.NONCE, sealed, aad=b"wrong")

    def test_wrong_nonce_detected(self, suite_cls):
        suite = suite_cls(self.KEY)
        sealed = suite.seal(self.NONCE, b"p")
        with pytest.raises(IntegrityError):
            suite.open(b"m" * 16, sealed)

    def test_wrong_key_detected(self, suite_cls):
        sealed = suite_cls(self.KEY).seal(self.NONCE, b"p")
        with pytest.raises(IntegrityError):
            suite_cls(bytes(32)).open(self.NONCE, sealed)

    def test_empty_plaintext(self, suite_cls):
        suite = suite_cls(self.KEY)
        sealed = suite.seal(self.NONCE, b"")
        assert suite.open(self.NONCE, sealed) == b""

    def test_truncated_blob_rejected(self, suite_cls):
        suite = suite_cls(self.KEY)
        with pytest.raises(IntegrityError):
            suite.open(self.NONCE, b"too-short")

    def test_key_length_enforced(self, suite_cls):
        with pytest.raises(ValueError):
            suite_cls(b"short")

    def test_nonce_length_enforced(self, suite_cls):
        suite = suite_cls(self.KEY)
        with pytest.raises(ValueError):
            suite.seal(b"short", b"p")


def test_aead_suites_are_distinct_ciphers():
    key = bytes(32)
    nonce = b"n" * 16
    a = AesCtrHmacAead(key).seal(nonce, b"payload")
    b = StreamHmacAead(key).seal(nonce, b"payload")
    assert a != b
