"""Tests for the EncFS layer: volume keys, name crypto, stacked FS."""

import pytest

from repro.crypto.stream import stream_xor, stream_xor_at
from repro.encfs import EncfsFS, Volume
from repro.errors import CryptoError, FileNotFound
from repro.sim import Simulation
from repro.storage import BlockDevice, BufferCache, LocalFileSystem


@pytest.fixture()
def rig():
    sim = Simulation()
    device = BlockDevice(sim, n_blocks=8192)
    cache = BufferCache(sim, device, capacity_blocks=1024)
    lower = LocalFileSystem(sim, cache)
    volume = Volume("correct horse battery staple")
    fs = EncfsFS(sim, lower, volume)
    return sim, device, lower, volume, fs


def run(sim, gen):
    return sim.run_process(gen)


class TestStreamXorAt:
    KEY = b"k" * 32
    NONCE = b"n" * 16

    def test_matches_stream_xor_at_zero(self):
        data = bytes(range(100))
        assert stream_xor_at(self.KEY, self.NONCE, data, 0) == stream_xor(
            self.KEY, self.NONCE, data
        )

    def test_positional_consistency(self):
        """Encrypting a slice at its offset matches slicing the whole."""
        data = bytes(i % 251 for i in range(5000))
        whole = stream_xor(self.KEY, self.NONCE, data)
        for offset, size in [(0, 10), (31, 33), (32, 64), (1000, 999), (4095, 2)]:
            piece = stream_xor_at(self.KEY, self.NONCE, data[offset:offset + size], offset)
            assert piece == whole[offset:offset + size]

    def test_roundtrip(self):
        ct = stream_xor_at(self.KEY, self.NONCE, b"secret", 12345)
        assert stream_xor_at(self.KEY, self.NONCE, ct, 12345) == b"secret"

    def test_empty(self):
        assert stream_xor_at(self.KEY, self.NONCE, b"", 7) == b""

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            stream_xor_at(self.KEY, self.NONCE, b"x", -1)


class TestVolume:
    def test_name_roundtrip(self):
        vol = Volume("pw")
        for name in ("taxes_2011.pdf", "a", "ünïcode-nämé", "x" * 200):
            token = vol.encrypt_name(name)
            assert token != name
            assert vol.decrypt_name(token) == name

    def test_name_encryption_deterministic(self):
        vol = Volume("pw")
        assert vol.encrypt_name("f") == vol.encrypt_name("f")

    def test_names_differ_across_volumes(self):
        assert Volume("pw1").encrypt_name("f") != Volume("pw2").encrypt_name("f")

    def test_wrong_volume_rejects_name(self):
        token = Volume("pw1").encrypt_name("secret-name")
        with pytest.raises(CryptoError):
            Volume("pw2").decrypt_name(token)

    def test_tokens_are_filename_safe(self):
        token = Volume("pw").encrypt_name("some/file? name*")
        assert "/" not in token
        assert token == token.lower()

    def test_path_roundtrip(self):
        vol = Volume("pw")
        enc = vol.encrypt_path("/home/user/docs")
        assert enc.count("/") == 3
        assert vol.decrypt_path(enc) == "/home/user/docs"
        assert vol.encrypt_path("/") == "/"

    def test_same_password_same_keys(self):
        assert Volume("pw").header_key == Volume("pw").header_key

    def test_salt_changes_keys(self):
        assert Volume("pw", b"salt1").header_key != Volume("pw", b"salt2").header_key


class TestEncfsFS:
    def test_write_read_roundtrip(self, rig):
        sim, _, _, _, fs = rig

        def proc():
            yield from fs.create("/doc.txt")
            yield from fs.write("/doc.txt", 0, b"attorney-client privileged")
            data = yield from fs.read("/doc.txt", 0, 100)
            return data

        assert run(sim, proc()) == b"attorney-client privileged"

    def test_read_at_offset(self, rig):
        sim, _, _, _, fs = rig

        def proc():
            yield from fs.create("/f")
            yield from fs.write("/f", 0, b"0123456789abcdef" * 300)
            data = yield from fs.read("/f", 4000, 16)
            return data

        expected = (b"0123456789abcdef" * 300)[4000:4016]
        assert run(sim, proc()) == expected

    def test_overwrite_at_offset(self, rig):
        sim, _, _, _, fs = rig

        def proc():
            yield from fs.create("/f")
            yield from fs.write("/f", 0, b"a" * 100)
            yield from fs.write("/f", 50, b"BBB")
            data = yield from fs.read_all("/f")
            return data

        data = run(sim, proc())
        assert data == b"a" * 50 + b"BBB" + b"a" * 47

    def test_size_excludes_header(self, rig):
        sim, _, _, _, fs = rig

        def proc():
            yield from fs.create("/f")
            yield from fs.write("/f", 0, b"12345")
            attr = yield from fs.getattr("/f")
            return attr.size

        assert run(sim, proc()) == 5

    def test_ciphertext_on_lower_layer(self, rig):
        sim, _, lower, volume, fs = rig
        secret = b"SSN: 123-45-6789; diagnosis: confidential"

        def proc():
            yield from fs.create("/medical.txt")
            yield from fs.write("/medical.txt", 0, secret)
            stored_path = volume.encrypt_path("/medical.txt")
            stored = yield from lower.read_all(stored_path)
            return stored

        stored = run(sim, proc())
        assert secret not in stored
        assert len(stored) == fs.HEADER_LEN + len(secret)

    def test_names_encrypted_on_lower_layer(self, rig):
        sim, _, lower, _, fs = rig

        def proc():
            yield from fs.mkdir("/home")
            yield from fs.create("/home/taxes.pdf")
            lower_names = yield from lower.readdir("/")
            upper_names = yield from fs.readdir("/")
            return lower_names, upper_names

        lower_names, upper_names = run(sim, proc())
        assert upper_names == ["home"]
        assert lower_names != ["home"]

    def test_readdir_decrypts(self, rig):
        sim, _, _, _, fs = rig

        def proc():
            yield from fs.mkdir("/d")
            for name in ("zeta.txt", "alpha.txt", "mid.bin"):
                yield from fs.create(f"/d/{name}")
            names = yield from fs.readdir("/d")
            return names

        assert run(sim, proc()) == ["alpha.txt", "mid.bin", "zeta.txt"]

    def test_rename_preserves_content(self, rig):
        sim, _, _, _, fs = rig

        def proc():
            yield from fs.mkdir("/tmp")
            yield from fs.mkdir("/docs")
            yield from fs.create("/tmp/draft")
            yield from fs.write("/tmp/draft", 0, b"important")
            yield from fs.rename("/tmp/draft", "/docs/final")
            data = yield from fs.read_all("/docs/final")
            return data

        assert run(sim, proc()) == b"important"

    def test_unlink(self, rig):
        sim, _, _, _, fs = rig

        def proc():
            yield from fs.create("/f")
            yield from fs.unlink("/f")
            exists = yield from fs.exists("/f")
            return exists

        assert run(sim, proc()) is False

    def test_truncate(self, rig):
        sim, _, _, _, fs = rig

        def proc():
            yield from fs.create("/f")
            yield from fs.write("/f", 0, b"0123456789")
            yield from fs.truncate("/f", 3)
            data = yield from fs.read_all("/f")
            return data

        assert run(sim, proc()) == b"012"

    def test_distinct_files_distinct_keystreams(self, rig):
        sim, _, lower, volume, fs = rig

        def proc():
            yield from fs.create("/a")
            yield from fs.create("/b")
            yield from fs.write("/a", 0, b"same plaintext")
            yield from fs.write("/b", 0, b"same plaintext")
            ca = yield from lower.read(volume.encrypt_path("/a"), fs.HEADER_LEN, 14)
            cb = yield from lower.read(volume.encrypt_path("/b"), fs.HEADER_LEN, 14)
            return ca, cb

        ca, cb = run(sim, proc())
        assert ca != cb  # per-file IVs

    def test_read_missing_file(self, rig):
        sim, _, _, _, fs = rig

        def proc():
            yield from fs.read("/ghost", 0, 10)

        with pytest.raises(FileNotFound):
            run(sim, proc())

    def test_header_survives_cache_eviction(self, rig):
        sim, _, _, _, fs = rig

        def proc():
            yield from fs.create("/f")
            yield from fs.write("/f", 0, b"payload")
            fs._header_cache.clear()  # simulate remount / cold cache
            data = yield from fs.read_all("/f")
            return data

        assert run(sim, proc()) == b"payload"

    def test_wrong_volume_cannot_read(self, rig):
        sim, device, lower, volume, fs = rig

        def proc():
            yield from fs.create("/f")
            yield from fs.write("/f", 0, b"secret")

        run(sim, proc())
        # Same lower FS, different password -> header integrity fails.
        evil = EncfsFS(sim, lower, Volume("wrong password"))
        evil._enc = fs._enc  # attacker knows the stored names somehow

        def attack():
            data = yield from evil.read("/f", 0, 6)
            return data

        with pytest.raises(CryptoError):
            run(sim, attack())

    def test_xattr_passthrough(self, rig):
        sim, _, _, _, fs = rig

        def proc():
            yield from fs.create("/f")
            yield from fs.set_xattr("/f", "user.class", b"secret")
            value = yield from fs.get_xattr("/f", "user.class")
            return value

        assert run(sim, proc()) == b"secret"

    def test_encfs_slower_than_lower(self, rig):
        """EncFS charges crypto overhead on top of ext3."""
        sim, _, lower, _, fs = rig

        def proc():
            yield from fs.create("/f")
            yield from fs.write("/f", 0, b"x" * 100)
            t0 = sim.now
            yield from fs.read("/f", 0, 100)
            encfs_time = sim.now - t0
            yield from lower.create("/plain")
            yield from lower.write("/plain", 0, b"x" * 100)
            t0 = sim.now
            yield from lower.read("/plain", 0, 100)
            ext3_time = sim.now - t0
            return encfs_time, ext3_time

        encfs_time, ext3_time = run(sim, proc())
        assert encfs_time > ext3_time
