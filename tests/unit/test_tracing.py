"""Tracing end-to-end: timing identity, reconciliation, deadlines.

Three properties the observability seam must keep:

1. **Identity** — enabling tracing changes no simulated timing and no
   wire traffic: span accounting never yields to the simulator.
2. **Reconciliation** — the collector's span-derived blocking-RPC count
   equals the channel-metrics formula the benchmarks use
   (``calls - handshakes - write_behind_flushes``), on every transport.
3. **Deadlines** — an op-level deadline shorter than the network RTT
   fails the op with :class:`DeadlineExpiredError` and is visible in
   both the collector and the channel metrics.
"""

import pytest

from repro.core import KeypadConfig
from repro.errors import DeadlineExpiredError
from repro.harness import build_keypad_rig
from repro.net import LAN, THREE_G

FILES = ("medical.txt", "taxes.pdf", "notes.md")


def _workload(rig, texp):
    """Create, let keys expire, re-read (forces fetches), then drain."""

    def proc():
        yield from rig.fs.mkdir("/home")
        for name in FILES:
            path = f"/home/{name}"
            yield from rig.fs.create(path)
            yield from rig.fs.write(path, 0, b"content of " + name.encode())
        yield rig.sim.timeout(texp + 5.0)
        data = []
        for name in FILES:
            data.append((yield from rig.fs.read(f"/home/{name}", 0, 64)))
        return data

    data = rig.run(proc())

    def drain():
        # Let write-behind flushes and background registrations settle.
        yield rig.sim.timeout(30.0)

    rig.run(drain())
    return data


def _counter_blocking(rig):
    """The benchmarks' blocking-RPC formula, from channel metrics."""
    merged = rig.services.channel_metrics()
    return (
        merged.calls - merged.handshakes
        - rig.services.metrics.write_behind_flushes
    )


CONFIGS = {
    "default": KeypadConfig(texp=10.0, prefetch="none", ibe_enabled=False),
    "prefetch+ibe": KeypadConfig(texp=10.0, prefetch="dir:3",
                                 ibe_enabled=True),
    "fast-transport": KeypadConfig(
        texp=10.0, prefetch="none", ibe_enabled=False
    ).with_fast_transport(),
}


class TestTracingIdentity:
    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_tracing_changes_no_timing_or_traffic(self, name):
        config = CONFIGS[name]
        plain = build_keypad_rig(network=THREE_G, config=config)
        traced = build_keypad_rig(network=THREE_G,
                                  config=config.with_tracing())

        data_plain = _workload(plain, config.texp)
        data_traced = _workload(traced, config.texp)

        assert data_plain == data_traced
        assert plain.sim.now == traced.sim.now
        plain_metrics = plain.services.channel_metrics().as_dict()
        traced_metrics = traced.services.channel_metrics().as_dict()
        assert plain_metrics == traced_metrics
        assert (len(plain.key_service.access_log)
                == len(traced.key_service.access_log))

    def test_untraced_rig_mints_no_context(self):
        rig = build_keypad_rig(config=KeypadConfig())
        assert rig.tracer is None
        assert rig.fs._op_context("read", "/x") is None

    def test_traced_rig_has_collector(self):
        rig = build_keypad_rig(config=KeypadConfig().with_tracing())
        assert rig.tracer is not None
        ctx = rig.fs._op_context("read", "/x")
        assert ctx is not None and ctx.traced
        assert ctx.deadline is None


class TestReconciliation:
    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_span_count_matches_channel_counters(self, name):
        config = CONFIGS[name].with_tracing()
        rig = build_keypad_rig(network=THREE_G, config=config)
        _workload(rig, config.texp)
        assert rig.tracer.blocking_rpcs() == _counter_blocking(rig)
        assert rig.tracer.rpc_total > 0

    def test_summary_reflects_run(self):
        config = CONFIGS["default"].with_tracing()
        rig = build_keypad_rig(network=LAN, config=config)
        _workload(rig, config.texp)
        summary = rig.tracer.summary()
        assert summary["ops"] == rig.tracer.op_count > 0
        assert summary["blocking_rpcs"] == _counter_blocking(rig)
        assert summary["deadline_expiries"] == 0
        assert any(name.startswith("rpc:") for name in summary["by_span"])


class TestOpDeadlines:
    def test_deadline_shorter_than_rtt_fails_cold_read(self):
        # 3G RTT is 300ms; a 50ms op budget cannot complete a key fetch.
        config = KeypadConfig(
            texp=10.0, prefetch="none", ibe_enabled=False
        ).with_tracing(op_deadline=0.05)
        rig = build_keypad_rig(network=THREE_G, config=config)

        def proc():
            yield from rig.fs.create("/f")
            yield from rig.fs.write("/f", 0, b"x")
            yield rig.sim.timeout(60.0)  # key expired
            yield from rig.fs.read("/f", 0, 1)

        with pytest.raises(DeadlineExpiredError):
            rig.run(proc())
        assert rig.tracer.deadline_expiries >= 1
        merged = rig.services.channel_metrics()
        assert merged.deadline_expiries >= 1

    def test_generous_deadline_changes_nothing(self):
        base = KeypadConfig(texp=10.0, prefetch="none", ibe_enabled=False)
        plain = build_keypad_rig(network=THREE_G, config=base)
        bounded = build_keypad_rig(
            network=THREE_G, config=base.with_tracing(op_deadline=120.0)
        )
        _workload(plain, base.texp)
        _workload(bounded, base.texp)
        assert plain.sim.now == bounded.sim.now
        assert bounded.tracer.deadline_expiries == 0

    def test_deadline_without_tracing(self):
        # Deadlines work with the collector off: ctx minted, untraced.
        from dataclasses import replace

        config = replace(
            KeypadConfig(texp=10.0, prefetch="none", ibe_enabled=False),
            op_deadline=0.05,
        )
        rig = build_keypad_rig(network=THREE_G, config=config)
        assert rig.tracer is None

        def proc():
            yield from rig.fs.create("/f")

        with pytest.raises(DeadlineExpiredError):
            rig.run(proc())
        assert rig.services.channel_metrics().deadline_expiries >= 1
