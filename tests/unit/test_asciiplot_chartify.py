"""Tests for the ASCII chart renderer and the EXPERIMENTS chartifier."""

import pytest

from repro.harness.asciiplot import plot_series
from repro.harness.chartify import chartify_text, parse_table_block
from repro.harness.results import ResultTable


class TestPlotSeries:
    def test_basic_render(self):
        chart = plot_series(
            {"a": [(1, 1), (10, 5), (100, 10)]},
            width=40, height=8, logx=True,
        )
        assert "*" in chart
        assert "a" in chart
        lines = chart.splitlines()
        assert any("|" in l for l in lines)

    def test_two_series_distinct_symbols(self):
        chart = plot_series(
            {"fast": [(1, 1), (100, 1)], "slow": [(1, 10), (100, 100)]},
            width=40, height=8, logx=True, logy=True,
        )
        assert "*" in chart and "o" in chart
        assert "fast" in chart and "slow" in chart

    def test_axis_labels(self):
        chart = plot_series(
            {"s": [(0.1, 1.0), (300.0, 20.0)]},
            width=40, height=8, logx=True,
            x_label="rtt_ms", y_label="sec", title="T",
        )
        assert "rtt_ms" in chart
        assert "sec" in chart
        assert "T" in chart
        assert "0.1" in chart and "300" in chart

    def test_flat_series_ok(self):
        chart = plot_series({"flat": [(1, 5), (2, 5), (3, 5)]},
                            width=20, height=5)
        assert "*" in chart

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            plot_series({})


class TestChartify:
    def _fake_doc(self):
        table = ResultTable(
            "Figure 10: ratios",
            ["rtt_ms", "keypad_s", "nfs_s", "encfs_s", "ext3_s",
             "keypad/nfs", "keypad/encfs", "keypad/ext3"],
        )
        table.add(0.1, 83.0, 72.0, 79.9, 62.9, 1.14, 1.04, 1.33)
        table.add(300.0, 141.0, 5000.0, 79.9, 62.9, 0.03, 1.76, 2.24)
        return (
            "## Figure 10: comparison to other file systems\n\n"
            "blah\n\n```text\n" + table.render() + "\n```\n"
        )

    def test_parse_table_block(self):
        doc = self._fake_doc()
        block = doc.split("```text\n")[1].split("\n```")[0]
        columns, rows = parse_table_block(block)
        assert columns[0] == "rtt_ms"
        assert len(rows) == 2
        assert rows[1][0] == "300.000"

    def test_chart_inserted(self):
        out = chartify_text(self._fake_doc())
        assert "chart: (log x)" in out
        assert "nfs_s" in out

    def test_idempotent(self):
        once = chartify_text(self._fake_doc())
        twice = chartify_text(once)
        assert once == twice

    def test_untouched_without_matching_sections(self):
        text = "# nothing relevant here\n"
        assert chartify_text(text) == text
