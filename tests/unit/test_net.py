"""Tests for links, netem presets, wire marshalling, and RPC."""

import pytest

from repro.errors import (
    AuthorizationError,
    NetworkUnavailableError,
    RevokedError,
    RpcError,
)
from repro.net import (
    ALL_NETWORKS,
    LAN,
    THREE_G,
    Link,
    RpcChannel,
    RpcServer,
    marshal_request,
    marshal_response,
    unmarshal,
)
from repro.sim import Simulation


class TestLink:
    def test_one_way_delay_is_half_rtt(self):
        sim = Simulation()
        link = Link(sim, rtt=0.3)

        def proc():
            yield from link.transfer(100)
            return sim.now

        assert sim.run_process(proc()) == pytest.approx(0.15)

    def test_bandwidth_adds_serialization_delay(self):
        sim = Simulation()
        link = Link(sim, rtt=0.0, bandwidth_bps=8000)  # 1 kB/s

        def proc():
            yield from link.transfer(500)
            return sim.now

        assert sim.run_process(proc()) == pytest.approx(0.5)

    def test_down_link_raises(self):
        sim = Simulation()
        link = Link(sim, rtt=0.1)
        link.set_down()

        def proc():
            yield from link.transfer(10)

        with pytest.raises(NetworkUnavailableError):
            sim.run_process(proc())

    def test_wait_for_up_blocks_through_outage(self):
        sim = Simulation()
        link = Link(sim, rtt=0.2)
        link.set_down()

        def restorer():
            yield sim.timeout(5.0)
            link.set_up()

        def sender():
            yield from link.transfer(10, wait_for_up=True)
            return sim.now

        sim.process(restorer())
        assert sim.run_process(sender()) == pytest.approx(5.1)

    def test_severed_link_never_recovers(self):
        sim = Simulation()
        link = Link(sim, rtt=0.1)
        link.sever()
        with pytest.raises(NetworkUnavailableError):
            link.set_up()

        def sender():
            yield from link.transfer(10, wait_for_up=True)

        with pytest.raises(NetworkUnavailableError):
            sim.run_process(sender())

    def test_stats_accumulate(self):
        sim = Simulation()
        link = Link(sim, rtt=0.1)

        def proc():
            yield from link.transfer(100)
            yield sim.timeout(10.0)
            yield from link.transfer(300)

        sim.run_process(proc())
        assert link.stats.messages_sent == 2
        assert link.stats.bytes_sent == 400
        # 400 bytes over ~10s window → ~0.32 kbps
        assert link.stats.average_kbps() == pytest.approx(0.32, rel=0.05)

    def test_negative_rtt_rejected(self):
        with pytest.raises(ValueError):
            Link(Simulation(), rtt=-1)


class TestNetem:
    def test_paper_rtts(self):
        by_name = {env.name: env.rtt_ms for env in ALL_NETWORKS}
        assert by_name == {
            "LAN": pytest.approx(0.1),
            "WLAN": pytest.approx(2.0),
            "Broadband": pytest.approx(25.0),
            "DSL": pytest.approx(125.0),
            "3G": pytest.approx(300.0),
        }

    def test_make_link(self):
        sim = Simulation()
        link = THREE_G.make_link(sim)
        assert link.rtt == pytest.approx(0.3)
        assert link.name == "3G"


class TestWire:
    def test_request_roundtrip(self):
        params = {
            "audit_id": b"\x01\x02\xff",
            "path": "dir1/taxes & <stuff>.pdf",
            "count": 42,
            "ratio": 2.5,
            "flag": True,
            "nothing": None,
            "nested": {"list": [1, "two", b"three"]},
        }
        msg = unmarshal(marshal_request("key.fetch", params))
        assert msg.method == "key.fetch"
        assert msg.payload == params

    def test_response_roundtrip(self):
        payload = {"key": b"\x00" * 32, "logged_at": 123.5, "empty": "", "blob": b""}
        msg = unmarshal(marshal_response(payload))
        assert msg.method is None
        assert msg.payload == payload

    def test_empty_collections(self):
        msg = unmarshal(marshal_response({"l": [], "d": {}}))
        assert msg.payload == {"l": [], "d": {}}

    def test_unknown_type_rejected(self):
        with pytest.raises(RpcError):
            marshal_response({"bad": object()})

    def test_garbage_rejected(self):
        with pytest.raises(RpcError):
            unmarshal(b"not xml at all")
        with pytest.raises(RpcError):
            unmarshal(b"<?xml version='1.0'?><something/>")
        with pytest.raises(RpcError):
            unmarshal(b"\xff\xfe")

    def test_bool_not_confused_with_int(self):
        msg = unmarshal(marshal_response({"t": True, "one": 1}))
        assert msg.payload["t"] is True
        assert msg.payload["one"] == 1


def _make_rig(rtt=0.3):
    sim = Simulation()
    link = Link(sim, rtt=rtt)
    server = RpcServer(sim, "key-service")
    secret = b"s" * 32
    server.enroll_device("laptop-1", secret)
    channel = RpcChannel(
        sim, link, server, device_id="laptop-1", device_secret=secret
    )
    return sim, link, server, channel


class TestRpc:
    def test_basic_call(self):
        sim, _link, server, channel = _make_rig()
        server.register(
            "echo", lambda device, payload: {"device": device, **payload}
        )

        def proc():
            result = yield from channel.call("echo", value=7)
            return result

        result = sim.run_process(proc())
        assert result == {"device": "laptop-1", "value": 7}

    def test_call_latency_includes_full_rtt(self):
        sim, _link, server, channel = _make_rig(rtt=0.3)
        server.register("ping", lambda device, payload: {})

        def proc():
            yield from channel.call("ping")
            return sim.now

        elapsed = sim.run_process(proc())
        assert elapsed >= 0.3
        assert elapsed < 0.31  # CPU costs are sub-millisecond-scale

    def test_generator_handler_can_yield(self):
        sim, _link, server, channel = _make_rig(rtt=0.0)

        def slow_handler(device, payload):
            yield sim.timeout(1.0)  # durable log write
            return {"ok": True}

        server.register("log", slow_handler)

        def proc():
            result = yield from channel.call("log")
            return (sim.now, result)

        elapsed, result = sim.run_process(proc())
        assert result == {"ok": True}
        assert elapsed >= 1.0

    def test_unknown_method_raises(self):
        sim, _link, _server, channel = _make_rig()

        def proc():
            yield from channel.call("nope")

        with pytest.raises(RpcError, match="no such method"):
            sim.run_process(proc())

    def test_typed_fault_crosses_wire(self):
        sim, _link, server, channel = _make_rig()

        def revoked(device, payload):
            raise RevokedError("device reported stolen")

        server.register("key.fetch", revoked)

        def proc():
            yield from channel.call("key.fetch", audit_id=b"x")

        with pytest.raises(RevokedError, match="stolen"):
            sim.run_process(proc())

    def test_unenrolled_device_rejected(self):
        sim = Simulation()
        link = Link(sim, rtt=0.0)
        server = RpcServer(sim, "svc")
        server.register("ping", lambda d, p: {})
        channel = RpcChannel(
            sim, link, server, device_id="ghost", device_secret=b"x" * 32
        )

        def proc():
            yield from channel.call("ping")

        with pytest.raises(AuthorizationError):
            sim.run_process(proc())

    def test_outage_fails_call(self):
        sim, link, server, channel = _make_rig()
        server.register("ping", lambda d, p: {})
        link.set_down()

        def proc():
            yield from channel.call("ping")

        with pytest.raises(NetworkUnavailableError):
            sim.run_process(proc())

    def test_session_key_ratchets(self):
        sim, _link, server, channel = _make_rig(rtt=0.0)
        server.register("ping", lambda d, p: {})
        initial_key = channel._session_key

        def proc():
            yield from channel.call("ping")
            yield sim.timeout(250.0)  # > 2 rekey intervals
            yield from channel.call("ping")

        sim.run_process(proc())
        assert channel._session_key != initial_key
        assert channel._epoch == 2

    def test_unavailable_server(self):
        sim, _link, server, channel = _make_rig()
        server.register("ping", lambda d, p: {})
        server.available = False

        def proc():
            yield from channel.call("ping")

        from repro.errors import ServiceUnavailableError

        with pytest.raises(ServiceUnavailableError):
            sim.run_process(proc())

    def test_bytes_counted_on_link(self):
        sim, link, server, channel = _make_rig()
        server.register("ping", lambda d, p: {})

        def proc():
            yield from channel.call("ping", blob=b"x" * 1000)

        sim.run_process(proc())
        assert link.stats.messages_sent == 2  # request + response
        assert link.stats.bytes_sent > 1000  # payload + framing


class TestRpcDeadlines:
    """The channel races calls against an OpContext deadline."""

    def _ctx(self, sim, **kwargs):
        from repro.core.context import OpContext

        return OpContext(sim, "read", **kwargs)

    def test_generous_deadline_passes_through(self):
        sim, _link, server, channel = _make_rig(rtt=0.3)
        server.register("ping", lambda d, p: {"pong": True})
        ctx = self._ctx(sim, deadline=10.0)

        def proc():
            result = yield from channel.call("ping", op_ctx=ctx)
            return result

        assert sim.run_process(proc()) == {"pong": True}
        assert channel.metrics.deadline_expiries == 0

    def test_deadline_shorter_than_rtt_expires(self):
        from repro.errors import DeadlineExpiredError

        sim, _link, server, channel = _make_rig(rtt=0.3)
        server.register("ping", lambda d, p: {})
        ctx = self._ctx(sim, deadline=0.1)

        def proc():
            yield from channel.call("ping", op_ctx=ctx)

        with pytest.raises(DeadlineExpiredError):
            sim.run_process(proc())
        assert sim.now == pytest.approx(0.1)
        assert channel.metrics.deadline_expiries == 1

    def test_already_expired_fails_before_the_wire(self):
        from repro.errors import DeadlineExpiredError

        sim, link, server, channel = _make_rig(rtt=0.3)
        server.register("ping", lambda d, p: {})
        ctx = self._ctx(sim, deadline=1.0)

        def proc():
            yield sim.timeout(2.0)
            yield from channel.call("ping", op_ctx=ctx)

        with pytest.raises(DeadlineExpiredError):
            sim.run_process(proc())
        assert link.stats.messages_sent == 0

    def test_pipelined_call_respects_deadline(self):
        from repro.errors import DeadlineExpiredError

        sim = Simulation()
        link = Link(sim, rtt=0.3)
        server = RpcServer(sim, "svc")
        server.register("ping", lambda d, p: {})
        secret = b"s" * 32
        server.enroll_device("laptop-1", secret)
        channel = RpcChannel(
            sim, link, server, device_id="laptop-1", device_secret=secret,
            pipelining=True,
        )
        ctx = self._ctx(sim, deadline=0.4)  # one RTT, not two

        def proc():
            # Handshake + call each need a full RTT; the budget covers
            # only the first, so the pipelined call itself expires.
            yield from channel.call("ping", op_ctx=ctx)

        with pytest.raises(DeadlineExpiredError):
            sim.run_process(proc())
        assert channel.metrics.deadline_expiries == 1

    def test_traced_expiry_records_event(self):
        from repro.core.context import TraceCollector
        from repro.errors import DeadlineExpiredError

        sim, _link, server, channel = _make_rig(rtt=0.3)
        server.register("ping", lambda d, p: {})
        ctx = self._ctx(sim, deadline=0.1, collector=TraceCollector())

        def proc():
            yield from channel.call("ping", op_ctx=ctx)

        with pytest.raises(DeadlineExpiredError):
            sim.run_process(proc())
        names = [s.name for s in ctx.root.walk()]
        assert "deadline-expired" in names
        assert "rpc:ping" in names


class TestRpcRetryBudget:
    """Transient failures retried under the op's shared budget."""

    def test_budgeted_call_rides_out_outage(self):
        from repro.core.context import OpContext

        sim, _link, server, channel = _make_rig(rtt=0.01)
        server.register("ping", lambda d, p: {"ok": True})
        server.available = False

        def restorer():
            yield sim.timeout(0.5)
            server.available = True

        ctx = OpContext(sim, "read", retry_budget=8)

        def proc():
            sim.process(restorer())
            result = yield from channel.call("ping", op_ctx=ctx)
            return result

        assert sim.run_process(proc()) == {"ok": True}
        assert channel.metrics.retries > 0
        assert ctx.retry_budget < 8

    def test_no_budget_means_no_retries(self):
        from repro.core.context import OpContext
        from repro.errors import ServiceUnavailableError

        sim, _link, server, channel = _make_rig(rtt=0.01)
        server.register("ping", lambda d, p: {})
        server.available = False
        ctx = OpContext(sim, "read", deadline=10.0)  # budget unset

        def proc():
            yield from channel.call("ping", op_ctx=ctx)

        with pytest.raises(ServiceUnavailableError):
            sim.run_process(proc())
        assert channel.metrics.retries == 0

    def test_exhausted_budget_surfaces_failure(self):
        from repro.core.context import OpContext
        from repro.errors import ServiceUnavailableError

        sim, _link, server, channel = _make_rig(rtt=0.01)
        server.register("ping", lambda d, p: {})
        server.available = False
        ctx = OpContext(sim, "read", retry_budget=2)

        def proc():
            yield from channel.call("ping", op_ctx=ctx)

        with pytest.raises(ServiceUnavailableError):
            sim.run_process(proc())
        assert ctx.retry_budget == 0
        assert channel.metrics.retries == 2
