"""Tests for the parallel experiment engine.

The load-bearing property: rendered tables must be byte-identical at
any ``KEYPAD_BENCH_JOBS`` setting — parallelism may only change wall
clock, never results.
"""

import json

import pytest

from repro.harness.compilebench import fig7_key_expiration
from repro.harness.results import ResultTable
from repro.harness.runner import (
    ArmPerf,
    ArmResult,
    BenchPerf,
    attach_perf,
    bench_jobs,
    derive_arm_seed,
    run_arms,
    run_tasks,
    write_bench_json,
)
from repro.net import LAN, THREE_G


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"boom {x}")


class TestRunTasks:
    def test_serial_preserves_order_and_labels(self):
        results = run_tasks([(_square, (i,)) for i in range(5)], jobs=1)
        assert [r.value for r in results] == [0, 1, 4, 9, 16]
        assert [r.label for r in results] == [f"arm-{i}" for i in range(5)]
        assert all(r.wall_s >= 0 and r.cpu_s >= 0 for r in results)

    def test_parallel_matches_serial(self):
        serial = run_tasks([(_square, (i,)) for i in range(8)], jobs=1)
        parallel = run_tasks([(_square, (i,)) for i in range(8)], jobs=4)
        assert [r.value for r in serial] == [r.value for r in parallel]

    def test_label_mismatch_rejected(self):
        with pytest.raises(ValueError):
            run_tasks([(_square, (1,))], labels=["a", "b"], jobs=1)

    def test_run_arms_default_labels(self):
        results = run_arms(_square, [(2,), (3,)], jobs=1)
        assert [r.label for r in results] == ["2", "3"]
        assert [r.value for r in results] == [4, 9]

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError, match="boom"):
            run_tasks([(_boom, (1,))], jobs=1)
        with pytest.raises(ValueError, match="boom"):
            run_tasks([(_boom, (1,)), (_boom, (2,))], jobs=2)


class TestBenchJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("KEYPAD_BENCH_JOBS", raising=False)
        assert bench_jobs() == 1

    def test_env_parsing(self, monkeypatch):
        monkeypatch.setenv("KEYPAD_BENCH_JOBS", "4")
        assert bench_jobs() == 4
        monkeypatch.setenv("KEYPAD_BENCH_JOBS", "0")
        assert bench_jobs() == 1
        monkeypatch.setenv("KEYPAD_BENCH_JOBS", "not-a-number")
        assert bench_jobs() == 1


class TestDeriveArmSeed:
    def test_deterministic(self):
        assert derive_arm_seed(b"fig7", "3G", 1.0) == \
            derive_arm_seed(b"fig7", "3G", 1.0)
        assert len(derive_arm_seed(b"fig7", "3G", 1.0)) == 16

    def test_distinct_across_arms_and_bases(self):
        seeds = {
            derive_arm_seed(b"fig7", net, texp)
            for net in ("LAN", "3G")
            for texp in (1.0, 10.0, 60.0)
        }
        assert len(seeds) == 6
        assert derive_arm_seed(b"fig7", "3G") != derive_arm_seed(b"fig11", "3G")

    def test_bytes_parts_pass_through(self):
        assert derive_arm_seed(b"x", b"raw") == derive_arm_seed(b"x", b"raw")
        assert derive_arm_seed(b"x", b"a", b"b") != derive_arm_seed(b"x", b"ab")


class TestPerfRecord:
    def test_attach_and_write(self, tmp_path):
        table = ResultTable("t", ["a"])
        results = [
            ArmResult(label="one", value={"rpcs": 7}, wall_s=0.5, cpu_s=0.4),
            ArmResult(label="two", value={"rpcs": 3}, wall_s=0.25, cpu_s=0.2),
        ]
        perf = attach_perf(table, "demo", results,
                           rpcs=lambda v: v["rpcs"], jobs=2, note="hi")
        assert table.perf is perf
        path = write_bench_json(perf, tmp_path)
        data = json.loads(open(path, encoding="utf-8").read())
        assert path.endswith("BENCH_demo.json")
        assert data["bench"] == "demo"
        assert data["jobs"] == 2
        assert data["arm_count"] == 2
        assert [a["label"] for a in data["arms"]] == ["one", "two"]
        assert [a["blocking_rpcs"] for a in data["arms"]] == [7, 3]
        assert data["total_wall_s"] == pytest.approx(0.75)
        assert data["meta"] == {"note": "hi"}

    def test_wall_override(self):
        perf = BenchPerf(bench="b", jobs=4,
                         arms=[ArmPerf("a", 1.0, 1.0)],
                         total_wall_s=0.3, total_cpu_s=1.0)
        assert perf.as_dict()["total_wall_s"] == 0.3

    def test_spans_summary_omitted_when_untraced(self):
        """Untraced records carry no spans_summary key at all, so the
        BENCH_*.json schema is backward compatible byte-for-byte."""
        perf = BenchPerf(bench="b", jobs=1)
        assert "spans_summary" not in perf.as_dict()

    def test_spans_summary_attached_when_traced(self, tmp_path):
        from repro.core.context import OpContext, TraceCollector

        class Clock:
            now = 0.0

        collector = TraceCollector()
        ctx = OpContext(Clock(), "read", collector=collector)
        ctx.event("keycache.hit")
        ctx.finish()

        table = ResultTable("t", ["a"])
        results = [ArmResult(label="one", value={}, wall_s=0.1, cpu_s=0.1)]
        perf = attach_perf(table, "traced", results, jobs=1,
                           spans_summary=collector.summary())
        path = write_bench_json(perf, tmp_path)
        data = json.loads(open(path, encoding="utf-8").read())
        assert data["spans_summary"]["ops"] == 1
        assert data["spans_summary"]["by_span"]["keycache.hit"]["count"] == 1


class TestParallelFigureIdentity:
    """A parallel Fig 7 run must render byte-identical to serial."""

    _KW = dict(texps=(1.0, 10.0), networks=(LAN, THREE_G), scale=0.05)

    def test_fig7_parallel_identical_to_serial(self):
        serial = fig7_key_expiration(jobs=1, **self._KW)
        parallel = fig7_key_expiration(jobs=2, **self._KW)
        assert parallel.render() == serial.render()
        # Perf records exist for both, one arm per (network, texp) cell.
        assert serial.perf.jobs == 1
        assert parallel.perf.jobs == 2
        assert len(parallel.perf.arms) == 4
        assert [a.label for a in parallel.perf.arms] == \
            [a.label for a in serial.perf.arms]
        assert all(a.blocking_rpcs > 0 for a in parallel.perf.arms)

    def test_env_jobs_respected(self, monkeypatch):
        monkeypatch.setenv("KEYPAD_BENCH_JOBS", "2")
        table = fig7_key_expiration(**self._KW)
        assert table.perf.jobs == 2
