"""Tests for the pipelined transport: versioned envelopes, request-ID
framing, negotiation fallback, coalescing, write-behind, and sharding."""

import pytest

from repro.errors import RpcError
from repro.net import (
    FRAME_OVERHEAD,
    PROTOCOL_V1,
    PROTOCOL_V2,
    Link,
    RpcChannel,
    RpcServer,
    pack_envelope,
    unpack_envelope,
)
from repro.sim import Simulation
from repro.core import KeyService, MetadataService, ServiceSession
from repro.core.client import (
    EvictionNotice,
    KeyCreate,
    KeyFetch,
    XattrRegistration,
)
from repro.auditstore.log import AppendOnlyLog, ShardedLog


class TestEnvelope:
    def test_v1_envelope_is_bare_body(self):
        assert pack_envelope(PROTOCOL_V1, None, b"body") == b"body"

    def test_v2_roundtrip(self):
        frame = pack_envelope(PROTOCOL_V2, 42, b"sealed-bytes")
        assert len(frame) == FRAME_OVERHEAD + len(b"sealed-bytes")
        version, request_id, body = unpack_envelope(frame)
        assert (version, request_id, body) == (PROTOCOL_V2, 42, b"sealed-bytes")

    def test_bare_body_parses_as_v1(self):
        version, request_id, body = unpack_envelope(b"<?xml version='1.0'?>")
        assert version == PROTOCOL_V1
        assert request_id is None
        assert body == b"<?xml version='1.0'?>"

    def test_truncated_frame_rejected(self):
        frame = pack_envelope(PROTOCOL_V2, 1, b"x")
        with pytest.raises(RpcError):
            unpack_envelope(frame[: FRAME_OVERHEAD - 2])

    def test_v2_requires_request_id(self):
        with pytest.raises(RpcError):
            pack_envelope(PROTOCOL_V2, None, b"x")


def _make_rig(rtt=0.3, pipelining=False, max_inflight=8,
              server_version=PROTOCOL_V2):
    sim = Simulation()
    link = Link(sim, rtt=rtt)
    server = RpcServer(sim, "key-service", protocol_version=server_version)
    secret = b"s" * 32
    server.enroll_device("laptop-1", secret)
    channel = RpcChannel(
        sim, link, server, device_id="laptop-1", device_secret=secret,
        pipelining=pipelining, max_inflight=max_inflight,
    )
    return sim, link, server, channel


class TestPipelinedCalls:
    def test_pipelined_call_returns_same_result_as_serial(self):
        for pipelining in (False, True):
            sim, _link, server, channel = _make_rig(pipelining=pipelining)
            server.register(
                "echo", lambda device, payload: {"device": device, **payload}
            )

            def proc():
                result = yield from channel.call("echo", value=7, blob=b"\x00\xff")
                return result

            assert sim.run_process(proc()) == {
                "device": "laptop-1", "value": 7, "blob": b"\x00\xff"
            }

    def test_negotiation_happens_once_and_upgrades(self):
        sim, _link, server, channel = _make_rig(pipelining=True)
        server.register("ping", lambda device, payload: {})

        def caller():
            yield from channel.call("ping")
            return None

        procs = [sim.process(caller()) for _ in range(4)]

        def joiner():
            yield sim.all_of(procs)
            return None

        sim.run_process(joiner())
        assert channel.negotiated_version == PROTOCOL_V2
        assert channel.metrics.handshakes == 1
        assert channel.metrics.pipelined_calls == 4
        # hello itself rides the serial path.
        assert channel.metrics.serial_calls == 1

    def test_v1_server_degrades_to_serial(self):
        sim, _link, server, channel = _make_rig(
            pipelining=True, server_version=PROTOCOL_V1
        )
        server.register("ping", lambda device, payload: {"pong": True})

        def proc():
            first = yield from channel.call("ping")
            second = yield from channel.call("ping")
            return first, second

        first, second = sim.run_process(proc())
        assert first == {"pong": True} and second == {"pong": True}
        assert channel.negotiated_version == PROTOCOL_V1
        assert channel.metrics.pipelined_calls == 0
        # hello (failed) + two real calls, all serial.
        assert channel.metrics.serial_calls == 3

    def test_out_of_order_completion(self):
        sim, _link, server, channel = _make_rig(rtt=0.01, pipelining=True)
        order = []

        def slow(device, payload):
            yield sim.timeout(0.5)
            return {"name": "slow"}

        def fast(device, payload):
            yield sim.timeout(0.001)
            return {"name": "fast"}

        server.register("slow", slow)
        server.register("fast", fast)

        def caller(method):
            result = yield from channel.call(method)
            order.append(result["name"])
            return None

        def driver():
            # Negotiate first so both real calls pipeline.
            yield from channel.call("fast")
            procs = [
                sim.process(caller("slow")),
                sim.process(caller("fast")),
            ]
            yield sim.all_of(procs)
            return None

        sim.run_process(driver())
        assert order == ["fast", "slow"]
        assert channel.metrics.inflight_hwm == 2

    def test_max_inflight_bounds_window(self):
        sim, _link, server, channel = _make_rig(
            rtt=0.01, pipelining=True, max_inflight=2
        )

        def handler(device, payload):
            yield sim.timeout(0.2)
            return {}

        server.register("work", handler)

        def caller():
            yield from channel.call("work")
            return None

        def driver():
            yield from channel.call("work")  # negotiate + prime
            procs = [sim.process(caller()) for _ in range(6)]
            yield sim.all_of(procs)
            return None

        sim.run_process(driver())
        assert channel.metrics.inflight_hwm == 2
        assert channel.metrics.pipelined_calls == 7

    def test_default_serial_channel_never_handshakes(self):
        sim, _link, server, channel = _make_rig(pipelining=False)
        server.register("ping", lambda device, payload: {})

        def proc():
            yield from channel.call("ping")
            return None

        sim.run_process(proc())
        assert channel.metrics.handshakes == 0
        assert channel.metrics.calls == channel.metrics.serial_calls == 1
        assert channel.negotiated_version is None


class TestShardedLog:
    def _router(self, device_id, kind, fields):
        audit_id = fields.get("audit_id", b"\x00")
        return audit_id[0]

    def test_duck_compatible_with_append_only_log(self):
        plain = AppendOnlyLog(name="a")
        sharded = ShardedLog(name="b", shards=4, router=self._router)
        for log in (plain, sharded):
            log.append(1.0, "dev", "fetch", audit_id=b"\x01" * 4)
            log.append(2.0, "dev", "fetch", audit_id=b"\x02" * 4)
            log.append(3.0, "other", "create", audit_id=b"\x03" * 4)
        assert len(sharded) == len(plain) == 3
        assert [e.kind for e in sharded] == [e.kind for e in plain]
        assert (
            [e.timestamp for e in sharded.entries(since=2.0)]
            == [e.timestamp for e in plain.entries(since=2.0)]
        )
        assert (
            [e.kind for e in sharded.entries(device_id="dev")]
            == ["fetch", "fetch"]
        )
        assert sharded.verify_chain()

    def test_shards_have_independent_chains(self):
        sharded = ShardedLog(name="s", shards=2, router=self._router)
        sharded.append(1.0, "dev", "fetch", audit_id=b"\x00")
        sharded.append(1.5, "dev", "fetch", audit_id=b"\x01")
        assert len(sharded.shards[0]) == 1
        assert len(sharded.shards[1]) == 1
        assert all(s.verify_chain() for s in sharded.shards)

    def test_tampering_one_shard_fails_verification(self):
        sharded = ShardedLog(name="s", shards=2, router=self._router)
        sharded.append(1.0, "dev", "fetch", audit_id=b"\x00")
        sharded.append(2.0, "dev", "fetch", audit_id=b"\x00")
        sharded.shards[0]._entries.pop(0)
        assert not sharded.verify_chain()


def _key_service_rig(shards):
    sim = Simulation()
    service = KeyService(sim, shards=shards)
    link = Link(sim, rtt=0.0)
    secret = b"s" * 32
    service.enroll_device("laptop-1", secret)
    channel = RpcChannel(
        sim, link, service.server, device_id="laptop-1", device_secret=secret
    )
    return sim, service, channel


class TestShardedKeyService:
    def _create_ids(self, sim, channel, count):
        audit_ids = [bytes([i]) + b"\x00" * 23 for i in range(count)]

        def creator():
            for audit_id in audit_ids:
                yield from channel.call("key.create", audit_id=audit_id)
            return None

        sim.run_process(creator())
        return audit_ids

    def test_sharded_fetch_returns_same_keys(self):
        results = {}
        for shards in (1, 4):
            sim, service, channel = _key_service_rig(shards)
            audit_ids = self._create_ids(sim, channel, 8)

            def fetcher():
                response = yield from channel.call(
                    "key.fetch_batch", audit_ids=audit_ids, kind="prefetch"
                )
                return response["keys"]

            results[shards] = sim.run_process(fetcher())
            assert service.key_count() == 8
            assert service.access_log.verify_chain()
        assert all(len(k) == 32 for k in results[1])
        # Same DRBG seed => identical escrowed keys regardless of shards.
        assert results[1] == results[4]

    def test_sharded_fetch_batch_is_faster(self):
        elapsed = {}
        for shards in (1, 8):
            sim, _service, channel = _key_service_rig(shards)
            audit_ids = self._create_ids(sim, channel, 32)
            start = sim.now

            def fetcher():
                yield from channel.call(
                    "key.fetch_batch", audit_ids=audit_ids, kind="prefetch"
                )
                return sim.now

            elapsed[shards] = sim.run_process(fetcher()) - start
        # 32 lookups split over 8 shards run as the max, not the sum.
        assert elapsed[8] < elapsed[1]

    def test_unknown_ids_still_return_empty_slots(self):
        sim, _service, channel = _key_service_rig(4)
        audit_ids = self._create_ids(sim, channel, 2)
        wanted = [audit_ids[0], b"\xff" * 24, audit_ids[1]]

        def fetcher():
            response = yield from channel.call(
                "key.fetch_batch", audit_ids=wanted, kind="prefetch"
            )
            return response["keys"]

        keys = sim.run_process(fetcher())
        assert keys[0] and keys[2]
        assert keys[1] == b""

    def test_evict_notify_batch_keeps_timestamps(self):
        sim, service, channel = _key_service_rig(1)

        def notifier():
            yield from channel.call(
                "key.evict_notify_batch",
                notices=[
                    {"count": 1, "reason": "expired", "timestamp": 3.5},
                    {"count": 2, "reason": "expired", "timestamp": 7.25},
                ],
            )
            return None

        sim.run_process(notifier())
        evictions = service.access_log.entries(kind="evict")
        assert [e.timestamp for e in evictions] == [3.5, 7.25]
        assert [e.fields["count"] for e in evictions] == [1, 2]


def _session_rig(coalesce=False, write_behind=False, pipelining=False):
    sim = Simulation()
    key_service = KeyService(sim)
    metadata_service = MetadataService(sim)
    key_link = Link(sim, rtt=0.1)
    meta_link = Link(sim, rtt=0.1)
    session = ServiceSession(
        sim, "laptop-1", b"secret" * 6, key_service, metadata_service,
        key_link, meta_link,
        pipelining=pipelining,
        coalesce_fetches=coalesce,
        write_behind=write_behind,
        write_behind_interval=0.5,
    )
    return sim, key_service, metadata_service, session


class TestCoalescing:
    def test_concurrent_fetches_share_one_rpc(self):
        sim, key_service, _meta, session = _session_rig(coalesce=True)
        audit_id = b"\x01" * 24

        def setup():
            yield from session.create(KeyCreate(audit_id))
            return None

        sim.run_process(setup())
        calls_before = session.key_channel.metrics.calls
        keys = []

        def reader():
            key = yield from session.fetch(KeyFetch(audit_id))
            keys.append(key)
            return None

        def driver():
            procs = [sim.process(reader()) for _ in range(10)]
            yield sim.all_of(procs)
            return None

        sim.run_process(driver())
        assert len(set(keys)) == 1 and len(keys) == 10
        assert session.key_channel.metrics.calls == calls_before + 1
        assert session.metrics.coalesced_hits == 9
        # Exactly one audit log entry for the shared round-trip.
        fetches = key_service.access_log.entries(kind="fetch")
        assert len(fetches) == 1

    def test_sequential_fetches_do_not_coalesce(self):
        sim, key_service, _meta, session = _session_rig(coalesce=True)
        audit_id = b"\x02" * 24

        def proc():
            yield from session.create(KeyCreate(audit_id))
            yield from session.fetch(KeyFetch(audit_id))
            yield from session.fetch(KeyFetch(audit_id))
            return None

        sim.run_process(proc())
        assert session.metrics.coalesced_hits == 0
        assert len(key_service.access_log.entries(kind="fetch")) == 2

    def test_failure_propagates_to_joiners(self):
        sim, _ks, _meta, session = _session_rig(coalesce=True)
        missing = b"\xee" * 24
        outcomes = []

        def reader():
            try:
                yield from session.fetch(KeyFetch(missing))
            except RpcError:
                outcomes.append("error")
            return None

        def driver():
            procs = [sim.process(reader()) for _ in range(3)]
            yield sim.all_of(procs)
            return None

        sim.run_process(driver())
        assert outcomes == ["error"] * 3

    def test_batch_joins_inflight_single_fetch(self):
        sim, key_service, _meta, session = _session_rig(coalesce=True)
        ids = [bytes([i]) + b"\x01" * 23 for i in range(3)]

        def setup():
            for audit_id in ids:
                yield from session.create(KeyCreate(audit_id))
            return None

        sim.run_process(setup())

        def single():
            key = yield from session.fetch(KeyFetch(ids[0]))
            return key

        def batch():
            keys = yield from session.fetch_many(
                [KeyFetch(a, kind="prefetch") for a in ids]
            )
            return keys

        def driver():
            single_proc = sim.process(single())
            batch_proc = sim.process(batch())
            results = yield sim.all_of([single_proc, batch_proc])
            return results

        single_key, batch_keys = sim.run_process(driver())
        assert batch_keys[0] == single_key
        assert session.metrics.coalesced_batch_hits == 1
        # ids[0] logged once (shared), others once each via the batch.
        per_id = [
            len(key_service.access_log.entries(
                predicate=lambda e, a=a: e.fields.get("audit_id") == a
                and e.kind in ("fetch", "prefetch")
            ))
            for a in ids
        ]
        assert per_id == [1, 1, 1]


class TestWriteBehind:
    def test_enqueue_requires_flag(self):
        _sim, _ks, _meta, session = _session_rig(write_behind=False)
        with pytest.raises(RpcError):
            session.enqueue(EvictionNotice(count=1, reason="expired"))

    def test_flusher_batches_and_keeps_timestamps(self):
        sim, key_service, meta_service, session = _session_rig(
            write_behind=True
        )

        def proc():
            session.enqueue(EvictionNotice(count=1, reason="expired"))
            session.enqueue(
                XattrRegistration(b"\x03" * 24, "user.label", b"secret")
            )
            yield sim.timeout(0.1)
            session.enqueue(EvictionNotice(count=2, reason="expired"))
            yield sim.timeout(2.0)  # let the flusher run
            return None

        sim.run_process(proc())
        assert session.pending_write_behind() == 0
        assert session.metrics.enqueued == 3
        assert session.metrics.batched_messages == 3
        evictions = key_service.access_log.entries(kind="evict")
        assert [e.timestamp for e in evictions] == [0.0, 0.1]
        xattrs = meta_service.metadata_log.entries(kind="xattr")
        assert len(xattrs) == 1 and xattrs[0].timestamp == 0.0
        assert meta_service.xattrs_of(b"\x03" * 24) == {"user.label": b"secret"}

    def test_flush_drains_synchronously(self):
        sim, key_service, _meta, session = _session_rig(write_behind=True)

        def proc():
            session.enqueue(EvictionNotice(count=4, reason="hibernate"))
            yield from session.flush()
            return len(key_service.access_log.entries(kind="evict"))

        assert sim.run_process(proc()) == 1
