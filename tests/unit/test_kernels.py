"""Byte-exactness tests for the hot-path kernels.

Every optimized kernel must be byte-identical to the straight-line
reference implementation it replaced — across the RFC 4231 known-answer
vectors, random keys/lengths (including the cache-hit repeated-key
shape the hot paths actually see), and the decoded-directory cache.
"""

import hmac as stdlib_hmac
import random

from repro.crypto.aead import AesCtrHmacAead, StreamHmacAead
from repro.crypto.aes import AES
from repro.crypto.hmac import hmac_sha256, hmac_sha256_reference
from repro.crypto.kernels import xor_bytes, xor_bytes_reference
from repro.crypto.modes import (
    cbc_decrypt,
    cbc_encrypt,
    ctr_transform,
    ctr_transform_reference,
)
from repro.sim import Simulation
from repro.storage import BlockDevice, BufferCache, LocalFileSystem

# RFC 4231 test cases (full 32-byte outputs; case 5 is truncated and
# case numbering follows the RFC).
_RFC4231 = [
    (b"\x0b" * 20, b"Hi There",
     "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"),
    (b"Jefe", b"what do ya want for nothing?",
     "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"),
    (b"\xaa" * 20, b"\xdd" * 50,
     "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"),
    (bytes(range(1, 26)), b"\xcd" * 50,
     "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"),
    (b"\xaa" * 131,
     b"Test Using Larger Than Block-Size Key - Hash Key First",
     "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"),
    (b"\xaa" * 131,
     b"This is a test using a larger than block-size key and a larger t"
     b"han block-size data. The key needs to be hashed before being use"
     b"d by the HMAC algorithm.",
     "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"),
]


class TestHmacKernel:
    def test_rfc4231_vectors(self):
        for key, msg, expected in _RFC4231:
            assert hmac_sha256(key, msg).hex() == expected
            assert hmac_sha256_reference(key, msg).hex() == expected

    def test_matches_reference_and_stdlib_random(self):
        rng = random.Random(4231)
        for _ in range(200):
            key = rng.randbytes(rng.choice([1, 16, 32, 63, 64, 65, 200]))
            msg = rng.randbytes(rng.randrange(0, 400))
            fast = hmac_sha256(key, msg)
            assert fast == hmac_sha256_reference(key, msg)
            assert fast == stdlib_hmac.new(key, msg, "sha256").digest()

    def test_repeated_key_hits_cache(self):
        # The hot-path shape: one key, many messages.  Interleave with
        # other keys so cache entries coexist.
        key = b"\x42" * 32
        rng = random.Random(7)
        for i in range(50):
            msg = rng.randbytes(i)
            assert hmac_sha256(key, msg) == hmac_sha256_reference(key, msg)
            other = rng.randbytes(16)
            assert hmac_sha256(other, msg) == \
                hmac_sha256_reference(other, msg)

    def test_cache_overflow_resets_safely(self):
        from repro.crypto import hmac as hmac_mod

        rng = random.Random(99)
        for _ in range(hmac_mod._MAX_CACHED_KEYS + 10):
            key = rng.randbytes(32)
            assert hmac_sha256(key, b"x") == hmac_sha256_reference(key, b"x")
        assert len(hmac_mod._state_cache) <= hmac_mod._MAX_CACHED_KEYS + 1


class TestXorKernel:
    def test_matches_reference(self):
        rng = random.Random(1)
        for n in (0, 1, 7, 8, 9, 16, 31, 32, 33, 255, 4096):
            data = rng.randbytes(n)
            stream = rng.randbytes(n + rng.randrange(0, 40))
            assert xor_bytes(data, stream) == \
                xor_bytes_reference(data, stream)

    def test_involution(self):
        data, stream = b"hello world", b"0123456789abcdef"
        assert xor_bytes(xor_bytes(data, stream), stream) == data


class TestAeadKernel:
    def test_transform_matches_reference(self):
        aead = StreamHmacAead(b"k" * 32)
        rng = random.Random(2)
        for n in (0, 1, 31, 32, 33, 63, 64, 65, 1000, 4096):
            nonce = rng.randbytes(16)
            data = rng.randbytes(n)
            assert aead._transform(nonce, data) == \
                aead._transform_reference(nonce, data)

    def test_seal_open_roundtrip_both_suites(self):
        rng = random.Random(3)
        for suite in (StreamHmacAead(b"s" * 32), AesCtrHmacAead(b"a" * 32)):
            for n in (0, 1, 100, 1000):
                nonce = rng.randbytes(16)
                data = rng.randbytes(n)
                sealed = suite.seal(nonce, data, b"aad")
                assert suite.open(nonce, sealed, b"aad") == data


class TestCtrKernel:
    def test_matches_reference(self):
        cipher = AES(b"K" * 32)
        rng = random.Random(5)
        for n in (0, 1, 15, 16, 17, 100, 256, 4096):
            nonce = rng.randbytes(16)
            data = rng.randbytes(n)
            for initial in (0, 1, 1 << 32):
                assert ctr_transform(cipher, nonce, data, initial) == \
                    ctr_transform_reference(cipher, nonce, data, initial)

    def test_nist_sp800_38a_ctr_vector(self):
        # NIST SP 800-38A F.5.5 (AES-256 CTR), first block.
        key = bytes.fromhex(
            "603deb1015ca71be2b73aef0857d7781"
            "1f352c073b6108d72d9810a30914dff4"
        )
        counter_block = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
        plaintext = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        expected = bytes.fromhex("601ec313775789a5b7a7f504bbf3d228")
        nonce = counter_block[:8]
        initial = int.from_bytes(counter_block[8:], "big")
        out = ctr_transform(AES(key), nonce, plaintext, initial)
        assert out == expected
        assert out == ctr_transform_reference(AES(key), nonce, plaintext,
                                              initial)

    def test_cbc_roundtrip(self):
        cipher = AES(b"C" * 32)
        rng = random.Random(6)
        for n in (0, 1, 15, 16, 100):
            iv = rng.randbytes(16)
            data = rng.randbytes(n)
            assert cbc_decrypt(cipher, iv, cbc_encrypt(cipher, iv, data)) \
                == data


class TestDirCache:
    def _fs(self):
        sim = Simulation()
        device = BlockDevice(sim, n_blocks=4096)
        cache = BufferCache(sim, device, capacity_blocks=256)
        return sim, LocalFileSystem(sim, cache)

    def test_lookups_after_mutations_stay_correct(self):
        sim, fs = self._fs()

        def scenario():
            yield from fs.mkdir("/d")
            for i in range(20):
                yield from fs.create(f"/d/f{i:02d}")
            names = yield from fs.readdir("/d")
            assert names == [f"f{i:02d}" for i in range(20)]
            # Repeated readdir exercises the cache-hit path.
            assert (yield from fs.readdir("/d")) == names
            yield from fs.unlink("/d/f03")
            yield from fs.rename("/d/f04", "/d/renamed")
            names = yield from fs.readdir("/d")
            assert "f03" not in names and "f04" not in names
            assert "renamed" in names
            yield from fs.mkdir("/d/sub")
            yield from fs.rename("/d/renamed", "/d/sub/renamed")
            assert (yield from fs.readdir("/d/sub")) == ["renamed"]
            yield from fs.unlink("/d/sub/renamed")
            yield from fs.rmdir("/d/sub")
            assert "sub" not in (yield from fs.readdir("/d"))
            return True

        assert sim.run_process(scenario())

    def test_caller_mutation_does_not_corrupt_cache(self):
        sim, fs = self._fs()

        def scenario():
            yield from fs.mkdir("/d")
            yield from fs.create("/d/a")
            entries = yield from fs._load_dir(
                fs._inodes[(yield from fs.getattr("/d")).ino]
            )
            entries["phantom"] = 999  # mutate the returned view only
            names = yield from fs.readdir("/d")
            assert names == ["a"]
            return True

        assert sim.run_process(scenario())

    def test_deleted_dir_inos_leave_cache(self):
        sim, fs = self._fs()

        def scenario():
            yield from fs.mkdir("/gone")
            yield from fs.readdir("/gone")
            ino = (yield from fs.getattr("/gone")).ino
            yield from fs.rmdir("/gone")
            assert ino not in fs._dir_cache
            return True

        assert sim.run_process(scenario())
