"""The live control plane: runtime verbs over the admin channel,
pluggable storage backends, and the PolicyEpoch snapshot seam."""

from __future__ import annotations

import pytest

from repro.api import (
    ControlEvent,
    KeypadConfig,
    mount,
    open_control,
    run_fleet,
)
from repro.core.policy import PolicyEpoch
from repro.errors import (
    ConfigError,
    ControlError,
    OverloadSheddedError,
    RevokedError,
)
from repro.harness.experiment import DEVICE_ID
from repro.storage.backend import BACKENDS, make_backend
from repro.storage.casfs import ContentAddressedFileSystem
from repro.storage.memfs import MemoryFileSystem


def _rig(**builder_steps):
    builder = KeypadConfig.builder().texp(30.0)
    for step, kwargs in builder_steps.items():
        builder = getattr(builder, step)(**kwargs)
    return mount(config=builder.build())


def _seed_files(rig, names=("a.txt", "b.txt")):
    def setup():
        for name in names:
            yield from rig.fs.write_file(f"/{name}", b"secret:" + name.encode())

    rig.run(setup())


class TestControlVerbs:
    def test_status_reflects_live_policy(self):
        rig = _rig()
        ctl = open_control(rig)

        def scenario():
            status = yield from ctl.status()
            return status

        status = rig.run(scenario())
        assert status["texp"] == 30.0
        assert status["epoch"] == 0
        assert status["storage_backend"] == "ext3"
        assert "texp" in status["runtime_mutable"]

    def test_set_texp_shortens_live_cache_entries(self):
        rig = _rig()
        ctl = open_control(rig)
        _seed_files(rig)

        def scenario():
            # Entries cached under texp=30 must not outlive the new
            # shorter policy: the retarget shortens their expiry now.
            yield from ctl.set_texp(1.0)
            yield rig.sim.timeout(2.0)
            assert len(rig.fs.key_cache) == 0
            status = yield from ctl.status()
            return status

        status = rig.run(scenario())
        assert status["texp"] == 1.0 and status["epoch"] == 1

    def test_set_texp_zero_disables_caching(self):
        rig = _rig()
        ctl = open_control(rig)
        _seed_files(rig)

        def scenario():
            assert len(rig.fs.key_cache) > 0
            yield from ctl.set_texp(0.0)
            # The retarget evicts everything at once: no grace window.
            assert len(rig.fs.key_cache) == 0

        rig.run(scenario())

    def test_update_rejects_mount_frozen_knobs_over_the_wire(self):
        rig = _rig()
        ctl = open_control(rig)

        def scenario():
            with pytest.raises(ControlError, match="mount-frozen"):
                yield from ctl.update(replicas=5)
            status = yield from ctl.status()
            return status

        status = rig.run(scenario())
        assert status["epoch"] == 0  # nothing changed

    def test_add_and_remove_protected_dir(self):
        config = KeypadConfig(protected_prefixes=("/vault",), texp=30.0)
        rig = mount(config=config)
        ctl = open_control(rig)

        def scenario():
            assert not rig.fs.is_protected("/plain/x")
            yield from ctl.add_dir("/plain")
            assert rig.fs.is_protected("/plain/x")
            yield from ctl.remove_dir("/plain")
            assert not rig.fs.is_protected("/plain/x")
            with pytest.raises(ControlError):
                yield from ctl.remove_dir("/never-added")

        rig.run(scenario())

    def test_revoke_blocks_all_later_cold_reads(self):
        rig = _rig()
        ctl = open_control(rig)
        _seed_files(rig)

        def scenario():
            yield from ctl.revoke(DEVICE_ID)
            rig.fs.key_cache.evict_all()
            with pytest.raises(RevokedError):
                yield from rig.fs.read_all("/a.txt")

        rig.run(scenario())

    def test_rotate_secret_keeps_device_working(self):
        rig = _rig()
        ctl = open_control(rig)
        _seed_files(rig)
        old_secret = rig.device_secret

        def scenario():
            yield from ctl.rotate_secret(DEVICE_ID)
            rig.fs.key_cache.evict_all()
            data = yield from rig.fs.read_all("/a.txt")
            return data

        assert rig.run(scenario()) == b"secret:a.txt"
        new_secret = rig.key_service.server.device_secret(DEVICE_ID)
        assert new_secret != old_secret
        assert rig.services.key_channel._device_secret == new_secret

    def test_rotate_unknown_device_is_a_control_error(self):
        rig = _rig()
        ctl = open_control(rig)

        def scenario():
            with pytest.raises(ControlError, match="not enrolled"):
                yield from ctl.rotate_secret("no-such-device")

        rig.run(scenario())

    def test_revoke_fans_out_to_every_replica(self):
        rig = _rig(replication={"k": 2, "m": 3})
        ctl = open_control(rig)

        def scenario():
            result = yield from ctl.revoke(DEVICE_ID)
            return result

        result = rig.run(scenario())
        assert result["services"] == 3
        for replica in rig.replica_group.replicas:
            assert replica.is_revoked(DEVICE_ID)


class TestDrainAdmit:
    def test_drain_sheds_then_admit_restores(self):
        rig = _rig(frontend={"workers": 4})
        ctl = open_control(rig)
        _seed_files(rig)

        def scenario():
            yield from ctl.drain()
            rig.fs.key_cache.evict_all()
            with pytest.raises(OverloadSheddedError):
                yield from rig.fs.read_all("/a.txt")
            yield from ctl.admit()
            data = yield from rig.fs.read_all("/a.txt")
            return data

        assert rig.run(scenario()) == b"secret:a.txt"
        frontend = rig.extras["frontends"][0]
        assert frontend.metrics.shed_draining == 1
        assert frontend.metrics.shed >= 1

    def test_drain_without_frontend_is_a_control_error(self):
        rig = _rig()
        ctl = open_control(rig)

        def scenario():
            with pytest.raises(ControlError, match="frontend"):
                yield from ctl.drain()

        rig.run(scenario())

    def test_drain_index_out_of_range(self):
        rig = _rig(frontend={"workers": 4})
        ctl = open_control(rig)

        def scenario():
            with pytest.raises(ControlError, match="out of range"):
                yield from ctl.drain(index=3)

        rig.run(scenario())


class TestStorageBackends:
    def test_registry_names(self):
        assert set(BACKENDS) == {"ext3", "memory", "cas"}
        with pytest.raises(ConfigError):
            make_backend("floppy")

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_mount_and_roundtrip_on_each_backend(self, backend):
        config = KeypadConfig.builder().texp(30.0).storage(backend).build()
        rig = mount(config=config)

        def scenario():
            yield from rig.fs.mkdir("/docs")
            yield from rig.fs.write_file("/docs/f.txt", b"payload")
            data = yield from rig.fs.read_all("/docs/f.txt")
            return data

        assert rig.run(scenario()) == b"payload"
        assert rig.config.storage_backend == backend

    def test_swap_backend_on_empty_volume(self):
        rig = _rig()
        ctl = open_control(rig)

        def scenario():
            result = yield from ctl.swap_backend("memory")
            yield from rig.fs.write_file("/x", b"post-swap")
            data = yield from rig.fs.read_all("/x")
            return result, data

        result, data = rig.run(scenario())
        assert result["backend"] == "memory"
        assert data == b"post-swap"
        assert isinstance(rig.fs.lower, MemoryFileSystem)
        assert rig.fs.policy.config.storage_backend == "memory"

    def test_swap_backend_refuses_non_empty_volume(self):
        rig = _rig()
        ctl = open_control(rig)
        _seed_files(rig)

        def scenario():
            with pytest.raises(ControlError, match="not empty"):
                yield from ctl.swap_backend("cas")

        rig.run(scenario())
        # the rig still runs on its original stack
        assert rig.fs.policy.config.storage_backend == "ext3"

    def test_cas_backend_deduplicates(self):
        # On the raw store: identical chunks are stored once.  (Under
        # KeypadFS the per-file keys make ciphertexts unique, so the
        # mount sees no dedup — which is itself the right behaviour.)
        from repro.sim import Simulation

        sim = Simulation()
        stack = make_backend("cas").create(sim)
        assert isinstance(stack.fs, ContentAddressedFileSystem)

        def scenario():
            blob = b"z" * 8192
            yield from stack.fs.write_file("/one", blob)
            yield from stack.fs.write_file("/two", blob)

        sim.run_process(scenario())
        stats = stack.fs.dedup_stats()
        assert stats["dedup_ratio"] > 1.9
        assert stats["stored_bytes"] < stats["logical_bytes"]


class TestTailTrace:
    def test_cursor_pages_through_live_ops(self):
        rig = _rig(tracing={})
        ctl = open_control(rig)
        _seed_files(rig, names=("a.txt", "b.txt", "c.txt"))

        def scenario():
            first = yield from ctl.tail_trace(cursor=0, limit=2)
            rest = yield from ctl.tail_trace(cursor=first["cursor"],
                                             limit=1000)
            return first, rest

        first, rest = rig.run(scenario())
        assert len(first["ops"]) == 2
        assert first["cursor"] == 2
        assert first["ops"][0]["status"] == "ok"
        assert first["cursor"] + len(rest["ops"]) == rest["total"]

    def test_tail_trace_without_tracer_is_a_control_error(self):
        rig = _rig()
        ctl = open_control(rig)

        def scenario():
            with pytest.raises(ControlError, match="tracing is off"):
                yield from ctl.tail_trace()

        rig.run(scenario())

    def test_metrics_aggregates_channels_and_cache(self):
        rig = _rig(frontend={"workers": 2}, tracing={})
        ctl = open_control(rig)
        _seed_files(rig)

        def scenario():
            metrics = yield from ctl.metrics()
            return metrics

        metrics = rig.run(scenario())
        assert metrics["channels"]["calls"] > 0
        assert metrics["key_cache"]["entries"] >= 1
        assert metrics["frontends"][0]["admitted"] >= 0
        assert metrics["trace"]["ops"] > 0


class TestPolicyEpochSeam:
    def test_ops_snapshot_policy_per_op(self):
        # An op minted before a texp change must keep seeing the old
        # config through its OpContext snapshot; the next op sees the
        # new one (one op never mixes two epochs).
        rig = _rig(tracing={})
        open_control(rig)
        epoch = rig.fs.policy
        seen = []

        def op():
            ctx = rig.fs._op_context("probe", "/p")
            seen.append(ctx.config.texp)
            epoch.update(texp=3.0)
            # the in-flight snapshot is immutable...
            seen.append(ctx.config.texp)
            # ...while a fresh op picks up the new epoch
            seen.append(rig.fs._op_context("probe2", "/p").config.texp)
            yield rig.sim.timeout(0.0)

        rig.run(op())
        assert seen == [30.0, 30.0, 3.0]

    def test_subscribers_see_old_and_new(self):
        epoch = PolicyEpoch(KeypadConfig(texp=30.0))
        calls = []
        epoch.subscribe(lambda old, new: calls.append((old.texp, new.texp)))
        epoch.update(texp=5.0)
        assert calls == [(30.0, 5.0)]

    def test_control_attach_enables_per_op_snapshots(self):
        rig = _rig()  # no tracing, no deadlines: ctx would be None
        assert rig.fs._op_context("probe", "/p") is None
        open_control(rig)
        ctx = rig.fs._op_context("probe", "/p")
        assert ctx is not None and ctx.config.texp == 30.0


class TestFleetControlEvents:
    def test_scripted_revocation_and_texp_change(self):
        result = run_fleet(
            devices=8, duration=6.0, seed=b"ctl-fleet-test",
            frontend={"workers": 4},
            control=[
                ControlEvent(at=1.0, verb="set_texp",
                             params={"texp": 5.0}),
                ControlEvent(at=2.0, verb="revoke",
                             params={"device_id": "dev-00002"}),
            ],
        )
        log = result.control_log
        assert [entry["verb"] for entry in log] == ["set_texp", "revoke"]
        assert all("result" in entry for entry in log)
        victim = next(s for s in result.stats
                      if s.device_id == "dev-00002")
        assert victim.revoked > 0
        assert result.summary()["revoked"] == victim.revoked

    def test_control_events_are_deterministic(self):
        kwargs = dict(
            devices=6, duration=4.0, seed=b"ctl-det",
            frontend={"workers": 2},
            control=[ControlEvent(at=1.5, verb="drain"),
                     ControlEvent(at=2.5, verb="admit")],
        )
        assert run_fleet(**kwargs).summary() == run_fleet(**kwargs).summary()

    def test_no_events_leaves_summary_shape_with_empty_log(self):
        summary = run_fleet(devices=4, duration=3.0,
                            seed=b"no-ctl").summary()
        assert summary["control"] == []
        assert summary["revoked"] == 0


class TestDurableAuditControl:
    def _durable_rig(self, flush_policy="every-append"):
        return _rig(audit_store=dict(
            store="segmented", segment_entries=8, durable=True,
            flush_policy=flush_policy,
        ))

    def _seed_audit(self, rig, names=("a.txt", "b.txt")):
        """Write files, drain the background key registrations, then
        cold-read — so audit entries (and their blob flushes) exist."""
        def scenario():
            for name in names:
                yield from rig.fs.write_file(
                    f"/{name}", b"secret:" + name.encode()
                )
            yield rig.sim.timeout(60.0)
            rig.fs.key_cache.evict_all()
            for name in names:
                yield from rig.fs.read_all(f"/{name}")

        rig.run(scenario())
        assert len(rig.key_service.access_log) > 0

    def test_swap_refused_when_audit_blobs_spilled(self):
        rig = self._durable_rig()
        ctl = open_control(rig)
        self._seed_audit(rig, names=("a.txt",))

        def cleanup_then_swap():
            # Empty the POSIX surface; only the spilled blobs remain.
            yield from rig.fs.unlink("/a.txt")
            with pytest.raises(ControlError, match="blob:audit"):
                yield from ctl.swap_backend("memory")

        rig.run(cleanup_then_swap())
        assert rig.fs.policy.config.storage_backend == "ext3"

    def test_swap_rebinds_an_unflushed_durable_store(self):
        rig = self._durable_rig()
        ctl = open_control(rig)

        def scenario():
            result = yield from ctl.swap_backend("memory")
            return result

        result = rig.run(scenario())
        assert result["backend"] == "memory"
        # The durable store now spills into the *new* stack's blobs.
        self._seed_audit(rig, names=("x.txt",))
        stack = rig.extras["backend"]
        assert any(n.startswith("audit/") for n in stack.blobs.names())

    def test_checkpoint_verb_needs_a_durable_store(self):
        rig = _rig()  # flat store
        ctl = open_control(rig)

        def scenario():
            with pytest.raises(ControlError, match="durable"):
                yield from ctl.audit_checkpoint()

        rig.run(scenario())

    def test_checkpoint_then_stats_reports_durable_state(self):
        rig = self._durable_rig()
        ctl = open_control(rig)
        self._seed_audit(rig)

        def scenario():
            result = yield from ctl.audit_checkpoint()
            stats = yield from ctl.audit_stats()
            return result, stats

        result, stats = rig.run(scenario())
        assert result["checkpoints"][0]["upto"] > 0
        durable = stats["services"][0]["durable"]
        assert durable["checkpoints"] == 1
        assert durable["unflushed_entries"] == 0

    def test_recover_verb_drills_a_healthy_service(self):
        rig = self._durable_rig()
        ctl = open_control(rig)
        self._seed_audit(rig)

        def scenario():
            result = yield from ctl.audit_recover()
            return result

        result = rig.run(scenario())
        entry = result["recovered"][0]
        assert entry["mode"] == "drill"
        assert entry["recovered_entries"] > 0

    def test_recover_verb_restarts_a_crashed_service(self):
        rig = self._durable_rig()
        ctl = open_control(rig)
        self._seed_audit(rig)
        before = rig.key_service.crash()
        assert not rig.key_service.server.available

        def scenario():
            result = yield from ctl.audit_recover()
            stats = yield from ctl.audit_stats()
            return result, stats

        result, stats = rig.run(scenario())
        entry = result["recovered"][0]
        assert entry["mode"] == "restart"
        assert entry["recovered_entries"] == before
        assert entry["lost_entries"] == 0
        assert rig.key_service.server.available
        assert stats["services"][0]["recovery"]["durable"]
