"""Tests for the experiment harness: rigs, result tables, microbench."""

import pytest

from repro.core import KeypadConfig
from repro.harness import (
    build_encfs_rig,
    build_ext3_rig,
    build_keypad_rig,
    build_nfs_rig,
)
from repro.harness.compilebench import run_compile
from repro.harness.results import ResultTable
from repro.net import LAN, THREE_G, WLAN


class TestResultTable:
    def test_add_and_render(self):
        table = ResultTable("T", ["a", "b"])
        table.add("x", 1.5)
        table.add("yy", 2)
        text = table.render()
        assert "T" in text and "1.500" in text and "yy" in text

    def test_width_mismatch_rejected(self):
        table = ResultTable("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add("only-one")

    def test_markdown(self):
        table = ResultTable("T", ["a"])
        table.add(1)
        md = table.render_markdown()
        assert md.startswith("### T")
        assert "| a |" in md

    def test_column_accessor(self):
        table = ResultTable("T", ["a", "b"])
        table.add(1, 2)
        table.add(3, 4)
        assert table.column("b") == [2, 4]

    def test_notes(self):
        table = ResultTable("T", ["a"])
        table.note("anchor value")
        assert "anchor value" in table.render()


class TestRigs:
    def test_keypad_rig_seeded_determinism(self):
        def fingerprint():
            rig = build_keypad_rig(network=WLAN, seed=b"fixed")

            def proc():
                yield from rig.fs.create("/f")
                audit_id = yield from rig.fs.audit_id_of("/f")
                return audit_id

            return rig.run(proc())

        assert fingerprint() == fingerprint()

    def test_different_seeds_different_ids(self):
        ids = []
        for seed in (b"one", b"two"):
            rig = build_keypad_rig(network=WLAN, seed=seed)

            def proc():
                yield from rig.fs.create("/f")
                audit_id = yield from rig.fs.audit_id_of("/f")
                return audit_id

            ids.append(rig.run(proc()))
        assert ids[0] != ids[1]

    def test_sever_device_links(self):
        rig = build_keypad_rig(network=LAN)
        rig.sever_device_links()
        assert not rig.key_link.available
        assert not rig.metadata_link.available

    def test_phone_requires_flag(self):
        rig = build_keypad_rig(network=LAN)
        with pytest.raises(ValueError):
            rig.attach_phone()

    def test_all_rig_kinds_run_a_file_op(self):
        for builder in (build_ext3_rig, build_encfs_rig):
            rig = builder()

            def proc():
                yield from rig.fs.create("/x")
                exists = yield from rig.fs.exists("/x")
                return exists

            assert rig.run(proc()) is True
        nfs = build_nfs_rig(LAN)

        def proc():
            yield from nfs.fs.create("/x")
            exists = yield from nfs.fs.exists("/x")
            return exists

        assert nfs.run(proc()) is True


class TestRunCompile:
    def test_unknown_fs_kind(self):
        with pytest.raises(ValueError):
            run_compile("zfs")

    def test_keypad_faster_with_caching_than_without_over_3g(self):
        slow = run_compile(
            "keypad", THREE_G,
            KeypadConfig(texp=0.0, prefetch="none", ibe_enabled=False),
            scale=0.05,
        )
        fast = run_compile(
            "keypad", THREE_G,
            KeypadConfig(texp=100.0, prefetch="none", ibe_enabled=False),
            scale=0.05,
        )
        assert fast.seconds < slow.seconds
        assert fast.blocking_key_fetches < slow.blocking_key_fetches

    def test_compile_result_fields(self):
        result = run_compile("ext3", scale=0.05, include_cpu=False)
        assert result.content_ops > 0
        assert result.seconds > 0
        assert result.blocking_key_fetches == 0
