"""Tests for the per-operation context (spans, deadlines, budgets)."""

import pytest

from repro.core.context import (
    OpContext,
    RPC_SPAN_PREFIX,
    Span,
    TraceCollector,
    maybe_span,
)
from repro.errors import DeadlineExpiredError
from repro.sim import Simulation


class Clock:
    """Minimal stand-in for a Simulation: just a settable ``now``."""

    def __init__(self, now=0.0):
        self.now = now


class TestSpan:
    def test_duration_and_children(self):
        root = Span("op", 1.0)
        child = root.child("fetch", 1.5)
        child.end = 2.0
        root.end = 3.0
        assert root.duration == pytest.approx(2.0)
        assert child.duration == pytest.approx(0.5)
        assert [s.name for s in root.walk()] == ["op", "fetch"]

    def test_open_span_has_zero_duration(self):
        span = Span("op", 5.0)
        assert span.duration == 0.0

    def test_as_dict(self):
        root = Span("op", 0.0, path="/a")
        root.child("hit", 0.25).end = 0.25
        root.end = 1.0
        d = root.as_dict()
        assert d["name"] == "op"
        assert d["attrs"] == {"path": "/a"}
        assert d["children"][0]["name"] == "hit"
        assert d["children"][0]["duration"] == 0.0


class TestOpContext:
    def test_nested_spans(self):
        clock = Clock()
        ctx = OpContext(clock, "read", device_id="laptop-1", path="/a")
        clock.now = 1.0
        with ctx.span("key-fetch"):
            clock.now = 2.0
            with ctx.span("rpc:key.fetch"):
                clock.now = 3.0
        ctx.finish()
        fetch = ctx.root.children[0]
        assert fetch.name == "key-fetch"
        assert fetch.duration == pytest.approx(2.0)
        assert fetch.children[0].name == "rpc:key.fetch"
        assert ctx.root.attrs["device"] == "laptop-1"
        assert ctx.root.attrs["path"] == "/a"

    def test_span_closes_on_exception(self):
        clock = Clock()
        ctx = OpContext(clock, "read")
        with pytest.raises(ValueError):
            with ctx.span("key-fetch"):
                clock.now = 1.0
                raise ValueError("boom")
        span = ctx.root.children[0]
        assert span.end == 1.0
        assert span.status == "error:ValueError"
        # The stack popped: new spans attach to the root again.
        with ctx.span("second"):
            pass
        assert ctx.root.children[1].name == "second"

    def test_attach_does_not_push_stack(self):
        clock = Clock()
        ctx = OpContext(clock, "create")
        rpc = ctx.attach("rpc:key.create")
        # A begin() while rpc is open still parents on the root.
        with ctx.span("other"):
            pass
        clock.now = 2.0
        ctx.close(rpc)
        assert rpc.end == 2.0
        assert [s.name for s in ctx.root.children] == [
            "rpc:key.create", "other",
        ]

    def test_event_is_instant(self):
        clock = Clock(now=4.0)
        ctx = OpContext(clock, "read")
        span = ctx.event("keycache.hit", audit_id="ab")
        assert span.start == span.end == 4.0
        assert span.attrs["audit_id"] == "ab"

    def test_deadline_remaining_and_check(self):
        clock = Clock()
        ctx = OpContext(clock, "read", deadline=2.0)
        assert ctx.remaining() == pytest.approx(2.0)
        assert not ctx.expired()
        ctx.check("early")  # no raise
        clock.now = 2.0
        assert ctx.expired()
        with pytest.raises(DeadlineExpiredError, match="in the wire"):
            ctx.check("the wire")

    def test_no_deadline_never_expires(self):
        ctx = OpContext(Clock(), "read")
        assert ctx.remaining() == float("inf")
        assert not ctx.expired()
        ctx.check()

    def test_retry_budget(self):
        ctx = OpContext(Clock(), "read", retry_budget=2)
        assert ctx.try_consume_retry()
        assert ctx.try_consume_retry()
        assert not ctx.try_consume_retry()

    def test_no_budget_means_caller_policy(self):
        ctx = OpContext(Clock(), "read")
        for _ in range(10):
            assert ctx.try_consume_retry()
        assert ctx.retry_budget is None

    def test_finish_is_idempotent_and_closes_open_spans(self):
        clock = Clock()
        collector = TraceCollector()
        ctx = OpContext(clock, "read", collector=collector)
        ctx.begin("key-fetch")  # never ended: interrupted sub-process
        clock.now = 3.0
        ctx.finish()
        ctx.finish()
        assert collector.op_count == 1
        span = ctx.root.children[0]
        assert span.end == 3.0
        assert span.status == "unfinished"
        assert ctx.root.status == "ok"

    def test_finish_with_deadline_error_marks_root(self):
        collector = TraceCollector()
        ctx = OpContext(Clock(), "read", collector=collector)
        ctx.finish(DeadlineExpiredError("late"))
        assert ctx.root.status == "deadline-expired"
        assert collector.deadline_expiries == 1

    def test_finish_with_other_error(self):
        ctx = OpContext(Clock(), "read")
        ctx.finish(ValueError("bad"))
        assert ctx.root.status == "error:ValueError"


class TestMaybeSpan:
    def test_noop_without_context(self):
        with maybe_span(None, "key-fetch"):
            pass

    def test_noop_with_untraced_context(self):
        ctx = OpContext(Clock(), "read", deadline=5.0)
        with maybe_span(ctx, "key-fetch"):
            pass
        assert ctx.root.children == []

    def test_span_with_traced_context(self):
        ctx = OpContext(Clock(), "read", collector=TraceCollector())
        with maybe_span(ctx, "key-fetch", audit_id="ab"):
            pass
        assert ctx.root.children[0].name == "key-fetch"


class TestTraceCollector:
    def _finished_ctx(self, collector, clock, op="read", blocking=True,
                      spans=()):
        ctx = OpContext(clock, op, collector=collector, blocking=blocking)
        for name, dt, attrs in spans:
            span = ctx.begin(name, **attrs)
            clock.now += dt
            ctx.end(span)
        ctx.finish()
        return ctx

    def test_rpc_accounting(self):
        clock = Clock()
        collector = TraceCollector()
        self._finished_ctx(
            collector, clock,
            spans=[
                (RPC_SPAN_PREFIX + "rpc.hello", 0.1, {"server": "keys"}),
                (RPC_SPAN_PREFIX + "key.fetch", 0.3, {"server": "keys"}),
                (RPC_SPAN_PREFIX + "meta.register", 0.3, {"server": "meta"}),
            ],
        )
        assert collector.rpc_total == 3
        assert collector.rpc_handshakes == 1
        assert collector.rpc_nonblocking == 0
        assert collector.blocking_rpcs() == 2
        assert collector.rpc_by_server == {"keys": 2, "meta": 1}

    def test_nonblocking_context_excluded(self):
        clock = Clock()
        collector = TraceCollector()
        self._finished_ctx(
            collector, clock, op="write-behind-flush", blocking=False,
            spans=[(RPC_SPAN_PREFIX + "meta.register", 0.2, {})],
        )
        assert collector.rpc_total == 1
        assert collector.rpc_nonblocking == 1
        assert collector.blocking_rpcs() == 0

    def test_orphan_spans_count(self):
        collector = TraceCollector()
        span = collector.start_orphan(RPC_SPAN_PREFIX + "key.fetch", 1.0)
        collector.finish_orphan(span, 1.5)
        assert collector.rpc_total == 1
        assert collector.blocking_rpcs() == 1
        assert collector.span_stats[RPC_SPAN_PREFIX + "key.fetch"] == [1, 0.5]

    def test_op_ids_are_unique(self):
        collector = TraceCollector()
        clock = Clock()
        a = OpContext(clock, "read", collector=collector)
        b = OpContext(clock, "write", collector=collector)
        assert a.op_id != b.op_id

    def test_max_ops_caps_retained_trees_not_counters(self):
        clock = Clock()
        collector = TraceCollector(max_ops=2)
        for _ in range(5):
            self._finished_ctx(
                collector, clock,
                spans=[(RPC_SPAN_PREFIX + "key.fetch", 0.1, {})],
            )
        assert len(collector.ops) == 2
        assert collector.dropped == 3
        assert collector.op_count == 5
        assert collector.rpc_total == 5

    def test_summary_shape(self):
        clock = Clock()
        collector = TraceCollector()
        self._finished_ctx(
            collector, clock,
            spans=[(RPC_SPAN_PREFIX + "key.fetch", 0.25, {})],
        )
        summary = collector.summary()
        assert summary["ops"] == 1
        assert summary["blocking_rpcs"] == 1
        assert summary["by_span"]["rpc:key.fetch"]["count"] == 1
        assert summary["by_span"]["rpc:key.fetch"]["total_s"] == 0.25

    def test_render_smoke(self):
        clock = Clock()
        collector = TraceCollector()
        self._finished_ctx(
            collector, clock,
            spans=[(RPC_SPAN_PREFIX + "key.fetch", 0.25,
                    {"server": "keys", "bytes_out": 100})],
        )
        text = collector.render()
        assert "read#1" in text
        assert "rpc:key.fetch" in text
        assert "bytes_out=100" in text
        assert "SPAN TOTALS" in text

    def test_render_hides_beyond_max_ops(self):
        clock = Clock()
        collector = TraceCollector()
        for _ in range(3):
            self._finished_ctx(collector, clock)
        text = collector.render(max_ops=1)
        assert "2 more op(s) not shown" in text


class TestWithSimulation:
    """The context composes with real sim processes."""

    def test_spans_track_sim_time(self):
        sim = Simulation()
        collector = TraceCollector()
        ctx = OpContext(sim, "read", collector=collector)

        def proc():
            with ctx.span("work"):
                yield sim.timeout(1.5)
            ctx.finish()

        sim.run_process(proc())
        assert ctx.root.children[0].duration == pytest.approx(1.5)
        assert collector.span_stats["work"] == [1, pytest.approx(1.5)]
