"""Tests for the calibrated cost model."""

import pytest

from repro.costmodel import DEFAULT_COSTS, CostModel


class TestCostModel:
    def test_defaults_match_paper_anchors(self):
        # Base EncFS read = ext3 read + encfs extra = 0.337 ms.
        assert (DEFAULT_COSTS.ext3_read + DEFAULT_COSTS.encfs_read_extra
                ) * 1000 == pytest.approx(0.337, abs=1e-6)
        assert (DEFAULT_COSTS.ext3_write + DEFAULT_COSTS.encfs_write_extra
                ) * 1000 == pytest.approx(0.453, abs=1e-6)
        # IBE encryption cost = Fig. 6(b)'s 25.299 ms label.
        assert DEFAULT_COSTS.keypad_ibe_encrypt * 1000 == pytest.approx(25.299)

    def test_scaled(self):
        half = DEFAULT_COSTS.scaled(0.5)
        assert half.ext3_read == pytest.approx(DEFAULT_COSTS.ext3_read / 2)
        assert half.keypad_ibe_encrypt == pytest.approx(
            DEFAULT_COSTS.keypad_ibe_encrypt / 2
        )

    def test_without_ibe_cost(self):
        free = DEFAULT_COSTS.without_ibe_cost()
        assert free.keypad_ibe_encrypt == 0.0
        assert free.keypad_ibe_decrypt == 0.0
        assert free.keypad_ibe_extract == 0.0
        # Everything else is untouched.
        assert free.ext3_read == DEFAULT_COSTS.ext3_read

    def test_rpc_marshal_scales_with_bytes(self):
        small = DEFAULT_COSTS.rpc_marshal_time(100)
        large = DEFAULT_COSTS.rpc_marshal_time(100_000)
        assert large > small
        server = DEFAULT_COSTS.rpc_marshal_time(100, server=True)
        assert server != small  # distinct base constants

    def test_immutable(self):
        with pytest.raises(AttributeError):
            DEFAULT_COSTS.ext3_read = 0.0

    def test_custom_model_flows_through_a_rig(self):
        from repro.harness import build_ext3_rig

        slow = CostModel(ext3_read=1.0)  # one full second per read!
        rig = build_ext3_rig(costs=slow)

        def proc():
            yield from rig.fs.create("/f")
            yield from rig.fs.write("/f", 0, b"x")
            t0 = rig.sim.now
            yield from rig.fs.read("/f", 0, 1)
            return rig.sim.now - t0

        assert rig.run(proc()) >= 1.0
