"""Unit tests for the paired-phone daemon (§3.5)."""

import pytest

from repro.core import KeypadConfig
from repro.crypto.aead import StreamHmacAead
from repro.errors import ServiceUnavailableError
from repro.harness import build_keypad_rig
from repro.net import LAN


def _rig():
    config = KeypadConfig(texp=5.0, prefetch="none", ibe_enabled=False)
    rig = build_keypad_rig(network=LAN, config=config, with_phone=True)
    rig.attach_phone()
    return rig


def _make_files(rig, n=3):
    ids = []

    def proc():
        yield from rig.fs.mkdir("/d")
        for i in range(n):
            yield from rig.fs.create(f"/d/f{i}")
            yield from rig.fs.write(f"/d/f{i}", 0, b"x")
            audit_id = yield from rig.fs.audit_id_of(f"/d/f{i}")
            ids.append(audit_id)
        yield rig.sim.timeout(30.0)  # laptop cache expires

    rig.run(proc())
    return ids


class TestPhoneHoard:
    def test_hoard_miss_populates_from_service(self):
        rig = _rig()
        _make_files(rig)
        rig.phone._hoard.clear()  # discard entries from setup refreshes
        misses_before = rig.phone.stats["hoard_misses"]

        def read():
            data = yield from rig.fs.read("/d/f0", 0, 1)
            return data

        assert rig.run(read()) == b"x"
        assert rig.phone.stats["hoard_misses"] == misses_before + 1
        assert len(rig.phone.hoarded_ids()) >= 1

    def test_related_hint_prefills_hoard(self):
        rig = _rig()
        ids = _make_files(rig, n=4)

        def warm_then_read():
            # First read carries sibling hints (from the header cache).
            yield from rig.fs.read("/d/f0", 0, 1)

        rig.run(warm_then_read())
        # The phone hoarded the hinted siblings too.
        assert len(rig.phone.hoarded_ids()) == 4

    def test_hoard_expires_when_connected(self):
        rig = _rig()
        rig.phone.hoard_texp = 10.0
        _make_files(rig)

        def proc():
            yield from rig.fs.read("/d/f0", 0, 1)
            yield rig.sim.timeout(60.0)  # hoard entries stale

        rig.run(proc())
        assert rig.phone.hoarded_ids() == set()

    def test_hoard_persists_while_disconnected(self):
        rig = _rig()
        rig.phone.hoard_texp = 10.0
        _make_files(rig)

        def warm():
            yield from rig.fs.read("/d/f0", 0, 1)

        rig.run(warm())
        rig.phone_key_uplink.set_down()

        def idle():
            yield rig.sim.timeout(3600.0)  # way past the hoard TTL

        rig.run(idle())
        assert len(rig.phone.hoarded_ids()) >= 1  # hoarding survives

    def test_disconnected_miss_fails_cleanly(self):
        rig = _rig()
        _make_files(rig)
        rig.phone._hoard.clear()  # nothing hoarded at all
        rig.phone_key_uplink.set_down()

        def read():
            yield from rig.fs.read("/d/f1", 0, 1)

        with pytest.raises(ServiceUnavailableError):
            rig.run(read())


class TestDeferredMetadata:
    def test_deferred_dir_and_file_registrations_upload(self):
        rig = _rig()

        def proc():
            # Fully disconnected phone: everything defers.
            rig.phone_metadata_uplink.set_down()
            rig.phone_key_uplink.set_down()
            yield from rig.fs.mkdir("/offline")
            yield from rig.fs.create("/offline/doc")
            audit_id = yield from rig.fs.audit_id_of("/offline/doc")
            assert rig.phone.stats["deferred_meta"] >= 2
            # Reconnect: the flusher drains everything.
            rig.phone_metadata_uplink.set_up()
            rig.phone_key_uplink.set_up()
            yield rig.sim.timeout(60.0)
            return audit_id

        audit_id = rig.run(proc())
        assert rig.phone.pending_upload_count == 0
        assert rig.metadata_service.path_of(audit_id) == "/offline/doc"

    def test_deferred_key_put_uploads(self):
        config = KeypadConfig(texp=5.0, prefetch="none", ibe_enabled=True,
                              registration_retry_delay=2.0)
        rig = build_keypad_rig(network=LAN, config=config, with_phone=True)
        rig.attach_phone()

        def proc():
            rig.phone_key_uplink.set_down()
            rig.phone_metadata_uplink.set_down()
            yield from rig.fs.create("/f")  # IBE create, key.put deferred
            audit_id = yield from rig.fs.audit_id_of("/f")
            rig.phone_key_uplink.set_up()
            rig.phone_metadata_uplink.set_up()
            yield rig.sim.timeout(60.0)
            return audit_id

        audit_id = rig.run(proc())
        # The client-generated remote key reached the service.
        assert audit_id in rig.key_service.known_audit_ids()


class TestTransportRatchet:
    def test_old_session_key_cannot_decrypt_new_traffic(self):
        """§6: rotating the channel key every Texp means an extracted
        key is useless against past (and future) intercepts."""
        rig = build_keypad_rig(network=LAN)
        channel = rig.services.key_channel
        old_key = channel._session_key

        def age():
            yield rig.sim.timeout(250.0)  # two+ rekey intervals

        rig.run(age())
        channel._maybe_ratchet()
        assert channel._session_key != old_key
        # A message sealed under the current key fails under the old one.
        sealed = channel._suite.seal(b"n" * 16, b"key material")
        with pytest.raises(Exception):
            StreamHmacAead(old_key).open(b"n" * 16, sealed)
