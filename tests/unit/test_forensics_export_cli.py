"""Tests for log export/import and the keypad-audit CLI."""

import json

import pytest

from repro.cli import build_parser, main
from repro.core import KeypadConfig
from repro.forensics import AuditTool
from repro.forensics.export import export_logs, load_bundle
from repro.harness import build_keypad_rig
from repro.net import LAN


@pytest.fixture()
def used_rig():
    config = KeypadConfig(texp=50.0, prefetch="none", ibe_enabled=False)
    rig = build_keypad_rig(network=LAN, config=config)

    def usage():
        yield from rig.fs.mkdir("/home")
        yield from rig.fs.create("/home/a.txt")
        yield from rig.fs.write("/home/a.txt", 0, b"data")
        yield rig.sim.timeout(200.0)
        yield from rig.fs.read("/home/a.txt", 0, 4)

    rig.run(usage())
    return rig


class TestExport:
    def test_roundtrip_produces_same_report(self, used_rig):
        rig = used_rig
        bundle = export_logs(rig.key_service, rig.metadata_service)
        key_log, metadata = load_bundle(bundle)

        live = AuditTool(rig.key_service, rig.metadata_service).report(
            t_loss=150.0, texp=50.0
        )
        offline = AuditTool(key_log, metadata).report(t_loss=150.0, texp=50.0)
        assert {r.audit_id for r in offline.records} == {
            r.audit_id for r in live.records
        }
        assert offline.compromised_paths() == live.compromised_paths()
        assert offline.logs_intact

    def test_bundle_is_valid_json(self, used_rig):
        bundle = export_logs(used_rig.key_service, used_rig.metadata_service)
        parsed = json.loads(bundle)
        assert parsed["format"] == 1
        assert parsed["key_access_log"]

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError):
            load_bundle(json.dumps({"format": 999}))

    def test_offline_path_reconstruction(self, used_rig):
        rig = used_rig
        bundle = export_logs(rig.key_service, rig.metadata_service)
        _key_log, metadata = load_bundle(bundle)

        def get_id():
            audit_id = yield from rig.fs.audit_id_of("/home/a.txt")
            return audit_id

        audit_id = rig.run(get_id())
        assert metadata.path_of(audit_id) == "/home/a.txt"
        assert metadata.path_of(b"\x00" * 24) is None


class TestCli:
    def test_demo_runs(self, capsys):
        assert main(["demo", "--texp", "50"]) == 0
        out = capsys.readouterr().out
        assert "KEYPAD FORENSIC AUDIT REPORT" in out
        assert "No key accesses" in out

    def test_demo_with_steal(self, capsys):
        assert main(["demo", "--steal"]) == 0
        out = capsys.readouterr().out
        assert "/home/taxes.pdf" in out

    def test_demo_export_then_report(self, tmp_path, capsys):
        bundle_path = tmp_path / "logs.json"
        assert main(["demo", "--steal", "--export", str(bundle_path)]) == 0
        capsys.readouterr()
        assert main([
            "report", "--bundle", str(bundle_path),
            "--tloss", "600", "--texp", "100",
        ]) == 0
        out = capsys.readouterr().out
        assert "/home/taxes.pdf" in out
        assert "VERIFIED" in out

    def test_report_filters_device(self, tmp_path, capsys):
        bundle_path = tmp_path / "logs.json"
        main(["demo", "--steal", "--export", str(bundle_path)])
        capsys.readouterr()
        main(["report", "--bundle", str(bundle_path), "--tloss", "600",
              "--device", "someone-else"])
        out = capsys.readouterr().out
        assert "No key accesses" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
