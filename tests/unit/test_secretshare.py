"""k-of-m secret sharing over GF(2^8): the cluster's key-splitting core."""

from __future__ import annotations

import itertools

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.crypto.secretshare import combine_secret, split_secret
from repro.errors import CryptoError


def _rng(label: bytes = b"test") -> HmacDrbg:
    return HmacDrbg(b"secret-share-tests", label)


SECRET = bytes(range(32))


@pytest.mark.parametrize("k,m", [(1, 1), (1, 3), (2, 2), (2, 3), (3, 5), (5, 5)])
def test_roundtrip_every_k_subset(k, m):
    shares = split_secret(SECRET, k, m, _rng())
    assert len(shares) == m
    assert all(len(s) == len(SECRET) for s in shares)
    for subset in itertools.combinations(range(m), k):
        assert combine_secret({i: shares[i] for i in subset}, k, m) == SECRET


def test_extra_shares_do_not_hurt():
    shares = split_secret(SECRET, 2, 4, _rng())
    assert combine_secret(dict(enumerate(shares)), 2, 4) == SECRET


def test_fewer_than_threshold_rejected():
    shares = split_secret(SECRET, 3, 5, _rng())
    with pytest.raises(CryptoError):
        combine_secret({0: shares[0], 1: shares[1]}, 3, 5)


def test_single_share_leaks_nothing_for_2_of_2():
    # k == m == 2 is the XOR path: one share is a one-time pad.
    shares = split_secret(SECRET, 2, 2, _rng())
    assert shares[0] != SECRET and shares[1] != SECRET
    assert bytes(a ^ b for a, b in zip(*shares)) == SECRET


def test_shamir_shares_differ_from_secret():
    for share in split_secret(SECRET, 2, 3, _rng()):
        assert share != SECRET


def test_deterministic_given_same_rng_stream():
    assert (split_secret(SECRET, 2, 3, _rng())
            == split_secret(SECRET, 2, 3, _rng()))
    assert (split_secret(SECRET, 2, 3, _rng(b"a"))
            != split_secret(SECRET, 2, 3, _rng(b"b")))


def test_mismatched_share_lengths_rejected():
    shares = split_secret(SECRET, 2, 3, _rng())
    with pytest.raises(CryptoError):
        combine_secret({0: shares[0], 1: shares[1][:-1]}, 2, 3)


def test_invalid_parameters_rejected():
    with pytest.raises(CryptoError):
        split_secret(SECRET, 0, 3, _rng())
    with pytest.raises(CryptoError):
        split_secret(SECRET, 4, 3, _rng())
    shares = split_secret(SECRET, 2, 3, _rng())
    with pytest.raises(CryptoError):
        combine_secret({0: shares[0], 7: shares[1]}, 2, 3)  # bad index


def test_wrong_share_combination_gives_wrong_secret():
    shares = split_secret(SECRET, 2, 3, _rng())
    tampered = bytes(b ^ 0xFF for b in shares[1])
    assert combine_secret({0: shares[0], 1: tampered}, 2, 3) != SECRET
