"""NFSv3-style server (baseline for §5.1.3 / Figure 10).

The paper compares Keypad against NFS as the "store everything remote"
alternative: with NFS the *content* crosses the network, with Keypad
only the keys do.  The server exports a server-side file tree; every
client op is one (or more) RPCs.

The server is intentionally faithful to NFSv3's flavour: stateless
handlers keyed by file handle, LOOKUP walking one component at a time,
READ/WRITE with offsets, and an async WRITE + COMMIT pair so the client
can batch writes (the paper configured "asynchronous batched writes").
"""

from __future__ import annotations

from typing import Generator

from repro.costmodel import DEFAULT_COSTS, CostModel
from repro.errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    IsADirectory,
    NotADirectory,
)
from repro.net.rpc import RpcServer
from repro.sim import Simulation

__all__ = ["NfsServer"]


class _Node:
    __slots__ = ("handle", "is_dir", "data", "children", "mtime", "ctime")

    def __init__(self, handle: int, is_dir: bool, now: float):
        self.handle = handle
        self.is_dir = is_dir
        self.data = bytearray()
        self.children: dict[str, int] = {}
        self.mtime = now
        self.ctime = now


class NfsServer:
    """The remote file server."""

    ROOT_HANDLE = 1

    def __init__(
        self,
        sim: Simulation,
        costs: CostModel = DEFAULT_COSTS,
        name: str = "nfs-server",
    ):
        self.sim = sim
        self.costs = costs
        self.server = RpcServer(sim, name, costs)
        self._nodes: dict[int, _Node] = {}
        self._next_handle = self.ROOT_HANDLE
        root = self._new_node(is_dir=True)
        assert root.handle == self.ROOT_HANDLE

        for method, handler in (
            ("nfs.lookup", self._op_lookup),
            ("nfs.getattr", self._op_getattr),
            ("nfs.read", self._op_read),
            ("nfs.write", self._op_write),
            ("nfs.commit", self._op_commit),
            ("nfs.create", self._op_create),
            ("nfs.mkdir", self._op_mkdir),
            ("nfs.remove", self._op_remove),
            ("nfs.rmdir", self._op_rmdir),
            ("nfs.rename", self._op_rename),
            ("nfs.readdir", self._op_readdir),
            ("nfs.setattr", self._op_setattr),
        ):
            self.server.register(method, handler)

    def enroll_device(self, device_id: str, secret: bytes) -> None:
        self.server.enroll_device(device_id, secret)

    # -- helpers ------------------------------------------------------------
    def _new_node(self, is_dir: bool) -> _Node:
        node = _Node(self._next_handle, is_dir, self.sim.now)
        self._nodes[node.handle] = node
        self._next_handle += 1
        return node

    def _node(self, handle: int) -> _Node:
        node = self._nodes.get(handle)
        if node is None:
            raise FileNotFound(f"stale NFS handle {handle}")
        return node

    def _dir(self, handle: int) -> _Node:
        node = self._node(handle)
        if not node.is_dir:
            raise NotADirectory(f"handle {handle}")
        return node

    def _attrs(self, node: _Node) -> dict:
        return {
            "handle": node.handle,
            "is_dir": node.is_dir,
            "size": len(node.data),
            "mtime": node.mtime,
            "ctime": node.ctime,
        }

    # -- operations ------------------------------------------------------------
    def _op_lookup(self, device_id: str, payload: dict) -> Generator:
        yield self.sim.timeout(self.costs.nfs_server_op)
        parent = self._dir(payload["dir_handle"])
        child_handle = parent.children.get(payload["name"])
        if child_handle is None:
            raise FileNotFound(payload["name"])
        return self._attrs(self._node(child_handle))

    def _op_getattr(self, device_id: str, payload: dict) -> Generator:
        yield self.sim.timeout(self.costs.nfs_server_op)
        return self._attrs(self._node(payload["handle"]))

    def _op_read(self, device_id: str, payload: dict) -> Generator:
        yield self.sim.timeout(self.costs.nfs_server_op)
        node = self._node(payload["handle"])
        if node.is_dir:
            raise IsADirectory(str(payload["handle"]))
        offset = payload["offset"]
        count = payload["count"]
        return {"data": bytes(node.data[offset:offset + count])}

    def _op_write(self, device_id: str, payload: dict) -> Generator:
        yield self.sim.timeout(self.costs.nfs_server_op)
        node = self._node(payload["handle"])
        if node.is_dir:
            raise IsADirectory(str(payload["handle"]))
        offset = payload["offset"]
        data = payload["data"]
        if len(node.data) < offset:
            node.data.extend(bytes(offset - len(node.data)))
        node.data[offset:offset + len(data)] = data
        node.mtime = self.sim.now
        return {"count": len(data)}

    def _op_commit(self, device_id: str, payload: dict) -> Generator:
        yield self.sim.timeout(self.costs.nfs_server_op)
        return {"verf": 1}

    def _op_create(self, device_id: str, payload: dict) -> Generator:
        yield self.sim.timeout(self.costs.nfs_server_op)
        parent = self._dir(payload["dir_handle"])
        name = payload["name"]
        if name in parent.children:
            raise FileExists(name)
        node = self._new_node(is_dir=False)
        parent.children[name] = node.handle
        parent.mtime = self.sim.now
        return self._attrs(node)

    def _op_mkdir(self, device_id: str, payload: dict) -> Generator:
        yield self.sim.timeout(self.costs.nfs_server_op)
        parent = self._dir(payload["dir_handle"])
        name = payload["name"]
        if name in parent.children:
            raise FileExists(name)
        node = self._new_node(is_dir=True)
        parent.children[name] = node.handle
        parent.mtime = self.sim.now
        return self._attrs(node)

    def _op_remove(self, device_id: str, payload: dict) -> Generator:
        yield self.sim.timeout(self.costs.nfs_server_op)
        parent = self._dir(payload["dir_handle"])
        name = payload["name"]
        handle = parent.children.get(name)
        if handle is None:
            raise FileNotFound(name)
        if self._node(handle).is_dir:
            raise IsADirectory(name)
        del parent.children[name]
        del self._nodes[handle]
        return {"ok": True}

    def _op_rmdir(self, device_id: str, payload: dict) -> Generator:
        yield self.sim.timeout(self.costs.nfs_server_op)
        parent = self._dir(payload["dir_handle"])
        name = payload["name"]
        handle = parent.children.get(name)
        if handle is None:
            raise FileNotFound(name)
        node = self._node(handle)
        if not node.is_dir:
            raise NotADirectory(name)
        if node.children:
            raise DirectoryNotEmpty(name)
        del parent.children[name]
        del self._nodes[handle]
        return {"ok": True}

    def _op_rename(self, device_id: str, payload: dict) -> Generator:
        yield self.sim.timeout(self.costs.nfs_server_op)
        src_dir = self._dir(payload["src_dir"])
        dst_dir = self._dir(payload["dst_dir"])
        src_name = payload["src_name"]
        dst_name = payload["dst_name"]
        handle = src_dir.children.get(src_name)
        if handle is None:
            raise FileNotFound(src_name)
        existing = dst_dir.children.get(dst_name)
        if existing is not None and existing != handle:
            target = self._node(existing)
            if target.is_dir and target.children:
                raise DirectoryNotEmpty(dst_name)
            del self._nodes[existing]
        del src_dir.children[src_name]
        dst_dir.children[dst_name] = handle
        src_dir.mtime = dst_dir.mtime = self.sim.now
        return {"ok": True}

    def _op_readdir(self, device_id: str, payload: dict) -> Generator:
        yield self.sim.timeout(self.costs.nfs_server_op)
        node = self._dir(payload["handle"])
        return {"names": sorted(node.children)}

    def _op_setattr(self, device_id: str, payload: dict) -> Generator:
        yield self.sim.timeout(self.costs.nfs_server_op)
        node = self._node(payload["handle"])
        if "size" in payload:
            size = payload["size"]
            if size < len(node.data):
                del node.data[size:]
            else:
                node.data.extend(bytes(size - len(node.data)))
            node.mtime = self.sim.now
        return self._attrs(node)
