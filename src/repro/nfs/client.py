"""NFSv3-style client with attribute/lookup/data caches.

Implements :class:`FsInterface`, so workloads run unchanged against
NFS.  Configured like the paper's comparison setup: "We configured NFS
with asynchronous batched writes and its default caching policy" —
writes are applied to the local page cache and flushed by a background
writer, reads and lookups are served from caches within the attribute
timeout, everything else is an RPC and pays the network RTT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.costmodel import DEFAULT_COSTS, CostModel
from repro.errors import FileNotFound, InvalidArgument
from repro.net.link import Link
from repro.net.rpc import RpcChannel
from repro.sim import Simulation
from repro.storage.backend import FsInterface
from repro.storage.localfs import Attr
from repro.util.paths import basename, normalize, parent_of, split
from repro.nfs.server import NfsServer

__all__ = ["NfsClient"]


@dataclass
class _CachedAttrs:
    attrs: dict
    fetched_at: float


class NfsClient(FsInterface):
    """The client-side NFS implementation."""

    def __init__(
        self,
        sim: Simulation,
        server: NfsServer,
        link: Link,
        device_id: str = "nfs-client",
        device_secret: bytes = b"nfs-secret-0000000000000000000000",
        costs: CostModel = DEFAULT_COSTS,
        # Linux NFS adapts attribute-cache lifetime between acregmin
        # (3 s) and acregmax (60 s); stable files — the common case in
        # a compile's header pool — sit at the max, so that is the
        # faithful default for the paper's "default caching policy".
        attr_timeout: float = 60.0,
        flush_delay: float = 0.05,
    ):
        self.sim = sim
        self.server = server
        self.costs = costs
        self.attr_timeout = attr_timeout
        self.flush_delay = flush_delay
        server.enroll_device(device_id, device_secret)
        self.channel = RpcChannel(
            sim, link, server.server, device_id, device_secret, costs
        )
        self._handles: dict[str, int] = {"/": NfsServer.ROOT_HANDLE}
        self._attrs: dict[int, _CachedAttrs] = {}
        self._data: dict[int, bytearray] = {}
        self._data_fresh: dict[int, float] = {}
        # Length of the contiguous valid prefix of each page cache —
        # bytes beyond it were never fetched and must come from the
        # server (serving them would silently return zeros).
        self._data_extent: dict[int, int] = {}
        # Handles whose ENTIRE content is cached (created/written
        # through this client, or fetched to EOF).
        self._data_full: set[int] = set()
        self._dirty: list[tuple[int, int, bytes]] = []
        self._flusher_running = False
        self.rpc_count = 0

    # -- RPC plumbing --------------------------------------------------------
    def _call(self, method: str, **params) -> Generator:
        self.rpc_count += 1
        yield self.sim.timeout(self.costs.nfs_client_op)
        result = yield from self.channel.call(method, **params)
        return result

    # -- handle resolution with lookup cache -----------------------------------
    def _resolve(self, path: str) -> Generator:
        path = normalize(path)
        cached = self._handles.get(path)
        if cached is not None:
            return cached
        parent_handle = NfsServer.ROOT_HANDLE
        walked = "/"
        for comp in split(path):
            walked = normalize(f"{walked}/{comp}")
            cached = self._handles.get(walked)
            if cached is not None:
                parent_handle = cached
                continue
            attrs = yield from self._call(
                "nfs.lookup", dir_handle=parent_handle, name=comp
            )
            parent_handle = attrs["handle"]
            self._handles[walked] = parent_handle
            self._attrs[parent_handle] = _CachedAttrs(attrs, self.sim.now)
        return parent_handle

    def _fresh_attrs(self, handle: int) -> Optional[dict]:
        cached = self._attrs.get(handle)
        if cached and self.sim.now - cached.fetched_at < self.attr_timeout:
            return cached.attrs
        return None

    def _getattr_rpc(self, handle: int) -> Generator:
        attrs = yield from self._call("nfs.getattr", handle=handle)
        self._attrs[handle] = _CachedAttrs(attrs, self.sim.now)
        return attrs

    def _invalidate_path(self, path: str) -> None:
        path = normalize(path)
        for key in [k for k in self._handles
                    if k == path or k.startswith(path + "/")]:
            handle = self._handles.pop(key)
            self._attrs.pop(handle, None)

    # -- background write flusher -------------------------------------------------
    def _ensure_flusher(self) -> None:
        if not self._flusher_running:
            self._flusher_running = True
            self.sim.process(self._flush_loop(), name="nfs-flusher")

    def _flush_loop(self) -> Generator:
        yield self.sim.timeout(self.flush_delay)
        while self._dirty:
            handle, offset, data = self._dirty.pop(0)
            try:
                yield from self._call(
                    "nfs.write", handle=handle, offset=offset, data=data
                )
            except FileNotFound:
                # File removed before the async write landed (the real
                # protocol's silly-rename case); the data is moot.
                continue
        yield from self._call("nfs.commit", handle=0)
        self._flusher_running = False
        return None

    def drop_caches(self) -> None:
        """Discard cached pages and attributes (fresh mount / memory
        pressure).  Dirty data must be flushed first."""
        if self._dirty:
            raise InvalidArgument("flush dirty writes before dropping caches")
        self._data.clear()
        self._data_fresh.clear()
        self._data_extent.clear()
        self._data_full.clear()
        self._attrs.clear()

    def flush(self) -> Generator:
        """Synchronous flush (fsync / unmount)."""
        while self._dirty:
            handle, offset, data = self._dirty.pop(0)
            try:
                yield from self._call(
                    "nfs.write", handle=handle, offset=offset, data=data
                )
            except FileNotFound:
                continue
        return None

    # -- FsInterface -----------------------------------------------------------------
    def exists(self, path: str) -> Generator:
        try:
            yield from self._resolve(path)
            return True
        except FileNotFound:
            return False

    def getattr(self, path: str) -> Generator:
        handle = yield from self._resolve(path)
        attrs = self._fresh_attrs(handle)
        if attrs is None:
            attrs = yield from self._getattr_rpc(handle)
        size = attrs["size"]
        if handle in self._data:
            size = max(size, len(self._data[handle]))
        return Attr(
            ino=handle,
            is_dir=attrs["is_dir"],
            size=size,
            mtime=attrs["mtime"],
            ctime=attrs["ctime"],
            nlink=1,
        )

    def create(self, path: str) -> Generator:
        parent = yield from self._resolve(parent_of(path))
        attrs = yield from self._call(
            "nfs.create", dir_handle=parent, name=basename(path)
        )
        handle = attrs["handle"]
        self._handles[normalize(path)] = handle
        self._attrs[handle] = _CachedAttrs(attrs, self.sim.now)
        self._data[handle] = bytearray()
        self._data_fresh[handle] = self.sim.now
        self._data_extent[handle] = 0
        self._data_full.add(handle)  # empty file: fully cached
        return None

    def mkdir(self, path: str) -> Generator:
        parent = yield from self._resolve(parent_of(path))
        attrs = yield from self._call(
            "nfs.mkdir", dir_handle=parent, name=basename(path)
        )
        self._handles[normalize(path)] = attrs["handle"]
        self._attrs[attrs["handle"]] = _CachedAttrs(attrs, self.sim.now)
        return None

    def read(self, path: str, offset: int, size: int) -> Generator:
        handle = yield from self._resolve(path)
        fresh = self._data_fresh.get(handle)
        cache_fresh = fresh is not None and (
            self.sim.now - fresh < self.attr_timeout
        )
        extent = self._data_extent.get(handle, 0)
        if handle in self._data and cache_fresh:
            data = self._data[handle]
            if handle in self._data_full or offset + size <= extent:
                return bytes(data[offset:offset + size])
        result = yield from self._call(
            "nfs.read", handle=handle, offset=offset, count=size
        )
        payload = result["data"]
        # Populate the page cache with the fetched range.
        cache = self._data.setdefault(handle, bytearray())
        if len(cache) < offset + len(payload):
            cache.extend(bytes(offset + len(payload) - len(cache)))
        cache[offset:offset + len(payload)] = payload
        if offset <= self._data_extent.get(handle, 0):
            self._data_extent[handle] = max(
                self._data_extent.get(handle, 0), offset + len(payload)
            )
        if len(payload) < size:
            # Short read = we hit EOF; the valid prefix now covers the
            # whole file.
            if self._data_extent.get(handle, 0) >= offset + len(payload):
                self._data_full.add(handle)
        self._data_fresh[handle] = self.sim.now
        return payload

    def write(self, path: str, offset: int, data: bytes) -> Generator:
        handle = yield from self._resolve(path)
        cache = self._data.setdefault(handle, bytearray())
        if len(cache) < offset:
            cache.extend(bytes(offset - len(cache)))
        cache[offset:offset + len(data)] = data
        if offset <= self._data_extent.get(handle, 0):
            self._data_extent[handle] = max(
                self._data_extent.get(handle, 0), offset + len(data)
            )
        elif handle in self._data_full:
            # A write beyond the cached region punches a hole.
            self._data_full.discard(handle)
        self._data_fresh[handle] = self.sim.now
        self._dirty.append((handle, offset, bytes(data)))
        self._ensure_flusher()
        yield self.sim.timeout(self.costs.nfs_client_op)
        return len(data)

    def truncate(self, path: str, size: int) -> Generator:
        handle = yield from self._resolve(path)
        yield from self._call("nfs.setattr", handle=handle, size=size)
        cache = self._data.get(handle)
        if cache is not None:
            if size < len(cache):
                del cache[size:]
                self._data_extent[handle] = min(
                    self._data_extent.get(handle, 0), size
                )
            else:
                # The server zero-fills; the zeros are known content.
                if handle in self._data_full:
                    cache.extend(bytes(size - len(cache)))
                    self._data_extent[handle] = size
        return None

    def readdir(self, path: str) -> Generator:
        handle = yield from self._resolve(path)
        result = yield from self._call("nfs.readdir", handle=handle)
        return result["names"]

    def unlink(self, path: str) -> Generator:
        parent = yield from self._resolve(parent_of(path))
        yield from self._call(
            "nfs.remove", dir_handle=parent, name=basename(path)
        )
        self._invalidate_path(path)
        return None

    def rmdir(self, path: str) -> Generator:
        parent = yield from self._resolve(parent_of(path))
        yield from self._call(
            "nfs.rmdir", dir_handle=parent, name=basename(path)
        )
        self._invalidate_path(path)
        return None

    def rename(self, old: str, new: str) -> Generator:
        src_dir = yield from self._resolve(parent_of(old))
        dst_dir = yield from self._resolve(parent_of(new))
        yield from self._call(
            "nfs.rename",
            src_dir=src_dir,
            dst_dir=dst_dir,
            src_name=basename(old),
            dst_name=basename(new),
        )
        handle = self._handles.get(normalize(old))
        self._invalidate_path(old)
        self._invalidate_path(new)
        if handle is not None:
            self._handles[normalize(new)] = handle
        return None

    def set_xattr(self, path: str, name: str, value: bytes) -> Generator:
        raise InvalidArgument("NFSv3 does not support extended attributes")
        yield  # pragma: no cover

    def get_xattr(self, path: str, name: str) -> Generator:
        raise InvalidArgument("NFSv3 does not support extended attributes")
        yield  # pragma: no cover
