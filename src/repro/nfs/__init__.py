"""NFSv3-style networked file system baseline (§5.1.3)."""

from repro.nfs.client import NfsClient
from repro.nfs.server import NfsServer

__all__ = ["NfsClient", "NfsServer"]
