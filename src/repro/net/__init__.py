"""Simulated network substrate: links, presets, wire format, RPC.

.. deprecated::
    Importing names from ``repro.net`` directly is deprecated; the
    stable public surface is :mod:`repro.api` (or the defining
    submodule, for internals).  Every historical name still resolves —
    lazily, with a :class:`DeprecationWarning` — so existing scripts
    keep working unchanged.
"""

from __future__ import annotations

import importlib
import warnings

#: every name the package ever re-exported, mapped to its home module.
_EXPORTS = {
    "Link": "repro.net.link",
    "LinkStats": "repro.net.link",
    "ALL_NETWORKS": "repro.net.netem",
    "BLUETOOTH": "repro.net.netem",
    "BROADBAND": "repro.net.netem",
    "DSL": "repro.net.netem",
    "LAN": "repro.net.netem",
    "PAPER_SWEEP_RTTS": "repro.net.netem",
    "THREE_G": "repro.net.netem",
    "WLAN": "repro.net.netem",
    "NetEnv": "repro.net.netem",
    "ChannelMetrics": "repro.net.metrics",
    "SessionMetrics": "repro.net.metrics",
    "merge_channel_metrics": "repro.net.metrics",
    "HELLO_METHOD": "repro.net.rpc",
    "RpcChannel": "repro.net.rpc",
    "RpcServer": "repro.net.rpc",
    "FRAME_OVERHEAD": "repro.net.wire",
    "PROTOCOL_LATEST": "repro.net.wire",
    "PROTOCOL_V1": "repro.net.wire",
    "PROTOCOL_V2": "repro.net.wire",
    "marshal_request": "repro.net.wire",
    "marshal_response": "repro.net.wire",
    "pack_envelope": "repro.net.wire",
    "unmarshal": "repro.net.wire",
    "unpack_envelope": "repro.net.wire",
}

__all__ = [
    "ChannelMetrics",
    "SessionMetrics",
    "merge_channel_metrics",
    "HELLO_METHOD",
    "FRAME_OVERHEAD",
    "PROTOCOL_V1",
    "PROTOCOL_V2",
    "PROTOCOL_LATEST",
    "pack_envelope",
    "unpack_envelope",
    "Link",
    "LinkStats",
    "NetEnv",
    "LAN",
    "WLAN",
    "BROADBAND",
    "DSL",
    "THREE_G",
    "BLUETOOTH",
    "ALL_NETWORKS",
    "PAPER_SWEEP_RTTS",
    "RpcChannel",
    "RpcServer",
    "marshal_request",
    "marshal_response",
    "unmarshal",
]


def __getattr__(name: str):
    home = _EXPORTS.get(name)
    if home is None:
        raise AttributeError(
            f"module 'repro.net' has no attribute {name!r}"
        )
    warnings.warn(
        f"importing {name!r} from 'repro.net' is deprecated; import it "
        f"from 'repro.api' (the stable facade) or from '{home}'",
        DeprecationWarning,
        stacklevel=2,
    )
    # Deliberately not cached in globals(): each use warns, so stale
    # imports stay visible instead of going quiet after the first hit.
    return getattr(importlib.import_module(home), name)


def __dir__() -> list[str]:
    return sorted(set(list(globals()) + __all__))
