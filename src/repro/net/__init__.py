"""Simulated network substrate: links, presets, wire format, RPC."""

from repro.net.link import Link, LinkStats
from repro.net.netem import (
    ALL_NETWORKS,
    BLUETOOTH,
    BROADBAND,
    DSL,
    LAN,
    PAPER_SWEEP_RTTS,
    THREE_G,
    WLAN,
    NetEnv,
)
from repro.net.metrics import ChannelMetrics, SessionMetrics, merge_channel_metrics
from repro.net.rpc import HELLO_METHOD, RpcChannel, RpcServer
from repro.net.wire import (
    FRAME_OVERHEAD,
    PROTOCOL_LATEST,
    PROTOCOL_V1,
    PROTOCOL_V2,
    marshal_request,
    marshal_response,
    pack_envelope,
    unmarshal,
    unpack_envelope,
)

__all__ = [
    "ChannelMetrics",
    "SessionMetrics",
    "merge_channel_metrics",
    "HELLO_METHOD",
    "FRAME_OVERHEAD",
    "PROTOCOL_V1",
    "PROTOCOL_V2",
    "PROTOCOL_LATEST",
    "pack_envelope",
    "unpack_envelope",
    "Link",
    "LinkStats",
    "NetEnv",
    "LAN",
    "WLAN",
    "BROADBAND",
    "DSL",
    "THREE_G",
    "BLUETOOTH",
    "ALL_NETWORKS",
    "PAPER_SWEEP_RTTS",
    "RpcChannel",
    "RpcServer",
    "marshal_request",
    "marshal_response",
    "unmarshal",
]
