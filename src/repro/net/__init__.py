"""Simulated network substrate: links, presets, wire format, RPC."""

from repro.net.link import Link, LinkStats
from repro.net.netem import (
    ALL_NETWORKS,
    BLUETOOTH,
    BROADBAND,
    DSL,
    LAN,
    PAPER_SWEEP_RTTS,
    THREE_G,
    WLAN,
    NetEnv,
)
from repro.net.rpc import RpcChannel, RpcServer
from repro.net.wire import marshal_request, marshal_response, unmarshal

__all__ = [
    "Link",
    "LinkStats",
    "NetEnv",
    "LAN",
    "WLAN",
    "BROADBAND",
    "DSL",
    "THREE_G",
    "BLUETOOTH",
    "ALL_NETWORKS",
    "PAPER_SWEEP_RTTS",
    "RpcChannel",
    "RpcServer",
    "marshal_request",
    "marshal_response",
    "unmarshal",
]
