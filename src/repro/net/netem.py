"""Network environment presets matching the paper's evaluation (§5).

    "we emulate the following RTTs for various networks: 0.1ms RTT for
    a LAN, 2ms RTT for a wireless LAN (WLAN), 25ms RTT for broadband,
    125ms RTT for a DSL network, and 300ms RTT for a 3G cellular
    network."

Bandwidth is deliberately left unconstrained for the service links —
the paper does the same ("we did not emulate different bandwidth
constraints, however, Keypad's bandwidth requirements are very low").
The Bluetooth preset backs the paired-device experiments; the paper
observes its latency is broadband-class.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.link import Link
from repro.sim import Simulation

__all__ = ["NetEnv", "LAN", "WLAN", "BROADBAND", "DSL", "THREE_G", "BLUETOOTH",
           "ALL_NETWORKS", "PAPER_SWEEP_RTTS"]


@dataclass(frozen=True)
class NetEnv:
    """A named network environment."""

    name: str
    rtt: float  # seconds
    bandwidth_bps: float | None = None

    def make_link(self, sim: Simulation, label: str = "") -> Link:
        return Link(
            sim,
            rtt=self.rtt,
            bandwidth_bps=self.bandwidth_bps,
            name=label or self.name,
        )

    @property
    def rtt_ms(self) -> float:
        return self.rtt * 1000.0


LAN = NetEnv("LAN", rtt=0.1e-3)
WLAN = NetEnv("WLAN", rtt=2e-3)
BROADBAND = NetEnv("Broadband", rtt=25e-3)
DSL = NetEnv("DSL", rtt=125e-3)
THREE_G = NetEnv("3G", rtt=300e-3)
BLUETOOTH = NetEnv("Bluetooth", rtt=25e-3)

ALL_NETWORKS = (LAN, WLAN, BROADBAND, DSL, THREE_G)

# RTT sweep (ms) used by the figures plotted against log-scale RTT
# (Figures 8 and 10 span 0.1 ms .. 300 ms).
PAPER_SWEEP_RTTS = (0.1, 0.5, 2.0, 8.0, 25.0, 60.0, 125.0, 300.0)
