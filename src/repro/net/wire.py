"""XML-RPC-style wire marshalling and the versioned transport envelope.

The paper's components "communicate using encrypted XML-RPC with
persistent connections", and its Figure 6 attributes the client-side
overhead of a key fetch chiefly to "XML-RPC marshalling overhead".  We
therefore marshal to real XML-RPC bytes (a faithful subset: struct,
array, int, string, base64, boolean, double, nil) so that byte counts —
which feed both the bandwidth experiment and the link transfer times —
are honest.

Protocol versions
-----------------

* **v1** (the paper's prototype): one message per connection turn, no
  framing — the sealed XML-RPC body *is* the envelope.  Responses are
  implicitly matched to requests because only one may be outstanding.
* **v2** (pipelined): each sealed body is wrapped in a fixed 13-byte
  frame — magic ``KPAD``, a version byte, and a 64-bit request ID — so
  multiple requests can share one connection and responses can complete
  out of order.  :func:`unpack_envelope` transparently recognises bare
  v1 bodies, which is what lets a v2 peer interoperate with (and
  degrade to) a v1 peer.
"""

from __future__ import annotations

import base64
import re
from typing import Any, Optional

from repro.errors import RpcError

__all__ = [
    "marshal_request",
    "marshal_request_len",
    "marshal_response",
    "marshal_response_len",
    "normalize_value",
    "unmarshal",
    "WireMessage",
    "PROTOCOL_V1",
    "PROTOCOL_V2",
    "PROTOCOL_LATEST",
    "FRAME_OVERHEAD",
    "pack_envelope",
    "unpack_envelope",
]

PROTOCOL_V1 = 1
PROTOCOL_V2 = 2
PROTOCOL_LATEST = PROTOCOL_V2

_FRAME_MAGIC = b"KPAD"
#: bytes a v2 frame adds on top of the sealed body (magic + ver + id).
FRAME_OVERHEAD = len(_FRAME_MAGIC) + 1 + 8


def pack_envelope(version: int, request_id: Optional[int], body: bytes) -> bytes:
    """Wrap a sealed message body for the wire.

    v1 envelopes are the bare body (byte-compatible with the original
    prototype); v2 envelopes carry the version and request ID so a
    pipelined peer can match out-of-order responses.
    """
    if version <= PROTOCOL_V1:
        return body
    if request_id is None or request_id < 0:
        raise RpcError("v2 envelopes require a non-negative request ID")
    return (
        _FRAME_MAGIC
        + version.to_bytes(1, "big")
        + request_id.to_bytes(8, "big")
        + body
    )


def unpack_envelope(data: bytes) -> tuple[int, Optional[int], bytes]:
    """Split an envelope into ``(version, request_id, body)``.

    Bare bodies (no frame magic) parse as v1 with ``request_id=None``,
    which is how a v2 peer recognises a v1 peer's traffic.
    """
    if not data.startswith(_FRAME_MAGIC):
        return PROTOCOL_V1, None, data
    if len(data) < FRAME_OVERHEAD:
        raise RpcError("truncated v2 envelope")
    version = data[len(_FRAME_MAGIC)]
    if version < PROTOCOL_V2:
        raise RpcError(f"framed envelope claims pre-framing version {version}")
    request_id = int.from_bytes(data[len(_FRAME_MAGIC) + 1:FRAME_OVERHEAD], "big")
    return version, request_id, data[FRAME_OVERHEAD:]


class WireMessage:
    """A parsed wire message: method name (requests only) + payload."""

    def __init__(self, method: str | None, payload: Any):
        self.method = method
        self.payload = payload


def _encode_into(out: list, value: Any) -> None:
    """Append ``value``'s XML-RPC encoding fragments to ``out``.

    One flat fragment list for the whole message instead of a nested
    string per sub-value — marshalling is a top-5 fleet-simulation cost
    and the join-per-level version spent most of it on intermediates.
    """
    append = out.append
    if value is None:
        append("<nil/>")
    elif isinstance(value, bool):
        append("<boolean>1</boolean>" if value else "<boolean>0</boolean>")
    elif isinstance(value, int):
        append(f"<int>{value}</int>")
    elif isinstance(value, float):
        append(f"<double>{value!r}</double>")
    elif isinstance(value, str):
        append("<string>")
        append(_escape(value))
        append("</string>")
    elif isinstance(value, (bytes, bytearray)):
        append("<base64>")
        append(base64.b64encode(bytes(value)).decode())
        append("</base64>")
    elif isinstance(value, (list, tuple)):
        append("<array><data>")
        for v in value:
            append("<value>")
            _encode_into(out, v)
            append("</value>")
        append("</data></array>")
    elif isinstance(value, dict):
        append("<struct>")
        for k, v in value.items():
            append("<member><name>")
            append(_escape(str(k)))
            append("</name><value>")
            _encode_into(out, v)
            append("</value></member>")
        append("</struct>")
    else:
        raise RpcError(f"cannot marshal value of type {type(value).__name__}")


def _encode_value(value: Any) -> str:
    out: list[str] = []
    _encode_into(out, value)
    return "".join(out)


def normalize_value(value: Any) -> Any:
    """Exactly ``unmarshal(marshal(value))`` without touching bytes.

    Both wire peers live in one simulation process, so the bytes a
    channel marshals (for sizes, MACs, and sealing) would be parsed
    straight back into the values it started from.  This replays the
    round-trip's *semantic* effects — tuples become lists, non-str dict
    keys become strings, subclasses collapse to builtins, strings that
    tokenize away (whitespace-only) come back empty — so transports can
    skip the redundant parse.  ``tests/property`` holds this function to
    the real round-trip under randomized payloads.
    """
    if value is None or value is True or value is False:
        return value
    cls = type(value)
    if cls is int or cls is float or cls is bytes:
        return value
    if cls is str:
        # The tokenizer drops whitespace-only text nodes, so a blank
        # string unmarshals as empty.
        return value if not value or value.strip() else ""
    if isinstance(value, bool):
        return bool(value)
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        return float(value)
    if isinstance(value, str):
        return value if not value or value.strip() else ""
    if isinstance(value, (bytes, bytearray)):
        return bytes(value)
    if isinstance(value, (list, tuple)):
        return [normalize_value(v) for v in value]
    if isinstance(value, dict):
        # Member names tokenize away exactly like string bodies, so
        # whitespace-only keys also come back empty.
        return {
            ("" if key and not key.strip() else key): normalize_value(v)
            for k, v in value.items()
            for key in (str(k),)
        }
    raise RpcError(f"cannot marshal value of type {type(value).__name__}")


def _escaped_len(text: str) -> int:
    """UTF-8 byte length of ``_escape(text)`` without building it."""
    n = len(text)
    if not text.isascii():
        n = len(text.encode())
    if "&" in text or "<" in text or ">" in text:
        # &amp; adds 4 bytes per '&'; &lt;/&gt; add 3 per '<'/'>'.
        n += 4 * text.count("&") + 3 * text.count("<") + 3 * text.count(">")
    return n


def _encoded_len(value: Any) -> int:
    """Byte length of ``_encode_value(value).encode()`` without encoding.

    Wire *sizes* drive the simulation (transfer times, marshal CPU,
    bandwidth tables); the bytes themselves are only needed when both
    peers do not share a process.  This mirrors :func:`_encode_into`
    tag for tag so transports can charge exact sizes lazily.
    """
    if value is None:
        return 6                                    # <nil/>
    if isinstance(value, bool):
        return 20                                   # <boolean>x</boolean>
    if isinstance(value, int):
        return 11 + len(format(value))              # <int>..</int>
    if isinstance(value, float):
        return 17 + len(repr(value))                # <double>..</double>
    if isinstance(value, str):
        return 17 + _escaped_len(value)             # <string>..</string>
    if isinstance(value, (bytes, bytearray)):
        return 17 + 4 * ((len(value) + 2) // 3)     # <base64>..</base64>
    if isinstance(value, (list, tuple)):
        n = 28                                      # <array><data>..</data></array>
        for v in value:
            n += 15 + _encoded_len(v)               # <value>..</value>
        return n
    if isinstance(value, dict):
        n = 17                                      # <struct>..</struct>
        for k, v in value.items():
            # <member><name>k</name><value>v</value></member>
            n += 45 + _escaped_len(str(k)) + _encoded_len(v)
        return n
    raise RpcError(f"cannot marshal value of type {type(value).__name__}")


def _escape(text: str) -> str:
    if "&" not in text and "<" not in text and ">" not in text:
        return text
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def _unescape(text: str) -> str:
    if "&" not in text:  # every escape sequence contains an ampersand
        return text
    return (
        text.replace("&lt;", "<").replace("&gt;", ">").replace("&amp;", "&")
    )


def marshal_request(method: str, params: dict[str, Any]) -> bytes:
    body = (
        "<?xml version='1.0'?><methodCall>"
        f"<methodName>{_escape(method)}</methodName>"
        f"<params><param><value>{_encode_value(params)}</value></param></params>"
        "</methodCall>"
    )
    return body.encode()


def marshal_response(payload: Any) -> bytes:
    body = (
        "<?xml version='1.0'?><methodResponse>"
        f"<params><param><value>{_encode_value(payload)}</value></param></params>"
        "</methodResponse>"
    )
    return body.encode()


#: fixed framing bytes around the method name and payload in
#: marshal_request / marshal_response (prologue, tags, params wrapper).
_REQUEST_FIXED_LEN = len(marshal_request("", {})) - _encoded_len({})
_RESPONSE_FIXED_LEN = len(marshal_response(None)) - _encoded_len(None)


def marshal_request_len(method: str, params: dict[str, Any]) -> int:
    """Exactly ``len(marshal_request(method, params))``, lazily."""
    return _REQUEST_FIXED_LEN + _escaped_len(method) + _encoded_len(params)


def marshal_response_len(payload: Any) -> int:
    """Exactly ``len(marshal_response(payload))``, lazily."""
    return _RESPONSE_FIXED_LEN + _encoded_len(payload)


# A tiny recursive-descent parser over a tokenized tag stream.  We parse
# only what we emit; anything else is a protocol error.  The parser is a
# pair of functions threading an integer position through a token list —
# unmarshalling is ~20% of fleet-simulation CPU, so per-token method
# calls (peek/next/expect) are deliberately inlined into index math.

_TOKEN = re.compile(r"<[^>]+>|[^<]+")


def _expected(tokens: list[str], pos: int, tag: str) -> RpcError:
    if pos >= len(tokens):
        return RpcError("truncated wire message")
    return RpcError(f"expected {tag}, got {tokens[pos]}")


def _parse_value(tokens: list[str], pos: int) -> tuple[Any, int]:
    """Parse ``<value>...</value>`` at ``pos``; return (value, new pos)."""
    if tokens[pos] != "<value>":
        raise _expected(tokens, pos, "<value>")
    value, pos = _parse_typed(tokens, pos + 1)
    if tokens[pos] != "</value>":
        raise _expected(tokens, pos, "</value>")
    return value, pos + 1


def _parse_typed(tokens: list[str], pos: int) -> tuple[Any, int]:
    token = tokens[pos]
    pos += 1
    if token == "<struct>":
        result: dict[str, Any] = {}
        while tokens[pos] != "</struct>":
            if tokens[pos] != "<member>":
                raise _expected(tokens, pos, "<member>")
            if tokens[pos + 1] != "<name>":
                raise _expected(tokens, pos + 1, "<name>")
            if tokens[pos + 2] == "</name>":
                # Empty/whitespace-only member names tokenize away,
                # exactly like empty <string> bodies.
                name = ""
                pos += 3
            else:
                name = _unescape(tokens[pos + 2])
                if tokens[pos + 3] != "</name>":
                    raise _expected(tokens, pos + 3, "</name>")
                pos += 4
            result[name], pos = _parse_value(tokens, pos)
            if tokens[pos] != "</member>":
                raise _expected(tokens, pos, "</member>")
            pos += 1
        return result, pos + 1
    if token == "<string>":
        raw = tokens[pos]
        if raw == "</string>":
            return "", pos + 1
        if tokens[pos + 1] != "</string>":
            raise _expected(tokens, pos + 1, "</string>")
        return _unescape(raw), pos + 2
    if token == "<base64>":
        raw = tokens[pos]
        if raw == "</base64>":
            return b"", pos + 1
        if tokens[pos + 1] != "</base64>":
            raise _expected(tokens, pos + 1, "</base64>")
        return base64.b64decode(raw.strip()), pos + 2
    if token == "<int>":
        raw = tokens[pos]
        if tokens[pos + 1] != "</int>":
            raise _expected(tokens, pos + 1, "</int>")
        return int(raw), pos + 2
    if token == "<double>":
        raw = tokens[pos]
        if tokens[pos + 1] != "</double>":
            raise _expected(tokens, pos + 1, "</double>")
        return float(raw), pos + 2
    if token == "<nil/>":
        return None, pos
    if token == "<boolean>":
        raw = tokens[pos]
        if tokens[pos + 1] != "</boolean>":
            raise _expected(tokens, pos + 1, "</boolean>")
        return raw.strip() == "1", pos + 2
    if token == "<array>":
        if tokens[pos] != "<data>":
            raise _expected(tokens, pos, "<data>")
        pos += 1
        items = []
        append = items.append
        while tokens[pos] != "</data>":
            item, pos = _parse_value(tokens, pos)
            append(item)
        if tokens[pos + 1] != "</array>":
            raise _expected(tokens, pos + 1, "</array>")
        return items, pos + 2
    raise RpcError(f"unexpected wire token {token}")


def unmarshal(data: bytes) -> WireMessage:
    """Parse a request or response produced by the marshal functions."""
    try:
        text = data.decode()
    except UnicodeDecodeError as exc:
        raise RpcError("wire message is not valid UTF-8") from exc
    tokens = [t for t in _TOKEN.findall(text) if t.strip()]
    try:
        if not tokens[0].startswith("<?xml"):
            raise RpcError("missing XML prologue")
        kind = tokens[1]
        if kind == "<methodCall>":
            if tokens[2] != "<methodName>":
                raise _expected(tokens, 2, "<methodName>")
            method = _unescape(tokens[3])
            for i, tag in ((4, "</methodName>"), (5, "<params>"), (6, "<param>")):
                if tokens[i] != tag:
                    raise _expected(tokens, i, tag)
            payload, pos = _parse_value(tokens, 7)
            for off, tag in ((0, "</param>"), (1, "</params>"), (2, "</methodCall>")):
                if tokens[pos + off] != tag:
                    raise _expected(tokens, pos + off, tag)
            return WireMessage(method, payload)
        if kind == "<methodResponse>":
            for i, tag in ((2, "<params>"), (3, "<param>")):
                if tokens[i] != tag:
                    raise _expected(tokens, i, tag)
            payload, pos = _parse_value(tokens, 4)
            for off, tag in ((0, "</param>"), (1, "</params>"), (2, "</methodResponse>")):
                if tokens[pos + off] != tag:
                    raise _expected(tokens, pos + off, tag)
            return WireMessage(None, payload)
        raise RpcError(f"unknown wire message kind {kind}")
    except IndexError:
        raise RpcError("truncated wire message") from None
