"""XML-RPC-style wire marshalling and the versioned transport envelope.

The paper's components "communicate using encrypted XML-RPC with
persistent connections", and its Figure 6 attributes the client-side
overhead of a key fetch chiefly to "XML-RPC marshalling overhead".  We
therefore marshal to real XML-RPC bytes (a faithful subset: struct,
array, int, string, base64, boolean, double, nil) so that byte counts —
which feed both the bandwidth experiment and the link transfer times —
are honest.

Protocol versions
-----------------

* **v1** (the paper's prototype): one message per connection turn, no
  framing — the sealed XML-RPC body *is* the envelope.  Responses are
  implicitly matched to requests because only one may be outstanding.
* **v2** (pipelined): each sealed body is wrapped in a fixed 13-byte
  frame — magic ``KPAD``, a version byte, and a 64-bit request ID — so
  multiple requests can share one connection and responses can complete
  out of order.  :func:`unpack_envelope` transparently recognises bare
  v1 bodies, which is what lets a v2 peer interoperate with (and
  degrade to) a v1 peer.
"""

from __future__ import annotations

import base64
import re
from typing import Any, Optional

from repro.errors import RpcError

__all__ = [
    "marshal_request",
    "marshal_response",
    "unmarshal",
    "WireMessage",
    "PROTOCOL_V1",
    "PROTOCOL_V2",
    "PROTOCOL_LATEST",
    "FRAME_OVERHEAD",
    "pack_envelope",
    "unpack_envelope",
]

PROTOCOL_V1 = 1
PROTOCOL_V2 = 2
PROTOCOL_LATEST = PROTOCOL_V2

_FRAME_MAGIC = b"KPAD"
#: bytes a v2 frame adds on top of the sealed body (magic + ver + id).
FRAME_OVERHEAD = len(_FRAME_MAGIC) + 1 + 8


def pack_envelope(version: int, request_id: Optional[int], body: bytes) -> bytes:
    """Wrap a sealed message body for the wire.

    v1 envelopes are the bare body (byte-compatible with the original
    prototype); v2 envelopes carry the version and request ID so a
    pipelined peer can match out-of-order responses.
    """
    if version <= PROTOCOL_V1:
        return body
    if request_id is None or request_id < 0:
        raise RpcError("v2 envelopes require a non-negative request ID")
    return (
        _FRAME_MAGIC
        + version.to_bytes(1, "big")
        + request_id.to_bytes(8, "big")
        + body
    )


def unpack_envelope(data: bytes) -> tuple[int, Optional[int], bytes]:
    """Split an envelope into ``(version, request_id, body)``.

    Bare bodies (no frame magic) parse as v1 with ``request_id=None``,
    which is how a v2 peer recognises a v1 peer's traffic.
    """
    if not data.startswith(_FRAME_MAGIC):
        return PROTOCOL_V1, None, data
    if len(data) < FRAME_OVERHEAD:
        raise RpcError("truncated v2 envelope")
    version = data[len(_FRAME_MAGIC)]
    if version < PROTOCOL_V2:
        raise RpcError(f"framed envelope claims pre-framing version {version}")
    request_id = int.from_bytes(data[len(_FRAME_MAGIC) + 1:FRAME_OVERHEAD], "big")
    return version, request_id, data[FRAME_OVERHEAD:]


class WireMessage:
    """A parsed wire message: method name (requests only) + payload."""

    def __init__(self, method: str | None, payload: Any):
        self.method = method
        self.payload = payload


def _encode_value(value: Any) -> str:
    if value is None:
        return "<nil/>"
    if isinstance(value, bool):
        return f"<boolean>{int(value)}</boolean>"
    if isinstance(value, int):
        return f"<int>{value}</int>"
    if isinstance(value, float):
        return f"<double>{value!r}</double>"
    if isinstance(value, str):
        return f"<string>{_escape(value)}</string>"
    if isinstance(value, (bytes, bytearray)):
        return f"<base64>{base64.b64encode(bytes(value)).decode()}</base64>"
    if isinstance(value, (list, tuple)):
        inner = "".join(f"<value>{_encode_value(v)}</value>" for v in value)
        return f"<array><data>{inner}</data></array>"
    if isinstance(value, dict):
        members = "".join(
            f"<member><name>{_escape(str(k))}</name>"
            f"<value>{_encode_value(v)}</value></member>"
            for k, v in value.items()
        )
        return f"<struct>{members}</struct>"
    raise RpcError(f"cannot marshal value of type {type(value).__name__}")


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def _unescape(text: str) -> str:
    return (
        text.replace("&lt;", "<").replace("&gt;", ">").replace("&amp;", "&")
    )


def marshal_request(method: str, params: dict[str, Any]) -> bytes:
    body = (
        "<?xml version='1.0'?><methodCall>"
        f"<methodName>{_escape(method)}</methodName>"
        f"<params><param><value>{_encode_value(params)}</value></param></params>"
        "</methodCall>"
    )
    return body.encode()


def marshal_response(payload: Any) -> bytes:
    body = (
        "<?xml version='1.0'?><methodResponse>"
        f"<params><param><value>{_encode_value(payload)}</value></param></params>"
        "</methodResponse>"
    )
    return body.encode()


# A tiny recursive-descent parser over a tokenized tag stream.  We parse
# only what we emit; anything else is a protocol error.

_TOKEN = re.compile(r"<[^>]+>|[^<]+")


class _Parser:
    def __init__(self, text: str):
        self.tokens = [t for t in _TOKEN.findall(text) if t.strip()]
        self.pos = 0

    def peek(self) -> str:
        if self.pos >= len(self.tokens):
            raise RpcError("truncated wire message")
        return self.tokens[self.pos]

    def next(self) -> str:
        token = self.peek()
        self.pos += 1
        return token

    def expect(self, tag: str) -> None:
        token = self.next()
        if token != tag:
            raise RpcError(f"expected {tag}, got {token}")

    def parse_value(self) -> Any:
        self.expect("<value>")
        result = self._parse_typed()
        self.expect("</value>")
        return result

    def _parse_typed(self) -> Any:
        token = self.next()
        if token == "<nil/>":
            return None
        if token == "<boolean>":
            raw = self.next()
            self.expect("</boolean>")
            return raw.strip() == "1"
        if token == "<int>":
            raw = self.next()
            self.expect("</int>")
            return int(raw.strip())
        if token == "<double>":
            raw = self.next()
            self.expect("</double>")
            return float(raw.strip())
        if token == "<string>":
            if self.peek() == "</string>":
                self.next()
                return ""
            raw = self.next()
            self.expect("</string>")
            return _unescape(raw)
        if token == "<base64>":
            if self.peek() == "</base64>":
                self.next()
                return b""
            raw = self.next()
            self.expect("</base64>")
            return base64.b64decode(raw.strip())
        if token == "<array>":
            self.expect("<data>")
            items = []
            while self.peek() != "</data>":
                items.append(self.parse_value())
            self.expect("</data>")
            self.expect("</array>")
            return items
        if token == "<struct>":
            result: dict[str, Any] = {}
            while self.peek() != "</struct>":
                self.expect("<member>")
                self.expect("<name>")
                name = _unescape(self.next())
                self.expect("</name>")
                result[name] = self.parse_value()
                self.expect("</member>")
            self.expect("</struct>")
            return result
        raise RpcError(f"unexpected wire token {token}")


def unmarshal(data: bytes) -> WireMessage:
    """Parse a request or response produced by the marshal functions."""
    try:
        text = data.decode()
    except UnicodeDecodeError as exc:
        raise RpcError("wire message is not valid UTF-8") from exc
    parser = _Parser(text)
    first = parser.next()
    if not first.startswith("<?xml"):
        raise RpcError("missing XML prologue")
    kind = parser.next()
    if kind == "<methodCall>":
        parser.expect("<methodName>")
        method = _unescape(parser.next())
        parser.expect("</methodName>")
        parser.expect("<params>")
        parser.expect("<param>")
        payload = parser.parse_value()
        parser.expect("</param>")
        parser.expect("</params>")
        parser.expect("</methodCall>")
        return WireMessage(method, payload)
    if kind == "<methodResponse>":
        parser.expect("<params>")
        parser.expect("<param>")
        payload = parser.parse_value()
        parser.expect("</param>")
        parser.expect("</params>")
        parser.expect("</methodResponse>")
        return WireMessage(None, payload)
    raise RpcError(f"unknown wire message kind {kind}")
