"""Transport metrics: per-channel and per-session counters.

Every :class:`~repro.net.rpc.RpcChannel` owns a :class:`ChannelMetrics`
and every :class:`~repro.core.client.ServiceSession` owns a
:class:`SessionMetrics`; benchmarks read them to report round-trip
savings (calls issued, in-flight high-water mark, coalesced hits,
batched messages, bytes).  Counters never influence simulated time, so
enabling them is free and they are always on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["ChannelMetrics", "SessionMetrics", "ClusterMetrics",
           "merge_channel_metrics"]


@dataclass
class ChannelMetrics:
    """Counters for one RPC channel (one device↔service connection)."""

    calls: int = 0              # RPCs actually put on the wire
    serial_calls: int = 0       # of which used the v1 serial path
    pipelined_calls: int = 0    # of which used the v2 pipelined path
    inflight_hwm: int = 0       # max concurrently outstanding requests
    bytes_sent: int = 0
    bytes_received: int = 0
    negotiated_version: Optional[int] = None
    handshakes: int = 0
    retries: int = 0            # per-RPC retry attempts (context-budgeted)
    deadline_expiries: int = 0  # op-context deadlines that fired mid-call

    def note_inflight(self, outstanding: int) -> None:
        if outstanding > self.inflight_hwm:
            self.inflight_hwm = outstanding

    def as_dict(self) -> dict:
        return {
            "calls": self.calls,
            "serial_calls": self.serial_calls,
            "pipelined_calls": self.pipelined_calls,
            "inflight_hwm": self.inflight_hwm,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "negotiated_version": self.negotiated_version,
            "handshakes": self.handshakes,
            "retries": self.retries,
            "deadline_expiries": self.deadline_expiries,
        }


@dataclass
class SessionMetrics:
    """Counters for one client service session (above the channels)."""

    coalesced_hits: int = 0     # fetches satisfied by joining another's RPC
    coalesced_batch_hits: int = 0  # batch slots filled from in-flight fetches
    batched_messages: int = 0   # write-behind items folded into batch RPCs
    write_behind_flushes: int = 0  # batch RPCs issued by the flusher
    enqueued: int = 0           # items accepted into the write-behind queue

    def as_dict(self) -> dict:
        return {
            "coalesced_hits": self.coalesced_hits,
            "coalesced_batch_hits": self.coalesced_batch_hits,
            "batched_messages": self.batched_messages,
            "write_behind_flushes": self.write_behind_flushes,
            "enqueued": self.enqueued,
        }


@dataclass
class ClusterMetrics:
    """Counters for one replicated key-service client."""

    share_fetches: int = 0      # logical fetches answered by combining shares
    retries: int = 0            # whole-gather retries (with backoff)
    hedged: int = 0             # duplicate requests sent to lagging replicas
    failovers: int = 0          # immediate re-sends after a replica failure
    deadline_expiries: int = 0  # per-request deadlines that fired
    marked_down: int = 0        # replicas placed in cooldown by health tracking
    probes: int = 0             # explicit health pings issued
    repairs: int = 0            # share re-uploads completed by the repairer
    repairs_abandoned: int = 0  # share re-uploads dropped after max attempts
    broadcasts: int = 0         # best-effort fan-outs (eviction notices)

    def as_dict(self) -> dict:
        return {
            "share_fetches": self.share_fetches,
            "retries": self.retries,
            "hedged": self.hedged,
            "failovers": self.failovers,
            "deadline_expiries": self.deadline_expiries,
            "marked_down": self.marked_down,
            "probes": self.probes,
            "repairs": self.repairs,
            "repairs_abandoned": self.repairs_abandoned,
            "broadcasts": self.broadcasts,
        }


def merge_channel_metrics(metrics: list[ChannelMetrics]) -> ChannelMetrics:
    """Aggregate several channels' counters (for summary tables)."""
    total = ChannelMetrics()
    for m in metrics:
        total.calls += m.calls
        total.serial_calls += m.serial_calls
        total.pipelined_calls += m.pipelined_calls
        total.inflight_hwm = max(total.inflight_hwm, m.inflight_hwm)
        total.bytes_sent += m.bytes_sent
        total.bytes_received += m.bytes_received
        total.handshakes += m.handshakes
        total.retries += m.retries
        total.deadline_expiries += m.deadline_expiries
        if m.negotiated_version is not None:
            total.negotiated_version = max(
                total.negotiated_version or 0, m.negotiated_version
            )
    return total
