"""Simulated network links.

A :class:`Link` models one bidirectional connection between the client
device and a remote endpoint (audit service, paired phone).  The paper
evaluates Keypad purely as a function of round-trip time (bandwidth is
shown to be a non-issue: average Keypad traffic is under 5 kb/s), so a
link charges ``rtt/2 + bytes/bandwidth`` per one-way message and
supports outage windows for the disconnection experiments.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.errors import NetworkUnavailableError
from repro.sim import Event, Simulation
from repro.sim.rand import SimRandom

__all__ = ["Link", "LinkStats"]


class LinkStats:
    """Byte/message accounting, used by the bandwidth experiment."""

    def __init__(self) -> None:
        self.messages_sent = 0
        self.bytes_sent = 0
        self.first_send_time: Optional[float] = None
        self.last_send_time: Optional[float] = None
        self.events: list[tuple[float, int]] = []

    def record(self, now: float, n_bytes: int) -> None:
        self.messages_sent += 1
        self.bytes_sent += n_bytes
        if self.first_send_time is None:
            self.first_send_time = now
        self.last_send_time = now
        self.events.append((now, n_bytes))

    def average_kbps(self) -> float:
        """Average rate in kilobits/second over the active window."""
        if self.first_send_time is None or self.last_send_time == self.first_send_time:
            return 0.0
        window = self.last_send_time - self.first_send_time
        return self.bytes_sent * 8 / 1000.0 / window

    def average_kbps_over(self, duration: float) -> float:
        """Average rate over an externally supplied duration."""
        if duration <= 0:
            return 0.0
        return self.bytes_sent * 8 / 1000.0 / duration

    def peak_kbps(self, window: float = 1.0) -> float:
        """Peak rate over any sliding window of the given width."""
        if not self.events or window <= 0:
            return 0.0
        peak = 0
        lo = 0
        acc = 0
        for hi, (t_hi, n_hi) in enumerate(self.events):
            acc += n_hi
            while self.events[lo][0] < t_hi - window:
                acc -= self.events[lo][1]
                lo += 1
            peak = max(peak, acc)
        return peak * 8 / 1000.0 / window


class Link:
    """A point-to-point link with latency, bandwidth, and outages."""

    def __init__(
        self,
        sim: Simulation,
        rtt: float,
        bandwidth_bps: Optional[float] = None,
        name: str = "link",
    ):
        if rtt < 0:
            raise ValueError("RTT cannot be negative")
        self.sim = sim
        self.rtt = rtt
        self.bandwidth_bps = bandwidth_bps
        self.name = name
        self.up = True
        self.severed = False
        self.stats = LinkStats()
        self._up_event: Optional[Event] = None
        # State-change event trace, in (time, event) order.  Fault-plan
        # runs assert two same-seed runs produce identical traces.
        self.trace: list[tuple[float, str]] = []
        # Deterministic per-message delay jitter (reordered delivery
        # under pipelining); 0 = off, the seed's exact behaviour.
        self.jitter = 0.0
        self._jitter_rng: Optional[SimRandom] = None

    # -- state control -----------------------------------------------------
    def set_down(self) -> None:
        """Begin an outage (e.g. entering a tunnel, WiFi drop)."""
        self.up = False
        self.trace.append((self.sim.now, "down"))

    def set_up(self) -> None:
        """End an outage; wakes any senders blocked in wait mode."""
        if self.severed:
            raise NetworkUnavailableError(f"{self.name} was severed")
        self.up = True
        self.trace.append((self.sim.now, "up"))
        if self._up_event is not None:
            event, self._up_event = self._up_event, None
            event.succeed()

    def sever(self) -> None:
        """Permanently cut the link (thief removes the radio / drive)."""
        self.severed = True
        self.up = False
        self.trace.append((self.sim.now, "severed"))

    def set_jitter(self, jitter: float, rng: Optional[SimRandom] = None) -> None:
        """Add up to ``jitter`` seconds of random extra one-way delay.

        Draws come from the supplied seeded stream, so delay spikes —
        and the message reorderings they cause under pipelining — are
        identical across same-seed runs.
        """
        if jitter < 0:
            raise ValueError("jitter cannot be negative")
        self.jitter = jitter
        if rng is not None:
            self._jitter_rng = rng
        self.trace.append((self.sim.now, f"jitter={jitter:g}"))

    @property
    def available(self) -> bool:
        return self.up and not self.severed

    # -- transfers -----------------------------------------------------------
    def one_way_delay(self, n_bytes: int) -> float:
        delay = self.rtt / 2.0
        if self.bandwidth_bps:
            delay += n_bytes * 8 / self.bandwidth_bps
        return delay

    def transfer(
        self, n_bytes: int, wait_for_up: bool = False
    ) -> Generator:
        """Sim-process: deliver ``n_bytes`` one way.

        With ``wait_for_up`` the sender blocks through outages (used by
        the paired phone's bulk uploader); otherwise an outage raises
        :class:`NetworkUnavailableError` immediately, modelling the
        client-side send failure Keypad must handle.
        """
        if not self.available:
            if self.severed or not wait_for_up:
                raise NetworkUnavailableError(f"{self.name} is down")
            while not self.available:
                if self._up_event is None:
                    self._up_event = self.sim.event()
                yield self._up_event
                if self.severed:
                    raise NetworkUnavailableError(f"{self.name} was severed")
        self.stats.record(self.sim.now, n_bytes)
        delay = self.one_way_delay(n_bytes)
        if self.jitter > 0 and self._jitter_rng is not None:
            delay += self._jitter_rng.uniform(0.0, self.jitter)
        yield delay  # bare-delay sleep (kernel fast path)
        if not self.available:
            # The link dropped while the message was in flight.
            raise NetworkUnavailableError(f"{self.name} dropped mid-transfer")
        return n_bytes
