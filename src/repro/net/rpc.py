"""Encrypted RPC over simulated links.

Models the paper's transport: "All components are coded in C++ and
communicate using encrypted XML-RPC with persistent connections."
Requests and responses are really marshalled (:mod:`repro.net.wire`),
really sealed with an AEAD session key, and really authenticated with a
per-device secret.  Session keys ratchet every ``rekey_interval``
seconds, matching §6: "The keys must change every Texp seconds to
ensure that an attacker who extracts the current network encryption key
from the device cannot decrypt past intercepted data."

Latency per call: client marshal CPU + one-way transfer + server
handler time + return transfer + client unmarshal CPU, all charged from
the :class:`~repro.costmodel.CostModel`.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.costmodel import DEFAULT_COSTS, CostModel
from repro.crypto.aead import NONCE_LEN, StreamHmacAead
from repro.crypto.hmac import hmac_sha256
from repro.crypto.kdf import hkdf_sha256
from repro.errors import (
    AuthorizationError,
    LockedFileError,
    NetworkUnavailableError,
    RevokedError,
    RpcError,
    ServiceUnavailableError,
)
from repro.net.link import Link
from repro.net.wire import marshal_request, marshal_response, unmarshal
from repro.sim import Simulation

__all__ = ["RpcServer", "RpcChannel"]

# Exceptions that cross the wire as typed faults.
_FAULT_TYPES: dict[str, type] = {
    "RpcError": RpcError,
    "RevokedError": RevokedError,
    "AuthorizationError": AuthorizationError,
    "ServiceUnavailableError": ServiceUnavailableError,
    "LockedFileError": LockedFileError,
}


class RpcServer:
    """A remote service endpoint: named handlers + device registry."""

    def __init__(
        self,
        sim: Simulation,
        name: str,
        costs: CostModel = DEFAULT_COSTS,
    ):
        self.sim = sim
        self.name = name
        self.costs = costs
        self._handlers: dict[str, Callable] = {}
        self._device_secrets: dict[str, bytes] = {}
        self.available = True

    def register(self, method: str, handler: Callable) -> None:
        """Register a handler.

        Handlers receive ``(device_id, payload_dict)`` and either
        return a payload directly or are generators that may yield sim
        waitables (e.g. for durable log appends) before returning.
        """
        self._handlers[method] = handler

    def enroll_device(self, device_id: str, device_secret: bytes) -> None:
        """Provision a device's shared authentication secret."""
        self._device_secrets[device_id] = device_secret

    def device_secret(self, device_id: str) -> bytes:
        try:
            return self._device_secrets[device_id]
        except KeyError:
            raise AuthorizationError(f"unknown device {device_id!r}") from None

    # -- request execution (driven by RpcChannel) ---------------------------
    def dispatch(self, device_id: str, method: str, payload: dict) -> Generator:
        if not self.available:
            raise ServiceUnavailableError(f"{self.name} is unavailable")
        handler = self._handlers.get(method)
        if handler is None:
            raise RpcError(f"{self.name}: no such method {method!r}")
        result = handler(device_id, payload)
        if hasattr(result, "send"):  # generator handler
            result = yield from result
        return result


class RpcChannel:
    """Client-side stub bound to (device, link, server).

    Use from sim processes as ``result = yield from channel.call(...)``.
    """

    def __init__(
        self,
        sim: Simulation,
        link: Link,
        server: RpcServer,
        device_id: str,
        device_secret: bytes,
        costs: CostModel = DEFAULT_COSTS,
        rekey_interval: float = 100.0,
    ):
        self.sim = sim
        self.link = link
        self.server = server
        self.device_id = device_id
        self._device_secret = device_secret
        self.costs = costs
        self.rekey_interval = rekey_interval
        self._session_key = hkdf_sha256(
            device_secret, b"", b"rpc-session-0", 32
        )
        self._suite = StreamHmacAead(self._session_key)
        self._last_rekey = sim.now
        self._epoch = 0
        self._seq = 0
        self._connected = False

    # -- session key ratchet ---------------------------------------------------
    def _maybe_ratchet(self) -> None:
        while self.sim.now - self._last_rekey >= self.rekey_interval:
            self._epoch += 1
            self._session_key = hkdf_sha256(
                self._session_key, b"", b"rpc-ratchet", 32
            )
            self._suite = StreamHmacAead(self._session_key)
            self._last_rekey += self.rekey_interval

    def _nonce(self, direction: bytes) -> bytes:
        self._seq += 1
        material = direction + self._seq.to_bytes(8, "big")
        return material.ljust(NONCE_LEN, b"\x00")[:NONCE_LEN]

    # -- the call itself ----------------------------------------------------------
    def call(self, method: str, **params: Any) -> Generator:
        """Sim-process generator performing one authenticated RPC."""
        self._maybe_ratchet()

        # Authenticate: HMAC over device id, method, and payload bytes.
        request_plain = marshal_request(method, params)
        auth_tag = hmac_sha256(
            self._device_secret, self.device_id.encode() + request_plain
        )
        envelope = self._suite.seal(
            self._nonce(b"req"),
            request_plain,
            aad=self.device_id.encode() + auth_tag,
        )
        wire_size = len(envelope) + len(auth_tag) + len(self.device_id) + 24

        # Client marshal + seal CPU.
        yield self.sim.timeout(self.costs.rpc_marshal_time(wire_size))
        if not self._connected:
            # Persistent connections: only the first call (or the first
            # after an outage) pays connection setup.
            yield self.sim.timeout(self.costs.rpc_connect)

        try:
            yield from self.link.transfer(wire_size)
        except NetworkUnavailableError:
            self._connected = False
            raise
        self._connected = True

        # Server side: verify auth, unmarshal, execute.
        server = self.server
        expected = hmac_sha256(
            server.device_secret(self.device_id),
            self.device_id.encode() + request_plain,
        )
        if expected != auth_tag:
            raise AuthorizationError("request authentication failed")
        message = unmarshal(request_plain)
        yield self.sim.timeout(
            self.costs.rpc_marshal_time(wire_size, server=True)
        )
        try:
            result = yield from server.dispatch(
                self.device_id, message.method, message.payload
            )
            fault: Optional[BaseException] = None
        except (RpcError, RevokedError, AuthorizationError,
                ServiceUnavailableError, LockedFileError) as exc:
            result = {
                "__fault__": type(exc).__name__,
                "message": str(exc),
            }
            fault = exc

        # Response path.
        response_plain = marshal_response(result)
        response_envelope = self._suite.seal(
            self._nonce(b"rsp"), response_plain
        )
        response_size = len(response_envelope) + 16
        try:
            yield from self.link.transfer(response_size)
        except NetworkUnavailableError:
            self._connected = False
            raise
        yield self.sim.timeout(self.costs.rpc_marshal_time(response_size))

        payload = unmarshal(response_plain).payload
        if isinstance(payload, dict) and "__fault__" in payload:
            exc_type = _FAULT_TYPES.get(payload["__fault__"], RpcError)
            raise exc_type(payload.get("message", "remote fault"))
        assert fault is None
        return payload
