"""Encrypted RPC over simulated links.

Models the paper's transport: "All components are coded in C++ and
communicate using encrypted XML-RPC with persistent connections."
Requests and responses are really marshalled (:mod:`repro.net.wire`),
really sealed with an AEAD session key, and really authenticated with a
per-device secret.  Session keys ratchet every ``rekey_interval``
seconds, matching §6: "The keys must change every Texp seconds to
ensure that an attacker who extracts the current network encryption key
from the device cannot decrypt past intercepted data."

Latency per call: client marshal CPU + one-way transfer + server
handler time + return transfer + client unmarshal CPU, all charged from
the :class:`~repro.costmodel.CostModel`.

Deadlines, retries, and tracing ride in on an optional per-operation
context (:class:`repro.core.context.OpContext`): ``call(...,
op_ctx=ctx)`` races the call against the context's remaining deadline
budget (raising :class:`~repro.errors.DeadlineExpiredError` uniformly,
never an ad-hoc ``RpcError``), optionally retries transient transport
failures under the shared :class:`repro.util.retry.RetryPolicy` when
the context carries a retry budget, and stamps a span per wire call
(wire sizes + simulated latency) into the context's trace tree.  With
``op_ctx=None`` the code path is exactly the legacy one.

Two transport modes share one channel class:

* **serial (protocol v1)** — the prototype's behaviour: one request
  outstanding per connection turn, bare sealed bodies on the wire.
  This is the default and is byte- and latency-identical to the
  original implementation.
* **pipelined (protocol v2)** — up to ``max_inflight`` concurrent
  requests share the connection.  Each request carries a 64-bit request
  ID in a framed envelope (:func:`repro.net.wire.pack_envelope`); the
  caller parks on a per-request completion event while the server
  executes, so responses complete out of order.  The mode is agreed by
  an ``rpc.hello`` handshake on first use; a v1 server (which lacks the
  method) makes the client degrade gracefully to serial mode instead of
  erroring.

The rekey ratchet is shared by both modes: it advances on wall-clock
epochs regardless of how many requests are in flight, so pipelining
never extends the lifetime of a session key.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Generator, Optional

from repro.costmodel import DEFAULT_COSTS, CostModel
from repro.crypto.aead import NONCE_LEN, StreamHmacAead
from repro.crypto.hmac import hmac_sha256
from repro.crypto.kdf import hkdf_sha256
from repro.errors import (
    AuthorizationError,
    ControlError,
    DeadlineExpiredError,
    LockedFileError,
    NetworkUnavailableError,
    OverloadSheddedError,
    RevokedError,
    RpcError,
    ServiceUnavailableError,
)
from repro.net.link import Link
from repro.net.metrics import ChannelMetrics
from repro.net.wire import (
    PROTOCOL_LATEST,
    PROTOCOL_V1,
    PROTOCOL_V2,
    marshal_request,
    marshal_request_len,
    marshal_response,
    marshal_response_len,
    normalize_value,
    pack_envelope,
    unpack_envelope,
)
from repro.sim import Event, Simulation
from repro.util.retry import RetryPolicy, retrying

__all__ = ["RpcServer", "RpcChannel", "HELLO_METHOD"]

#: ``KEYPAD_RPC_WIRE=full`` makes serial channels build, MAC and seal
#: the actual wire bytes (the reference path).  The default ``fast``
#: mode charges byte-exact sizes lazily — both peers live in one
#: process, so the bytes are observable only through their lengths;
#: ``tests/property`` holds the two modes to identical results.
_WIRE_FULL = os.environ.get("KEYPAD_RPC_WIRE", "fast") == "full"

# Exceptions that cross the wire as typed faults.
_FAULT_TYPES: dict[str, type] = {
    "RpcError": RpcError,
    "RevokedError": RevokedError,
    "AuthorizationError": AuthorizationError,
    "ServiceUnavailableError": ServiceUnavailableError,
    "DeadlineExpiredError": DeadlineExpiredError,
    "OverloadSheddedError": OverloadSheddedError,
    "LockedFileError": LockedFileError,
    "ControlError": ControlError,
}

#: span name prefix for wire RPCs (mirrors
#: ``repro.core.context.RPC_SPAN_PREFIX``; kept literal here so the
#: transport layer never imports the core package).
_RPC_SPAN = "rpc:"

#: default backoff for the per-RPC retry path; only consulted when the
#: operation context carries an explicit retry budget.
_RPC_RETRY_POLICY = RetryPolicy(base=0.1, cap=2.0, max_attempts=8)

#: version-negotiation method; absent on protocol-v1 servers.
HELLO_METHOD = "rpc.hello"


class RpcServer:
    """A remote service endpoint: named handlers + device registry."""

    def __init__(
        self,
        sim: Simulation,
        name: str,
        costs: CostModel = DEFAULT_COSTS,
        protocol_version: int = PROTOCOL_LATEST,
    ):
        self.sim = sim
        self.name = name
        self.costs = costs
        self.protocol_version = protocol_version
        self._handlers: dict[str, Callable] = {}
        self._device_secrets: dict[str, bytes] = {}
        self.available = True
        #: optional server-side scheduler (repro.server.ServiceFrontend);
        #: None keeps the legacy unbounded-concurrency dispatch path.
        self.frontend: Any = None
        if protocol_version >= PROTOCOL_V2:
            # v1 servers predate negotiation; they simply lack the
            # method, which is what v2 clients detect and degrade on.
            self.register(HELLO_METHOD, self._handle_hello)

    def register(self, method: str, handler: Callable) -> None:
        """Register a handler.

        Handlers receive ``(device_id, payload_dict)`` and either
        return a payload directly or are generators that may yield sim
        waitables (e.g. for durable log appends) before returning.
        """
        self._handlers[method] = handler

    def _handle_hello(self, device_id: str, payload: dict) -> dict:
        client_version = int(payload.get("version", PROTOCOL_V1))
        return {"version": min(self.protocol_version, client_version)}

    def enroll_device(self, device_id: str, device_secret: bytes) -> None:
        """Provision a device's shared authentication secret."""
        self._device_secrets[device_id] = device_secret

    def device_secret(self, device_id: str) -> bytes:
        try:
            return self._device_secrets[device_id]
        except KeyError:
            raise AuthorizationError(f"unknown device {device_id!r}") from None

    def install_frontend(self, frontend: Any) -> None:
        """Route dispatch through a server-side scheduler.

        ``frontend`` must expose ``handles(method) -> bool`` and a
        generator ``dispatch(device_id, method, payload, deadline=None)``
        that eventually drives :meth:`execute`.  Installing ``None``
        restores the legacy direct path.
        """
        self.frontend = frontend

    # -- request execution (driven by RpcChannel) ---------------------------
    def dispatch(self, device_id: str, method: str, payload: dict,
                 deadline: Optional[float] = None) -> Generator:
        """Serve one request: via the frontend scheduler when one is
        installed (and claims the method), else directly.

        ``deadline`` is the caller's absolute sim-time budget, carried
        out of band (it is part of the request envelope the cost model
        already charges for, not extra wire bytes).  Only admission
        control consumes it; without a frontend it is ignored and the
        path is byte- and latency-identical to the legacy dispatch.
        """
        frontend = self.frontend
        if frontend is not None and frontend.handles(method):
            if not self.available:
                raise ServiceUnavailableError(f"{self.name} is unavailable")
            result = yield from frontend.dispatch(
                device_id, method, payload, deadline=deadline
            )
            return result
        result = yield from self.execute(device_id, method, payload)
        return result

    def execute(self, device_id: str, method: str, payload: dict) -> Generator:
        """Resolve and run a handler (the pre-frontend dispatch body)."""
        if not self.available:
            raise ServiceUnavailableError(f"{self.name} is unavailable")
        handler = self._handlers.get(method)
        if handler is None:
            raise RpcError(f"{self.name}: no such method {method!r}")
        result = handler(device_id, payload)
        if hasattr(result, "send"):  # generator handler
            result = yield from result
        return result


class RpcChannel:
    """Client-side stub bound to (device, link, server).

    Use from sim processes as ``result = yield from channel.call(...)``.
    """

    def __init__(
        self,
        sim: Simulation,
        link: Link,
        server: RpcServer,
        device_id: str,
        device_secret: bytes,
        costs: CostModel = DEFAULT_COSTS,
        rekey_interval: float = 100.0,
        pipelining: bool = False,
        max_inflight: int = 8,
        tracer: Any = None,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        self.sim = sim
        self.link = link
        self.server = server
        self.device_id = device_id
        self._device_secret = device_secret
        self.costs = costs
        self.rekey_interval = rekey_interval
        self.pipelining = pipelining
        self.max_inflight = max(1, max_inflight)
        self.metrics = ChannelMetrics()
        #: optional TraceCollector; calls made without an op context
        #: still account their spans here as orphans.
        self.tracer = tracer
        self.retry_policy = retry_policy or _RPC_RETRY_POLICY
        self._retry_rng: Any = None
        self._session_key = hkdf_sha256(
            device_secret, b"", b"rpc-session-0", 32
        )
        # The AEAD suite is derived lazily: the serial fast path only
        # needs wire *sizes*, and a 100k-device fleet would otherwise
        # pay 100k HKDF schedules at enrollment for suites never used.
        self._suite_obj: Optional[StreamHmacAead] = None
        self._wire_full = _WIRE_FULL
        self._last_rekey = sim.now
        self._epoch = 0
        self._seq = 0
        self._connected = False
        # Pipelining state: negotiated protocol version (None until the
        # first hello), the in-flight request table, and callers waiting
        # for a free slot in the send window.
        self._negotiated: Optional[int] = None
        self._negotiating: Optional[Event] = None
        self._next_request_id = 0
        self._inflight: dict[int, Event] = {}
        self._slot_waiters: list[Event] = []

    # -- session key ratchet ---------------------------------------------------
    @property
    def _suite(self) -> StreamHmacAead:
        suite = self._suite_obj
        if suite is None:
            suite = self._suite_obj = StreamHmacAead(self._session_key)
        return suite

    def _maybe_ratchet(self) -> None:
        if self.sim._now - self._last_rekey < self.rekey_interval:
            return  # common case, checked without the property hop
        while self.sim.now - self._last_rekey >= self.rekey_interval:
            self._epoch += 1
            self._session_key = hkdf_sha256(
                self._session_key, b"", b"rpc-ratchet", 32
            )
            self._suite_obj = None
            self._last_rekey += self.rekey_interval

    def _nonce(self, direction: bytes) -> bytes:
        self._seq += 1
        material = direction + self._seq.to_bytes(8, "big")
        return material.ljust(NONCE_LEN, b"\x00")[:NONCE_LEN]

    @property
    def negotiated_version(self) -> Optional[int]:
        return self._negotiated

    @property
    def inflight_count(self) -> int:
        return len(self._inflight)

    # -- the call itself ----------------------------------------------------------
    def call(self, method: str, op_ctx: Any = None, **params: Any) -> Generator:
        """Sim-process generator performing one authenticated RPC.

        ``op_ctx`` is an optional :class:`repro.core.context.OpContext`.
        When present, the call honours the context's deadline (raising
        :class:`DeadlineExpiredError` if the budget expires mid-flight),
        draws on its retry budget for transient transport failures, and
        records a per-call trace span.  ``op_ctx=None`` is the exact
        legacy path.
        """
        if op_ctx is None:
            result = yield from self._call_once(method, params, None)
            return result
        if op_ctx.retry_budget is None:
            result = yield from self._call_deadlined(method, params, op_ctx)
            return result
        result = yield from retrying(
            self.sim,
            lambda _attempt: self._call_deadlined(method, params, op_ctx),
            self.retry_policy,
            self._rng(),
            retry_on=(NetworkUnavailableError, ServiceUnavailableError),
            ctx=op_ctx,
            on_retry=lambda attempt, delay: self._note_retry(
                op_ctx, method, attempt, delay
            ),
        )
        return result

    def _call_once(self, method: str, params: dict, op_ctx: Any) -> Generator:
        """Mode selection (the pre-context ``call`` body)."""
        if not self.pipelining:
            result = yield from self._call_serial(method, params, op_ctx)
            return result
        if self._negotiated is None:
            yield from self._negotiate(op_ctx)
        if self._negotiated >= PROTOCOL_V2:
            result = yield from self._call_pipelined(method, params, op_ctx)
        else:
            result = yield from self._call_serial(method, params, op_ctx)
        return result

    def _call_deadlined(self, method: str, params: dict,
                        op_ctx: Any) -> Generator:
        """One attempt, raced against the context's remaining budget."""
        op_ctx.check(f"rpc {method}")
        if op_ctx.deadline is None:
            result = yield from self._call_once(method, params, op_ctx)
            return result
        sim = self.sim
        proc = sim.process(
            self._call_once(method, params, op_ctx),
            name=f"rpc-deadlined-{self.server.name}-{method}",
        )
        timer = sim.timeout(op_ctx.remaining())
        done = sim.event()

        # A callback-based race instead of sim.any_of: any_of spawns two
        # watcher processes per call, which at fleet scale is hundreds of
        # thousands of generator objects that exist only to relay one
        # trigger.  The winner is identical: whichever of proc/timer
        # triggers first (the kernel's (time, seq) order) settles `done`.
        def _won(w, _done=done):
            if not _done.triggered:
                if w.ok:
                    _done.succeed(("call", w.value))
                else:
                    _done.fail(w.value)

        def _expired(_w, _done=done):
            if not _done.triggered:
                _done.succeed(("deadline", None))

        proc._add_callback(_won)
        timer._add_callback(_expired)
        kind, value = yield done
        if kind == "call":
            return value
        proc.interrupt("deadline")
        self.metrics.deadline_expiries += 1
        if op_ctx.traced:
            op_ctx.event("deadline-expired", method=method,
                         server=self.server.name)
        raise DeadlineExpiredError(
            f"rpc {method} to {self.server.name} exceeded the operation "
            f"deadline at t={self.sim.now:.3f}"
        )

    def _rng(self) -> Any:
        """Seeded per-channel jitter source for the retry path (created
        lazily so channels that never retry draw nothing)."""
        if self._retry_rng is None:
            import random

            self._retry_rng = random.Random(
                f"rpc-retry|{self.device_id}|{self.server.name}"
            )
        return self._retry_rng

    def _note_retry(self, op_ctx: Any, method: str, attempt: int,
                    delay: float) -> None:
        self.metrics.retries += 1
        if op_ctx.traced:
            op_ctx.event("rpc-retry", method=method, attempt=attempt + 1,
                         delay=round(delay, 6), server=self.server.name)

    # -- trace spans --------------------------------------------------------------
    def _span_begin(self, op_ctx: Any, method: str, transport: str):
        """Open the per-call span: on the op context when one is traced,
        else as a collector orphan, else not at all."""
        if op_ctx is not None and op_ctx.traced:
            return op_ctx.attach(_RPC_SPAN + method, transport=transport,
                                 server=self.server.name), op_ctx
        if self.tracer is not None:
            return self.tracer.start_orphan(
                _RPC_SPAN + method, self.sim.now, transport=transport,
                server=self.server.name
            ), None
        return None, None

    def _span_end(self, span: Any, owner: Any, status: str = "ok") -> None:
        if span is None:
            return
        if owner is not None:
            owner.close(span, status)
        else:
            self.tracer.finish_orphan(span, self.sim.now, status)

    # -- version negotiation ------------------------------------------------------
    def _negotiate(self, op_ctx: Any = None) -> Generator:
        """One hello round-trip; concurrent callers share the attempt.

        A server without :data:`HELLO_METHOD` (a v1 peer) answers with
        an RpcError fault, which settles the channel into serial mode —
        graceful degradation rather than failure.  Network errors leave
        the version unresolved so a later call retries.
        """
        while self._negotiating is not None:
            yield self._negotiating
            if self._negotiated is not None:
                return None
        if self._negotiated is not None:
            return None
        self._negotiating = self.sim.event()
        try:
            response = yield from self._call_serial(
                HELLO_METHOD, {"version": PROTOCOL_LATEST}, op_ctx
            )
            version = int(response.get("version", PROTOCOL_V1))
            self._negotiated = max(PROTOCOL_V1, min(PROTOCOL_LATEST, version))
        except RpcError:
            self._negotiated = PROTOCOL_V1
        finally:
            self.metrics.handshakes += 1
            self.metrics.negotiated_version = self._negotiated
            event, self._negotiating = self._negotiating, None
            event.succeed()
        return None

    # -- serial (protocol v1) path ---------------------------------------------
    def _call_serial(self, method: str, params: dict,
                     op_ctx: Any = None) -> Generator:
        self._maybe_ratchet()
        self.metrics.calls += 1
        self.metrics.serial_calls += 1
        deadline = op_ctx.deadline if op_ctx is not None else None
        span, owner = self._span_begin(op_ctx, method, "serial")
        try:
            result = yield from self._serial_body(method, params, span, deadline)
        except BaseException as exc:
            self._span_end(span, owner, status=f"error:{type(exc).__name__}")
            raise
        self._span_end(span, owner)
        return result

    def _serial_body(self, method: str, params: dict, span: Any,
                     deadline: Optional[float] = None) -> Generator:
        full = self._wire_full
        if full:
            # Authenticate: HMAC over device id, method, payload bytes.
            request_plain = marshal_request(method, params)
            auth_tag = hmac_sha256(
                self._device_secret, self.device_id.encode() + request_plain
            )
            envelope = self._suite.seal(
                self._nonce(b"req"),
                request_plain,
                aad=self.device_id.encode() + auth_tag,
            )
            wire_size = (
                len(envelope) + len(auth_tag) + len(self.device_id) + 24
            )
        else:
            # Fast mode: charge the exact same wire size (sealed body +
            # 32-byte auth tag + framing) without building the bytes.
            self._nonce(b"req")
            wire_size = (
                StreamHmacAead.sealed_len(marshal_request_len(method, params))
                + 32 + len(self.device_id) + 24
            )

        # Client marshal + seal CPU.
        yield self.costs.rpc_marshal_time(wire_size)
        if not self._connected:
            # Persistent connections: only the first call (or the first
            # after an outage) pays connection setup.
            yield self.costs.rpc_connect

        try:
            yield from self.link.transfer(wire_size)
        except NetworkUnavailableError:
            self._connected = False
            raise
        self._connected = True
        self.metrics.bytes_sent += wire_size
        if span is not None:
            span.attrs["bytes_out"] = wire_size

        # Server side: verify auth, unmarshal, execute.
        server = self.server
        if full:
            expected = hmac_sha256(
                server.device_secret(self.device_id),
                self.device_id.encode() + request_plain,
            )
            if expected != auth_tag:
                raise AuthorizationError("request authentication failed")
        else:
            # HMAC is deterministic, so over a fixed message the tags
            # match exactly when the keys match — comparing the secrets
            # is the same predicate without the two hash runs.
            if server.device_secret(self.device_id) != self._device_secret:
                raise AuthorizationError("request authentication failed")
        # Both peers share this process, so parsing the request bytes
        # would reproduce exactly normalize_value(params) — see wire.py.
        payload_in = normalize_value(params)
        yield self.costs.rpc_marshal_time(wire_size, server=True)
        try:
            result = yield from server.dispatch(
                self.device_id, method, payload_in,
                deadline=deadline,
            )
            fault: Optional[BaseException] = None
        except (RpcError, RevokedError, AuthorizationError,
                ServiceUnavailableError, LockedFileError,
                ControlError) as exc:
            result = {
                "__fault__": type(exc).__name__,
                "message": str(exc),
            }
            fault = exc

        # Response path.
        if full:
            response_plain = marshal_response(result)
            response_envelope = self._suite.seal(
                self._nonce(b"rsp"), response_plain
            )
            response_size = len(response_envelope) + 16
        else:
            self._nonce(b"rsp")
            response_size = (
                StreamHmacAead.sealed_len(marshal_response_len(result)) + 16
            )
        try:
            yield from self.link.transfer(response_size)
        except NetworkUnavailableError:
            self._connected = False
            raise
        self.metrics.bytes_received += response_size
        if span is not None:
            span.attrs["bytes_in"] = response_size
        yield self.costs.rpc_marshal_time(response_size)

        # Same in-process shortcut as on the request side: the parse of
        # response_plain would yield normalize_value(result) exactly.
        payload = normalize_value(result)
        if isinstance(payload, dict) and "__fault__" in payload:
            exc_type = _FAULT_TYPES.get(payload["__fault__"], RpcError)
            raise exc_type(payload.get("message", "remote fault"))
        assert fault is None
        return payload

    # -- pipelined (protocol v2) path -------------------------------------------
    def _call_pipelined(self, method: str, params: dict,
                        op_ctx: Any = None) -> Generator:
        """Send one framed request and park on its completion event.

        The server side runs in its own process, so other requests may
        be issued on this channel while this one is pending; the send
        window is bounded by ``max_inflight``.
        """
        self._maybe_ratchet()
        while len(self._inflight) >= self.max_inflight:
            slot = self.sim.event()
            self._slot_waiters.append(slot)
            yield slot

        request_id = self._next_request_id
        self._next_request_id += 1
        done = self.sim.event()
        self._inflight[request_id] = done
        self.metrics.calls += 1
        self.metrics.pipelined_calls += 1
        self.metrics.note_inflight(len(self._inflight))
        deadline = op_ctx.deadline if op_ctx is not None else None
        span, owner = self._span_begin(op_ctx, method, "pipelined")
        try:
            result = yield from self._pipelined_body(
                method, params, request_id, done, span, deadline
            )
        except BaseException as exc:
            self._span_end(span, owner, status=f"error:{type(exc).__name__}")
            raise
        self._span_end(span, owner)
        return result

    def _pipelined_body(self, method: str, params: dict, request_id: int,
                        done: Event, span: Any,
                        deadline: Optional[float] = None) -> Generator:
        try:
            request_plain = marshal_request(method, params)
            auth_tag = hmac_sha256(
                self._device_secret, self.device_id.encode() + request_plain
            )
            envelope = self._suite.seal(
                self._nonce(b"req"),
                request_plain,
                aad=self.device_id.encode() + auth_tag,
            )
            frame = pack_envelope(PROTOCOL_V2, request_id, envelope)
            wire_size = len(frame) + len(auth_tag) + len(self.device_id) + 24

            yield self.costs.rpc_marshal_time(wire_size)
            if not self._connected:
                yield self.costs.rpc_connect
            try:
                yield from self.link.transfer(wire_size)
            except NetworkUnavailableError:
                self._connected = False
                raise
            self._connected = True
            self.metrics.bytes_sent += wire_size
            if span is not None:
                span.attrs["bytes_out"] = wire_size

            self.sim.process(
                self._serve_pipelined(
                    method, params, request_id, request_plain, auth_tag,
                    wire_size, done, deadline
                ),
                name=f"rpc-serve-{self.server.name}-{request_id}",
            )
            response_frame, result = yield done
        finally:
            self._inflight.pop(request_id, None)
            if self._slot_waiters:
                self._slot_waiters.pop(0).succeed()

        version, response_id, _response_plain = unpack_envelope(response_frame)
        if version != PROTOCOL_V2 or response_id != request_id:
            raise RpcError(
                f"response frame mismatch: got v{version} id={response_id}, "
                f"expected v{PROTOCOL_V2} id={request_id}"
            )
        payload = normalize_value(result)
        if isinstance(payload, dict) and "__fault__" in payload:
            exc_type = _FAULT_TYPES.get(payload["__fault__"], RpcError)
            raise exc_type(payload.get("message", "remote fault"))
        return payload

    def _serve_pipelined(
        self,
        method: str,
        params: dict,
        request_id: int,
        request_plain: bytes,
        auth_tag: bytes,
        wire_size: int,
        done: Event,
        deadline: Optional[float] = None,
    ) -> Generator:
        """Server-side half of a pipelined request (its own process)."""
        try:
            server = self.server
            expected = hmac_sha256(
                server.device_secret(self.device_id),
                self.device_id.encode() + request_plain,
            )
            if expected != auth_tag:
                raise AuthorizationError("request authentication failed")
            # In-process shortcut: parsing request_plain reproduces
            # normalize_value(params) exactly (see wire.py).
            payload_in = normalize_value(params)
            yield self.costs.rpc_marshal_time(wire_size, server=True)
            try:
                result = yield from server.dispatch(
                    self.device_id, method, payload_in,
                    deadline=deadline,
                )
            except (RpcError, RevokedError, AuthorizationError,
                    ServiceUnavailableError, LockedFileError,
                    ControlError) as exc:
                result = {
                    "__fault__": type(exc).__name__,
                    "message": str(exc),
                }

            # Response path: the frame carries the sealed body, but the
            # completion event delivers a plaintext-framed copy so the
            # client can verify the request-ID match without a redundant
            # unseal (the seal is still computed for byte accounting).
            response_plain = marshal_response(result)
            response_envelope = self._suite.seal(
                self._nonce(b"rsp"), response_plain
            )
            sealed_frame = pack_envelope(
                PROTOCOL_V2, request_id, response_envelope
            )
            response_size = len(sealed_frame) + 16
            try:
                yield from self.link.transfer(response_size)
            except NetworkUnavailableError:
                self._connected = False
                raise
            self.metrics.bytes_received += response_size
            yield self.costs.rpc_marshal_time(response_size)
            if not done.triggered:
                done.succeed((
                    pack_envelope(PROTOCOL_V2, request_id, response_plain),
                    result,
                ))
        except Exception as exc:  # delivered to the parked caller
            if not done.triggered:
                done.fail(exc)
        return None
