"""The control server: runtime reconfiguration verbs over RPC.

One :class:`ControlServer` per mounted world.  It holds references to
the live objects an administrator may steer — the mount's
:class:`~repro.core.policy.PolicyEpoch`, the key service(s) (or the
whole :class:`~repro.cluster.ReplicaGroup`), the metadata service, any
:class:`~repro.server.frontend.ServiceFrontend` instances, the
:class:`~repro.core.context.TraceCollector`, and (optionally) the rig
itself for backend swaps — and registers ``ctl.*`` handlers on a
plain :class:`~repro.net.rpc.RpcServer`, so admin commands ride the
same authenticated, cost-charged envelope as data-plane RPCs and
failures cross the wire as typed :class:`~repro.errors.ControlError`
faults.

Verb table: see docs/CONTROL.md.
"""

from __future__ import annotations

import functools
from dataclasses import replace
from typing import Any, Generator, Optional

from repro.costmodel import DEFAULT_COSTS, CostModel
from repro.crypto.hmac import hmac_sha256
from repro.errors import AuditRecoveryError, ConfigError, ControlError
from repro.net.netem import LAN, NetEnv
from repro.net.rpc import RpcChannel, RpcServer
from repro.core.policy import RUNTIME_MUTABLE, PolicyEpoch
from repro.sim import Simulation
from repro.storage.backend import make_backend, volume_contents
from repro.util.paths import normalize

__all__ = ["ControlServer", "open_control"]

#: secret-rotation KDF label (deterministic: the sim has no entropy
#: source outside seeds, and idempotent re-derivation is a feature).
_ROTATE_LABEL = b"keypad-secret-rotate"


def _verb(fn):
    """Translate policy-layer ConfigError into a wire-typed ControlError
    (works for both plain and generator handlers)."""

    @functools.wraps(fn)
    def wrapper(device_id: str, payload: dict):
        try:
            result = fn(device_id, payload)
            if hasattr(result, "send"):  # generator handler
                result = yield from result
            return result
        except ConfigError as exc:
            raise ControlError(str(exc)) from None

    return wrapper


class ControlServer:
    """Runtime admin verbs over a dedicated RpcServer endpoint."""

    def __init__(
        self,
        sim: Simulation,
        policy: PolicyEpoch,
        fs: Any = None,
        session: Any = None,
        key_services: tuple = (),
        metadata_service: Any = None,
        replica_group: Any = None,
        frontends: tuple = (),
        tracer: Any = None,
        rig: Any = None,
        name: str = "keypad-ctl",
        costs: CostModel = DEFAULT_COSTS,
    ):
        self.sim = sim
        self.policy = policy
        self.fs = fs
        self.session = session
        self.key_services = list(key_services)
        self.metadata_service = metadata_service
        self.replica_group = replica_group
        self.frontends = list(frontends)
        self.tracer = tracer
        self.rig = rig
        self.costs = costs
        self.rpc = RpcServer(sim, name, costs=costs)
        #: append-only admin action log (what/when), for forensics.
        self.actions: list[dict] = []
        if fs is not None:
            # Ops now mint per-op policy snapshots even without tracing.
            fs.control_enabled = True
        for verb, handler in (
            ("ctl.status", self._status),
            ("ctl.set_texp", self._set_texp),
            ("ctl.update", self._update),
            ("ctl.add_dir", self._add_dir),
            ("ctl.remove_dir", self._remove_dir),
            ("ctl.revoke", self._revoke),
            ("ctl.rotate_secret", self._rotate_secret),
            ("ctl.drain", self._drain),
            ("ctl.admit", self._admit),
            ("ctl.swap_backend", self._swap_backend),
            ("ctl.tail_trace", self._tail_trace),
            ("ctl.metrics", self._metrics),
            ("ctl.audit_stats", self._audit_stats),
            ("ctl.audit_seal", self._audit_seal),
            ("ctl.audit_rebuild", self._audit_rebuild),
            ("ctl.audit_checkpoint", self._audit_checkpoint),
            ("ctl.audit_recover", self._audit_recover),
            ("ctl.region_status", self._region_status),
            ("ctl.region_partition_report", self._region_partition_report),
        ):
            self.rpc.register(verb, _verb(handler))

    @classmethod
    def for_rig(cls, rig: Any, name: str = "keypad-ctl") -> "ControlServer":
        """Attach to a :class:`~repro.harness.experiment.KeypadRig`."""
        group = rig.replica_group
        services = (
            list(group.replicas) if group is not None else [rig.key_service]
        )
        return cls(
            rig.sim,
            rig.fs.policy,
            fs=rig.fs,
            session=rig.services,
            key_services=tuple(services),
            metadata_service=rig.metadata_service,
            replica_group=group,
            frontends=tuple(rig.extras.get("frontends", ())),
            tracer=rig.tracer,
            rig=rig,
            name=name,
            costs=rig.costs,
        )

    def enroll_admin(self, admin_id: str, secret: bytes) -> None:
        self.rpc.enroll_device(admin_id, secret)

    def _note(self, verb: str, **attrs: Any) -> None:
        self.actions.append({"at": self.sim.now, "verb": verb, **attrs})

    # -- verbs ---------------------------------------------------------------
    def _status(self, device_id: str, payload: dict) -> dict:
        config = self.policy.config
        return {
            "epoch": self.policy.epoch,
            "texp": config.texp,
            "texp_inflight": config.texp_inflight,
            "prefetch": config.prefetch,
            "protected_prefixes": list(config.protected_prefixes),
            "storage_backend": config.storage_backend,
            "frontends": len(self.frontends),
            "draining": [f.draining for f in self.frontends],
            "replicas_available": (
                self.replica_group.available_count()
                if self.replica_group is not None
                else sum(1 for s in self.key_services if s.server.available)
            ),
            "runtime_mutable": sorted(RUNTIME_MUTABLE),
        }

    def _set_texp(self, device_id: str, payload: dict) -> dict:
        changes = {"texp": float(payload["texp"])}
        if payload.get("texp_inflight") is not None:
            changes["texp_inflight"] = float(payload["texp_inflight"])
        config = self.policy.update(**changes)
        self._note("set_texp", **changes)
        return {"epoch": self.policy.epoch, "texp": config.texp,
                "texp_inflight": config.texp_inflight}

    def _update(self, device_id: str, payload: dict) -> dict:
        """Generic runtime-mutable knob update (the set-texp superset)."""
        changes = dict(payload.get("changes") or {})
        if not changes:
            raise ControlError("ctl.update: no changes given")
        self.policy.update(**changes)
        self._note("update", changes=sorted(changes))
        return {"epoch": self.policy.epoch}

    def _add_dir(self, device_id: str, payload: dict) -> dict:
        path = normalize(str(payload["path"]))
        prefixes = list(self.policy.config.protected_prefixes)
        if path not in prefixes:
            prefixes.append(path)
            self.policy.update(protected_prefixes=tuple(prefixes))
        self._note("add_dir", path=path)
        return {"epoch": self.policy.epoch, "protected_prefixes": prefixes}

    def _remove_dir(self, device_id: str, payload: dict) -> dict:
        path = normalize(str(payload["path"]))
        prefixes = [
            p for p in self.policy.config.protected_prefixes if p != path
        ]
        if len(prefixes) == len(self.policy.config.protected_prefixes):
            raise ControlError(f"{path} is not a protected prefix")
        self.policy.update(protected_prefixes=tuple(prefixes))
        self._note("remove_dir", path=path)
        return {"epoch": self.policy.epoch, "protected_prefixes": prefixes}

    def _revoke(self, device_id: str, payload: dict) -> dict:
        target = str(payload["device_id"])
        if self.replica_group is not None:
            # Fan out to every replica — a thief must not find a
            # straggler that still serves shares.
            self.replica_group.revoke_device(target)
            count = len(self.replica_group.replicas)
        else:
            for service in self.key_services:
                service.revoke_device(target)
            count = len(self.key_services)
        if not count:
            raise ControlError("no key service attached to revoke against")
        self._note("revoke", device=target)
        return {"revoked": target, "services": count}

    def _rotate_secret(self, device_id: str, payload: dict) -> dict:
        """Rotate a device's shared secret everywhere at once.

        The new secret is derived (HMAC) from the old one, so the verb
        is deterministic and idempotent per epoch; the live session's
        channels are re-keyed in the same step, so the device keeps
        working without re-enrollment.
        """
        target = str(payload["device_id"])
        services = (
            list(self.replica_group.replicas)
            if self.replica_group is not None else list(self.key_services)
        )
        old = None
        for service in services:
            try:
                old = service.server.device_secret(target)
                break
            except Exception:
                continue
        if old is None:
            raise ControlError(f"device {target!r} is not enrolled")
        new = hmac_sha256(old, _ROTATE_LABEL)
        for service in services:
            service.enroll_device(target, new)
        if self.metadata_service is not None:
            self.metadata_service.enroll_device(target, new)
        session = self.session
        if session is not None and session.device_id == target:
            for channel in (session.key_channel, session.metadata_channel):
                channel._device_secret = new
        self._note("rotate_secret", device=target)
        return {"rotated": target, "services": len(services)}

    def _frontend_targets(self, payload: dict) -> list:
        if not self.frontends:
            raise ControlError(
                "no frontend installed (mount with .frontend() to get "
                "drain/admit)"
            )
        index = payload.get("index")
        if index is None:
            return self.frontends
        index = int(index)
        if not 0 <= index < len(self.frontends):
            raise ControlError(
                f"frontend index {index} out of range "
                f"(have {len(self.frontends)})"
            )
        return [self.frontends[index]]

    def _drain(self, device_id: str, payload: dict) -> dict:
        targets = self._frontend_targets(payload)
        for frontend in targets:
            frontend.drain()
        self._note("drain", count=len(targets))
        return {"draining": len(targets)}

    def _admit(self, device_id: str, payload: dict) -> dict:
        targets = self._frontend_targets(payload)
        for frontend in targets:
            frontend.admit()
        self._note("admit", count=len(targets))
        return {"admitted": len(targets)}

    def _swap_backend(self, device_id: str, payload: dict) -> Generator:
        """Hot-swap the lower storage backend of an *empty* volume.

        "Empty" means the whole volume, not just ``readdir("/")``: the
        blob namespace — where a durable audit store spills sealed
        segments — must be empty too, and the refusal names exactly
        what is still present so the operator knows what a swap would
        silently strand.
        """
        name = str(payload["backend"])
        if self.fs is None or self.rig is None:
            raise ControlError("swap_backend needs an attached rig")
        backend = make_backend(name)
        current = self.policy.config.storage_backend
        if name == current:
            return {"backend": name, "unchanged": True}
        old_stack = self.rig.extras.get("backend")
        blobs = getattr(old_stack, "blobs", None)
        present = yield from volume_contents(self.fs.lower, blobs)
        if present:
            shown = ", ".join(repr(p) for p in present[:8])
            if len(present) > 8:
                shown += f", … ({len(present) - 8} more)"
            raise ControlError(
                f"cannot swap backend {current!r} -> {name!r}: the "
                f"volume is not empty (swaps do not migrate data); "
                f"still present: {shown}"
            )
        n_blocks = (
            self.rig.device.n_blocks if self.rig.device is not None
            else 1 << 18
        )
        stack = backend.create(self.sim, costs=self.costs, n_blocks=n_blocks)
        self.fs.lower = stack.fs
        self.rig.lower = stack.fs
        self.rig.device = stack.device
        self.rig.cache = stack.cache
        self.rig.extras["backend"] = stack
        # Durable audit stores follow the volume: re-point each
        # service's namespace at the new stack's blob store (legal
        # precisely because the precondition proved nothing spilled).
        for service in self.key_services:
            if getattr(service, "audit_durable", False):
                service.rebind_audit_blobs(stack.blobs)
        self.policy.replace_config(
            replace(self.policy.config, storage_backend=name)
        )
        self._note("swap_backend", backend=name)
        return {"backend": name, "epoch": self.policy.epoch}

    def _tail_trace(self, device_id: str, payload: dict) -> dict:
        """Stream finished op traces, cursor-paged (live tail)."""
        if self.tracer is None:
            raise ControlError(
                "tracing is off (mount with .tracing() to stream spans)"
            )
        cursor = max(0, int(payload.get("cursor") or 0))
        limit = max(1, int(payload.get("limit") or 50))
        ops = self.tracer.ops[cursor:cursor + limit]
        return {
            "cursor": cursor + len(ops),
            "total": self.tracer.op_count,
            "dropped": self.tracer.dropped,
            "ops": [
                {
                    "op": c.op,
                    "path": c.path,
                    "device": c.device_id,
                    "status": c.root.status,
                    "start": round(c.root.start, 6),
                    "duration": round(c.root.duration, 6),
                    "spans": sum(1 for _ in c.root.walk()),
                }
                for c in ops
            ],
        }

    def _audit_targets(self, payload: dict) -> list[tuple[int, Any]]:
        """The key services an audit verb addresses: all, or one by
        ``index``."""
        if not self.key_services:
            raise ControlError("no key service attached")
        index = payload.get("index")
        if index is None:
            return list(enumerate(self.key_services))
        index = int(index)
        if not 0 <= index < len(self.key_services):
            raise ControlError(
                f"service index {index} out of range "
                f"(have {len(self.key_services)})"
            )
        return [(index, self.key_services[index])]

    def _audit_stats(self, device_id: str, payload: dict) -> dict:
        """Per-service audit-store and view statistics (read-only).

        Durable stores report their flush/spill state and, after a
        restart, the recovery outcome — including ``lost_entries``, so
        a crash-truncated tail is *visible* here, never silent.
        """
        services = []
        for index, service in self._audit_targets(payload):
            log = service.access_log
            stats = getattr(log, "stats", None)
            if stats is not None:
                entry = {"index": index, **stats()}
            else:
                shards = getattr(log, "shards", None)
                entry = {
                    "index": index,
                    "store": "flat",
                    "name": log.name,
                    "entries": len(log),
                    "shards": len(shards) if isinstance(shards, list) else 1,
                }
            recovery = getattr(service, "recovery_stats", None)
            if recovery is not None:
                entry["recovery"] = dict(recovery)
            services.append(entry)
        return {"at": self.sim.now, "services": services}

    def _audit_seal(self, device_id: str, payload: dict) -> dict:
        """Force-seal the active segment on segmented stores."""
        sealed = []
        for index, service in self._audit_targets(payload):
            log = service.access_log
            if not hasattr(log, "force_seal"):
                raise ControlError(
                    f"service {index} uses the flat audit store; "
                    "force-seal needs audit_store('segmented')"
                )
            sealed.append({"index": index, "segment": log.force_seal()})
        self._note("audit_seal", count=len(sealed))
        return {"sealed": sealed}

    def _audit_rebuild(self, device_id: str, payload: dict) -> dict:
        """Rebuild materialized views from the log (recovery drill)."""
        rebuilt = []
        for index, service in self._audit_targets(payload):
            views = getattr(service.access_log, "views", None)
            if views is None:
                raise ControlError(
                    f"service {index} uses the flat audit store; "
                    "views need audit_store('segmented')"
                )
            rebuilt.append({"index": index, "entries": views.rebuild()})
        self._note("audit_rebuild", count=len(rebuilt))
        return {"rebuilt": rebuilt}

    def _audit_checkpoint(self, device_id: str, payload: dict) -> Generator:
        """Persist a view checkpoint on durable stores
        (``ctl.audit_checkpoint``); the flush cost is charged here, on
        the admin call's timeline."""
        out = []
        for index, service in self._audit_targets(payload):
            if not hasattr(service, "audit_checkpoint"):
                raise ControlError(
                    f"service {index} has no durable audit store"
                )
            upto = service.audit_checkpoint()  # ConfigError -> ControlError
            yield from service._audit_sync()
            out.append({"index": index, "upto": upto})
        self._note("audit_checkpoint", count=len(out))
        return {"checkpoints": out}

    def _audit_recover(self, device_id: str, payload: dict) -> dict:
        """Recover crashed services from their spilled blobs — or, on
        healthy durable services, run a read-only recovery drill
        proving the blobs would recover.  A failed recovery crosses
        the wire as :class:`ControlError` and the service stays
        unavailable."""
        out = []
        for index, service in self._audit_targets(payload):
            if getattr(service, "_crashed", False):
                try:
                    stats = service.restart()
                except AuditRecoveryError as exc:
                    raise ControlError(
                        f"service {index} audit recovery failed "
                        f"(service stays down): {exc}"
                    ) from None
                out.append({"index": index, "mode": "restart", **stats})
            else:
                try:
                    stats = service.recover_drill()
                except AuditRecoveryError as exc:
                    raise ControlError(
                        f"service {index} recovery drill failed: {exc}"
                    ) from None
                out.append({"index": index, "mode": "drill", **stats})
        self._note("audit_recover", count=len(out))
        return {"recovered": out}

    def _federation(self):
        """The attached federated replica group, or ControlError."""
        group = self.replica_group
        if group is None or getattr(group, "topology", None) is None:
            raise ControlError(
                "no federated replica group attached "
                "(mount with KeypadConfig.builder().federation(...))"
            )
        return group

    def _region_status(self, device_id: str, payload: dict) -> dict:
        """Per-region replica availability, the gossip membership view
        of a live observer, and the per-shard lease holders."""
        status = self._federation().region_status()
        self._note("region_status")
        return status

    def _region_partition_report(self, device_id: str, payload: dict) -> dict:
        """Merge the per-replica audit logs across the federation and
        report region-split divergences plus the convergence proof
        (no missing, duplicated, or lost entries after a heal)."""
        from repro.cluster.merge import ClusterAuditLog

        group = self._federation()
        window = float(payload.get("window") or 5.0)
        log = ClusterAuditLog(group, group.k, window=window,
                              regions=group.region_labels)
        report = log.region_report()
        self._note("region_partition_report",
                   splits=report["split_count"])
        return report

    def _metrics(self, device_id: str, payload: dict) -> dict:
        """Live counters: channels, frontends, key cache, trace."""
        out: dict[str, Any] = {"at": self.sim.now}
        if self.session is not None:
            out["channels"] = self.session.channel_metrics().as_dict()
        if self.frontends:
            out["frontends"] = [f.metrics.as_dict() for f in self.frontends]
        if self.fs is not None:
            cache = self.fs.key_cache
            out["key_cache"] = {
                "hits": cache.hits,
                "misses": cache.misses,
                "expirations": cache.expirations,
                "entries": len(cache),
            }
            out["fs"] = dict(self.fs.stats)
        if self.tracer is not None:
            out["trace"] = self.tracer.summary()
        return out


def open_control(
    rig: Any,
    network: NetEnv = LAN,
    admin_id: str = "ctl-admin",
    admin_secret: bytes = b"ctl-admin-secret",
    name: str = "keypad-ctl",
):
    """Attach a control server to a rig and return an admin client.

    The admin channel is its own authenticated link (default LAN-class:
    the administrator is near the service, not on the lossy device
    uplink).  The server is reachable as ``client.server``; the rig
    remembers both in ``rig.extras['control']``.
    """
    from repro.control.client import ControlClient

    server = ControlServer.for_rig(rig, name=name)
    server.enroll_admin(admin_id, admin_secret)
    link = network.make_link(rig.sim, label=f"{network.name}-ctl")
    channel = RpcChannel(
        rig.sim, link, server.rpc, admin_id, admin_secret, costs=rig.costs,
    )
    client = ControlClient(channel, server=server)
    rig.extras["control"] = client
    return client
