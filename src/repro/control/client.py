"""The admin-side control client.

A thin, typed stub over an authenticated :class:`~repro.net.rpc.RpcChannel`
to a :class:`~repro.control.server.ControlServer`.  Every method is a
sim-process generator (``result = yield from ctl.set_texp(30.0)``), so
admin commands pay the same network and marshalling costs as data-plane
RPCs and interleave honestly with running workloads.  Server-side
refusals arrive as :class:`~repro.errors.ControlError` (CLI exit
code 6).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.net.rpc import RpcChannel

__all__ = ["ControlClient"]


class ControlClient:
    """Typed verbs over one admin channel (see docs/CONTROL.md)."""

    def __init__(self, channel: RpcChannel, server: Any = None):
        self.channel = channel
        #: the in-process ControlServer, for tests and introspection
        #: (wire-facing code should not reach through this).
        self.server = server

    @property
    def admin_id(self) -> str:
        return self.channel.device_id

    # -- observe -------------------------------------------------------------
    def status(self) -> Generator:
        result = yield from self.channel.call("ctl.status")
        return result

    def metrics(self) -> Generator:
        result = yield from self.channel.call("ctl.metrics")
        return result

    def tail_trace(self, cursor: int = 0, limit: int = 50) -> Generator:
        """One page of finished op traces from ``cursor``; the returned
        ``cursor`` feeds the next call (a poll loop is a live tail)."""
        result = yield from self.channel.call(
            "ctl.tail_trace", cursor=int(cursor), limit=int(limit)
        )
        return result

    # -- reconfigure ---------------------------------------------------------
    def set_texp(self, texp: float,
                 texp_inflight: Optional[float] = None) -> Generator:
        params: dict[str, Any] = {"texp": float(texp)}
        if texp_inflight is not None:
            params["texp_inflight"] = float(texp_inflight)
        result = yield from self.channel.call("ctl.set_texp", **params)
        return result

    def update(self, **changes: Any) -> Generator:
        """Update any runtime-mutable knobs in one policy epoch."""
        result = yield from self.channel.call("ctl.update", changes=changes)
        return result

    def add_dir(self, path: str) -> Generator:
        result = yield from self.channel.call("ctl.add_dir", path=path)
        return result

    def remove_dir(self, path: str) -> Generator:
        result = yield from self.channel.call("ctl.remove_dir", path=path)
        return result

    # -- device lifecycle ----------------------------------------------------
    def revoke(self, device_id: str) -> Generator:
        result = yield from self.channel.call("ctl.revoke",
                                              device_id=device_id)
        return result

    def rotate_secret(self, device_id: str) -> Generator:
        result = yield from self.channel.call("ctl.rotate_secret",
                                              device_id=device_id)
        return result

    # -- service lifecycle ---------------------------------------------------
    def drain(self, index: Optional[int] = None) -> Generator:
        params = {} if index is None else {"index": int(index)}
        result = yield from self.channel.call("ctl.drain", **params)
        return result

    def admit(self, index: Optional[int] = None) -> Generator:
        params = {} if index is None else {"index": int(index)}
        result = yield from self.channel.call("ctl.admit", **params)
        return result

    def swap_backend(self, backend: str) -> Generator:
        result = yield from self.channel.call("ctl.swap_backend",
                                              backend=backend)
        return result

    # -- audit store ---------------------------------------------------------
    def audit_stats(self, index: Optional[int] = None) -> Generator:
        """Segment/view statistics per key service (PROTOCOL.md §12)."""
        params = {} if index is None else {"index": int(index)}
        result = yield from self.channel.call("ctl.audit_stats", **params)
        return result

    def audit_seal(self, index: Optional[int] = None) -> Generator:
        """Force-seal the active segment (segmented stores only)."""
        params = {} if index is None else {"index": int(index)}
        result = yield from self.channel.call("ctl.audit_seal", **params)
        return result

    def audit_rebuild(self, index: Optional[int] = None) -> Generator:
        """Rebuild materialized views by replaying the log."""
        params = {} if index is None else {"index": int(index)}
        result = yield from self.channel.call("ctl.audit_rebuild", **params)
        return result

    def audit_checkpoint(self, index: Optional[int] = None) -> Generator:
        """Persist a view checkpoint (durable stores only)."""
        params = {} if index is None else {"index": int(index)}
        result = yield from self.channel.call("ctl.audit_checkpoint",
                                              **params)
        return result

    def audit_recover(self, index: Optional[int] = None) -> Generator:
        """Restart crashed services through audit recovery; on healthy
        durable services, a read-only recovery drill."""
        params = {} if index is None else {"index": int(index)}
        result = yield from self.channel.call("ctl.audit_recover", **params)
        return result

    # -- federation ----------------------------------------------------------
    def region_status(self) -> Generator:
        """Per-region availability, gossip membership, and per-shard
        lease holders (federated mounts only; PROTOCOL.md §14)."""
        result = yield from self.channel.call("ctl.region_status")
        return result

    def region_partition_report(self,
                                window: Optional[float] = None) -> Generator:
        """Merged cross-region audit timeline: region-split divergences
        plus the post-heal convergence proof."""
        params = {} if window is None else {"window": float(window)}
        result = yield from self.channel.call("ctl.region_partition_report",
                                              **params)
        return result
