"""The live control plane (docs/CONTROL.md).

An in-process admin channel for a mounted Keypad world: a
:class:`ControlServer` attaches to the rig's :class:`PolicyEpoch`,
key service(s), frontends and tracer, and serves typed ``ctl.*`` verbs
over the same authenticated :class:`~repro.net.rpc.RpcChannel`
machinery the data plane uses.  :func:`open_control` wires one up for
a rig in one call.

Nothing here runs unless explicitly opened: a rig without a control
server is byte-identical to the pre-control tree.
"""

from repro.control.client import ControlClient
from repro.control.server import ControlServer, open_control

__all__ = ["ControlServer", "ControlClient", "open_control"]
