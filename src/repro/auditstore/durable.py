"""Durable audit store: segment spill, group commit, crash recovery.

:class:`DurableAuditStore` wraps a
:class:`~repro.auditstore.store.SegmentedAuditStore` and gives the
paper's security argument its missing leg: the forensic record now
survives the process.  Three blob kinds land in a write-once
:class:`~repro.storage.backend.BlobNamespace`:

``seg-<index>``
    Each sealed segment, spilled exactly once at seal time and never
    rewritten — the write-once contract makes retroactive tampering a
    detectable overwrite, not a quiet edit.

``tail``
    The active segment, group-committed on the flush policy:
    ``every-append`` (persist before every reply — the paper's strict
    log-before-disclose durability), ``every-seal`` (only sealed data
    is durable; the open tail is the loss window), or ``every-n``
    (persist after every N appends).  Every spill also rewrites the
    tail, so the flushed watermark never lags a seal.

``checkpoint``
    An :class:`~repro.auditstore.views.AuditViews` snapshot bound to
    (count, chain hash).  Recovery replays only the tail past the
    watermark instead of the whole log.

Appends are synchronous (the log-before-disclose invariant) while the
simulation charges time through generators, so every blob write's
simulated cost — backend bytes plus an ``audit_fsync`` barrier —
accumulates in a pending-cost account that the owning service drains
at its next yield point.  With durability off nothing accrues and the
flags-off timeline is byte-identical.

Recovery (:meth:`DurableAuditStore.recover`) reloads the blobs,
refuses damaged or inconsistent input with
:class:`~repro.errors.AuditRecoveryError`, re-verifies the full seal
chain, and reports exactly what it found — a lost unflushed tail is
*detected* (the service compares against its pre-crash count), never
silent.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.costmodel import DEFAULT_COSTS, CostModel
from repro.errors import AuditRecoveryError

from .codec import (
    decode_checkpoint,
    decode_segment,
    encode_checkpoint,
    encode_segment,
)
from .log import GENESIS_HASH, LogEntry
from .store import SegmentedAuditStore

__all__ = ["DurableAuditStore", "BlobImage", "FLUSH_POLICIES"]

FLUSH_POLICIES = ("every-append", "every-seal", "every-n")

_SEG_PREFIX = "seg-"
_TAIL = "tail"
_CHECKPOINT = "checkpoint"


def _segment_blob_name(index: int) -> str:
    return f"{_SEG_PREFIX}{index:08d}"


class BlobImage:
    """Read-only blob mapping — a seized disk image for forensics.

    Adapts a plain ``{name: bytes}`` dict (e.g. a
    ``BlobStore.snapshot()`` crash image, or files read from an
    exported directory) to the read surface :meth:`recover` needs.
    """

    def __init__(self, blobs: dict[str, bytes]):
        self._blobs = dict(blobs)

    def get(self, name: str) -> bytes:
        return self._blobs[name]

    def exists(self, name: str) -> bool:
        return name in self._blobs

    def names(self) -> list[str]:
        return sorted(self._blobs)

    def put(self, name: str, data: bytes, overwrite: bool = False) -> float:
        raise AuditRecoveryError(
            "blob image is read-only (recover into a live namespace "
            "to resume appending)"
        )

    def __len__(self) -> int:
        return len(self._blobs)


class DurableAuditStore:
    """A ``SegmentedAuditStore`` that persists through a blob namespace.

    Presents the same log surface as the store it wraps (``append``,
    ``append_many``, ``force_seal``, ``entry_at``, ``verify_chain``,
    ``views``, …); write operations additionally run the spill/flush
    machinery and bank their simulated cost in ``pending_cost``.
    """

    def __init__(
        self,
        inner: SegmentedAuditStore,
        blobs: Any,
        costs: CostModel = DEFAULT_COSTS,
        flush_policy: str = "every-seal",
        flush_every: int = 64,
    ):
        if flush_policy not in FLUSH_POLICIES:
            raise ValueError(
                f"unknown flush policy {flush_policy!r}; "
                f"choose one of {FLUSH_POLICIES}"
            )
        if flush_every < 1:
            raise ValueError("flush_every must be at least 1")
        self.inner = inner
        self.blobs = blobs
        self.costs = costs
        self.flush_policy = flush_policy
        self.flush_every = flush_every
        #: sealed segments already spilled (== next seg blob index).
        self._spilled = 0
        #: entry count covered by the last tail/segment flush.
        self._flushed = 0
        #: appends since the last tail flush (every-n bookkeeping).
        self._dirty = 0
        #: simulated seconds owed to the timeline, drained by the
        #: owning service at its next yield point.
        self.pending_cost = 0.0
        self.flushes = 0
        self.checkpoints = 0
        self.crashed = False
        self.entries_at_crash: Optional[int] = None
        #: populated by :meth:`recover` on restored instances.
        self.recovery: Optional[dict[str, Any]] = None

    # -- construction ------------------------------------------------

    @classmethod
    def create(
        cls,
        blobs: Any,
        name: str = "audit",
        segment_entries: int = 1024,
        auto_compact: bool = True,
        costs: CostModel = DEFAULT_COSTS,
        flush_policy: str = "every-seal",
        flush_every: int = 64,
    ) -> "DurableAuditStore":
        inner = SegmentedAuditStore(
            name=name,
            segment_entries=segment_entries,
            auto_compact=auto_compact,
        )
        return cls(
            inner, blobs, costs=costs,
            flush_policy=flush_policy, flush_every=flush_every,
        )

    # -- write side (delegate + persist) -----------------------------

    def _check_alive(self) -> None:
        if self.crashed:
            raise AuditRecoveryError(
                f"audit store {self.inner.name!r} has crashed; "
                "recover before appending"
            )

    def append(self, timestamp: float, device_id: str, kind: str,
               **fields: Any) -> LogEntry:
        self._check_alive()
        entry = self.inner.append(timestamp, device_id, kind, **fields)
        self._after_write(1)
        return entry

    def append_many(
        self, records: list[tuple[float, str, str, dict]]
    ) -> list[LogEntry]:
        self._check_alive()
        entries = self.inner.append_many(records)
        self._after_write(len(entries))
        return entries

    def force_seal(self) -> Optional[int]:
        self._check_alive()
        index = self.inner.force_seal()
        self._after_write(0)
        return index

    def compact(self) -> int:
        # Compaction re-packs in-memory form only; spilled blobs were
        # encoded from entry *content*, so they stay valid as-is.
        return self.inner.compact()

    def _after_write(self, n_appends: int) -> None:
        spilled_new = self._spill_sealed()
        if self.flush_policy == "every-append":
            if n_appends or spilled_new:
                self._write_tail()
        elif self.flush_policy == "every-seal":
            if spilled_new:
                self._write_tail()
        else:  # every-n
            self._dirty += n_appends
            if spilled_new or self._dirty >= self.flush_every:
                self._write_tail()

    def _spill_sealed(self) -> bool:
        """Spill any sealed-but-unspilled segments; True if any were."""
        spilled_any = False
        # All segments but the active tail are sealed, in index order.
        while self._spilled < len(self.inner.segments) - 1:
            segment = self.inner.segments[self._spilled]
            cost = self.blobs.put(
                _segment_blob_name(segment.index), encode_segment(segment)
            )
            self.pending_cost += cost + self.costs.audit_fsync
            self._spilled += 1
            spilled_any = True
        return spilled_any

    def _write_tail(self) -> None:
        active = self.inner.segments[-1]
        cost = self.blobs.put(
            _TAIL, encode_segment(active), overwrite=True
        )
        self.pending_cost += cost + self.costs.audit_fsync
        self._flushed = len(self.inner)
        self._dirty = 0
        self.flushes += 1

    def checkpoint(self) -> int:
        """Persist a view snapshot bound to the current log position.

        Also flushes the tail first so the checkpoint never references
        entries the blobs do not hold.  Returns the watermark (entry
        count covered).
        """
        self._check_alive()
        self._spill_sealed()
        self._write_tail()
        upto = len(self.inner)
        state = self.inner.views.checkpoint_state()
        blob = encode_checkpoint(
            upto=upto,
            bound_hash=self.inner._last_hash,
            timeline=state["timeline"],
            file_access=state["file_access"],
            window=state["window"],
            ingested=state["ingested"],
            out_of_order=state["out_of_order"],
        )
        cost = self.blobs.put(_CHECKPOINT, blob, overwrite=True)
        self.pending_cost += cost + self.costs.audit_fsync
        self.checkpoints += 1
        return upto

    def take_pending_cost(self) -> float:
        """Drain the banked simulated cost (the service's yield point)."""
        cost, self.pending_cost = self.pending_cost, 0.0
        return cost

    # -- crash / recovery --------------------------------------------

    def crash(self) -> int:
        """Simulate process death: drop nothing from the blobs, but
        mark this instance dead and remember how many entries existed
        so the restart can report the exact loss.  Returns the count.
        """
        self.entries_at_crash = len(self.inner)
        self.crashed = True
        return self.entries_at_crash

    @classmethod
    def recover(
        cls,
        blobs: Any,
        name: str = "audit",
        segment_entries: int = 1024,
        auto_compact: bool = True,
        costs: CostModel = DEFAULT_COSTS,
        flush_policy: str = "every-seal",
        flush_every: int = 64,
        entries_before: Optional[int] = None,
    ) -> "DurableAuditStore":
        """Rebuild a durable store from its blobs alone.

        Decodes every spilled segment plus the tail, re-verifies the
        full seal + entry chain (raising
        :class:`AuditRecoveryError` on any gap, damage, or mismatch),
        restores views from the checkpoint when its binding hash
        matches, and records a ``recovery`` stats dict.  Pass
        ``entries_before`` (the pre-crash count, when known) to have
        the lost-tail size computed here; services track it through
        :meth:`crash`.
        """
        names = set(blobs.names())
        seg_names = sorted(n for n in names if n.startswith(_SEG_PREFIX))
        sealed = []
        for i, blob_name in enumerate(seg_names):
            segment = decode_segment(
                blobs.get(blob_name), what=f"blob {blob_name!r}"
            )
            if segment.index != i:
                raise AuditRecoveryError(
                    f"blob {blob_name!r} decodes to segment "
                    f"{segment.index}, expected {i} — a sealed segment "
                    "is missing or misnamed"
                )
            if not segment.sealed:
                raise AuditRecoveryError(
                    f"blob {blob_name!r} holds an unsealed segment; "
                    "spilled segments must be sealed"
                )
            sealed.append(segment)

        tail = None
        tail_state = "absent"
        if _TAIL in names:
            candidate = decode_segment(blobs.get(_TAIL), what="tail blob")
            if candidate.index > len(sealed):
                raise AuditRecoveryError(
                    f"tail blob is segment {candidate.index} but only "
                    f"{len(sealed)} sealed segments were recovered — "
                    "at least one spilled segment is missing"
                )
            if candidate.index == len(sealed):
                if candidate.sealed:
                    # Flushed at seal time but the spill never landed.
                    sealed.append(candidate)
                    tail_state = "promoted"
                else:
                    tail = candidate
                    tail_state = "active"
            else:
                # Predates the latest spill; the sealed blob supersedes
                # it.  Anything it held is covered by that segment.
                tail_state = "stale"

        segments = sealed + ([tail] if tail is not None else [])
        if not segments:
            # Nothing was ever flushed: an empty (or brand-new) store.
            inner = SegmentedAuditStore(
                name=name,
                segment_entries=segment_entries,
                auto_compact=auto_compact,
            )
        else:
            inner = SegmentedAuditStore.restore(
                segments,
                name=name,
                segment_entries=segment_entries,
                auto_compact=auto_compact,
            )
            if not inner.verify_chain():
                raise AuditRecoveryError(
                    f"audit store {name!r}: seal chain verification "
                    "failed after recovery — the spilled segments were "
                    "tampered with or truncated"
                )

        recovered = len(inner)
        checkpoint_used = False
        checkpoint_discarded: Optional[str] = None
        checkpoint_upto: Optional[int] = None
        tail_replayed = 0
        if _CHECKPOINT in names:
            ckpt = decode_checkpoint(blobs.get(_CHECKPOINT))
            checkpoint_upto = ckpt["upto"]
            if ckpt["upto"] > recovered:
                # Views ahead of the recovered log: the tail it
                # summarised was lost with the crash.  Views are
                # derived data — discard and rebuild; the *log* loss
                # itself is what the service reports.
                checkpoint_discarded = "ahead-of-log"
            else:
                bound = (
                    GENESIS_HASH if ckpt["upto"] == 0
                    else inner.entry_at(ckpt["upto"] - 1).chain_hash
                )
                if bound != ckpt["bound_hash"]:
                    checkpoint_discarded = "binding-mismatch"
                else:
                    inner.views.restore_state(
                        {
                            "timeline": ckpt["timeline"],
                            "file_access": ckpt["file_access"],
                            "window": ckpt["window"],
                            "ingested": ckpt["ingested"],
                            "out_of_order": ckpt["out_of_order"],
                        }
                    )
                    for entry in inner.tail(ckpt["upto"]):
                        inner.views.ingest(entry)
                        tail_replayed += 1
                    checkpoint_used = True
        if not checkpoint_used and recovered:
            inner.views.rebuild()

        store = cls(
            inner, blobs, costs=costs,
            flush_policy=flush_policy, flush_every=flush_every,
        )
        store._spilled = sum(1 for s in inner.segments if s.sealed)
        store._flushed = recovered
        lost = None
        if entries_before is not None:
            lost = max(0, entries_before - recovered)
        store.recovery = {
            "recovered_entries": recovered,
            "sealed_segments": store._spilled,
            "tail_state": tail_state,
            "tail_entries": len(inner.segments[-1]),
            "checkpoint_used": checkpoint_used,
            "checkpoint_upto": checkpoint_upto,
            "checkpoint_discarded": checkpoint_discarded,
            "view_tail_replayed": tail_replayed,
            "entries_before": entries_before,
            "lost_entries": lost,
        }
        return store

    def verify_blobs(self) -> dict[str, Any]:
        """Dry-run recovery drill against the live blobs.

        Decodes and chain-verifies what is currently spilled without
        touching this instance; returns the drill's recovery stats.
        Raises :class:`AuditRecoveryError` if the blobs would not
        recover.
        """
        drill = DurableAuditStore.recover(
            BlobImage(
                {n: self.blobs.get(n) for n in self.blobs.names()}
            ),
            name=self.inner.name,
            segment_entries=self.inner.segment_entries,
            auto_compact=False,
            costs=self.costs,
            flush_policy=self.flush_policy,
            flush_every=self.flush_every,
            entries_before=len(self.inner),
        )
        return drill.recovery

    def rebind_blobs(self, blobs: Any) -> None:
        """Point at a fresh namespace (after a backend swap).

        Only legal while nothing has been flushed — the swap
        precondition guarantees this, since spilled blobs make the
        volume non-empty and veto the swap.
        """
        if self._spilled or self._flushed or self.checkpoints:
            raise AuditRecoveryError(
                f"audit store {self.inner.name!r} has flushed data; "
                "cannot rebind its blob namespace"
            )
        self.blobs = blobs

    # -- log surface (read side delegates) ---------------------------

    @property
    def name(self) -> str:
        return self.inner.name

    @property
    def views(self):
        return self.inner.views

    @property
    def segments(self):
        return self.inner.segments

    @property
    def segment_entries(self) -> int:
        return self.inner.segment_entries

    def __len__(self) -> int:
        return len(self.inner)

    def __iter__(self) -> Iterator[LogEntry]:
        return iter(self.inner)

    def entry_at(self, sequence: int) -> LogEntry:
        return self.inner.entry_at(sequence)

    def tail(self, start: int) -> list[LogEntry]:
        return self.inner.tail(start)

    def entries(self, *args: Any, **kwargs: Any) -> list[LogEntry]:
        return self.inner.entries(*args, **kwargs)

    def verify_chain(self) -> bool:
        return self.inner.verify_chain()

    def stats(self) -> dict[str, Any]:
        out = self.inner.stats()
        out["store"] = "durable"
        out["durable"] = {
            "flush_policy": self.flush_policy,
            "flush_every": self.flush_every,
            "flushed_entries": self._flushed,
            "unflushed_entries": len(self.inner) - self._flushed,
            "spilled_segments": self._spilled,
            "flushes": self.flushes,
            "checkpoints": self.checkpoints,
            "pending_cost": self.pending_cost,
            "crashed": self.crashed,
        }
        if self.recovery is not None:
            out["durable"]["recovery"] = dict(self.recovery)
        return out
