"""Event-sourced audit store with materialized forensic views.

The write side (:mod:`repro.auditstore.store`) organises the paper's
durable audit log into group-committed, hash-chained, compactable
segments; the read side (:mod:`repro.auditstore.views`) keeps CQRS
projections — per-device timeline, per-file access set, post-theft
window index — incrementally current so forensic queries answer in
O(view) instead of O(log).  :mod:`repro.auditstore.log` holds the flat
log primitives the rest of the tree shares (moved here from
``repro.core.services.logstore``, which remains as a shim).

Select the segmented store with
``KeypadConfig.builder().audit_store("segmented")``; the default is
the paper-faithful flat log.
"""

from repro.costmodel import DEFAULT_COSTS

from .codec import (
    decode_checkpoint,
    decode_segment,
    encode_checkpoint,
    encode_segment,
)
from .durable import FLUSH_POLICIES, BlobImage, DurableAuditStore
from .log import (
    DISCLOSING_KINDS,
    GENESIS_HASH,
    AppendOnlyLog,
    LogEntry,
    ShardedLog,
    entry_digest,
)
from .store import AuditSegment, SegmentedAuditStore
from .views import AuditViews

__all__ = [
    "AppendOnlyLog",
    "AuditSegment",
    "AuditViews",
    "BlobImage",
    "DISCLOSING_KINDS",
    "DurableAuditStore",
    "FLUSH_POLICIES",
    "GENESIS_HASH",
    "LogEntry",
    "SegmentedAuditStore",
    "ShardedLog",
    "decode_checkpoint",
    "decode_segment",
    "encode_checkpoint",
    "encode_segment",
    "entry_digest",
]


def make_audit_log(
    name: str,
    store: str = "flat",
    shards: int = 1,
    router=None,
    segment_entries: int = 1024,
    auto_compact: bool = True,
    durable: bool = False,
    blobs=None,
    flush_policy: str = "every-seal",
    flush_every: int = 64,
    costs=DEFAULT_COSTS,
):
    """Build the audit log a service should write to.

    ``store="flat"`` reproduces the paper's log exactly: one
    ``AppendOnlyLog`` (or a ``ShardedLog`` when ``shards > 1``).
    ``store="segmented"`` returns a ``SegmentedAuditStore`` — one
    global store regardless of ``shards``, since group-committed
    segments subsume the per-shard chain trick without changing any
    simulated-time behavior.  ``durable=True`` (segmented only) wraps
    the store in a :class:`DurableAuditStore` spilling into ``blobs``
    (a ``BlobStore``/``BlobNamespace``) on ``flush_policy``.
    """
    if durable and store != "segmented":
        raise ValueError(
            f"durable audit stores require store='segmented', "
            f"not {store!r}"
        )
    if store == "segmented":
        inner = SegmentedAuditStore(
            name=name,
            segment_entries=segment_entries,
            auto_compact=auto_compact,
        )
        if not durable:
            return inner
        if blobs is None:
            raise ValueError("a durable audit store needs a blob namespace")
        return DurableAuditStore(
            inner,
            blobs,
            costs=costs,
            flush_policy=flush_policy,
            flush_every=flush_every,
        )
    if store != "flat":
        raise ValueError(f"unknown audit store {store!r}")
    if shards > 1:
        if router is None:
            raise ValueError("a sharded flat log needs a router")
        return ShardedLog(name=name, shards=shards, router=router)
    return AppendOnlyLog(name=name)
