"""Materialized forensic views (the CQRS read side).

Every append to a :class:`~repro.auditstore.store.SegmentedAuditStore`
is offered to an :class:`AuditViews` instance, which incrementally
maintains three projections over the event-sourced log:

``per-device timeline``
    device_id → the sequence numbers of that device's records, in
    append order.  Answers "what did this device do" without touching
    other devices' records.

``per-file access set``
    audit_id → the sequence numbers of the *disclosing* records that
    touched that file's key.  Answers "who ever fetched this file's
    key" in O(accesses to that file).

``post-theft window index``
    the disclosing records ordered by ``(timestamp, sequence)``.
    Answers the paper's central forensic question — every key
    disclosure at or after ``Tloss − Texp`` — with one bisect instead
    of a full scan.  Kept correct under out-of-order timestamps (the
    phone's ``report_batch`` records carry phone-side clocks) by
    insertion-sorting stragglers.

The views store only light ``(sequence, ...)`` references and
re-materialise full ``LogEntry`` objects through the source's
``entry_at``; a view never holds a second copy of the log.  Queries
return exactly what the equivalent raw-log scan returns — the CLI's
reconciliation mode and the property suite both enforce this — and
``rebuild`` replays the source from scratch (``ctl.audit_rebuild``,
crash recovery).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import TYPE_CHECKING, Any, Optional

from .log import DISCLOSING_KINDS, LogEntry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from typing import Protocol

    class _ViewSource(Protocol):
        def entry_at(self, sequence: int) -> LogEntry: ...
        def __iter__(self): ...

__all__ = ["AuditViews"]


class AuditViews:
    """Incrementally maintained projections over one audit log.

    ``source`` must expose ``entry_at(sequence)`` and iteration, with
    globally unique sequence numbers (a ``SegmentedAuditStore`` or a
    single flat ``AppendOnlyLog`` — not a ``ShardedLog``, whose
    per-shard sequences collide).
    """

    def __init__(self, source: "_ViewSource"):
        self.source = source
        #: device_id -> [sequence, ...] in append order.
        self._timeline: dict[str, list[int]] = {}
        #: audit_id -> [sequence, ...] of disclosing records, append order.
        self._file_access: dict[bytes, list[int]] = {}
        #: [(timestamp, sequence), ...] of disclosing records, sorted.
        self._window: list[tuple[float, int]] = []
        self.ingested = 0
        self.rebuilds = 0
        #: straggler insertions into the window index (out-of-order
        #: timestamps from phone-side report batches).
        self.out_of_order = 0

    # -- write side (called on every append) ------------------------

    def ingest(self, entry: LogEntry) -> None:
        self.ingested += 1
        self._timeline.setdefault(entry.device_id, []).append(entry.sequence)
        if entry.kind not in DISCLOSING_KINDS:
            return
        audit_id = entry.fields.get("audit_id")
        if isinstance(audit_id, (bytes, bytearray)) and audit_id:
            self._file_access.setdefault(bytes(audit_id), []).append(
                entry.sequence
            )
        item = (entry.timestamp, entry.sequence)
        if not self._window or item >= self._window[-1]:
            self._window.append(item)
        else:
            insort(self._window, item)
            self.out_of_order += 1

    def rebuild(self) -> int:
        """Drop every projection and replay the source end to end."""
        self._timeline.clear()
        self._file_access.clear()
        self._window.clear()
        self.ingested = 0
        self.out_of_order = 0
        for entry in self.source:
            self.ingest(entry)
        self.rebuilds += 1
        return self.ingested

    # -- checkpointing (the durable store's view snapshots) ----------

    def checkpoint_state(self) -> dict[str, Any]:
        """Copy out every projection for serialization.

        The caller pairs this with the log position it was taken at
        (count + bound chain hash); the views themselves hold only
        sequence references, so the snapshot is small relative to the
        log it summarises.
        """
        return {
            "timeline": {d: list(s) for d, s in self._timeline.items()},
            "file_access": {
                a: list(s) for a, s in self._file_access.items()
            },
            "window": list(self._window),
            "ingested": self.ingested,
            "out_of_order": self.out_of_order,
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        """Replace every projection with a checkpointed snapshot.

        Recovery then re-ingests only the tail past the checkpoint's
        watermark instead of replaying the whole log.
        """
        self._timeline = {d: list(s) for d, s in state["timeline"].items()}
        self._file_access = {
            bytes(a): list(s) for a, s in state["file_access"].items()
        }
        self._window = [(float(t), int(s)) for t, s in state["window"]]
        self.ingested = int(state["ingested"])
        self.out_of_order = int(state["out_of_order"])

    # -- queries (each must equal the raw-log scan) ------------------

    def _materialize(self, sequences: list[int]) -> list[LogEntry]:
        return [self.source.entry_at(seq) for seq in sequences]

    def accesses_after(
        self, t: float, device_id: Optional[str] = None
    ) -> list[LogEntry]:
        """Disclosing records at or after ``t`` — the post-theft window.

        One bisect on the window index instead of a log scan; results
        come back in append order, matching the flat
        ``KeyService.accesses_after`` exactly.
        """
        start = bisect_left(self._window, t, key=lambda item: item[0])
        sequences = sorted(seq for _, seq in self._window[start:])
        out = self._materialize(sequences)
        if device_id is not None:
            out = [e for e in out if e.device_id == device_id]
        return out

    def device_timeline(
        self,
        device_id: str,
        since: Optional[float] = None,
        kind: Optional[str] = None,
    ) -> list[LogEntry]:
        """Every record a device produced, in append order."""
        out = self._materialize(self._timeline.get(device_id, []))
        if since is not None:
            out = [e for e in out if e.timestamp >= since]
        if kind is not None:
            out = [e for e in out if e.kind == kind]
        return out

    def file_accesses(
        self, audit_id: bytes, since: Optional[float] = None
    ) -> list[LogEntry]:
        """Every disclosing record that touched one file's key."""
        out = self._materialize(self._file_access.get(bytes(audit_id), []))
        if since is not None:
            out = [e for e in out if e.timestamp >= since]
        return out

    def devices(self) -> list[str]:
        return sorted(self._timeline)

    def audit_ids(self) -> list[bytes]:
        return sorted(self._file_access)

    # -- introspection ----------------------------------------------

    def stats(self) -> dict[str, Any]:
        return {
            "devices": len(self._timeline),
            "files": len(self._file_access),
            "window_entries": len(self._window),
            "ingested": self.ingested,
            "out_of_order": self.out_of_order,
            "rebuilds": self.rebuilds,
        }
