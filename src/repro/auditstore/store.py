"""Event-sourced segmented audit store (the write side).

The flat :class:`~repro.auditstore.log.AppendOnlyLog` keeps every
record in one list and answers every forensic question by scanning it
end to end.  At fleet scale the log is the dominant artifact — 10k
devices produce ~150k entries in 30 simulated seconds — so this module
re-materialises the same logical log as a sequence of *segments*:

* the **active segment** absorbs appends (single or group-committed);
* once it holds ``segment_entries`` records it is **sealed**: a seal
  record captures the segment's boundary hashes, count, and time span,
  and joins a second hash chain *across* segments;
* sealed segments are **compacted** in the background: their
  ``LogEntry`` objects are re-packed into plain tuples (roughly the
  shape a columnar on-disk segment would take) and rebuilt lazily on
  read.

Chain math is *identical* to the flat log: entry N's hash covers entry
N-1's hash even across a segment boundary, and the genesis previous
hash is 32 zero bytes.  A flat log and a segmented store fed the same
records therefore produce byte-identical ``chain_hash`` streams, which
is what lets the store hide behind the ``AppendOnlyLog`` interface.

``verify_chain`` proves three things: every entry chain step, the
linkage of each segment's base hash to its predecessor's last hash,
and the seal chain itself — so truncating, rewriting, or swapping a
sealed segment (even a compacted one) is detected.

Every append is also offered to the attached
:class:`~repro.auditstore.views.AuditViews` projection engine, which
keeps the CQRS read side (per-device timeline, per-file access set,
post-theft window index) incrementally up to date.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional

from repro.crypto.sha256 import sha256_fast

from .log import GENESIS_HASH, LogEntry, entry_digest
from .views import AuditViews

__all__ = ["AuditSegment", "SegmentedAuditStore"]


def _unpack(packed: tuple) -> LogEntry:
    """Rebuild a ``LogEntry`` from its compacted tuple form."""
    sequence, timestamp, device_id, kind, items, chain_hash = packed
    return LogEntry(
        sequence=sequence,
        timestamp=timestamp,
        device_id=device_id,
        kind=kind,
        fields=dict(items),
        chain_hash=chain_hash,
    )


class AuditSegment:
    """One contiguous run of the logical log.

    Holds entries either *live* (``LogEntry`` objects, the mutable
    active form) or *packed* (plain tuples after compaction).  A
    sealed segment additionally carries its seal record: the base
    hash (previous segment's last entry hash), last entry hash, entry
    count, time span, and a ``seal_hash`` chaining it to the previous
    seal.
    """

    def __init__(self, index: int, base_sequence: int, base_hash: bytes):
        self.index = index
        self.base_sequence = base_sequence
        #: chain hash of the last entry *before* this segment
        #: (``GENESIS_HASH`` for segment 0).
        self.base_hash = base_hash
        self.sealed = False
        self.compacted = False
        self.last_hash = base_hash
        self.first_timestamp: Optional[float] = None
        self.last_timestamp: Optional[float] = None
        self.seal_hash: Optional[bytes] = None
        self._live: list[LogEntry] = []
        self._packed: list[tuple] = []

    # -- write side -------------------------------------------------

    def hold(self, entry: LogEntry) -> None:
        if self.sealed:
            raise ValueError(f"segment {self.index} is sealed")
        self._live.append(entry)
        self.last_hash = entry.chain_hash
        if self.first_timestamp is None:
            self.first_timestamp = entry.timestamp
        self.last_timestamp = entry.timestamp

    def seal(self, prev_seal: bytes) -> bytes:
        """Close the segment and chain its seal record to ``prev_seal``."""
        if self.sealed:
            raise ValueError(f"segment {self.index} is already sealed")
        self.sealed = True
        material = repr(
            (self.index, self.base_sequence, len(self), self.base_hash,
             self.last_hash, self.first_timestamp, self.last_timestamp)
        ).encode()
        self.seal_hash = sha256_fast(prev_seal + material)
        return self.seal_hash

    def compact(self) -> int:
        """Re-pack a sealed segment's entries into plain tuples.

        Returns the number of records packed (0 if nothing to do).
        Reads rebuild ``LogEntry`` objects lazily, and the chain digest
        is computed from entry *content*, so compaction is invisible to
        both queries and ``verify_chain``.
        """
        if not self.sealed or self.compacted:
            return 0
        self._packed = [
            (e.sequence, e.timestamp, e.device_id, e.kind,
             tuple(sorted(e.fields.items())), e.chain_hash)
            for e in self._live
        ]
        self._live = []
        self.compacted = True
        return len(self._packed)

    # -- read side --------------------------------------------------

    def __len__(self) -> int:
        return len(self._packed) if self.compacted else len(self._live)

    def __iter__(self) -> Iterator[LogEntry]:
        if self.compacted:
            return (_unpack(p) for p in self._packed)
        return iter(self._live)

    def entry_at(self, offset: int) -> LogEntry:
        if self.compacted:
            return _unpack(self._packed[offset])
        return self._live[offset]

    def verify(self, prev: bytes) -> Optional[bytes]:
        """Check this segment's entry chain starting from ``prev``.

        Returns the last chain hash on success, ``None`` on tamper.
        """
        if self.base_hash != prev:
            return None
        for entry in self:
            if entry_digest(prev, entry) != entry.chain_hash:
                return None
            prev = entry.chain_hash
        if self and self.last_hash != prev:
            return None
        return prev

    def describe(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "base_sequence": self.base_sequence,
            "entries": len(self),
            "sealed": self.sealed,
            "compacted": self.compacted,
            "first_timestamp": self.first_timestamp,
            "last_timestamp": self.last_timestamp,
        }


class SegmentedAuditStore:
    """Drop-in replacement for ``AppendOnlyLog`` with segments + views.

    Presents the flat log's whole surface — ``append``,
    ``append_many`` (group commit), ``entries``, ``verify_chain``,
    ``entry_at``, ``tail``, iteration, ``len`` — while organising
    storage into seal-chained segments and keeping materialized views
    current on every append.
    """

    def __init__(
        self,
        name: str = "audit",
        segment_entries: int = 1024,
        auto_compact: bool = True,
    ):
        if segment_entries < 2:
            raise ValueError("segment_entries must be at least 2")
        self.name = name
        self.segment_entries = segment_entries
        self.auto_compact = auto_compact
        self.segments: list[AuditSegment] = [
            AuditSegment(index=0, base_sequence=0, base_hash=GENESIS_HASH)
        ]
        self.views = AuditViews(self)
        self._count = 0
        self._last_hash = GENESIS_HASH
        self._last_seal = GENESIS_HASH
        #: lifetime counters (surfaced by ``ctl.audit_stats``).
        self.appends = 0
        self.group_commits = 0
        self.seals = 0
        self.compactions = 0

    @classmethod
    def restore(
        cls,
        segments: list[AuditSegment],
        name: str = "audit",
        segment_entries: int = 1024,
        auto_compact: bool = True,
    ) -> "SegmentedAuditStore":
        """Rebuild a store around already-decoded segments (recovery).

        Unlike appends, restore installs the segments as-is: no view
        ingestion happens here (the recovering caller either replays a
        checkpointed snapshot plus the tail, or rebuilds from scratch),
        and no chain math is re-run — callers MUST follow up with
        :meth:`verify_chain` before trusting the result.  If the last
        segment arrives sealed, a fresh empty active segment is opened
        so the store can keep appending.
        """
        if not segments:
            raise ValueError("restore needs at least one segment")
        for i, segment in enumerate(segments):
            if segment.index != i:
                raise ValueError(
                    f"segment at position {i} has index {segment.index}"
                )
            if i < len(segments) - 1 and not segment.sealed:
                raise ValueError(
                    f"interior segment {i} is unsealed; only the last "
                    "segment may be an active tail"
                )
        store = cls.__new__(cls)
        store.name = name
        store.segment_entries = max(2, int(segment_entries))
        store.auto_compact = auto_compact
        store.segments = list(segments)
        last = store.segments[-1]
        store._count = last.base_sequence + len(last)
        store._last_hash = last.last_hash
        sealed = [s for s in store.segments if s.sealed]
        store._last_seal = sealed[-1].seal_hash if sealed else GENESIS_HASH
        if last.sealed:
            store.segments.append(
                AuditSegment(
                    index=last.index + 1,
                    base_sequence=store._count,
                    base_hash=store._last_hash,
                )
            )
        store.views = AuditViews(store)
        # Lifetime counters restart from what the segments show; the
        # pre-crash totals died with the process and recovery stats say
        # so explicitly.
        store.appends = store._count
        store.group_commits = 0
        store.seals = len(sealed)
        store.compactions = 0
        if auto_compact:
            for segment in sealed:
                if segment.compact():
                    store.compactions += 1
        return store

    # -- write side -------------------------------------------------

    @property
    def _active(self) -> AuditSegment:
        return self.segments[-1]

    def _roll(self) -> None:
        """Seal the active segment and open a fresh one."""
        active = self._active
        self._last_seal = active.seal(self._last_seal)
        self.seals += 1
        if self.auto_compact:
            self.compactions += 1 if active.compact() else 0
        self.segments.append(
            AuditSegment(
                index=active.index + 1,
                base_sequence=self._count,
                base_hash=self._last_hash,
            )
        )

    def _commit(self, timestamp: float, device_id: str, kind: str,
                fields: dict[str, Any]) -> LogEntry:
        entry = LogEntry(
            sequence=self._count,
            timestamp=timestamp,
            device_id=device_id,
            kind=kind,
            fields=dict(fields),
        )
        entry = LogEntry(
            sequence=entry.sequence,
            timestamp=entry.timestamp,
            device_id=entry.device_id,
            kind=entry.kind,
            fields=entry.fields,
            chain_hash=entry_digest(self._last_hash, entry),
        )
        self._active.hold(entry)
        self._count += 1
        self._last_hash = entry.chain_hash
        self.views.ingest(entry)
        if len(self._active) >= self.segment_entries:
            self._roll()
        return entry

    def append(
        self, timestamp: float, device_id: str, kind: str, **fields: Any
    ) -> LogEntry:
        self.appends += 1
        return self._commit(timestamp, device_id, kind, fields)

    def append_many(
        self, records: list[tuple[float, str, str, dict]]
    ) -> list[LogEntry]:
        """Group commit: the whole batch lands under one durable write
        (one ``service_log_append`` charge at the caller), and segment
        rolls happen at batch boundaries within the group exactly as
        they would for individual appends."""
        self.group_commits += 1
        return [
            self._commit(timestamp, device_id, kind, fields)
            for timestamp, device_id, kind, fields in records
        ]

    def force_seal(self) -> Optional[int]:
        """Seal the active segment now (``ctl.audit_seal``).

        Returns the sealed segment's index, or ``None`` if the active
        segment was empty (nothing to seal).
        """
        if not len(self._active):
            return None
        index = self._active.index
        self._roll()
        return index

    def compact(self) -> int:
        """Compact every sealed-but-live segment; returns records packed."""
        packed = 0
        for segment in self.segments:
            did = segment.compact()
            if did:
                packed += did
                self.compactions += 1
        return packed

    # -- flat-log-compatible read side ------------------------------

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[LogEntry]:
        for segment in self.segments:
            yield from segment

    def entry_at(self, sequence: int) -> LogEntry:
        """Random access by sequence: O(log segments) + O(1)."""
        if not 0 <= sequence < self._count:
            raise IndexError(sequence)
        lo, hi = 0, len(self.segments) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.segments[mid].base_sequence <= sequence:
                lo = mid
            else:
                hi = mid - 1
        segment = self.segments[lo]
        return segment.entry_at(sequence - segment.base_sequence)

    def tail(self, start: int) -> list[LogEntry]:
        """Entries at sequences >= ``start`` without a full scan."""
        if start >= self._count:
            return []
        start = max(start, 0)
        out: list[LogEntry] = []
        for segment in self.segments:
            if segment.base_sequence + len(segment) <= start:
                continue
            for entry in segment:
                if entry.sequence >= start:
                    out.append(entry)
        return out

    def entries(
        self,
        since: Optional[float] = None,
        device_id: Optional[str] = None,
        kind: Optional[str] = None,
        predicate: Optional[Callable[[LogEntry], bool]] = None,
    ) -> list[LogEntry]:
        """Filtered scan, same semantics as the flat log."""
        out = []
        for entry in self:
            if since is not None and entry.timestamp < since:
                continue
            if device_id is not None and entry.device_id != device_id:
                continue
            if kind is not None and entry.kind != kind:
                continue
            if predicate is not None and not predicate(entry):
                continue
            out.append(entry)
        return out

    def verify_chain(self) -> bool:
        """Prove no truncation or rewrite, within or across segments.

        Checks (1) every entry chain step, (2) segment linkage — each
        segment's base hash is its predecessor's last entry hash — and
        (3) the seal chain over sealed segments.
        """
        prev = GENESIS_HASH
        prev_seal = GENESIS_HASH
        for segment in self.segments:
            result = segment.verify(prev)
            if result is None:
                return False
            prev = result
            if segment.sealed:
                material = repr(
                    (segment.index, segment.base_sequence, len(segment),
                     segment.base_hash, segment.last_hash,
                     segment.first_timestamp, segment.last_timestamp)
                ).encode()
                expected = sha256_fast(prev_seal + material)
                if expected != segment.seal_hash:
                    return False
                prev_seal = segment.seal_hash
        return prev == self._last_hash

    # -- introspection ----------------------------------------------

    def stats(self) -> dict[str, Any]:
        return {
            "store": "segmented",
            "name": self.name,
            "entries": self._count,
            "segments": len(self.segments),
            "sealed": sum(1 for s in self.segments if s.sealed),
            "compacted": sum(1 for s in self.segments if s.compacted),
            "segment_entries": self.segment_entries,
            "appends": self.appends,
            "group_commits": self.group_commits,
            "seals": self.seals,
            "compactions": self.compactions,
            "views": self.views.stats(),
        }
