"""Append-only, tamper-evident log primitives for the audit services.

Both services log durably *before* replying ("Before responding to the
request, the service durably logs the requested ID and a timestamp"),
and the metadata store is explicitly append-only so a thief "cannot
overwrite the user's metadata with bogus information after theft" —
later records never erase earlier ones.

Entries are hash-chained; :meth:`AppendOnlyLog.verify_chain` lets the
forensic tool prove the log was not truncated or rewritten in place.

This module is the write-side foundation of :mod:`repro.auditstore`:
:class:`AppendOnlyLog` is the paper's flat log, :class:`ShardedLog`
splits it across independent chains, and
:class:`~repro.auditstore.store.SegmentedAuditStore` (the event-sourced
store) builds group-committed, compactable segments on the same chain
math.  The historical import path ``repro.core.services.logstore``
remains as a deprecation shim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from repro.crypto.sha256 import sha256_fast

__all__ = [
    "LogEntry",
    "AppendOnlyLog",
    "ShardedLog",
    "DISCLOSING_KINDS",
    "GENESIS_HASH",
    "entry_digest",
]

#: the chain's genesis "previous hash" — 32 zero bytes.
GENESIS_HASH = b"\x00" * 32

#: Log-entry kinds that disclose key material (what the forensic tool
#: counts as compromising; shared by the key service, the cluster log
#: merge, and the materialized views).
DISCLOSING_KINDS = ("fetch", "refresh", "prefetch", "profile-prefetch",
                    "paired-fetch", "paired-refresh", "paired-prefetch",
                    "paired-profile-prefetch", "create")


@dataclass(frozen=True)
class LogEntry:
    """One durable record."""

    sequence: int
    timestamp: float
    device_id: str
    kind: str
    fields: dict[str, Any]
    chain_hash: bytes = b""

    def describe(self) -> str:
        detail = ", ".join(f"{k}={v!r}" for k, v in sorted(self.fields.items()))
        return f"[{self.timestamp:.3f}] {self.device_id} {self.kind}: {detail}"


def entry_digest(prev: bytes, entry: LogEntry) -> bytes:
    """The chain step: H(prev || canonical-entry-material).

    The material is derived from the entry's *content* (not its storage
    form), so a compacted record re-verifies byte-for-byte against the
    hash its original produced.
    """
    material = repr(
        (entry.sequence, entry.timestamp, entry.device_id, entry.kind,
         sorted(entry.fields.items()))
    ).encode()
    return sha256_fast(prev + material)


# Backwards-compatible private alias (pre-auditstore name).
_entry_digest = entry_digest


@dataclass
class AppendOnlyLog:
    """A hash-chained append-only record sequence."""

    name: str = "log"
    _entries: list[LogEntry] = field(default_factory=list)

    def append(
        self, timestamp: float, device_id: str, kind: str, **fields: Any
    ) -> LogEntry:
        entries = self._entries
        prev = entries[-1].chain_hash if entries else GENESIS_HASH
        sequence = len(entries)
        # Inline entry_digest's material (same bytes) so the entry is
        # constructed exactly once — frozen-dataclass construction is
        # half this hot path's cost.  The kwargs dict is fresh and owned
        # by this call, so it is stored without a defensive copy.
        material = repr(
            (sequence, timestamp, device_id, kind, sorted(fields.items()))
        ).encode()
        entry = LogEntry(
            sequence=sequence,
            timestamp=timestamp,
            device_id=device_id,
            kind=kind,
            fields=fields,
            chain_hash=sha256_fast(prev + material),
        )
        entries.append(entry)
        return entry

    def append_many(
        self, records: list[tuple[float, str, str, dict]]
    ) -> list[LogEntry]:
        """Group commit: append N records under one durable write.

        The records are ``(timestamp, device_id, kind, fields)`` tuples;
        the chain math is identical to N individual appends (readers and
        :meth:`verify_chain` cannot tell them apart).  The *durable
        write charge* for the group is the caller's responsibility —
        this is what lets the server frontend amortise one
        ``service_log_append`` over a cross-device batch.
        """
        return [
            self.append(timestamp, device_id, kind, **fields)
            for timestamp, device_id, kind, fields in records
        ]

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LogEntry]:
        return iter(self._entries)

    def entry_at(self, sequence: int) -> LogEntry:
        """Random access by sequence number (view materialization)."""
        return self._entries[sequence]

    def tail(self, start: int) -> list[LogEntry]:
        """Entries at append positions >= ``start`` (incremental reads:
        the cluster merge's high-water-mark scans)."""
        return self._entries[start:]

    def entries(
        self,
        since: Optional[float] = None,
        device_id: Optional[str] = None,
        kind: Optional[str] = None,
        predicate: Optional[Callable[[LogEntry], bool]] = None,
    ) -> list[LogEntry]:
        """Filtered view (forensics-side reads; not an RPC)."""
        out = []
        for entry in self._entries:
            if since is not None and entry.timestamp < since:
                continue
            if device_id is not None and entry.device_id != device_id:
                continue
            if kind is not None and entry.kind != kind:
                continue
            if predicate is not None and not predicate(entry):
                continue
            out.append(entry)
        return out

    def verify_chain(self) -> bool:
        """Check the hash chain end to end."""
        prev = GENESIS_HASH
        for entry in self._entries:
            expected = entry_digest(prev, entry)
            if expected != entry.chain_hash:
                return False
            prev = entry.chain_hash
        return True


class ShardedLog:
    """N independent hash chains presenting one logical log.

    Each shard is a full :class:`AppendOnlyLog` (its own chain, so
    shards can be written by concurrent service workers without a
    global serialization point), routed by a caller-supplied function
    of the record.  Readers see the global append order: iteration,
    ``entries`` and ``len`` behave exactly like a single log, and
    :meth:`verify_chain` proves every shard's chain.
    """

    def __init__(self, name: str, shards: int, router: Callable[..., int]):
        if shards < 1:
            raise ValueError("a sharded log needs at least one shard")
        self.name = name
        # router(device_id, kind, fields) -> shard index (any int).
        self._router = router
        self.shards = [
            AppendOnlyLog(name=f"{name}-s{i}") for i in range(shards)
        ]
        self._order: list[LogEntry] = []

    def shard_of(self, device_id: str, kind: str, fields: dict) -> int:
        return self._router(device_id, kind, fields) % len(self.shards)

    def append(
        self, timestamp: float, device_id: str, kind: str, **fields: Any
    ) -> LogEntry:
        idx = self.shard_of(device_id, kind, fields)
        entry = self.shards[idx].append(timestamp, device_id, kind, **fields)
        self._order.append(entry)
        return entry

    def append_many(
        self, records: list[tuple[float, str, str, dict]]
    ) -> list[LogEntry]:
        """Group commit across shards; global order follows the batch."""
        return [
            self.append(timestamp, device_id, kind, **fields)
            for timestamp, device_id, kind, fields in records
        ]

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[LogEntry]:
        return iter(self._order)

    def entry_at(self, position: int) -> LogEntry:
        """Random access by global append position."""
        return self._order[position]

    def tail(self, start: int) -> list[LogEntry]:
        """Entries at global append positions >= ``start``."""
        return self._order[start:]

    def entries(
        self,
        since: Optional[float] = None,
        device_id: Optional[str] = None,
        kind: Optional[str] = None,
        predicate: Optional[Callable[[LogEntry], bool]] = None,
    ) -> list[LogEntry]:
        """Filtered view over the global append order."""
        out = []
        for entry in self._order:
            if since is not None and entry.timestamp < since:
                continue
            if device_id is not None and entry.device_id != device_id:
                continue
            if kind is not None and entry.kind != kind:
                continue
            if predicate is not None and not predicate(entry):
                continue
            out.append(entry)
        return out

    def verify_chain(self) -> bool:
        return all(shard.verify_chain() for shard in self.shards)
