"""Canonical byte encoding for audit segments and view checkpoints.

This is the durability seam's wire format: the serialization-ready
segment shape (sealed, compacted, seal-chained) finally cashed in as a
versioned, length-prefixed blob layout.  Two blob kinds exist:

``segment`` (magic ``KPSEG\\x01``)
    One :class:`~repro.auditstore.store.AuditSegment`, entries
    embedded with their chain hashes.  Sealed segments carry the full
    seal record (last hash, seal hash, time span) so the seal chain
    can be re-verified from blobs alone; unsealed tails re-derive
    their running state from the entries on decode.

``checkpoint`` (magic ``KPCKP\\x01``)
    An :class:`~repro.auditstore.views.AuditViews` snapshot bound to a
    log position: the watermark sequence count and the chain hash of
    the last covered entry.  Recovery replays only the tail past the
    watermark — and discards the checkpoint entirely if its binding
    hash does not match the recovered log (a stale or foreign
    snapshot must never silently shape forensic answers).

Every blob ends in a SHA-256 footer over all preceding bytes, so bit
rot and truncation are detected before any chain math runs.  All
integers are big-endian; strings are UTF-8; field values use a small
tagged encoding (None/bool/int/float/bytes/str) that round-trips
exactly — floats travel as IEEE-754 doubles, which is lossless for
the simulated clocks, so re-deriving ``entry_digest`` over decoded
entries reproduces the original chain bytes bit for bit.

Decode errors raise :class:`~repro.errors.AuditRecoveryError`; this
module never guesses at damaged input.
"""

from __future__ import annotations

import struct
from typing import Any

from repro.crypto.sha256 import sha256_fast
from repro.errors import AuditRecoveryError

from .log import LogEntry
from .store import AuditSegment

__all__ = [
    "SEGMENT_MAGIC",
    "CHECKPOINT_MAGIC",
    "encode_entry",
    "decode_entry",
    "encode_segment",
    "decode_segment",
    "encode_checkpoint",
    "decode_checkpoint",
]

SEGMENT_MAGIC = b"KPSEG\x01"
CHECKPOINT_MAGIC = b"KPCKP\x01"

_HASH = 32  # sha256 digest size

_U8 = struct.Struct(">B")
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")
_F64 = struct.Struct(">d")

# Tagged field values.  ``I`` carries a length-prefixed signed
# big-endian payload so arbitrary-precision ints survive.
_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"I"
_TAG_FLOAT = b"D"
_TAG_BYTES = b"B"
_TAG_STR = b"S"


class _Reader:
    """Bounds-checked cursor over one blob."""

    def __init__(self, data: bytes, what: str):
        self.data = data
        self.off = 0
        self.what = what

    def take(self, n: int) -> bytes:
        if self.off + n > len(self.data):
            raise AuditRecoveryError(
                f"truncated {self.what}: wanted {n} bytes at offset "
                f"{self.off}, blob is {len(self.data)} bytes"
            )
        out = self.data[self.off:self.off + n]
        self.off += n
        return out

    def u8(self) -> int:
        return _U8.unpack(self.take(1))[0]

    def u16(self) -> int:
        return _U16.unpack(self.take(2))[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def u64(self) -> int:
        return _U64.unpack(self.take(8))[0]

    def f64(self) -> float:
        return _F64.unpack(self.take(8))[0]

    def lp_bytes(self, width=_U32) -> bytes:
        n = width.unpack(self.take(width.size))[0]
        return self.take(n)

    def lp_str(self, width=_U16) -> str:
        return self.lp_bytes(width).decode("utf-8")


def _lp(data: bytes, width=_U32) -> bytes:
    return width.pack(len(data)) + data


def _lp_str(text: str, width=_U16) -> bytes:
    return _lp(text.encode("utf-8"), width)


# -- tagged field values -----------------------------------------------------


def _encode_value(value: Any) -> bytes:
    if value is None:
        return _TAG_NONE
    if value is True:
        return _TAG_TRUE
    if value is False:
        return _TAG_FALSE
    if isinstance(value, int):
        n = max(1, (value.bit_length() + 8) // 8)  # room for the sign bit
        return _TAG_INT + _lp(value.to_bytes(n, "big", signed=True), _U16)
    if isinstance(value, float):
        return _TAG_FLOAT + _F64.pack(value)
    if isinstance(value, (bytes, bytearray)):
        return _TAG_BYTES + _lp(bytes(value))
    if isinstance(value, str):
        return _TAG_STR + _lp(value.encode("utf-8"))
    raise AuditRecoveryError(
        f"cannot encode audit field value of type {type(value).__name__}"
    )


def _decode_value(r: _Reader) -> Any:
    tag = r.take(1)
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_TRUE:
        return True
    if tag == _TAG_FALSE:
        return False
    if tag == _TAG_INT:
        return int.from_bytes(r.lp_bytes(_U16), "big", signed=True)
    if tag == _TAG_FLOAT:
        return r.f64()
    if tag == _TAG_BYTES:
        return r.lp_bytes()
    if tag == _TAG_STR:
        return r.lp_bytes().decode("utf-8")
    raise AuditRecoveryError(f"unknown field-value tag {tag!r}")


# -- entries -----------------------------------------------------------------


def encode_entry(entry: LogEntry) -> bytes:
    if len(entry.chain_hash) != _HASH:
        raise AuditRecoveryError(
            f"entry {entry.sequence} has no chain hash; only committed "
            "entries are encodable"
        )
    parts = [
        _U64.pack(entry.sequence),
        _F64.pack(entry.timestamp),
        _lp_str(entry.device_id),
        _lp_str(entry.kind),
        _U16.pack(len(entry.fields)),
    ]
    for key in sorted(entry.fields):
        parts.append(_lp_str(key))
        parts.append(_encode_value(entry.fields[key]))
    parts.append(entry.chain_hash)
    return b"".join(parts)


def decode_entry(r: _Reader) -> LogEntry:
    sequence = r.u64()
    timestamp = r.f64()
    device_id = r.lp_str()
    kind = r.lp_str()
    n_fields = r.u16()
    fields = {}
    for _ in range(n_fields):
        key = r.lp_str()
        fields[key] = _decode_value(r)
    chain_hash = r.take(_HASH)
    return LogEntry(
        sequence=sequence,
        timestamp=timestamp,
        device_id=device_id,
        kind=kind,
        fields=fields,
        chain_hash=chain_hash,
    )


# -- segments ----------------------------------------------------------------

_FLAG_SEALED = 0x01


def encode_segment(segment: AuditSegment) -> bytes:
    """Serialize one segment (live or compacted; sealed or the tail)."""
    parts = [
        SEGMENT_MAGIC,
        _U32.pack(segment.index),
        _U64.pack(segment.base_sequence),
        segment.base_hash,
        _U8.pack(_FLAG_SEALED if segment.sealed else 0),
    ]
    if segment.sealed:
        parts.append(segment.last_hash)
        parts.append(segment.seal_hash)
        parts.append(_F64.pack(segment.first_timestamp))
        parts.append(_F64.pack(segment.last_timestamp))
    parts.append(_U32.pack(len(segment)))
    for entry in segment:
        parts.append(_lp(encode_entry(entry)))
    body = b"".join(parts)
    return body + sha256_fast(body)


def decode_segment(data: bytes, what: str = "segment blob") -> AuditSegment:
    """Rebuild a segment; raises :class:`AuditRecoveryError` on damage.

    Verifies the footer before reading anything, then re-derives the
    running state (last hash, time span) from the entries for unsealed
    tails and cross-checks it against the stored seal record for
    sealed segments.  Chain *verification* against neighbours is the
    caller's job (:meth:`SegmentedAuditStore.verify_chain`).
    """
    if len(data) < len(SEGMENT_MAGIC) + _HASH:
        raise AuditRecoveryError(f"{what}: too short to be a segment")
    body, footer = data[:-_HASH], data[-_HASH:]
    if sha256_fast(body) != footer:
        raise AuditRecoveryError(f"{what}: checksum footer mismatch")
    r = _Reader(body, what)
    magic = r.take(len(SEGMENT_MAGIC))
    if magic != SEGMENT_MAGIC:
        raise AuditRecoveryError(
            f"{what}: bad magic {magic!r} (expected {SEGMENT_MAGIC!r})"
        )
    index = r.u32()
    base_sequence = r.u64()
    base_hash = r.take(_HASH)
    flags = r.u8()
    sealed = bool(flags & _FLAG_SEALED)
    seal_record = None
    if sealed:
        seal_record = (r.take(_HASH), r.take(_HASH), r.f64(), r.f64())
    count = r.u32()
    segment = AuditSegment(
        index=index, base_sequence=base_sequence, base_hash=base_hash
    )
    for i in range(count):
        entry_bytes = r.lp_bytes()
        entry = decode_entry(_Reader(entry_bytes, f"{what} entry {i}"))
        if entry.sequence != base_sequence + i:
            raise AuditRecoveryError(
                f"{what}: entry {i} carries sequence {entry.sequence}, "
                f"expected {base_sequence + i}"
            )
        segment.hold(entry)
    if r.off != len(body):
        raise AuditRecoveryError(
            f"{what}: {len(body) - r.off} trailing bytes after entries"
        )
    if sealed:
        last_hash, seal_hash, first_ts, last_ts = seal_record
        if count and segment.last_hash != last_hash:
            raise AuditRecoveryError(
                f"{what}: stored last hash disagrees with entries"
            )
        segment.sealed = True
        segment.last_hash = last_hash
        segment.seal_hash = seal_hash
        segment.first_timestamp = first_ts
        segment.last_timestamp = last_ts
    return segment


# -- view checkpoints --------------------------------------------------------


def encode_checkpoint(
    upto: int,
    bound_hash: bytes,
    timeline: dict[str, list[int]],
    file_access: dict[bytes, list[int]],
    window: list[tuple[float, int]],
    ingested: int,
    out_of_order: int,
) -> bytes:
    parts = [
        CHECKPOINT_MAGIC,
        _U64.pack(upto),
        bound_hash,
        _U64.pack(ingested),
        _U64.pack(out_of_order),
        _U32.pack(len(timeline)),
    ]
    for device_id in sorted(timeline):
        seqs = timeline[device_id]
        parts.append(_lp_str(device_id))
        parts.append(_U32.pack(len(seqs)))
        parts.extend(_U64.pack(s) for s in seqs)
    parts.append(_U32.pack(len(file_access)))
    for audit_id in sorted(file_access):
        seqs = file_access[audit_id]
        parts.append(_lp(audit_id, _U16))
        parts.append(_U32.pack(len(seqs)))
        parts.extend(_U64.pack(s) for s in seqs)
    parts.append(_U32.pack(len(window)))
    for timestamp, sequence in window:
        parts.append(_F64.pack(timestamp))
        parts.append(_U64.pack(sequence))
    body = b"".join(parts)
    return body + sha256_fast(body)


def decode_checkpoint(data: bytes, what: str = "checkpoint blob") -> dict:
    if len(data) < len(CHECKPOINT_MAGIC) + _HASH:
        raise AuditRecoveryError(f"{what}: too short to be a checkpoint")
    body, footer = data[:-_HASH], data[-_HASH:]
    if sha256_fast(body) != footer:
        raise AuditRecoveryError(f"{what}: checksum footer mismatch")
    r = _Reader(body, what)
    magic = r.take(len(CHECKPOINT_MAGIC))
    if magic != CHECKPOINT_MAGIC:
        raise AuditRecoveryError(
            f"{what}: bad magic {magic!r} (expected {CHECKPOINT_MAGIC!r})"
        )
    upto = r.u64()
    bound_hash = r.take(_HASH)
    ingested = r.u64()
    out_of_order = r.u64()
    timeline: dict[str, list[int]] = {}
    for _ in range(r.u32()):
        device_id = r.lp_str()
        timeline[device_id] = [r.u64() for _ in range(r.u32())]
    file_access: dict[bytes, list[int]] = {}
    for _ in range(r.u32()):
        audit_id = r.lp_bytes(_U16)
        file_access[audit_id] = [r.u64() for _ in range(r.u32())]
    window = []
    for _ in range(r.u32()):
        timestamp = r.f64()
        window.append((timestamp, r.u64()))
    if r.off != len(body):
        raise AuditRecoveryError(
            f"{what}: {len(body) - r.off} trailing bytes after window index"
        )
    return {
        "upto": upto,
        "bound_hash": bound_hash,
        "ingested": ingested,
        "out_of_order": out_of_order,
        "timeline": timeline,
        "file_access": file_access,
        "window": window,
    }
