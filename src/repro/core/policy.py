"""Keypad client configuration knobs.

Groups every tunable the evaluation sweeps: key expiration time,
in-flight (IBE-locked) expiration, prefetch policy, whether IBE is
enabled (the paper disables it below ~25 ms RTT), and the partial
coverage domain (§3.6).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional, Sequence

from repro.util.paths import is_ancestor, normalize

__all__ = ["KeypadConfig", "KeypadConfigBuilder", "coverage_for_prefixes"]


def coverage_for_prefixes(prefixes: Sequence[str]) -> Callable[[str], bool]:
    """A coverage predicate protecting everything under the prefixes.

    The paper's suggested policy: "track accesses to any file in
    crucial directories, such as the user's home and temporary
    directory (e.g., /home and /tmp on Linux)".
    """
    normalized = [normalize(p) for p in prefixes]

    def predicate(path: str) -> bool:
        path = normalize(path)
        return any(
            root == "/" or root == path or is_ancestor(root, path)
            for root in normalized
        )

    return predicate


@dataclass(frozen=True)
class KeypadConfig:
    """Client-side policy; defaults mirror the prototype's."""

    # Key-cache expiration.  "Experimentally, we find that key
    # expirations as short as 100 seconds reap most of the performance
    # benefit of caching."
    texp: float = 100.0
    # Expiration for keys of files with in-flight metadata updates:
    # "our prototype expires cached keys with in-flight metadata
    # updates in one second."
    texp_inflight: float = 1.0
    # Prefetch policy spec ('none' | 'dir:N' | 'random:K').
    prefetch: str = "dir:3"
    # IBE for metadata updates.  "The crossover for IBE is around 25ms,
    # i.e., it should be used only for networks with RTTs over 25ms."
    ibe_enabled: bool = True
    # Protected-domain prefixes (partial coverage, §3.6).
    protected_prefixes: tuple[str, ...] = ("/",)
    # Background metadata-registration retry cadence.
    registration_retry_delay: float = 5.0
    registration_max_retries: int = 1000
    rekey_interval: float = 100.0
    # --- extensions beyond the paper's prototype ---
    # Asynchronous (non-blocking) directory registration; files created
    # under a not-yet-acked directory stay IBE-locked until the
    # directory ack lands, preserving audit semantics.  (The paper:
    # applying IBE to directory metadata "should be possible to add".)
    ibe_for_directories: bool = False
    # Register extended-attribute updates with the metadata service
    # ("Handling updates for other types of file metadata functions
    # (such as setfattr) works similarly").
    track_xattrs: bool = False
    # --- transport extensions (all off by default so the paper's
    # figures reproduce unchanged; see docs/PROTOCOL.md) ---
    # Protocol-v2 pipelining: multiple in-flight RPCs per channel.
    pipelining: bool = False
    # Bound on concurrently outstanding requests per channel.
    max_inflight: int = 8
    # Single-flight coalescing of concurrent same-audit-ID fetches.
    coalesce_fetches: bool = False
    # Write-behind batching of eviction notices / xattr registrations.
    write_behind: bool = False
    write_behind_interval: float = 1.0
    # Key-service escrow-map/log shards (1 = the paper's single queue).
    key_shards: int = 1
    # --- replicated key-service cluster (§ "Improving Availability /
    # Multiple Key Services"; replicas=1 keeps the paper's single
    # service, byte-for-byte).  K_R is secret-shared k-of-m across the
    # replicas; a fetch needs replica_threshold shares, each of which
    # is independently audited.
    replicas: int = 1
    replica_threshold: int = 1
    # Failure-aware client: per-request deadline, hedging delay for
    # lagging replicas, retry budget with exponential backoff + jitter,
    # and health-tracking cooldown for replicas that keep failing.
    replica_deadline: float = 2.0
    replica_hedge_delay: float = 0.75
    replica_max_retries: int = 4
    replica_backoff: float = 0.25
    replica_backoff_cap: float = 4.0
    replica_failure_threshold: int = 2
    replica_cooldown: float = 8.0
    # --- observability: the per-operation context seam (see
    # docs/OBSERVABILITY.md).  All off by default so flags-off runs
    # stay byte-identical with the pre-context tree.
    # Collect per-op trace span trees (keypad-audit trace).
    tracing: bool = False
    # Wall-clock (sim-time) budget per VFS operation; None = unbounded.
    # When set, RPC layers race against it and raise
    # DeadlineExpiredError uniformly.
    op_deadline: Optional[float] = None
    # Extra retry attempts the whole op may spend across all layers
    # (cluster backoff and per-RPC retries draw from one pool);
    # 0 = no explicit budget (each layer's own policy governs).
    op_retry_budget: int = 0
    # --- server-side frontend (fleet scale; see docs/PROTOCOL.md §10).
    # Off by default: without it the key service keeps the paper's
    # infinite-capacity model (every request served on arrival).
    frontend_enabled: bool = False
    # Concurrent server workers (the service's capacity).
    frontend_workers: int = 8
    # Per-device pending-request bound; arrivals beyond it are shed.
    frontend_queue_limit: int = 64
    # 'drr' (deficit-round-robin fair queueing) or 'fifo'.
    frontend_policy: str = "drr"
    # Deadline-based admission control (queue-limit shedding is always on).
    frontend_shed: bool = True
    # Max cross-device group-commit size for key.fetch (1 disables).
    frontend_coalesce: int = 8
    # DRR credit units granted per scheduling round.
    frontend_quantum: int = 1

    def coverage(self) -> Callable[[str], bool]:
        return coverage_for_prefixes(self.protected_prefixes)

    @classmethod
    def builder(cls, base: Optional["KeypadConfig"] = None) -> "KeypadConfigBuilder":
        """One chainable entry point for every feature bundle::

            config = (KeypadConfig.builder()
                      .fast_transport()
                      .replication(k=2, m=3)
                      .tracing(op_deadline=5.0)
                      .frontend(workers=16)
                      .build())

        Replaces the accumulated ``with_*`` methods (kept as delegating
        shims); a builder with no steps builds the exact default config.
        """
        return KeypadConfigBuilder(base if base is not None else cls())

    def frontend_knobs(self) -> dict:
        """The ``install_frontend`` kwargs this config encodes."""
        return {
            "workers": self.frontend_workers,
            "queue_limit": self.frontend_queue_limit,
            "policy": self.frontend_policy,
            "shed": self.frontend_shed,
            "coalesce": self.frontend_coalesce,
            "quantum": self.frontend_quantum,
        }

    # -- legacy one-shot helpers (thin shims over the builder) --------------
    def with_texp(self, texp: float) -> "KeypadConfig":
        return KeypadConfigBuilder(self).texp(texp).build()

    def with_prefetch(self, spec: str) -> "KeypadConfig":
        return KeypadConfigBuilder(self).prefetch(spec).build()

    def with_ibe(self, enabled: bool) -> "KeypadConfig":
        return KeypadConfigBuilder(self).ibe(enabled).build()

    def with_fast_transport(
        self, key_shards: int = 4, max_inflight: int = 32
    ) -> "KeypadConfig":
        """Shim for ``builder().fast_transport(...)`` (see there)."""
        return (
            KeypadConfigBuilder(self)
            .fast_transport(key_shards=key_shards, max_inflight=max_inflight)
            .build()
        )

    def with_tracing(
        self,
        op_deadline: Optional[float] = None,
        op_retry_budget: int = 0,
    ) -> "KeypadConfig":
        """Shim for ``builder().tracing(...)`` (see there)."""
        return (
            KeypadConfigBuilder(self)
            .tracing(op_deadline=op_deadline, op_retry_budget=op_retry_budget)
            .build()
        )

    def with_replication(self, k: int = 2, m: int = 3, **knobs) -> "KeypadConfig":
        """Shim for ``builder().replication(...)`` (see there)."""
        return KeypadConfigBuilder(self).replication(k=k, m=m, **knobs).build()


class KeypadConfigBuilder:
    """Chainable construction of a :class:`KeypadConfig`.

    Each step is a named feature bundle; steps compose in any order and
    later steps override earlier ones (last-write-wins on shared
    fields, like the dataclass ``replace`` calls they compile to).
    ``build()`` returns the frozen config; the builder itself is
    single-use plumbing and never escapes into the rig.
    """

    def __init__(self, base: Optional[KeypadConfig] = None):
        self._config = base if base is not None else KeypadConfig()

    # -- single-knob steps ---------------------------------------------------
    def texp(self, seconds: float) -> "KeypadConfigBuilder":
        self._config = replace(self._config, texp=seconds)
        return self

    def prefetch(self, spec: str) -> "KeypadConfigBuilder":
        self._config = replace(self._config, prefetch=spec)
        return self

    def ibe(self, enabled: bool = True) -> "KeypadConfigBuilder":
        self._config = replace(self._config, ibe_enabled=enabled)
        return self

    # -- feature bundles -----------------------------------------------------
    def fast_transport(
        self, key_shards: int = 4, max_inflight: int = 32
    ) -> "KeypadConfigBuilder":
        """All transport optimisations on (the ablation's 'fast' arm).

        The window default is generous: the seed's serial mode places no
        bound on concurrent calls, so a tight window would *add* queuing
        that the paper's prototype never had.
        """
        self._config = replace(
            self._config,
            pipelining=True,
            max_inflight=max_inflight,
            coalesce_fetches=True,
            write_behind=True,
            key_shards=key_shards,
        )
        return self

    def replication(self, k: int = 2, m: int = 3, **knobs) -> "KeypadConfigBuilder":
        """A k-of-m replicated key-service cluster (default 2-of-3).

        Extra keyword arguments override the ``replica_*`` client knobs
        (deadline, hedging, retries, cooldown).
        """
        if not 1 <= k <= m:
            raise ValueError(f"need 1 <= k <= m, got k={k} m={m}")
        self._config = replace(
            self._config, replicas=m, replica_threshold=k, **knobs
        )
        return self

    def tracing(
        self,
        op_deadline: Optional[float] = None,
        op_retry_budget: int = 0,
    ) -> "KeypadConfigBuilder":
        """Enable trace collection (and optionally op deadlines/budgets)."""
        self._config = replace(
            self._config,
            tracing=True,
            op_deadline=op_deadline,
            op_retry_budget=op_retry_budget,
        )
        return self

    def frontend(
        self,
        workers: int = 8,
        queue_limit: int = 64,
        policy: str = "drr",
        shed: bool = True,
        coalesce: int = 8,
        quantum: int = 1,
    ) -> "KeypadConfigBuilder":
        """Install the server-side scheduler frontend on the rig's key
        service(s): bounded workers, per-device fair queueing, deadline
        admission control, and cross-device group commit (PROTOCOL.md
        §10)."""
        self._config = replace(
            self._config,
            frontend_enabled=True,
            frontend_workers=workers,
            frontend_queue_limit=queue_limit,
            frontend_policy=policy,
            frontend_shed=shed,
            frontend_coalesce=coalesce,
            frontend_quantum=quantum,
        )
        return self

    def build(self) -> KeypadConfig:
        return self._config
