"""Keypad client configuration knobs.

Groups every tunable the evaluation sweeps: key expiration time,
in-flight (IBE-locked) expiration, prefetch policy, whether IBE is
enabled (the paper disables it below ~25 ms RTT), and the partial
coverage domain (§3.6).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional, Sequence

from repro.util.paths import is_ancestor, normalize

__all__ = ["KeypadConfig", "coverage_for_prefixes"]


def coverage_for_prefixes(prefixes: Sequence[str]) -> Callable[[str], bool]:
    """A coverage predicate protecting everything under the prefixes.

    The paper's suggested policy: "track accesses to any file in
    crucial directories, such as the user's home and temporary
    directory (e.g., /home and /tmp on Linux)".
    """
    normalized = [normalize(p) for p in prefixes]

    def predicate(path: str) -> bool:
        path = normalize(path)
        return any(
            root == "/" or root == path or is_ancestor(root, path)
            for root in normalized
        )

    return predicate


@dataclass(frozen=True)
class KeypadConfig:
    """Client-side policy; defaults mirror the prototype's."""

    # Key-cache expiration.  "Experimentally, we find that key
    # expirations as short as 100 seconds reap most of the performance
    # benefit of caching."
    texp: float = 100.0
    # Expiration for keys of files with in-flight metadata updates:
    # "our prototype expires cached keys with in-flight metadata
    # updates in one second."
    texp_inflight: float = 1.0
    # Prefetch policy spec ('none' | 'dir:N' | 'random:K').
    prefetch: str = "dir:3"
    # IBE for metadata updates.  "The crossover for IBE is around 25ms,
    # i.e., it should be used only for networks with RTTs over 25ms."
    ibe_enabled: bool = True
    # Protected-domain prefixes (partial coverage, §3.6).
    protected_prefixes: tuple[str, ...] = ("/",)
    # Background metadata-registration retry cadence.
    registration_retry_delay: float = 5.0
    registration_max_retries: int = 1000
    rekey_interval: float = 100.0
    # --- extensions beyond the paper's prototype ---
    # Asynchronous (non-blocking) directory registration; files created
    # under a not-yet-acked directory stay IBE-locked until the
    # directory ack lands, preserving audit semantics.  (The paper:
    # applying IBE to directory metadata "should be possible to add".)
    ibe_for_directories: bool = False
    # Register extended-attribute updates with the metadata service
    # ("Handling updates for other types of file metadata functions
    # (such as setfattr) works similarly").
    track_xattrs: bool = False
    # --- transport extensions (all off by default so the paper's
    # figures reproduce unchanged; see docs/PROTOCOL.md) ---
    # Protocol-v2 pipelining: multiple in-flight RPCs per channel.
    pipelining: bool = False
    # Bound on concurrently outstanding requests per channel.
    max_inflight: int = 8
    # Single-flight coalescing of concurrent same-audit-ID fetches.
    coalesce_fetches: bool = False
    # Write-behind batching of eviction notices / xattr registrations.
    write_behind: bool = False
    write_behind_interval: float = 1.0
    # Key-service escrow-map/log shards (1 = the paper's single queue).
    key_shards: int = 1
    # --- replicated key-service cluster (§ "Improving Availability /
    # Multiple Key Services"; replicas=1 keeps the paper's single
    # service, byte-for-byte).  K_R is secret-shared k-of-m across the
    # replicas; a fetch needs replica_threshold shares, each of which
    # is independently audited.
    replicas: int = 1
    replica_threshold: int = 1
    # Failure-aware client: per-request deadline, hedging delay for
    # lagging replicas, retry budget with exponential backoff + jitter,
    # and health-tracking cooldown for replicas that keep failing.
    replica_deadline: float = 2.0
    replica_hedge_delay: float = 0.75
    replica_max_retries: int = 4
    replica_backoff: float = 0.25
    replica_backoff_cap: float = 4.0
    replica_failure_threshold: int = 2
    replica_cooldown: float = 8.0
    # --- observability: the per-operation context seam (see
    # docs/OBSERVABILITY.md).  All off by default so flags-off runs
    # stay byte-identical with the pre-context tree.
    # Collect per-op trace span trees (keypad-audit trace).
    tracing: bool = False
    # Wall-clock (sim-time) budget per VFS operation; None = unbounded.
    # When set, RPC layers race against it and raise
    # DeadlineExpiredError uniformly.
    op_deadline: Optional[float] = None
    # Extra retry attempts the whole op may spend across all layers
    # (cluster backoff and per-RPC retries draw from one pool);
    # 0 = no explicit budget (each layer's own policy governs).
    op_retry_budget: int = 0

    def coverage(self) -> Callable[[str], bool]:
        return coverage_for_prefixes(self.protected_prefixes)

    def with_texp(self, texp: float) -> "KeypadConfig":
        return replace(self, texp=texp)

    def with_prefetch(self, spec: str) -> "KeypadConfig":
        return replace(self, prefetch=spec)

    def with_ibe(self, enabled: bool) -> "KeypadConfig":
        return replace(self, ibe_enabled=enabled)

    def with_fast_transport(
        self, key_shards: int = 4, max_inflight: int = 32
    ) -> "KeypadConfig":
        """All transport optimisations on (the ablation's 'fast' arm).

        The window default is generous: the seed's serial mode places no
        bound on concurrent calls, so a tight window would *add* queuing
        that the paper's prototype never had.
        """
        return replace(
            self,
            pipelining=True,
            max_inflight=max_inflight,
            coalesce_fetches=True,
            write_behind=True,
            key_shards=key_shards,
        )

    def with_tracing(
        self,
        op_deadline: Optional[float] = None,
        op_retry_budget: int = 0,
    ) -> "KeypadConfig":
        """Enable trace collection (and optionally op deadlines/budgets)."""
        return replace(
            self,
            tracing=True,
            op_deadline=op_deadline,
            op_retry_budget=op_retry_budget,
        )

    def with_replication(self, k: int = 2, m: int = 3, **knobs) -> "KeypadConfig":
        """A k-of-m replicated key-service cluster (default 2-of-3).

        Extra keyword arguments override the ``replica_*`` client knobs
        (deadline, hedging, retries, cooldown).
        """
        if not 1 <= k <= m:
            raise ValueError(f"need 1 <= k <= m, got k={k} m={m}")
        return replace(self, replicas=m, replica_threshold=k, **knobs)
