"""Keypad client configuration knobs.

Groups every tunable the evaluation sweeps: key expiration time,
in-flight (IBE-locked) expiration, prefetch policy, whether IBE is
enabled (the paper disables it below ~25 ms RTT), and the partial
coverage domain (§3.6).

Two lifecycles, one type.  A :class:`KeypadConfig` is frozen, but since
the live control plane (docs/CONTROL.md) a mounted file system holds it
inside a :class:`PolicyEpoch` — a mount-held cell whose *runtime
mutable* knobs (``RUNTIME_MUTABLE``) the control channel may replace
mid-run, bumping an epoch counter.  Operations snapshot the epoch's
config once (per :class:`~repro.core.context.OpContext`) so a single
VFS op never observes a mix of old and new policy.  Everything outside
``RUNTIME_MUTABLE`` is mount-frozen: :meth:`PolicyEpoch.update`
refuses it with :class:`~repro.errors.ConfigError`, the same uniform
error :meth:`KeypadConfigBuilder.build` raises for contradictory
bundles and that the builder raises for runtime-only control verbs
passed as mount-time knobs.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields, replace
from typing import Any, Callable, Optional, Sequence

from repro.errors import ConfigError
from repro.util.paths import is_ancestor, normalize

__all__ = [
    "KeypadConfig",
    "KeypadConfigBuilder",
    "PolicyEpoch",
    "coverage_for_prefixes",
    "validate_config",
    "RUNTIME_MUTABLE",
]

#: knobs the control channel may change on a live mount.  Everything
#: else is mount-frozen structure (transport mode, replica topology,
#: frontend capacity, storage backend) that would need a remount.
RUNTIME_MUTABLE = frozenset({
    "texp",
    "texp_inflight",
    "prefetch",
    "protected_prefixes",
    "registration_retry_delay",
    "registration_max_retries",
})

#: control verbs that are runtime *actions*, not config fields; naming
#: one as a mount-time knob gets a targeted error instead of a generic
#: unknown-field complaint.
_RUNTIME_VERBS = frozenset({
    "drain", "admit", "revoke", "rotate_secret", "swap_backend",
    "tail_trace",
})


def coverage_for_prefixes(prefixes: Sequence[str]) -> Callable[[str], bool]:
    """A coverage predicate protecting everything under the prefixes.

    The paper's suggested policy: "track accesses to any file in
    crucial directories, such as the user's home and temporary
    directory (e.g., /home and /tmp on Linux)".
    """
    normalized = [normalize(p) for p in prefixes]

    def predicate(path: str) -> bool:
        path = normalize(path)
        return any(
            root == "/" or root == path or is_ancestor(root, path)
            for root in normalized
        )

    return predicate


@dataclass(frozen=True)
class KeypadConfig:
    """Client-side policy; defaults mirror the prototype's."""

    # Key-cache expiration.  "Experimentally, we find that key
    # expirations as short as 100 seconds reap most of the performance
    # benefit of caching."
    texp: float = 100.0
    # Expiration for keys of files with in-flight metadata updates:
    # "our prototype expires cached keys with in-flight metadata
    # updates in one second."
    texp_inflight: float = 1.0
    # Prefetch policy spec ('none' | 'dir:N' | 'random:K').
    prefetch: str = "dir:3"
    # IBE for metadata updates.  "The crossover for IBE is around 25ms,
    # i.e., it should be used only for networks with RTTs over 25ms."
    ibe_enabled: bool = True
    # Protected-domain prefixes (partial coverage, §3.6).
    protected_prefixes: tuple[str, ...] = ("/",)
    # Background metadata-registration retry cadence.
    registration_retry_delay: float = 5.0
    registration_max_retries: int = 1000
    rekey_interval: float = 100.0
    # --- extensions beyond the paper's prototype ---
    # Asynchronous (non-blocking) directory registration; files created
    # under a not-yet-acked directory stay IBE-locked until the
    # directory ack lands, preserving audit semantics.  (The paper:
    # applying IBE to directory metadata "should be possible to add".)
    ibe_for_directories: bool = False
    # Register extended-attribute updates with the metadata service
    # ("Handling updates for other types of file metadata functions
    # (such as setfattr) works similarly").
    track_xattrs: bool = False
    # --- transport extensions (all off by default so the paper's
    # figures reproduce unchanged; see docs/PROTOCOL.md) ---
    # Protocol-v2 pipelining: multiple in-flight RPCs per channel.
    pipelining: bool = False
    # Bound on concurrently outstanding requests per channel.
    max_inflight: int = 8
    # Single-flight coalescing of concurrent same-audit-ID fetches.
    coalesce_fetches: bool = False
    # Write-behind batching of eviction notices / xattr registrations.
    write_behind: bool = False
    write_behind_interval: float = 1.0
    # Key-service escrow-map/log shards (1 = the paper's single queue).
    key_shards: int = 1
    # --- replicated key-service cluster (§ "Improving Availability /
    # Multiple Key Services"; replicas=1 keeps the paper's single
    # service, byte-for-byte).  K_R is secret-shared k-of-m across the
    # replicas; a fetch needs replica_threshold shares, each of which
    # is independently audited.
    replicas: int = 1
    replica_threshold: int = 1
    # Failure-aware client: per-request deadline, hedging delay for
    # lagging replicas, retry budget with exponential backoff + jitter,
    # and health-tracking cooldown for replicas that keep failing.
    replica_deadline: float = 2.0
    replica_hedge_delay: float = 0.75
    replica_max_retries: int = 4
    replica_backoff: float = 0.25
    replica_backoff_cap: float = 4.0
    replica_failure_threshold: int = 2
    replica_cooldown: float = 8.0
    # Multi-region federation: a frozen
    # :class:`~repro.cluster.federation.Topology` (regions,
    # replicas-per-region, k/m, inter-region RTT matrix, gossip/lease
    # knobs).  None (the default) keeps the flat single-service or
    # plain-cluster paths; set it through ``builder().federation(...)``
    # which also aligns ``replicas``/``replica_threshold``.
    federation: Optional[Any] = None
    # --- observability: the per-operation context seam (see
    # docs/OBSERVABILITY.md).  All off by default so flags-off runs
    # stay byte-identical with the pre-context tree.
    # Collect per-op trace span trees (keypad-audit trace).
    tracing: bool = False
    # Wall-clock (sim-time) budget per VFS operation; None = unbounded.
    # When set, RPC layers race against it and raise
    # DeadlineExpiredError uniformly.
    op_deadline: Optional[float] = None
    # Extra retry attempts the whole op may spend across all layers
    # (cluster backoff and per-RPC retries draw from one pool);
    # 0 = no explicit budget (each layer's own policy governs).
    op_retry_budget: int = 0
    # --- server-side frontend (fleet scale; see docs/PROTOCOL.md §10).
    # Off by default: without it the key service keeps the paper's
    # infinite-capacity model (every request served on arrival).
    frontend_enabled: bool = False
    # Concurrent server workers (the service's capacity).
    frontend_workers: int = 8
    # Per-device pending-request bound; arrivals beyond it are shed.
    frontend_queue_limit: int = 64
    # 'drr' (deficit-round-robin fair queueing) or 'fifo'.
    frontend_policy: str = "drr"
    # Deadline-based admission control (queue-limit shedding is always on).
    frontend_shed: bool = True
    # Max cross-device group-commit size for key.fetch (1 disables).
    frontend_coalesce: int = 8
    # DRR credit units granted per scheduling round.
    frontend_quantum: int = 1
    # --- storage backend (see repro.storage.backend).  'ext3' keeps
    # the paper's BlockDevice -> BufferCache -> LocalFileSystem stack
    # byte for byte; 'memory' and 'cas' are opt-in alternatives.
    storage_backend: str = "ext3"
    # --- audit store (see repro.auditstore / docs/AUDITSTORE.md).
    # 'flat' keeps the paper's single AppendOnlyLog per replica;
    # 'segmented' is the event-sourced store with seal-chained
    # segments and materialized forensic views.  Mount-frozen: the
    # store holds the durable audit trail, so it cannot be swapped
    # under a live mount.
    audit_store: str = "flat"
    # Records per segment before the active segment is sealed.
    audit_segment_entries: int = 1024
    # Compact segments to their packed form as soon as they seal.
    audit_auto_compact: bool = True
    # Persist the audit store through the storage backend's blob
    # namespace (segmented only): sealed segments spill as write-once
    # blobs and the active tail group-commits on the flush policy.
    # Mount-frozen, like the store itself.
    audit_durable: bool = False
    # 'every-append' | 'every-seal' | 'every-n' (see docs/AUDITSTORE.md).
    audit_flush_policy: str = "every-seal"
    # Appends between tail flushes under 'every-n'.
    audit_flush_every: int = 64
    # Appends between automatic view checkpoints (0 = manual only,
    # via ctl.audit_checkpoint).
    audit_checkpoint_every: int = 0

    def coverage(self) -> Callable[[str], bool]:
        return coverage_for_prefixes(self.protected_prefixes)

    @classmethod
    def builder(cls, base: Optional["KeypadConfig"] = None) -> "KeypadConfigBuilder":
        """One chainable entry point for every feature bundle::

            config = (KeypadConfig.builder()
                      .fast_transport()
                      .replication(k=2, m=3)
                      .tracing(op_deadline=5.0)
                      .frontend(workers=16)
                      .build())

        Replaces the accumulated ``with_*`` methods (kept as delegating
        shims); a builder with no steps builds the exact default config.
        """
        return KeypadConfigBuilder(base if base is not None else cls())

    def frontend_knobs(self) -> dict:
        """The ``install_frontend`` kwargs this config encodes."""
        return {
            "workers": self.frontend_workers,
            "queue_limit": self.frontend_queue_limit,
            "policy": self.frontend_policy,
            "shed": self.frontend_shed,
            "coalesce": self.frontend_coalesce,
            "quantum": self.frontend_quantum,
        }

    # -- legacy one-shot helpers (thin shims over the builder) --------------
    def with_texp(self, texp: float) -> "KeypadConfig":
        return KeypadConfigBuilder(self).texp(texp).build()

    def with_prefetch(self, spec: str) -> "KeypadConfig":
        return KeypadConfigBuilder(self).prefetch(spec).build()

    def with_ibe(self, enabled: bool) -> "KeypadConfig":
        return KeypadConfigBuilder(self).ibe(enabled).build()

    def with_fast_transport(
        self, key_shards: int = 4, max_inflight: int = 32
    ) -> "KeypadConfig":
        """Shim for ``builder().fast_transport(...)`` (see there)."""
        return (
            KeypadConfigBuilder(self)
            .fast_transport(key_shards=key_shards, max_inflight=max_inflight)
            .build()
        )

    def with_tracing(
        self,
        op_deadline: Optional[float] = None,
        op_retry_budget: int = 0,
    ) -> "KeypadConfig":
        """Shim for ``builder().tracing(...)`` (see there)."""
        return (
            KeypadConfigBuilder(self)
            .tracing(op_deadline=op_deadline, op_retry_budget=op_retry_budget)
            .build()
        )

    def with_replication(self, k: int = 2, m: int = 3, **knobs) -> "KeypadConfig":
        """Deprecated shim for ``builder().replication(...)``.

        The ad-hoc ``ReplicaGroup`` entry point predates the topology
        API; new code should chain ``KeypadConfig.builder()
        .replication(...)`` — or ``.federation(...)`` for a
        multi-region cluster.
        """
        warnings.warn(
            "KeypadConfig.with_replication() is deprecated; use "
            "KeypadConfig.builder().replication(...) — or "
            ".federation(...) for a multi-region topology",
            DeprecationWarning,
            stacklevel=2,
        )
        return KeypadConfigBuilder(self).replication(k=k, m=m, **knobs).build()


class KeypadConfigBuilder:
    """Chainable construction of a :class:`KeypadConfig`.

    Each step is a named feature bundle; steps compose in any order and
    later steps override earlier ones (last-write-wins on shared
    fields, like the dataclass ``replace`` calls they compile to).
    ``build()`` returns the frozen config; the builder itself is
    single-use plumbing and never escapes into the rig.
    """

    def __init__(self, base: Optional[KeypadConfig] = None):
        self._config = base if base is not None else KeypadConfig()

    # -- single-knob steps ---------------------------------------------------
    def texp(self, seconds: float) -> "KeypadConfigBuilder":
        self._config = replace(self._config, texp=seconds)
        return self

    def prefetch(self, spec: str) -> "KeypadConfigBuilder":
        self._config = replace(self._config, prefetch=spec)
        return self

    def ibe(self, enabled: bool = True) -> "KeypadConfigBuilder":
        self._config = replace(self._config, ibe_enabled=enabled)
        return self

    # -- feature bundles -----------------------------------------------------
    def fast_transport(
        self, key_shards: int = 4, max_inflight: int = 32
    ) -> "KeypadConfigBuilder":
        """All transport optimisations on (the ablation's 'fast' arm).

        The window default is generous: the seed's serial mode places no
        bound on concurrent calls, so a tight window would *add* queuing
        that the paper's prototype never had.
        """
        self._config = replace(
            self._config,
            pipelining=True,
            max_inflight=max_inflight,
            coalesce_fetches=True,
            write_behind=True,
            key_shards=key_shards,
        )
        return self

    def replication(self, k: int = 2, m: int = 3, **knobs) -> "KeypadConfigBuilder":
        """A k-of-m replicated key-service cluster (default 2-of-3).

        Extra keyword arguments override the ``replica_*`` client knobs
        (deadline, hedging, retries, cooldown) — and *only* those.
        Historically this escape hatch forwarded anything to the
        dataclass, so ``.frontend(...).replication(..., frontend_enabled=
        False)`` silently undid an earlier bundle depending on call
        order; now a non-``replica_*`` name raises
        :class:`~repro.errors.ConfigError` immediately.
        """
        if not 1 <= k <= m:
            raise ConfigError(
                f"need 1 <= k <= m, got k={k} m={m}"
            )
        for name in knobs:
            _reject_runtime_verb(name)
            if not name.startswith("replica_"):
                raise ConfigError(
                    f"replication() only takes replica_* knobs, got "
                    f"{name!r} (set it through its own bundle so "
                    "bundle order cannot silently override it)"
                )
        self._config = replace(
            self._config, replicas=m, replica_threshold=k, **knobs
        )
        return self

    def federation(
        self,
        topology: Optional[Any] = None,
        regions: Sequence[str] | int = 3,
        replicas_per_region: int = 2,
        k: int = 2,
        rtt_ms: float = 80.0,
        **knobs,
    ) -> "KeypadConfigBuilder":
        """A multi-region federated key-service cluster.

        Pass a ready :class:`~repro.cluster.federation.Topology`, or
        let the bundle build a symmetric one from ``regions`` /
        ``replicas_per_region`` / ``k`` / ``rtt_ms``.  The bundle also
        sets ``replicas`` and ``replica_threshold`` from the topology,
        so the cluster knobs can never disagree with the region shape.
        Extra keyword arguments are restricted to the ``replica_*``
        client knobs, exactly like :meth:`replication`.
        """
        from repro.cluster.federation import Topology

        if topology is None:
            topology = Topology.symmetric(
                regions=regions,
                replicas_per_region=replicas_per_region,
                threshold=k,
                rtt_ms=rtt_ms,
            )
        for name in knobs:
            _reject_runtime_verb(name)
            if not name.startswith("replica_"):
                raise ConfigError(
                    f"federation() only takes replica_* knobs, got "
                    f"{name!r} (set it through its own bundle so "
                    "bundle order cannot silently override it)"
                )
        try:
            topology.validate()
        except ValueError as exc:
            raise ConfigError(f"invalid federation topology: {exc}") from exc
        self._config = replace(
            self._config,
            federation=topology,
            replicas=topology.total_replicas,
            replica_threshold=topology.threshold,
            **knobs,
        )
        return self

    def storage(self, backend: str = "ext3") -> "KeypadConfigBuilder":
        """Select the lower storage backend (see repro.storage.backend):
        ``'ext3'`` (the default block-device stack), ``'memory'``
        (zero-I/O ideal store), or ``'cas'`` (content-addressed,
        deduplicating)."""
        self._config = replace(self._config, storage_backend=backend)
        return self

    def audit_store(
        self,
        store: str = "segmented",
        segment_entries: int = 1024,
        auto_compact: bool = True,
        durable: bool = False,
        flush_policy: str = "every-seal",
        flush_every: int = 64,
        checkpoint_every: int = 0,
    ) -> "KeypadConfigBuilder":
        """Select the audit-store engine (see docs/AUDITSTORE.md):
        ``'flat'`` (the paper's append-only log, the default) or
        ``'segmented'`` (event-sourced segments + materialized forensic
        views).  ``durable=True`` (segmented only) spills the store
        through the storage backend's blob namespace and enables crash
        recovery; ``flush_policy``/``flush_every`` set the group-commit
        cadence and ``checkpoint_every`` the automatic view-checkpoint
        interval."""
        self._config = replace(
            self._config,
            audit_store=store,
            audit_segment_entries=segment_entries,
            audit_auto_compact=auto_compact,
            audit_durable=durable,
            audit_flush_policy=flush_policy,
            audit_flush_every=flush_every,
            audit_checkpoint_every=checkpoint_every,
        )
        return self

    def tracing(
        self,
        op_deadline: Optional[float] = None,
        op_retry_budget: int = 0,
    ) -> "KeypadConfigBuilder":
        """Enable trace collection (and optionally op deadlines/budgets)."""
        self._config = replace(
            self._config,
            tracing=True,
            op_deadline=op_deadline,
            op_retry_budget=op_retry_budget,
        )
        return self

    def frontend(
        self,
        workers: int = 8,
        queue_limit: int = 64,
        policy: str = "drr",
        shed: bool = True,
        coalesce: int = 8,
        quantum: int = 1,
    ) -> "KeypadConfigBuilder":
        """Install the server-side scheduler frontend on the rig's key
        service(s): bounded workers, per-device fair queueing, deadline
        admission control, and cross-device group commit (PROTOCOL.md
        §10)."""
        self._config = replace(
            self._config,
            frontend_enabled=True,
            frontend_workers=workers,
            frontend_queue_limit=queue_limit,
            frontend_policy=policy,
            frontend_shed=shed,
            frontend_coalesce=coalesce,
            frontend_quantum=quantum,
        )
        return self

    def build(self) -> KeypadConfig:
        """Validate the accumulated bundles once and return the config.

        Cross-feature constraints live here (and nowhere else) so every
        construction order hits the same checks; a contradictory
        combination raises :class:`~repro.errors.ConfigError`.
        """
        validate_config(self._config)
        return self._config


def _reject_runtime_verb(name: str) -> None:
    if name in _RUNTIME_VERBS:
        raise ConfigError(
            f"{name!r} is a runtime control verb (see docs/CONTROL.md), "
            "not a mount-time knob; issue it through a ControlClient on "
            "the live mount instead"
        )


def _positive(config: KeypadConfig, name: str) -> None:
    value = getattr(config, name)
    if not value > 0:
        raise ConfigError(f"{name} must be > 0, got {value!r}")


def validate_config(config: KeypadConfig) -> KeypadConfig:
    """Cross-feature validation shared by ``build()`` and mount.

    Raises :class:`~repro.errors.ConfigError` (the one uniform type)
    on any contradiction; returns the config unchanged otherwise so
    call sites can chain it.
    """
    for name in ("texp_inflight", "rekey_interval",
                 "registration_retry_delay", "write_behind_interval",
                 "replica_deadline", "replica_backoff",
                 "replica_backoff_cap", "replica_cooldown"):
        _positive(config, name)
    # texp=0.0 is the paper's no-caching arm ("unoptimized"), so zero
    # is meaningful; only negatives are contradictions.
    if config.texp < 0:
        raise ConfigError(f"texp must be >= 0 (0 disables caching), "
                          f"got {config.texp!r}")
    if config.texp > 0 and config.texp_inflight > config.texp:
        raise ConfigError(
            f"texp_inflight ({config.texp_inflight}) must not exceed "
            f"texp ({config.texp}): the in-flight window is a "
            "*restriction* of the full expiration"
        )
    if config.registration_max_retries < 1:
        raise ConfigError("registration_max_retries must be >= 1")
    if config.max_inflight < 1:
        raise ConfigError("max_inflight must be >= 1")
    if config.key_shards < 1:
        raise ConfigError("key_shards must be >= 1")
    if not 1 <= config.replica_threshold <= config.replicas:
        raise ConfigError(
            f"need 1 <= threshold <= replicas, got "
            f"threshold={config.replica_threshold} "
            f"replicas={config.replicas}"
        )
    if config.federation is not None:
        # Lazy import: flags-off configs never touch the cluster pkg.
        from repro.cluster.federation import Topology

        if not isinstance(config.federation, Topology):
            raise ConfigError(
                "federation must be a repro.cluster.federation.Topology "
                f"(got {type(config.federation).__name__}); build it "
                "through KeypadConfig.builder().federation(...)"
            )
        try:
            config.federation.validate()
        except ValueError as exc:
            raise ConfigError(
                f"invalid federation topology: {exc}"
            ) from exc
        if (config.replicas != config.federation.total_replicas
                or config.replica_threshold != config.federation.threshold):
            raise ConfigError(
                "federation topology disagrees with replicas/"
                f"replica_threshold ({config.federation.total_replicas}/"
                f"{config.federation.threshold} vs {config.replicas}/"
                f"{config.replica_threshold}); set both through "
                "builder().federation(...)"
            )
    if config.replica_max_retries < 0:
        raise ConfigError("replica_max_retries must be >= 0")
    if config.replica_failure_threshold < 1:
        raise ConfigError("replica_failure_threshold must be >= 1")
    if config.op_deadline is not None and not config.op_deadline > 0:
        raise ConfigError(f"op_deadline must be > 0 or None, "
                          f"got {config.op_deadline!r}")
    if config.op_retry_budget < 0:
        raise ConfigError("op_retry_budget must be >= 0")
    if config.frontend_policy not in ("drr", "fifo"):
        raise ConfigError(
            f"frontend_policy must be 'drr' or 'fifo', "
            f"got {config.frontend_policy!r}"
        )
    for name in ("frontend_workers", "frontend_queue_limit",
                 "frontend_coalesce", "frontend_quantum"):
        if getattr(config, name) < 1:
            raise ConfigError(f"{name} must be >= 1")
    if not config.protected_prefixes:
        raise ConfigError(
            "protected_prefixes must not be empty — use an unprotected "
            "baseline rig (build_encfs_rig) to disable Keypad coverage"
        )
    from repro.core.prefetch import make_policy

    try:
        make_policy(config.prefetch)
    except Exception as exc:
        raise ConfigError(
            f"bad prefetch spec {config.prefetch!r}: {exc}"
        ) from None
    from repro.storage.backend import BACKENDS

    if config.storage_backend not in BACKENDS:
        raise ConfigError(
            f"unknown storage backend {config.storage_backend!r}; "
            f"choose one of {sorted(BACKENDS)}"
        )
    if config.audit_store not in ("flat", "segmented"):
        raise ConfigError(
            f"audit_store must be 'flat' or 'segmented', "
            f"got {config.audit_store!r}"
        )
    if config.audit_segment_entries < 2:
        raise ConfigError(
            f"audit_segment_entries must be >= 2, "
            f"got {config.audit_segment_entries!r}"
        )
    if config.audit_durable and config.audit_store != "segmented":
        raise ConfigError(
            "audit_durable=True requires audit_store='segmented' "
            f"(got {config.audit_store!r})"
        )
    if config.audit_flush_policy not in (
        "every-append", "every-seal", "every-n"
    ):
        raise ConfigError(
            f"audit_flush_policy must be 'every-append', 'every-seal', "
            f"or 'every-n', got {config.audit_flush_policy!r}"
        )
    if config.audit_flush_every < 1:
        raise ConfigError(
            f"audit_flush_every must be >= 1, "
            f"got {config.audit_flush_every!r}"
        )
    if config.audit_checkpoint_every < 0:
        raise ConfigError(
            f"audit_checkpoint_every must be >= 0, "
            f"got {config.audit_checkpoint_every!r}"
        )
    return config


class PolicyEpoch:
    """The mount-held policy cell: a frozen config plus an epoch counter.

    A mounted :class:`~repro.core.fs.KeypadFS` reads its knobs through
    one of these instead of a frozen global.  The control channel calls
    :meth:`update` to replace the runtime-mutable subset atomically;
    each update bumps ``epoch`` and notifies subscribers (the FS uses
    this to re-target the key cache and rebuild the prefetch policy).
    Operations call :meth:`snapshot` once at entry, so one VFS op never
    mixes two epochs' knobs.
    """

    def __init__(self, config: KeypadConfig):
        self._config = validate_config(config)
        self.epoch = 0
        self._coverage = config.coverage()
        self._subscribers: list[Callable[[KeypadConfig, KeypadConfig], None]] = []

    # -- reads ---------------------------------------------------------------
    @property
    def config(self) -> KeypadConfig:
        return self._config

    def snapshot(self) -> KeypadConfig:
        """The per-op snapshot (frozen, so sharing the object is safe)."""
        return self._config

    def coverage(self, path: str) -> bool:
        """Protected-domain test against the *current* epoch (cached
        per epoch: rebuilding the predicate per call would make every
        VFS op pay for a control-plane feature that is off)."""
        return self._coverage(path)

    def subscribe(
        self, fn: Callable[[KeypadConfig, KeypadConfig], None]
    ) -> None:
        """Register ``fn(old_config, new_config)`` for epoch changes."""
        self._subscribers.append(fn)

    # -- writes --------------------------------------------------------------
    def update(self, **changes: Any) -> KeypadConfig:
        """Replace runtime-mutable knobs; one atomic epoch bump.

        Raises :class:`~repro.errors.ConfigError` for unknown fields,
        mount-frozen fields, or a resulting config that fails
        cross-validation.  Returns the new config.
        """
        known = {f.name for f in fields(KeypadConfig)}
        for name in changes:
            if name not in known:
                _reject_runtime_verb(name)
                raise ConfigError(f"unknown config field {name!r}")
            if name not in RUNTIME_MUTABLE:
                raise ConfigError(
                    f"{name!r} is mount-frozen; changing it needs a "
                    "remount (runtime-mutable knobs: "
                    f"{sorted(RUNTIME_MUTABLE)})"
                )
        if "protected_prefixes" in changes:
            changes["protected_prefixes"] = tuple(
                changes["protected_prefixes"]
            )
        return self._install(replace(self._config, **changes))

    def replace_config(self, config: KeypadConfig) -> KeypadConfig:
        """Wholesale replacement (test/diagnostic seam — e.g. the
        deadline-invariant suite flips ``op_deadline`` between runs).
        Still validated; mount-frozen fields are the caller's risk."""
        return self._install(config)

    def _install(self, new: KeypadConfig) -> KeypadConfig:
        validate_config(new)
        old, self._config = self._config, new
        self.epoch += 1
        if new.protected_prefixes != old.protected_prefixes:
            self._coverage = new.coverage()
        for fn in self._subscribers:
            fn(old, new)
        return new
