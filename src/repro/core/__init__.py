"""Keypad — the paper's primary contribution.

The auditing file system (:class:`KeypadFS`), its key cache and
prefetcher, the remote audit services, the paired-device extension, and
the client configuration.
"""

from repro.core.context import OpContext, Span, TraceCollector
from repro.core.client import (
    DeviceServices,
    DirRegistration,
    EvictionNotice,
    FileRegistration,
    IbeRegistration,
    KeyCreate,
    KeyFetch,
    KeyUpload,
    ServiceSession,
    XattrRegistration,
)
from repro.core.fs import KeypadFS
from repro.core.header import (
    KEYPAD_HEADER_LEN,
    KeypadHeader,
    pack_header,
    parse_header,
    unwrap_data_key,
    wrap_data_key,
)
from repro.core.keycache import CacheEntry, KeyCache
from repro.core.launchprofile import LaunchProfiler
from repro.core.paired import PairedPhone, PhoneProxy
from repro.core.policy import KeypadConfig, coverage_for_prefixes
from repro.core.prefetch import (
    DirectoryPrefetch,
    NoPrefetch,
    PrefetchPolicy,
    RandomPrefetch,
    make_policy,
)
from repro.core.services import (
    AUDIT_ID_LEN,
    ROOT_DIR_ID,
    KeyService,
    MetadataService,
    identity_string,
)

__all__ = [
    "KeypadFS",
    "KeypadConfig",
    "OpContext",
    "Span",
    "TraceCollector",
    "coverage_for_prefixes",
    "DeviceServices",
    "ServiceSession",
    "KeyFetch",
    "KeyCreate",
    "KeyUpload",
    "FileRegistration",
    "DirRegistration",
    "IbeRegistration",
    "XattrRegistration",
    "EvictionNotice",
    "KeyService",
    "MetadataService",
    "KeyCache",
    "CacheEntry",
    "LaunchProfiler",
    "PairedPhone",
    "PhoneProxy",
    "PrefetchPolicy",
    "NoPrefetch",
    "DirectoryPrefetch",
    "RandomPrefetch",
    "make_policy",
    "KeypadHeader",
    "pack_header",
    "parse_header",
    "wrap_data_key",
    "unwrap_data_key",
    "KEYPAD_HEADER_LEN",
    "AUDIT_ID_LEN",
    "ROOT_DIR_ID",
    "identity_string",
]
