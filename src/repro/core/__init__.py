"""Keypad — the paper's primary contribution.

The auditing file system (:class:`KeypadFS`), its key cache and
prefetcher, the remote audit services, the paired-device extension, and
the client configuration.

.. deprecated::
    Importing names from ``repro.core`` directly is deprecated; the
    stable public surface is :mod:`repro.api` (or the defining
    submodule, for internals).  Every historical name still resolves —
    lazily, with a :class:`DeprecationWarning` — so existing scripts
    keep working unchanged.
"""

from __future__ import annotations

import importlib
import warnings

#: every name the package ever re-exported, mapped to its home module.
_EXPORTS = {
    "OpContext": "repro.core.context",
    "Span": "repro.core.context",
    "TraceCollector": "repro.core.context",
    "DeviceServices": "repro.core.client",
    "DirRegistration": "repro.core.client",
    "EvictionNotice": "repro.core.client",
    "FileRegistration": "repro.core.client",
    "IbeRegistration": "repro.core.client",
    "KeyCreate": "repro.core.client",
    "KeyFetch": "repro.core.client",
    "KeyUpload": "repro.core.client",
    "ServiceSession": "repro.core.client",
    "XattrRegistration": "repro.core.client",
    "KeypadFS": "repro.core.fs",
    "KEYPAD_HEADER_LEN": "repro.core.header",
    "KeypadHeader": "repro.core.header",
    "pack_header": "repro.core.header",
    "parse_header": "repro.core.header",
    "unwrap_data_key": "repro.core.header",
    "wrap_data_key": "repro.core.header",
    "CacheEntry": "repro.core.keycache",
    "KeyCache": "repro.core.keycache",
    "LaunchProfiler": "repro.core.launchprofile",
    "PairedPhone": "repro.core.paired",
    "PhoneProxy": "repro.core.paired",
    "KeypadConfig": "repro.core.policy",
    "KeypadConfigBuilder": "repro.core.policy",
    "coverage_for_prefixes": "repro.core.policy",
    "DirectoryPrefetch": "repro.core.prefetch",
    "NoPrefetch": "repro.core.prefetch",
    "PrefetchPolicy": "repro.core.prefetch",
    "RandomPrefetch": "repro.core.prefetch",
    "make_policy": "repro.core.prefetch",
    "AUDIT_ID_LEN": "repro.core.services",
    "ROOT_DIR_ID": "repro.core.services",
    "KeyService": "repro.core.services",
    "MetadataService": "repro.core.services",
    "identity_string": "repro.core.services",
}

__all__ = [
    "KeypadFS",
    "KeypadConfig",
    "KeypadConfigBuilder",
    "OpContext",
    "Span",
    "TraceCollector",
    "coverage_for_prefixes",
    "DeviceServices",
    "ServiceSession",
    "KeyFetch",
    "KeyCreate",
    "KeyUpload",
    "FileRegistration",
    "DirRegistration",
    "IbeRegistration",
    "XattrRegistration",
    "EvictionNotice",
    "KeyService",
    "MetadataService",
    "KeyCache",
    "CacheEntry",
    "LaunchProfiler",
    "PairedPhone",
    "PhoneProxy",
    "PrefetchPolicy",
    "NoPrefetch",
    "DirectoryPrefetch",
    "RandomPrefetch",
    "make_policy",
    "KeypadHeader",
    "pack_header",
    "parse_header",
    "wrap_data_key",
    "unwrap_data_key",
    "KEYPAD_HEADER_LEN",
    "AUDIT_ID_LEN",
    "ROOT_DIR_ID",
    "identity_string",
]


def __getattr__(name: str):
    home = _EXPORTS.get(name)
    if home is None:
        raise AttributeError(
            f"module 'repro.core' has no attribute {name!r}"
        )
    warnings.warn(
        f"importing {name!r} from 'repro.core' is deprecated; import it "
        f"from 'repro.api' (the stable facade) or from '{home}'",
        DeprecationWarning,
        stacklevel=2,
    )
    # Deliberately not cached in globals(): each use warns, so stale
    # imports stay visible instead of going quiet after the first hit.
    return getattr(importlib.import_module(home), name)


def __dir__() -> list[str]:
    return sorted(set(list(globals()) + __all__))
