"""Application-launch key profiling (§5.1.2 extension).

The paper observes that "application launches are particularly
expensive over 3G networks, as they often encounter a cold cache and
many file system interactions. Keypad could optimize launch by
profiling applications and prefetching needed keys; other file
systems, such as NTFS, perform similar special-case optimizations."

This module implements that optimization: record the set of protected
files an application touches during a launch, then — on later launches
— batch-prefetch all of their keys in a single request before the app
starts faulting them in one by one.

Audit impact: profile prefetches are logged like any other prefetch
(kind="profile-prefetch"); false positives are bounded by the profile
(files the app touched on *some* launch), mirroring the directory
prefetcher's locality argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["LaunchProfiler"]


@dataclass
class LaunchProfiler:
    """Records per-application launch working sets (by path)."""

    max_profile_size: int = 512
    _profiles: dict[str, list[str]] = field(default_factory=dict)
    _recording: Optional[str] = None
    _current: list[str] = field(default_factory=list)

    # -- recording ---------------------------------------------------------
    def begin(self, app: str) -> None:
        if self._recording is not None:
            raise ValueError(
                f"already recording a profile for {self._recording!r}"
            )
        self._recording = app
        self._current = []

    def note_access(self, path: str) -> None:
        """Called by the FS on every protected content-key resolution."""
        if self._recording is None:
            return
        if path not in self._current and len(self._current) < self.max_profile_size:
            self._current.append(path)

    def end(self) -> list[str]:
        if self._recording is None:
            raise ValueError("no profile recording in progress")
        app, self._recording = self._recording, None
        profile, self._current = self._current, []
        self._profiles[app] = profile
        return profile

    @property
    def recording(self) -> Optional[str]:
        return self._recording

    # -- lookup ------------------------------------------------------------
    def profile_for(self, app: str) -> list[str]:
        return list(self._profiles.get(app, ()))

    def known_apps(self) -> list[str]:
        return sorted(self._profiles)

    def forget(self, app: str) -> None:
        self._profiles.pop(app, None)
