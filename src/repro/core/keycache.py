"""The device-side encryption-key cache (§3.3, §4 "Key Expiration").

Semantics from the paper:

* keys live for ``Texp`` seconds, then a background thread purges them;
* if a key was *reused* during its lifetime, the purge thread re-fetches
  it from the key service — producing a fresh audit record — and, if
  the response arrives in time, extends the entry ("absent network
  failures, keys in Keypad never expire while in use");
* keys for files with in-flight metadata updates get a much shorter
  lifetime (1 s) to shrink the attack window;
* everything cached at ``Tloss`` must be assumed compromised, so the
  cache tracks its own occupancy statistics (time-weighted average and
  peak) — the quantity plotted in Figure 11.

Eviction "securely erases" the key material (we overwrite the buffers;
in-simulation this is what makes an attacker memory snapshot miss it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, Optional

from repro.errors import KeypadError, NetworkUnavailableError
from repro.sim import Simulation

__all__ = ["KeyCache", "CacheEntry"]


@dataclass
class CacheEntry:
    audit_id: bytes
    remote_key: bytes
    data_key: bytes
    texp: float
    expires_at: float
    inserted_at: float
    prefetched: bool = False
    used_since_refresh: bool = False
    generation: int = 0
    fetch_count: int = 1
    # In-flight (IBE-locked) keys must NOT refresh: their short fuse is
    # the attack-window bound ("After the cached key times out, the
    # file is essentially 'locked' on disk").
    refreshable: bool = True

    def erase(self) -> None:
        """Secure erase: overwrite key material before dropping."""
        self.remote_key = b"\x00" * len(self.remote_key)
        self.data_key = b"\x00" * len(self.data_key)


@dataclass
class _Occupancy:
    """Time-weighted cache-size accounting for Figure 11."""

    integral: float = 0.0
    last_change: float = 0.0
    current: int = 0
    peak: int = 0
    samples: list[tuple[float, int]] = field(default_factory=list)

    def update(self, now: float, new_size: int) -> None:
        self.integral += self.current * (now - self.last_change)
        self.last_change = now
        self.current = new_size
        self.peak = max(self.peak, new_size)
        self.samples.append((now, new_size))

    def average(self, now: float) -> float:
        total = self.integral + self.current * (now - self.last_change)
        return total / now if now > 0 else 0.0


class KeyCache:
    """Expiring cache of (K_R, K_D) pairs keyed by audit ID."""

    def __init__(
        self,
        sim: Simulation,
        refresh_fn: Optional[Callable[..., Generator]] = None,
        refresh_lead: float = 2.0,
        on_evict: Optional[Callable[[bytes, str], None]] = None,
        tracer=None,
    ):
        self.sim = sim
        # refresh_fn(audit_id, ctx=None) -> generator returning the new
        # K_R, or raising; wired to the device's key-service client.
        self.refresh_fn = refresh_fn
        # Optional TraceCollector: in-use refreshes run outside any VFS
        # op, so the cache mints their background contexts itself.
        self.tracer = tracer
        # on_evict(audit_id, reason): synchronous hook fired when the
        # purge thread expires an entry (§6 asks for evictions to be
        # recorded on the audit servers; the session's write-behind
        # queue carries the notice without blocking the purge).
        self.on_evict = on_evict
        # The purge thread starts an in-use refresh this long before
        # expiry, so the response normally "arrives before the key
        # expires" and long accesses (movie playback) never hiccup.
        self.refresh_lead = refresh_lead
        self._entries: dict[bytes, CacheEntry] = {}
        # Monotonic watcher-generation counter: generations are never
        # reused across entries, so a watcher armed for an evicted
        # entry can never act on its successor under the same ID.
        self._generation_seq = 0
        self.occupancy = _Occupancy()
        self.hits = 0
        self.misses = 0
        self.refreshes = 0
        self.expirations = 0

    # -- queries ----------------------------------------------------------
    def get(self, audit_id: bytes, mark_used: bool = True,
            ctx=None) -> Optional[CacheEntry]:
        """Look up a live entry, tagging the hit/miss on ``ctx``."""
        entry = self._entries.get(audit_id)
        if entry is None or entry.expires_at <= self.sim.now:
            self.misses += 1
            if ctx is not None and ctx.traced:
                ctx.event("keycache.miss", audit_id=audit_id.hex()[:8])
            return None
        self.hits += 1
        if ctx is not None and ctx.traced:
            ctx.event("keycache.hit", audit_id=audit_id.hex()[:8])
        if mark_used:
            entry.used_since_refresh = True
        return entry

    def peek(self, audit_id: bytes) -> Optional[CacheEntry]:
        return self._entries.get(audit_id)

    def __len__(self) -> int:
        return len(self._entries)

    def _next_generation(self) -> int:
        self._generation_seq += 1
        return self._generation_seq

    # -- mutation ------------------------------------------------------------
    def put(
        self,
        audit_id: bytes,
        remote_key: bytes,
        data_key: bytes,
        texp: float,
        prefetched: bool = False,
        refreshable: bool = True,
    ) -> CacheEntry:
        existing = self._entries.get(audit_id)
        if existing is not None:
            existing.generation = self._next_generation()
            existing.remote_key = remote_key
            existing.data_key = data_key
            existing.texp = texp
            existing.expires_at = self.sim.now + texp
            existing.used_since_refresh = False
            existing.fetch_count += 1
            existing.refreshable = refreshable
            self._watch(existing)
            return existing
        entry = CacheEntry(
            audit_id=audit_id,
            remote_key=remote_key,
            data_key=data_key,
            texp=texp,
            expires_at=self.sim.now + texp,
            inserted_at=self.sim.now,
            prefetched=prefetched,
            refreshable=refreshable,
            generation=self._next_generation(),
        )
        self._entries[audit_id] = entry
        self.occupancy.update(self.sim.now, len(self._entries))
        self._watch(entry)
        return entry

    def extend(self, audit_id: bytes, texp: float) -> None:
        """Reset an entry's lifetime (after unlock / refresh)."""
        entry = self._entries.get(audit_id)
        if entry is None:
            return
        entry.generation = self._next_generation()
        entry.texp = texp
        entry.expires_at = self.sim.now + texp
        entry.used_since_refresh = False
        entry.refreshable = True
        self._watch(entry)

    def restrict(self, audit_id: bytes, max_remaining: float) -> None:
        """Shorten an entry's remaining life (in-flight metadata window).

        "Because files with metadata updates in flight are vulnerable
        to attacks, we reduce the key expiration time for such files to
        the bare minimum."  Never lengthens the entry.
        """
        entry = self._entries.get(audit_id)
        if entry is None:
            return
        entry.refreshable = False
        new_expiry = self.sim.now + max_remaining
        if new_expiry < entry.expires_at:
            entry.generation = self._next_generation()
            entry.expires_at = new_expiry
            entry.texp = max_remaining
            self._watch(entry)

    def retarget_texp(self, new_texp: float) -> int:
        """Apply a live Texp change (control channel) to resident keys.

        Refreshable entries adopt the new lifetime; when the change
        *shortens* their remaining life the expiry moves earlier at
        once (a tighter Texp must bound the attack window immediately),
        while a lengthened Texp only applies from the next
        fetch/refresh — in-place extension would grant lifetime no
        audited fetch ever vouched for.  Unrefreshable (in-flight
        IBE-locked) entries keep their short fuse untouched.  Returns
        the number of entries whose expiry was shortened.
        """
        if new_texp <= 0:
            # Caching disabled mid-run: erase everything now.
            count = len(self._entries)
            for audit_id in list(self._entries):
                self.expirations += 1
                self.evict(audit_id)
                if self.on_evict is not None:
                    self.on_evict(audit_id, "texp-retarget")
            return count
        shortened = 0
        for entry in self._entries.values():
            if not entry.refreshable:
                continue
            entry.texp = new_texp
            new_expiry = self.sim.now + new_texp
            if new_expiry < entry.expires_at:
                entry.generation = self._next_generation()
                entry.expires_at = new_expiry
                self._watch(entry)
                shortened += 1
        return shortened

    def evict(self, audit_id: bytes) -> None:
        entry = self._entries.pop(audit_id, None)
        if entry is not None:
            entry.generation = self._next_generation()
            entry.erase()
            self.occupancy.update(self.sim.now, len(self._entries))

    def evict_all(self) -> int:
        """Hibernate/shutdown: erase everything; returns count evicted."""
        count = len(self._entries)
        for entry in self._entries.values():
            entry.generation = self._next_generation()
            entry.erase()
        self._entries.clear()
        self.occupancy.update(self.sim.now, 0)
        return count

    # -- the background purge thread -----------------------------------------
    def _watch(self, entry: CacheEntry) -> None:
        self.sim.process(
            self._watcher(entry.audit_id, entry.generation, entry.expires_at),
            name=f"keycache-watch-{entry.audit_id.hex()[:8]}",
        )

    def _watcher(self, audit_id: bytes, generation: int, wake_at: float) -> Generator:
        # Wake early enough that an in-use refresh completes before the
        # entry expires ("If a response arrives before the key expires,
        # the key's expiration time is updated in the cache").
        entry = self._entries.get(audit_id)
        lead = min(self.refresh_lead, (entry.texp / 4.0) if entry else 0.0)
        early = max(0.0, wake_at - lead - self.sim.now)
        if early > 0:
            yield self.sim.timeout(early)
            entry = self._entries.get(audit_id)
            if entry is None or entry.generation != generation:
                return  # refreshed/evicted meanwhile; a newer watcher exists
            if (entry.used_since_refresh and entry.refreshable
                    and self.refresh_fn is not None):
                yield from self._refresh(entry)
                return
        # Not in use (or unrefreshable): wait out the remaining life.
        yield self.sim.timeout(max(0.0, wake_at - self.sim.now))
        entry = self._entries.get(audit_id)
        if entry is None or entry.generation != generation:
            return
        if (entry.used_since_refresh and entry.refreshable
                and self.refresh_fn is not None):
            # Used during the final lead window: late refresh (a reader
            # arriving mid-round-trip may block on a fresh fetch).
            yield from self._refresh(entry)
            return
        self.expirations += 1
        self.evict(audit_id)
        if self.on_evict is not None:
            self.on_evict(audit_id, "expired")

    def _refresh(self, entry: CacheEntry) -> Generator:
        """Re-fetch an in-use key, re-logging the access on the service."""
        audit_id = entry.audit_id
        self.refreshes += 1
        # In-use refreshes are their own (background) operations in the
        # trace; their RPCs still count as blocking, matching how the
        # channel counters have always treated them.
        ctx = None
        if self.tracer is not None:
            from repro.core.context import OpContext

            ctx = OpContext(self.sim, "key-refresh", collector=self.tracer)
            ctx.root.attrs["audit_id"] = audit_id.hex()[:8]
        try:
            if ctx is not None:
                new_remote = yield from self.refresh_fn(audit_id, ctx=ctx)
            else:
                # Plain positional call: refresh_fn need not be
                # ctx-aware unless tracing is enabled.
                new_remote = yield from self.refresh_fn(audit_id)
        except (NetworkUnavailableError, KeypadError) as exc:
            if ctx is not None:
                ctx.finish(exc)
            self.expirations += 1
            self.evict(audit_id)
            if self.on_evict is not None:
                self.on_evict(audit_id, "refresh-failed")
            return None
        if ctx is not None:
            ctx.finish()
        if self._entries.get(audit_id) is entry:
            entry.generation = self._next_generation()
            entry.remote_key = new_remote
            entry.expires_at = self.sim.now + entry.texp
            entry.used_since_refresh = False
            entry.fetch_count += 1
            self._watch(entry)
        return None

    # -- attacker / forensics views -----------------------------------------------
    def snapshot(self) -> dict[bytes, tuple[bytes, bytes]]:
        """What a memory-extraction attack recovers at this instant."""
        return {
            audit_id: (e.remote_key, e.data_key)
            for audit_id, e in self._entries.items()
            if e.expires_at > self.sim.now
        }

    def resident_ids(self) -> set[bytes]:
        return {a for a, e in self._entries.items() if e.expires_at > self.sim.now}
