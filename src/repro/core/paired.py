"""The paired-device architecture (§3.5, Fig. 4).

A phone on a short-range Bluetooth link acts as a transparent extension
of the key and metadata services:

* it **hoards** recently used keys and serves laptop key requests from
  the hoard, logging each access durably on the phone;
* on a hoard miss with connectivity, it fetches the missed key *and
  related keys* (the laptop passes sibling audit IDs as the
  directory-level hint) from the key service;
* metadata updates pass through when connected and are durably
  **deferred** when not, with everything uploaded in bulk when
  connectivity returns — so auditability survives disconnection as
  long as the phone itself is not also stolen.

The laptop talks to the phone over a real :class:`RpcChannel` on the
Bluetooth link, so latency and byte accounting work exactly as for the
direct service path.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.costmodel import DEFAULT_COSTS, CostModel
from repro.crypto.ibe import IbePrivateKey
from repro.crypto.ibe.curve import Point
from repro.crypto.ibe.fp2 import Fp2
from repro.errors import NetworkUnavailableError, RpcError, ServiceUnavailableError
from repro.net.link import Link
from repro.net.rpc import RpcChannel, RpcServer
from repro.sim import Simulation
from repro.core.client import (
    DirRegistration,
    FileRegistration,
    IbeRegistration,
    KeyFetch,
    KeyUpload,
)
from repro.core.services.keyservice import KeyService
from repro.core.services.metadataservice import MetadataService

__all__ = ["PairedPhone", "PhoneProxy"]


class PairedPhone:
    """The phone-side daemon (the paper's 431-line Python daemon)."""

    def __init__(
        self,
        sim: Simulation,
        phone_id: str,
        phone_secret: bytes,
        key_service: KeyService,
        metadata_service: MetadataService,
        key_uplink: Link,
        metadata_uplink: Link,
        costs: CostModel = DEFAULT_COSTS,
        hoard_texp: float = 600.0,
        flush_interval: float = 10.0,
        pipelining: bool = False,
        max_inflight: int = 8,
    ):
        self.sim = sim
        self.phone_id = phone_id
        self.costs = costs
        self.hoard_texp = hoard_texp
        self.key_service = key_service
        self.metadata_service = metadata_service
        key_service.enroll_device(phone_id, phone_secret)
        metadata_service.enroll_device(phone_id, phone_secret)
        self.key_uplink = key_uplink
        self.metadata_uplink = metadata_uplink
        self._key_channel = RpcChannel(
            sim, key_uplink, key_service.server, phone_id, phone_secret, costs,
            pipelining=pipelining, max_inflight=max_inflight,
        )
        self._meta_channel = RpcChannel(
            sim, metadata_uplink, metadata_service.server, phone_id,
            phone_secret, costs,
            pipelining=pipelining, max_inflight=max_inflight,
        )

        # The phone's own RPC endpoint (laptop connects over Bluetooth).
        self.server = RpcServer(sim, f"{phone_id}-daemon", costs)
        self.server.register("phone.fetch_key", self._handle_fetch_key)
        self.server.register("phone.fetch_keys", self._handle_fetch_keys)
        self.server.register("phone.put_key", self._handle_put_key)
        self.server.register("phone.register_file", self._handle_register_file)
        self.server.register("phone.register_file_ibe", self._handle_register_ibe)
        self.server.register("phone.register_dir", self._handle_register_dir)

        self._hoard: dict[bytes, tuple[bytes, float]] = {}
        # Durable local DB of access records awaiting bulk upload.
        self._pending_access: list[dict] = []
        self._pending_meta: list[dict] = []
        self.stats = {"hoard_hits": 0, "hoard_misses": 0, "uploads": 0,
                      "deferred_meta": 0}
        self._flusher = sim.process(
            self._flush_loop(flush_interval), name=f"{phone_id}-flusher"
        )

    # -- hoard --------------------------------------------------------------
    def _hoard_get(self, audit_id: bytes) -> Optional[bytes]:
        entry = self._hoard.get(audit_id)
        if entry is None:
            return None
        if entry[1] <= self.sim.now:
            # Hoard entries never expire while disconnected — keeping
            # keys through the outage is the whole point of hoarding
            # ("cache them until connectivity is restored").  Every
            # disconnected use is still durably logged.
            if self.key_uplink.available:
                self._hoard.pop(audit_id, None)
                return None
        return entry[0]

    def _hoard_put(self, audit_id: bytes, key: bytes) -> None:
        self._hoard[audit_id] = (key, self.sim.now + self.hoard_texp)

    def hoarded_ids(self) -> set[bytes]:
        """Keys a thief stealing the phone would recover.

        While disconnected the whole hoard is live (entries are pinned
        through outages), so everything counts.
        """
        if not self.key_uplink.available:
            return set(self._hoard)
        return {a for a, (_, exp) in self._hoard.items() if exp > self.sim.now}

    # -- handlers (called by the laptop over Bluetooth) ------------------------
    def _log_access(self, audit_id: bytes, kind: str) -> Generator:
        yield self.sim.timeout(self.costs.phone_db_append)
        self._pending_access.append(
            {"audit_id": audit_id, "timestamp": self.sim.now, "kind": kind}
        )
        return None

    def _handle_fetch_key(self, device_id: str, payload: dict) -> Generator:
        yield self.sim.timeout(self.costs.phone_handler)
        audit_id = payload["audit_id"]
        kind = payload.get("kind", "fetch")
        related: list[bytes] = payload.get("related_ids", [])
        yield from self._log_access(audit_id, f"paired-{kind}")

        key = self._hoard_get(audit_id)
        if key is not None:
            self.stats["hoard_hits"] += 1
            return {"key": key}

        self.stats["hoard_misses"] += 1
        if not self.key_uplink.available:
            raise ServiceUnavailableError(
                "phone hoard miss while disconnected from the key service"
            )
        # Fetch the missed key plus the directory-level hint in one
        # batch ("the phone fetches the missed key and other related
        # keys from the key service").
        wanted = [audit_id] + [r for r in related if self._hoard_get(r) is None]
        response = yield from self._key_channel.call(
            "key.fetch_batch", audit_ids=wanted, kind="paired-prefetch"
        )
        for wanted_id, fetched in zip(wanted, response["keys"]):
            if fetched:
                self._hoard_put(wanted_id, fetched)
        key = self._hoard_get(audit_id)
        if key is None:
            raise RpcError("key service did not return the requested key")
        return {"key": key}

    def _handle_fetch_keys(self, device_id: str, payload: dict) -> Generator:
        yield self.sim.timeout(self.costs.phone_handler)
        audit_ids = payload["audit_ids"]
        kind = payload.get("kind", "prefetch")
        keys: list[bytes] = []
        missing: list[bytes] = []
        for audit_id in audit_ids:
            yield from self._log_access(audit_id, f"paired-{kind}")
            hoarded = self._hoard_get(audit_id)
            if hoarded is None:
                missing.append(audit_id)
        if missing and self.key_uplink.available:
            response = yield from self._key_channel.call(
                "key.fetch_batch", audit_ids=missing, kind="paired-prefetch"
            )
            for missing_id, fetched in zip(missing, response["keys"]):
                if fetched:
                    self._hoard_put(missing_id, fetched)
        for audit_id in audit_ids:
            keys.append(self._hoard_get(audit_id) or b"")
        return {"keys": keys}

    def _handle_put_key(self, device_id: str, payload: dict) -> Generator:
        yield self.sim.timeout(self.costs.phone_handler)
        audit_id = payload["audit_id"]
        key = payload["key"]
        self._hoard_put(audit_id, key)
        if self.key_uplink.available:
            yield from self._key_channel.call(
                "key.put", audit_id=audit_id, key=key
            )
        else:
            yield self.sim.timeout(self.costs.phone_db_append)
            self._pending_meta.append(
                {"type": "put_key", "audit_id": audit_id, "key": key,
                 "timestamp": self.sim.now}
            )
            self.stats["deferred_meta"] += 1
        return {"ok": True}

    def _handle_register_file(self, device_id: str, payload: dict) -> Generator:
        yield self.sim.timeout(self.costs.phone_handler)
        if self.metadata_uplink.available:
            yield from self._meta_channel.call("meta.register", **payload)
        else:
            yield self.sim.timeout(self.costs.phone_db_append)
            self._pending_meta.append(
                {"type": "file", "timestamp": self.sim.now, **payload}
            )
            self.stats["deferred_meta"] += 1
        return {"ok": True}

    def _handle_register_ibe(self, device_id: str, payload: dict) -> Generator:
        yield self.sim.timeout(self.costs.phone_handler)
        if self.metadata_uplink.available:
            response = yield from self._meta_channel.call(
                "meta.register_ibe", **payload
            )
            return response
        # Disconnected: durably defer; the laptop unlocks from its
        # cached wrapped key, auditability provided by the phone log.
        yield self.sim.timeout(self.costs.phone_db_append)
        self._pending_meta.append(
            {"type": "ibe", "timestamp": self.sim.now, **payload}
        )
        self.stats["deferred_meta"] += 1
        return {"deferred": True}

    def _handle_register_dir(self, device_id: str, payload: dict) -> Generator:
        yield self.sim.timeout(self.costs.phone_handler)
        if self.metadata_uplink.available:
            yield from self._meta_channel.call("meta.register_dir", **payload)
        else:
            yield self.sim.timeout(self.costs.phone_db_append)
            self._pending_meta.append(
                {"type": "dir", "timestamp": self.sim.now, **payload}
            )
            self.stats["deferred_meta"] += 1
        return {"ok": True}

    # -- bulk upload -------------------------------------------------------------
    def _flush_loop(self, interval: float) -> Generator:
        while True:
            yield self.sim.timeout(interval)
            if self.key_uplink.available and self._pending_access:
                batch, self._pending_access = self._pending_access, []
                try:
                    yield from self._key_channel.call(
                        "key.report_batch", records=batch
                    )
                    self.stats["uploads"] += 1
                except (NetworkUnavailableError, ServiceUnavailableError):
                    self._pending_access = batch + self._pending_access
            if self.metadata_uplink.available and self._pending_meta:
                batch, self._pending_meta = self._pending_meta, []
                try:
                    yield from self._upload_meta(batch)
                except (NetworkUnavailableError, ServiceUnavailableError):
                    self._pending_meta = batch + self._pending_meta

    def _upload_meta(self, batch: list[dict]) -> Generator:
        for item in batch:
            kind = item.pop("type")
            timestamp = item.pop("timestamp")
            if kind == "put_key":
                yield from self._key_channel.call(
                    "key.put", audit_id=item["audit_id"], key=item["key"]
                )
            elif kind == "file":
                yield from self._meta_channel.call("meta.register", **item)
            elif kind == "ibe":
                yield from self._meta_channel.call("meta.register_ibe", **item)
            elif kind == "dir":
                yield from self._meta_channel.call("meta.register_dir", **item)
        self.stats["uploads"] += 1
        return None

    @property
    def pending_upload_count(self) -> int:
        return len(self._pending_access) + len(self._pending_meta)


class PhoneProxy:
    """Laptop-side stub: routes :class:`ServiceSession` traffic over
    Bluetooth.  Exposes the same typed request surface as the session
    (``fetch``/``fetch_many``/``upload``/``register``), with the
    original loose method names kept as shims."""

    def __init__(
        self,
        sim: Simulation,
        phone: PairedPhone,
        bluetooth_link: Link,
        device_id: str,
        device_secret: bytes,
        costs: CostModel = DEFAULT_COSTS,
        ibe_params=None,
        pipelining: bool = False,
        max_inflight: int = 8,
        tracer=None,
    ):
        phone.server.enroll_device(device_id, device_secret)
        self.sim = sim
        self.phone = phone
        self.channel = RpcChannel(
            sim, bluetooth_link, phone.server, device_id, device_secret, costs,
            pipelining=pipelining, max_inflight=max_inflight, tracer=tracer,
        )
        self._ibe_params = ibe_params or phone.metadata_service.pkg.params
        # Directory hint support: the FS sets this before a fetch so
        # the phone can prefetch related keys.
        self.related_hint: list[bytes] = []

    # -- typed surface -------------------------------------------------------
    # ``ctx`` is the laptop-side operation context; the Bluetooth hop
    # honours its deadline/budget and records the per-call span.  The
    # phone's own uplink traffic stays unattributed (a different trust
    # domain does not share the laptop's budget).

    def fetch(self, request: KeyFetch, ctx=None) -> Generator:
        hint, self.related_hint = self.related_hint, []
        response = yield from self.channel.call(
            "phone.fetch_key", op_ctx=ctx, audit_id=request.audit_id,
            kind=request.kind, related_ids=hint,
        )
        return response["key"]

    def fetch_many(self, requests: list[KeyFetch], ctx=None) -> Generator:
        kind = requests[0].kind if requests else "prefetch"
        response = yield from self.channel.call(
            "phone.fetch_keys", op_ctx=ctx,
            audit_ids=[r.audit_id for r in requests], kind=kind,
        )
        return response["keys"]

    def upload(self, request: KeyUpload, ctx=None) -> Generator:
        yield from self.channel.call(
            "phone.put_key", op_ctx=ctx, audit_id=request.audit_id,
            key=request.key
        )
        return None

    def register(self, request, ctx=None) -> Generator:
        if isinstance(request, FileRegistration):
            yield from self.channel.call(
                "phone.register_file", op_ctx=ctx, audit_id=request.audit_id,
                dir_id=request.dir_id, name=request.name,
            )
            return None
        if isinstance(request, DirRegistration):
            yield from self.channel.call(
                "phone.register_dir", op_ctx=ctx, dir_id=request.dir_id,
                parent_id=request.parent_id, name=request.name,
            )
            return None
        if isinstance(request, IbeRegistration):
            response = yield from self.channel.call(
                "phone.register_file_ibe", op_ctx=ctx,
                identity=request.identity
            )
            if response.get("deferred"):
                return None
            params = self._ibe_params
            return IbePrivateKey(
                identity=response["identity"],
                point=Point(
                    Fp2.from_int(response["point_x"], params.p),
                    Fp2.from_int(response["point_y"], params.p),
                ),
            )
        raise TypeError(f"not a phone-routable registration: {request!r}")

    # -- back-compat shims ---------------------------------------------------

    def fetch_key(self, audit_id: bytes, kind: str = "fetch") -> Generator:
        key = yield from self.fetch(KeyFetch(audit_id=audit_id, kind=kind))
        return key

    def fetch_keys(self, audit_ids: list[bytes], kind: str = "prefetch") -> Generator:
        keys = yield from self.fetch_many(
            [KeyFetch(audit_id=a, kind=kind) for a in audit_ids]
        )
        return keys

    def put_key(self, audit_id: bytes, key: bytes) -> Generator:
        yield from self.upload(KeyUpload(audit_id=audit_id, key=key))
        return None

    def register_file(self, audit_id: bytes, dir_id: str, name: str) -> Generator:
        yield from self.register(
            FileRegistration(audit_id=audit_id, dir_id=dir_id, name=name)
        )
        return None

    def register_file_ibe(self, identity: bytes) -> Generator:
        result = yield from self.register(IbeRegistration(identity=identity))
        return result

    def register_dir(self, dir_id: str, parent_id: str, name: str) -> Generator:
        yield from self.register(
            DirRegistration(dir_id=dir_id, parent_id=parent_id, name=name)
        )
        return None
