"""Device-side access to the audit services.

:class:`ServiceSession` is the unified client facade: it owns the RPC
channels from the client device to the key service and the metadata
service (deliberately separate channels — distinct providers see
disjoint information, §3.1), optionally routes through a paired phone
(§3.5) when one is attached, and layers two flag-gated transport
optimisations above the channels:

* **single-flight coalescing** (``coalesce_fetches``): when N sim
  processes miss on the same audit ID concurrently, one RPC goes out
  and the rest join its completion event.  Joiners only share a fetch
  that is genuinely in flight, so every delivered key still has a
  service log entry inside the current Texp window — the audit
  invariant (zero false negatives) is preserved.
* **write-behind batching** (``write_behind``): non-blocking traffic
  (eviction notices, xattr registrations) is queued and flushed as
  batch RPCs by a background process, with the original enqueue
  timestamps carried in the batch payload.

Requests are expressed as typed dataclasses (:class:`KeyFetch`,
:class:`KeyCreate`, ...).  :class:`DeviceServices` subclasses the
facade and keeps the original loose method names (``fetch_key``,
``register_file``, ...) as thin shims for existing callers.

Every request method accepts an optional ``ctx``
(:class:`~repro.core.context.OpContext`) threaded down from the VFS
operation that triggered it; the session forwards it to the RPC
channels (deadlines, retry budget, per-call spans) and tags
session-level events — coalesced joins, write-behind flushes — as
child spans.  ``ctx=None`` is the exact legacy path.

All methods are sim-process generators unless noted otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, Union

from repro.core.context import OpContext

from repro.costmodel import DEFAULT_COSTS, CostModel
from repro.crypto.ibe import IbePrivateKey
from repro.crypto.ibe.curve import Point
from repro.crypto.ibe.fp2 import Fp2
from repro.errors import NetworkUnavailableError, RpcError, ServiceUnavailableError
from repro.net.link import Link
from repro.net.metrics import SessionMetrics, merge_channel_metrics
from repro.net.rpc import RpcChannel
from repro.sim import Simulation
from repro.core.services.keyservice import KeyService
from repro.core.services.metadataservice import MetadataService

__all__ = [
    "ServiceSession",
    "DeviceServices",
    "KeyFetch",
    "KeyCreate",
    "KeyUpload",
    "FileRegistration",
    "DirRegistration",
    "IbeRegistration",
    "XattrRegistration",
    "EvictionNotice",
]


# -- typed request surface ----------------------------------------------------


@dataclass(frozen=True)
class KeyFetch:
    """Fetch the escrowed key for one audit ID (blocking, auditable)."""

    audit_id: bytes
    kind: str = "fetch"


@dataclass(frozen=True)
class KeyCreate:
    """Have the key service mint and escrow a fresh key."""

    audit_id: bytes


@dataclass(frozen=True)
class KeyUpload:
    """Escrow a device-generated key (the IBE create path)."""

    audit_id: bytes
    key: bytes


@dataclass(frozen=True)
class FileRegistration:
    """Bind an audit ID to a (directory, name) at the metadata service."""

    audit_id: bytes
    dir_id: str
    name: str


@dataclass(frozen=True)
class DirRegistration:
    """Register a directory under its parent at the metadata service."""

    dir_id: str
    parent_id: str
    name: str


@dataclass(frozen=True)
class IbeRegistration:
    """Register an IBE identity and obtain its private key."""

    identity: bytes


@dataclass(frozen=True)
class XattrRegistration:
    """Record an extended attribute with the metadata service."""

    audit_id: bytes
    name: str
    value: bytes


@dataclass(frozen=True)
class EvictionNotice:
    """Tell the key service that cached keys were discarded."""

    count: int
    reason: str


#: Requests accepted by :meth:`ServiceSession.enqueue` (write-behind).
DeferrableRequest = Union[XattrRegistration, EvictionNotice]


class ServiceSession:
    """The laptop's window onto the remote audit services."""

    def __init__(
        self,
        sim: Simulation,
        device_id: str,
        device_secret: bytes,
        key_service: KeyService,
        metadata_service: MetadataService,
        key_link: Link,
        metadata_link: Link,
        costs: CostModel = DEFAULT_COSTS,
        rekey_interval: float = 100.0,
        pipelining: bool = False,
        max_inflight: int = 8,
        coalesce_fetches: bool = False,
        write_behind: bool = False,
        write_behind_interval: float = 1.0,
        tracer=None,
    ):
        self.sim = sim
        self.device_id = device_id
        self.key_service = key_service
        self.metadata_service = metadata_service
        self.tracer = tracer
        key_service.enroll_device(device_id, device_secret)
        metadata_service.enroll_device(device_id, device_secret)
        self.key_channel = RpcChannel(
            sim, key_link, key_service.server, device_id, device_secret,
            costs=costs, rekey_interval=rekey_interval,
            pipelining=pipelining, max_inflight=max_inflight, tracer=tracer,
        )
        self.metadata_channel = RpcChannel(
            sim, metadata_link, metadata_service.server, device_id,
            device_secret, costs=costs, rekey_interval=rekey_interval,
            pipelining=pipelining, max_inflight=max_inflight, tracer=tracer,
        )
        self.coalesce_fetches = coalesce_fetches
        self.write_behind = write_behind
        self.write_behind_interval = write_behind_interval
        self.metrics = SessionMetrics()
        # audit_id -> completion Event for the single RPC in flight.
        self._inflight_fetches: dict[bytes, object] = {}
        self._wb_queue: list[tuple[float, DeferrableRequest]] = []
        self._flusher = None
        # When a paired phone is attached, requests route through it.
        self.phone = None  # type: Optional[object]

    def attach_phone(self, phone) -> None:
        """Route key/metadata traffic via the paired device."""
        self.phone = phone

    def detach_phone(self) -> None:
        self.phone = None

    # -- introspection -------------------------------------------------------

    def inflight_fetch_ids(self) -> set[bytes]:
        """Audit IDs with a fetch RPC currently on the wire."""
        return set(self._inflight_fetches)

    def channel_metrics(self):
        """Aggregate counters across the key and metadata channels."""
        return merge_channel_metrics(
            [self.key_channel.metrics, self.metadata_channel.metrics]
        )

    def pending_write_behind(self) -> int:
        return len(self._wb_queue)

    # -- key service ---------------------------------------------------------

    def fetch(self, request: KeyFetch,
              ctx: Optional[OpContext] = None) -> Generator:
        """Fetch one escrowed key; coalesces with in-flight fetches."""
        if not self.coalesce_fetches:
            key = yield from self._fetch_direct(request.audit_id,
                                                request.kind, ctx)
            return key
        pending = self._inflight_fetches.get(request.audit_id)
        if pending is not None:
            self.metrics.coalesced_hits += 1
            if ctx is not None and ctx.traced:
                with ctx.span("coalesced-wait"):
                    key = yield pending
            else:
                key = yield pending
            if key == b"":
                # The leader was a batch fetch and the service did not
                # know this ID; a lone fetch would have faulted.
                raise RpcError(f"unknown audit ID (coalesced): {request.audit_id!r}")
            return key
        done = self.sim.event()
        self._inflight_fetches[request.audit_id] = done
        try:
            key = yield from self._fetch_direct(request.audit_id,
                                                request.kind, ctx)
        except BaseException as exc:
            self._inflight_fetches.pop(request.audit_id, None)
            if not done.triggered:
                done.fail(exc)
            raise
        self._inflight_fetches.pop(request.audit_id, None)
        done.succeed(key)
        return key

    def fetch_many(self, requests: list[KeyFetch],
                   ctx: Optional[OpContext] = None) -> Generator:
        """Batch fetch; in-flight IDs are joined rather than re-requested.

        Returns keys in request order; unknown IDs come back as ``b""``
        (the batch-RPC convention), matching ``key.fetch_batch``.
        """
        if not requests:
            return []
        kind = requests[0].kind
        if not self.coalesce_fetches:
            keys = yield from self._fetch_batch_direct(
                [r.audit_id for r in requests], kind, ctx
            )
            return keys
        results: dict[bytes, bytes] = {}
        joins: list[tuple[bytes, object]] = []
        to_fetch: list[bytes] = []
        registered: dict[bytes, object] = {}
        for request in requests:
            audit_id = request.audit_id
            if audit_id in results or audit_id in registered:
                continue  # duplicate within this batch
            if any(audit_id == j[0] for j in joins):
                continue
            pending = self._inflight_fetches.get(audit_id)
            if pending is not None:
                self.metrics.coalesced_batch_hits += 1
                joins.append((audit_id, pending))
            else:
                registered[audit_id] = self.sim.event()
                self._inflight_fetches[audit_id] = registered[audit_id]
                to_fetch.append(audit_id)
        try:
            keys = []
            if to_fetch:
                keys = yield from self._fetch_batch_direct(to_fetch, kind, ctx)
        except BaseException as exc:
            for audit_id, done in registered.items():
                self._inflight_fetches.pop(audit_id, None)
                if not done.triggered:
                    done.fail(exc)
            raise
        for audit_id, key in zip(to_fetch, keys):
            results[audit_id] = key
            done = registered[audit_id]
            self._inflight_fetches.pop(audit_id, None)
            done.succeed(key)
        for audit_id, pending in joins:
            key = yield pending
            results[audit_id] = key
        return [results[r.audit_id] for r in requests]

    def create(self, request: KeyCreate,
               ctx: Optional[OpContext] = None) -> Generator:
        response = yield from self.key_channel.call(
            "key.create", op_ctx=ctx, audit_id=request.audit_id
        )
        return response["key"]

    def upload(self, request: KeyUpload,
               ctx: Optional[OpContext] = None) -> Generator:
        if self.phone is not None:
            yield from self.phone.upload(request, ctx)
            return None
        yield from self.key_channel.call(
            "key.put", op_ctx=ctx, audit_id=request.audit_id, key=request.key
        )
        return None

    def notify(self, request: EvictionNotice,
               ctx: Optional[OpContext] = None) -> Generator:
        """Blocking eviction notice (the hibernate path)."""
        yield from self.key_channel.call(
            "key.evict_notify", op_ctx=ctx, count=request.count,
            reason=request.reason
        )
        return None

    def _fetch_direct(self, audit_id: bytes, kind: str,
                      ctx: Optional[OpContext] = None) -> Generator:
        if self.phone is not None:
            key = yield from self.phone.fetch(
                KeyFetch(audit_id=audit_id, kind=kind), ctx
            )
            return key
        response = yield from self.key_channel.call(
            "key.fetch", op_ctx=ctx, audit_id=audit_id, kind=kind
        )
        return response["key"]

    def _fetch_batch_direct(self, audit_ids: list[bytes], kind: str,
                            ctx: Optional[OpContext] = None) -> Generator:
        if self.phone is not None:
            keys = yield from self.phone.fetch_many(
                [KeyFetch(audit_id=a, kind=kind) for a in audit_ids], ctx
            )
            return keys
        response = yield from self.key_channel.call(
            "key.fetch_batch", op_ctx=ctx, audit_ids=audit_ids, kind=kind
        )
        return response["keys"]

    # -- metadata service ----------------------------------------------------

    def register(self, request,
                 ctx: Optional[OpContext] = None) -> Generator:
        """Dispatch a registration request to the metadata service."""
        if isinstance(request, FileRegistration):
            if self.phone is not None:
                yield from self.phone.register(request, ctx)
                return None
            yield from self.metadata_channel.call(
                "meta.register", op_ctx=ctx, audit_id=request.audit_id,
                dir_id=request.dir_id, name=request.name,
            )
            return None
        if isinstance(request, DirRegistration):
            if self.phone is not None:
                yield from self.phone.register(request, ctx)
                return None
            yield from self.metadata_channel.call(
                "meta.register_dir", op_ctx=ctx, dir_id=request.dir_id,
                parent_id=request.parent_id, name=request.name,
            )
            return None
        if isinstance(request, IbeRegistration):
            if self.phone is not None:
                result = yield from self.phone.register(request, ctx)
                return result
            response = yield from self.metadata_channel.call(
                "meta.register_ibe", op_ctx=ctx, identity=request.identity
            )
            return self._private_key_from(response)
        if isinstance(request, XattrRegistration):
            yield from self.metadata_channel.call(
                "meta.register_xattr", op_ctx=ctx, audit_id=request.audit_id,
                name=request.name, value=request.value,
            )
            return None
        raise TypeError(f"not a registration request: {request!r}")

    # -- write-behind --------------------------------------------------------

    def enqueue(self, request: DeferrableRequest) -> None:
        """Accept a non-blocking request for batched delivery (not a generator).

        Requires ``write_behind=True``; the background flusher wakes
        every ``write_behind_interval`` sim-seconds and folds queued
        items into batch RPCs carrying their original timestamps.
        """
        if not self.write_behind:
            raise RpcError("write_behind is disabled for this session")
        if not isinstance(request, (XattrRegistration, EvictionNotice)):
            raise TypeError(f"not a deferrable request: {request!r}")
        self._wb_queue.append((self.sim.now, request))
        self.metrics.enqueued += 1
        if self._flusher is None or not self._flusher.alive:
            self._flusher = self.sim.process(
                self._flush_loop(), name=f"{self.device_id}-write-behind"
            )

    def flush(self) -> Generator:
        """Synchronously drain the write-behind queue (hibernate path)."""
        yield from self._flush_once()
        return None

    def _flush_loop(self) -> Generator:
        while True:
            yield self.sim.timeout(self.write_behind_interval)
            if not self._wb_queue:
                return  # idle: exit; the next enqueue restarts us
            yield from self._flush_once()

    def _flush_once(self) -> Generator:
        batch, self._wb_queue = self._wb_queue, []
        notices = [
            (ts, r) for ts, r in batch if isinstance(r, EvictionNotice)
        ]
        xattrs = [
            (ts, r) for ts, r in batch if isinstance(r, XattrRegistration)
        ]
        # Maintenance traffic carries its own non-blocking context (the
        # blocking-RPC counters exclude write-behind flushes, and the
        # span accounting must agree).  No deadline: flushes retry via
        # re-queueing, they never fail an op.
        ctx = None
        if self.tracer is not None:
            ctx = OpContext(self.sim, "write-behind-flush",
                            device_id=self.device_id, collector=self.tracer,
                            blocking=False)
        error: Optional[BaseException] = None
        if notices:
            payload = [
                {"count": r.count, "reason": r.reason, "timestamp": ts}
                for ts, r in notices
            ]
            try:
                yield from self._send_evict_batch(payload, ctx)
                self.metrics.write_behind_flushes += 1
                self.metrics.batched_messages += len(notices)
            except (NetworkUnavailableError, ServiceUnavailableError) as exc:
                self._wb_queue = notices + self._wb_queue
                error = exc
        if xattrs:
            payload = [
                {
                    "audit_id": r.audit_id,
                    "name": r.name,
                    "value": r.value,
                    "timestamp": ts,
                }
                for ts, r in xattrs
            ]
            try:
                yield from self.metadata_channel.call(
                    "meta.register_xattr_batch", op_ctx=ctx, items=payload
                )
                self.metrics.write_behind_flushes += 1
                self.metrics.batched_messages += len(xattrs)
            except (NetworkUnavailableError, ServiceUnavailableError) as exc:
                self._wb_queue = xattrs + self._wb_queue
                error = exc
        if ctx is not None:
            ctx.finish(error)
        return None

    def _send_evict_batch(self, payload: list[dict],
                          ctx: Optional[OpContext] = None) -> Generator:
        """Transport hook for one eviction-notice batch; the replicated
        session overrides this to fan the batch out across the cluster."""
        yield from self.key_channel.call(
            "key.evict_notify_batch", op_ctx=ctx, notices=payload
        )
        return None

    def _private_key_from(self, response: dict) -> IbePrivateKey:
        params = self.metadata_service.pkg.params
        point = Point(
            Fp2.from_int(response["point_x"], params.p),
            Fp2.from_int(response["point_y"], params.p),
        )
        return IbePrivateKey(identity=response["identity"], point=point)


class DeviceServices(ServiceSession):
    """Back-compat surface: the original loose method names.

    Each shim builds the typed request and delegates to the facade, so
    existing callers (and the offline-attack tooling) keep working while
    new code uses :class:`ServiceSession` directly.
    """

    # -- key service ---------------------------------------------------------
    def fetch_key(self, audit_id: bytes, kind: str = "fetch",
                  ctx: Optional[OpContext] = None) -> Generator:
        key = yield from self.fetch(KeyFetch(audit_id=audit_id, kind=kind),
                                    ctx)
        return key

    def fetch_keys(self, audit_ids: list[bytes], kind: str = "prefetch",
                   ctx: Optional[OpContext] = None) -> Generator:
        keys = yield from self.fetch_many(
            [KeyFetch(audit_id=a, kind=kind) for a in audit_ids], ctx
        )
        return keys

    def create_key(self, audit_id: bytes,
                   ctx: Optional[OpContext] = None) -> Generator:
        key = yield from self.create(KeyCreate(audit_id=audit_id), ctx)
        return key

    def put_key(self, audit_id: bytes, key: bytes,
                ctx: Optional[OpContext] = None) -> Generator:
        yield from self.upload(KeyUpload(audit_id=audit_id, key=key), ctx)
        return None

    def notify_evictions(self, count: int, reason: str,
                         ctx: Optional[OpContext] = None) -> Generator:
        yield from self.notify(EvictionNotice(count=count, reason=reason),
                               ctx)
        return None

    # -- metadata service -----------------------------------------------------
    def register_file(self, audit_id: bytes, dir_id: str, name: str) -> Generator:
        yield from self.register(
            FileRegistration(audit_id=audit_id, dir_id=dir_id, name=name)
        )
        return None

    def register_file_ibe(self, identity: bytes) -> Generator:
        """Register metadata and obtain the unlocking IBE private key.

        Returns ``None`` when routed through a disconnected phone that
        durably deferred the registration (the caller then unlocks from
        its cached wrapped key instead of via IBE decryption).
        """
        result = yield from self.register(IbeRegistration(identity=identity))
        return result

    def register_dir(self, dir_id: str, parent_id: str, name: str) -> Generator:
        yield from self.register(
            DirRegistration(dir_id=dir_id, parent_id=parent_id, name=name)
        )
        return None

    def register_xattr(self, audit_id: bytes, name: str, value: bytes) -> Generator:
        """Extension: xattr metadata registration (direct channel)."""
        yield from self.register(
            XattrRegistration(audit_id=audit_id, name=name, value=value)
        )
        return None
