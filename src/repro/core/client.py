"""Device-side access to the audit services.

:class:`DeviceServices` owns the RPC channels from the client device to
the key service and the metadata service (deliberately separate
channels — distinct providers see disjoint information, §3.1), and
optionally routes through a paired phone (§3.5) when one is attached.

All methods are sim-process generators.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.costmodel import DEFAULT_COSTS, CostModel
from repro.crypto.ibe import IbePrivateKey
from repro.crypto.ibe.curve import Point
from repro.crypto.ibe.fp2 import Fp2
from repro.net.link import Link
from repro.net.rpc import RpcChannel
from repro.sim import Simulation
from repro.core.services.keyservice import KeyService
from repro.core.services.metadataservice import MetadataService

__all__ = ["DeviceServices"]


class DeviceServices:
    """The laptop's window onto the remote audit services."""

    def __init__(
        self,
        sim: Simulation,
        device_id: str,
        device_secret: bytes,
        key_service: KeyService,
        metadata_service: MetadataService,
        key_link: Link,
        metadata_link: Link,
        costs: CostModel = DEFAULT_COSTS,
        rekey_interval: float = 100.0,
    ):
        self.sim = sim
        self.device_id = device_id
        self.key_service = key_service
        self.metadata_service = metadata_service
        key_service.enroll_device(device_id, device_secret)
        metadata_service.enroll_device(device_id, device_secret)
        self.key_channel = RpcChannel(
            sim, key_link, key_service.server, device_id, device_secret,
            costs=costs, rekey_interval=rekey_interval,
        )
        self.metadata_channel = RpcChannel(
            sim, metadata_link, metadata_service.server, device_id,
            device_secret, costs=costs, rekey_interval=rekey_interval,
        )
        # When a paired phone is attached, requests route through it.
        self.phone = None  # type: Optional[object]

    def attach_phone(self, phone) -> None:
        """Route key/metadata traffic via the paired device."""
        self.phone = phone

    def detach_phone(self) -> None:
        self.phone = None

    # -- key service -------------------------------------------------------
    def fetch_key(self, audit_id: bytes, kind: str = "fetch") -> Generator:
        if self.phone is not None:
            key = yield from self.phone.fetch_key(audit_id, kind)
            return key
        response = yield from self.key_channel.call(
            "key.fetch", audit_id=audit_id, kind=kind
        )
        return response["key"]

    def fetch_keys(self, audit_ids: list[bytes], kind: str = "prefetch") -> Generator:
        if self.phone is not None:
            keys = yield from self.phone.fetch_keys(audit_ids, kind)
            return keys
        response = yield from self.key_channel.call(
            "key.fetch_batch", audit_ids=audit_ids, kind=kind
        )
        return response["keys"]

    def create_key(self, audit_id: bytes) -> Generator:
        response = yield from self.key_channel.call(
            "key.create", audit_id=audit_id
        )
        return response["key"]

    def put_key(self, audit_id: bytes, key: bytes) -> Generator:
        if self.phone is not None:
            yield from self.phone.put_key(audit_id, key)
            return None
        yield from self.key_channel.call("key.put", audit_id=audit_id, key=key)
        return None

    def notify_evictions(self, count: int, reason: str) -> Generator:
        yield from self.key_channel.call(
            "key.evict_notify", count=count, reason=reason
        )
        return None

    # -- metadata service -----------------------------------------------------
    def register_file(self, audit_id: bytes, dir_id: str, name: str) -> Generator:
        if self.phone is not None:
            yield from self.phone.register_file(audit_id, dir_id, name)
            return None
        yield from self.metadata_channel.call(
            "meta.register", audit_id=audit_id, dir_id=dir_id, name=name
        )
        return None

    def register_file_ibe(self, identity: bytes) -> Generator:
        """Register metadata and obtain the unlocking IBE private key.

        Returns ``None`` when routed through a disconnected phone that
        durably deferred the registration (the caller then unlocks from
        its cached wrapped key instead of via IBE decryption).
        """
        if self.phone is not None:
            result = yield from self.phone.register_file_ibe(identity)
            return result
        response = yield from self.metadata_channel.call(
            "meta.register_ibe", identity=identity
        )
        return self._private_key_from(response)

    def register_dir(self, dir_id: str, parent_id: str, name: str) -> Generator:
        if self.phone is not None:
            yield from self.phone.register_dir(dir_id, parent_id, name)
            return None
        yield from self.metadata_channel.call(
            "meta.register_dir", dir_id=dir_id, parent_id=parent_id, name=name
        )
        return None

    def register_xattr(self, audit_id: bytes, name: str, value: bytes) -> Generator:
        """Extension: xattr metadata registration (direct channel)."""
        yield from self.metadata_channel.call(
            "meta.register_xattr", audit_id=audit_id, name=name, value=value
        )
        return None

    def _private_key_from(self, response: dict) -> IbePrivateKey:
        params = self.metadata_service.pkg.params
        point = Point(
            Fp2.from_int(response["point_x"], params.p),
            Fp2.from_int(response["point_y"], params.p),
        )
        return IbePrivateKey(identity=response["identity"], point=point)
