"""Per-operation context: deadline, retry budget, identity, trace spans.

Every VFS operation mints one :class:`OpContext` (when observability is
enabled) and threads it down through the key cache, the service session,
and the RPC channels to the simulated wire.  The context is the single
seam that carries three concerns which previously lived in three
different layers:

* **Deadline** — an *absolute* sim-time budget for the whole operation.
  Any layer may call :meth:`OpContext.check` to fail fast, and
  :class:`~repro.net.rpc.RpcChannel` races in-flight calls against the
  remaining budget, raising
  :class:`~repro.errors.DeadlineExpiredError` uniformly.
* **Retry budget** — how many *extra* attempts the whole operation may
  spend across all layers (per-RPC retries and cluster backoff share
  one pool), so retries cannot multiply across layers.
* **Trace spans** — a structured span tree (cache hit vs. blocking RPC
  vs. IBE cost) aggregated by :class:`TraceCollector` and rendered by
  ``keypad-audit trace``.  Span accounting never yields to the
  simulator, so enabling tracing cannot change simulated timings.

With no deadline, no retry budget, and no collector the context is never
minted at all — the flags-off code paths are structurally identical to
the pre-context tree.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from typing import Any, Iterator, Optional

from repro.errors import DeadlineExpiredError

__all__ = ["Span", "OpContext", "TraceCollector", "RPC_SPAN_PREFIX",
           "maybe_span"]

#: spans recording one wire RPC are named ``rpc:<method>``.
RPC_SPAN_PREFIX = "rpc:"

#: the negotiation handshake span (reconciles with ``metrics.handshakes``).
_HELLO_SPAN = "rpc:rpc.hello"


class Span:
    """One timed node in an operation's trace tree."""

    __slots__ = ("name", "start", "end", "attrs", "children", "status")

    def __init__(self, name: str, start: float, **attrs: Any):
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attrs: dict[str, Any] = attrs
        self.children: list["Span"] = []
        self.status = "ok"

    @property
    def duration(self) -> float:
        return (self.start if self.end is None else self.end) - self.start

    def child(self, name: str, start: float, **attrs: Any) -> "Span":
        span = Span(name, start, **attrs)
        self.children.append(span)
        return span

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "start": round(self.start, 6),
            "duration": round(self.duration, 6),
            "status": self.status,
            "attrs": dict(self.attrs),
            "children": [c.as_dict() for c in self.children],
        }

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Span({self.name!r}, {self.duration:.6f}s, {self.status})"


class OpContext:
    """Explicit per-operation context threaded from FS ops to the wire."""

    __slots__ = ("sim", "op", "device_id", "path", "op_id", "deadline",
                 "retry_budget", "collector", "blocking", "config", "root",
                 "_stack", "_finished")

    def __init__(
        self,
        sim: Any,
        op: str,
        device_id: str = "",
        path: Optional[str] = None,
        deadline: Optional[float] = None,
        retry_budget: Optional[int] = None,
        collector: Optional["TraceCollector"] = None,
        blocking: bool = True,
        config: Optional[Any] = None,
    ):
        self.sim = sim
        self.op = op
        self.device_id = device_id
        self.path = path
        self.deadline = deadline
        self.retry_budget = retry_budget
        self.collector = collector
        #: the op's policy snapshot (a frozen KeypadConfig from the
        #: mount's PolicyEpoch) — one VFS op never mixes two epochs.
        self.config = config
        #: False for maintenance work (write-behind flushes) whose RPCs
        #: the blocking-RPC counters already exclude.
        self.blocking = blocking
        self.op_id = collector.next_op_id() if collector is not None else 0
        attrs: dict[str, Any] = {}
        if device_id:
            attrs["device"] = device_id
        if path is not None:
            attrs["path"] = path
        if deadline is not None:
            attrs["deadline"] = deadline
        self.root = Span(op, sim.now, **attrs)
        self._stack: list[Span] = [self.root]
        self._finished = False

    # -- spans ---------------------------------------------------------------
    @property
    def traced(self) -> bool:
        return self.collector is not None

    @property
    def current(self) -> Span:
        return self._stack[-1] if self._stack else self.root

    def begin(self, name: str, **attrs: Any) -> Span:
        """Open a nested child span (close with :meth:`end`)."""
        span = self.current.child(name, self.sim.now, **attrs)
        self._stack.append(span)
        return span

    def end(self, span: Span, status: str = "ok") -> None:
        span.end = self.sim.now
        span.status = status
        if span in self._stack:
            self._stack.remove(span)

    @contextmanager
    def span(self, name: str, **attrs: Any):
        """``with ctx.span("key-fetch"): yield from ...`` — safe inside
        sim-process generators; interrupts close the span on the way out."""
        span = self.begin(name, **attrs)
        try:
            yield span
        except BaseException as exc:
            self.end(span, status=f"error:{type(exc).__name__}")
            raise
        self.end(span, status=span.status)

    def attach(self, name: str, **attrs: Any) -> Span:
        """Open a child of the current span *without* pushing it on the
        nesting stack — for work that may interleave with concurrent
        sub-processes of the same operation (e.g. parallel RPCs).
        Close with :meth:`close`."""
        return self.current.child(name, self.sim.now, **attrs)

    def close(self, span: Span, status: str = "ok") -> None:
        span.end = self.sim.now
        span.status = status

    def event(self, name: str, **attrs: Any) -> Span:
        """Record an instantaneous point event (e.g. a cache hit)."""
        span = self.current.child(name, self.sim.now, **attrs)
        span.end = span.start
        return span

    # -- deadline ------------------------------------------------------------
    def remaining(self) -> float:
        """Sim-seconds left before the deadline (``inf`` when unset)."""
        if self.deadline is None:
            return float("inf")
        return self.deadline - self.sim.now

    def expired(self) -> bool:
        return self.deadline is not None and self.sim.now >= self.deadline

    def check(self, where: str = "") -> None:
        """Raise :class:`DeadlineExpiredError` if the budget is spent."""
        if self.expired():
            suffix = f" in {where}" if where else ""
            raise DeadlineExpiredError(
                f"op {self.op}#{self.op_id} exceeded its deadline "
                f"({self.deadline:.3f}s){suffix}"
            )

    # -- retry budget --------------------------------------------------------
    def try_consume_retry(self) -> bool:
        """Spend one retry from the operation-wide pool.

        ``None`` means "no explicit budget": the caller's own policy
        governs, so this returns True without accounting.  An integer
        budget is shared by every layer under this op.
        """
        if self.retry_budget is None:
            return True
        if self.retry_budget <= 0:
            return False
        self.retry_budget -= 1
        return True

    # -- completion ----------------------------------------------------------
    def finish(self, error: Optional[BaseException] = None) -> None:
        """Close the root span and hand the tree to the collector.

        Idempotent; spans left open (interrupted sub-processes) are
        closed with status ``unfinished``.
        """
        if self._finished:
            return
        self._finished = True
        for span in self.root.walk():
            if span.end is None and span is not self.root:
                span.end = self.sim.now
                if span.status == "ok":
                    span.status = "unfinished"
        self.root.end = self.sim.now
        if error is not None:
            self.root.status = (
                "deadline-expired"
                if isinstance(error, DeadlineExpiredError)
                else f"error:{type(error).__name__}"
            )
        if self.collector is not None:
            self.collector.add(self)


def maybe_span(ctx: Optional[OpContext], name: str, **attrs: Any):
    """``with maybe_span(ctx, "key-fetch"):`` — a span when tracing is
    on, a no-op context manager otherwise (keeps call sites branch-free)."""
    if ctx is not None and ctx.traced:
        return ctx.span(name, **attrs)
    return nullcontext()


class TraceCollector:
    """Aggregates finished operation traces.

    Keeps exact counters for every span name (the reconciliation
    source of truth) plus up to ``max_ops`` full trees for rendering.
    """

    def __init__(self, max_ops: int = 2000):
        self.max_ops = max_ops
        self.ops: list[OpContext] = []
        self.dropped = 0
        self.op_count = 0
        self.deadline_expiries = 0
        self.span_stats: dict[str, list] = {}  # name -> [count, total_s]
        self.rpc_total = 0
        self.rpc_handshakes = 0
        self.rpc_nonblocking = 0
        self.rpc_by_server: dict[str, int] = {}
        self._next_op_id = 0

    # -- context / span intake ----------------------------------------------
    def next_op_id(self) -> int:
        self._next_op_id += 1
        return self._next_op_id

    def add(self, ctx: OpContext) -> None:
        self.op_count += 1
        if ctx.root.status == "deadline-expired":
            self.deadline_expiries += 1
        for span in ctx.root.walk():
            self._account(span, blocking=ctx.blocking)
        if len(self.ops) < self.max_ops:
            self.ops.append(ctx)
        else:
            self.dropped += 1

    def start_orphan(self, name: str, start: float, **attrs: Any) -> Span:
        """A standalone span for a traced call with no parent context."""
        return Span(name, start, **attrs)

    def finish_orphan(self, span: Span, end: float,
                      status: str = "ok") -> None:
        span.end = end
        span.status = status
        self._account(span, blocking=True)

    def _account(self, span: Span, blocking: bool) -> None:
        stats = self.span_stats.setdefault(span.name, [0, 0.0])
        stats[0] += 1
        stats[1] += span.duration
        if span.name.startswith(RPC_SPAN_PREFIX):
            self.rpc_total += 1
            server = span.attrs.get("server")
            if server:
                self.rpc_by_server[server] = \
                    self.rpc_by_server.get(server, 0) + 1
            if span.name == _HELLO_SPAN:
                self.rpc_handshakes += 1
            elif not blocking:
                self.rpc_nonblocking += 1

    # -- reconciliation ------------------------------------------------------
    def blocking_rpcs(self) -> int:
        """RPC spans minus handshakes minus maintenance traffic — the
        same quantity the benchmarks derive from channel metrics as
        ``calls - handshakes - write_behind_flushes``."""
        return self.rpc_total - self.rpc_handshakes - self.rpc_nonblocking

    def summary(self) -> dict:
        """The ``spans_summary`` block for ``BENCH_*.json`` records."""
        return {
            "ops": self.op_count,
            "deadline_expiries": self.deadline_expiries,
            "rpc_total": self.rpc_total,
            "rpc_handshakes": self.rpc_handshakes,
            "rpc_nonblocking": self.rpc_nonblocking,
            "blocking_rpcs": self.blocking_rpcs(),
            "by_span": {
                name: {"count": count, "total_s": round(total, 6)}
                for name, (count, total) in sorted(self.span_stats.items())
            },
        }

    # -- rendering -----------------------------------------------------------
    @staticmethod
    def _attr_text(span: Span) -> str:
        parts = []
        for key in ("device", "path", "transport", "server",
                    "bytes_out", "bytes_in", "policy", "audit_id"):
            if key in span.attrs:
                parts.append(f"{key}={span.attrs[key]}")
        return (" [" + " ".join(parts) + "]") if parts else ""

    def _render_span(self, span: Span, depth: int, lines: list) -> None:
        status = "" if span.status == "ok" else f" !{span.status}"
        lines.append(
            f"{'  ' * depth}- {span.name} "
            f"({span.duration * 1000:.3f}ms){self._attr_text(span)}{status}"
        )
        for child in span.children:
            self._render_span(child, depth + 1, lines)

    def render(self, max_ops: Optional[int] = None) -> str:
        """Flame-style per-op breakdown plus aggregate totals."""
        lines: list[str] = []
        shown = self.ops if max_ops is None else self.ops[:max_ops]
        for ctx in shown:
            root = ctx.root
            status = "" if root.status == "ok" else f" !{root.status}"
            lines.append(
                f"[{root.start:10.3f}s] {root.name}#{ctx.op_id} "
                f"({root.duration * 1000:.3f}ms)"
                f"{self._attr_text(root)}{status}"
            )
            for child in root.children:
                self._render_span(child, 1, lines)
        hidden = (len(self.ops) - len(shown)) + self.dropped
        if hidden:
            lines.append(f"... {hidden} more op(s) not shown")
        lines.append("")
        lines.append("SPAN TOTALS")
        for name, (count, total) in sorted(self.span_stats.items()):
            lines.append(f"  {name:<28s} x{count:<6d} {total:10.3f}s")
        lines.append(
            f"  rpc_total={self.rpc_total} handshakes={self.rpc_handshakes} "
            f"non-blocking={self.rpc_nonblocking} "
            f"blocking={self.blocking_rpcs()} "
            f"deadline_expiries={self.deadline_expiries}"
        )
        return "\n".join(lines)
