"""Keypad on-disk file headers (paper Figure 5).

Two states:

* **Normal** (Fig. 5a): header holds the 192-bit audit ID and the data
  key K_D wrapped under the remote key K_R (held by the key service).
* **IBE-locked** (Fig. 5b): the wrapped data key is *further* encrypted
  with IBE under the identity ``directoryID/filename|auditID`` while a
  metadata update is in flight; only the metadata service (the PKG) can
  release the matching private key — after durably logging the
  identity.

The whole header is sealed under the EncFS volume key ("The file's
header is fixed size and is encrypted using EncFS' volume key") and
padded to a fixed 1024 bytes so file offsets stay stable across
lock/unlock transitions.

Unprotected files (partial coverage, §3.6) carry a degenerate header:
just an EncFS-style per-file IV, no audit ID, no remote key.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace
from typing import Optional

from repro.crypto.aead import NONCE_LEN, AesCtrHmacAead
from repro.crypto.drbg import HmacDrbg
from repro.crypto.ibe import BfParams, IbeCiphertext
from repro.encfs.volume import Volume
from repro.errors import CryptoError, IntegrityError

__all__ = [
    "KeypadHeader",
    "KEYPAD_HEADER_LEN",
    "AUDIT_ID_LEN",
    "DATA_KEY_LEN",
    "WRAPPED_KD_LEN",
    "wrap_data_key",
    "unwrap_data_key",
    "pack_header",
    "parse_header",
]

KEYPAD_HEADER_LEN = 1024
AUDIT_ID_LEN = 24
DATA_KEY_LEN = 32
WRAPPED_KD_LEN = NONCE_LEN + DATA_KEY_LEN + 32  # nonce + sealed KD + tag

_MAGIC = b"KPAD"
_FLAG_PROTECTED = 0x01
_FLAG_LOCKED = 0x02


@dataclass(frozen=True)
class KeypadHeader:
    """Parsed header state."""

    protected: bool
    audit_id: Optional[bytes] = None
    wrapped_kd: Optional[bytes] = None        # normal state
    ibe_blob: Optional[IbeCiphertext] = None  # locked state
    identity: Optional[bytes] = None          # locked state
    file_iv: Optional[bytes] = None           # unprotected files

    @property
    def locked(self) -> bool:
        return self.ibe_blob is not None

    def unlocked_copy(self, wrapped_kd: bytes) -> "KeypadHeader":
        return replace(self, wrapped_kd=wrapped_kd, ibe_blob=None, identity=None)

    def locked_copy(self, blob: IbeCiphertext, identity: bytes) -> "KeypadHeader":
        return replace(self, wrapped_kd=None, ibe_blob=blob, identity=identity)


# -- data-key wrapping under the remote key ---------------------------------

def wrap_data_key(data_key: bytes, remote_key: bytes, drbg: HmacDrbg) -> bytes:
    """E_{K_R}(K_D): the 80-byte wrapped-key blob."""
    if len(data_key) != DATA_KEY_LEN:
        raise CryptoError("data key must be 32 bytes")
    nonce = drbg.generate(NONCE_LEN)
    sealed = AesCtrHmacAead(remote_key).seal(nonce, data_key, aad=b"kd-wrap")
    blob = nonce + sealed
    assert len(blob) == WRAPPED_KD_LEN
    return blob


def unwrap_data_key(blob: bytes, remote_key: bytes) -> bytes:
    """Recover K_D; raises IntegrityError under the wrong K_R."""
    if len(blob) != WRAPPED_KD_LEN:
        raise CryptoError("malformed wrapped data key")
    nonce, sealed = blob[:NONCE_LEN], blob[NONCE_LEN:]
    return AesCtrHmacAead(remote_key).open(nonce, sealed, aad=b"kd-wrap")


# -- serialization ----------------------------------------------------------------

def _pack_ibe(blob: IbeCiphertext, params: BfParams) -> bytes:
    coord = (params.p.bit_length() + 7) // 8
    return (
        blob.u_x.to_bytes(coord, "big")
        + blob.u_y.to_bytes(coord, "big")
        + struct.pack(">H", len(blob.sealed))
        + blob.sealed
    )


def _unpack_ibe(data: bytes, params: BfParams) -> tuple[IbeCiphertext, bytes]:
    coord = (params.p.bit_length() + 7) // 8
    u_x = int.from_bytes(data[:coord], "big")
    u_y = int.from_bytes(data[coord:2 * coord], "big")
    (sealed_len,) = struct.unpack_from(">H", data, 2 * coord)
    start = 2 * coord + 2
    sealed = data[start:start + sealed_len]
    rest = data[start + sealed_len:]
    return IbeCiphertext(u_x=u_x, u_y=u_y, sealed=sealed), rest


def pack_header(
    header: KeypadHeader,
    volume: Volume,
    drbg: HmacDrbg,
    ibe_params: Optional[BfParams] = None,
) -> bytes:
    """Serialize + seal a header into the fixed 1024-byte region."""
    if header.protected:
        flags = _FLAG_PROTECTED
        body = header.audit_id
        if header.locked:
            flags |= _FLAG_LOCKED
            if ibe_params is None:
                raise CryptoError("IBE params required to pack a locked header")
            ibe_bytes = _pack_ibe(header.ibe_blob, ibe_params)
            body += struct.pack(">H", len(header.identity)) + header.identity
            body += ibe_bytes
        else:
            body += header.wrapped_kd
    else:
        flags = 0
        body = header.file_iv

    nonce = drbg.generate(NONCE_LEN)
    sealed = volume.header_suite.seal(nonce, body, aad=_MAGIC + bytes([flags]))
    raw = _MAGIC + bytes([flags]) + struct.pack(">H", len(sealed)) + nonce + sealed
    if len(raw) > KEYPAD_HEADER_LEN:
        raise CryptoError("header overflow (IBE parameters too large)")
    return raw.ljust(KEYPAD_HEADER_LEN, b"\x00")


def parse_header(
    raw: bytes,
    volume: Volume,
    ibe_params: Optional[BfParams] = None,
) -> KeypadHeader:
    """Verify + parse a header region."""
    if len(raw) < KEYPAD_HEADER_LEN or raw[:4] != _MAGIC:
        raise CryptoError("bad Keypad header magic")
    flags = raw[4]
    (sealed_len,) = struct.unpack_from(">H", raw, 5)
    nonce = raw[7:7 + NONCE_LEN]
    sealed = raw[7 + NONCE_LEN:7 + NONCE_LEN + sealed_len]
    try:
        body = volume.header_suite.open(nonce, sealed, aad=_MAGIC + bytes([flags]))
    except IntegrityError as exc:
        raise CryptoError("Keypad header verification failed") from exc

    if not flags & _FLAG_PROTECTED:
        return KeypadHeader(protected=False, file_iv=body)

    audit_id = body[:AUDIT_ID_LEN]
    rest = body[AUDIT_ID_LEN:]
    if flags & _FLAG_LOCKED:
        if ibe_params is None:
            raise CryptoError("IBE params required to parse a locked header")
        (ident_len,) = struct.unpack_from(">H", rest, 0)
        identity = rest[2:2 + ident_len]
        blob, _ = _unpack_ibe(rest[2 + ident_len:], ibe_params)
        return KeypadHeader(
            protected=True, audit_id=audit_id, ibe_blob=blob, identity=identity
        )
    return KeypadHeader(
        protected=True, audit_id=audit_id, wrapped_kd=rest[:WRAPPED_KD_LEN]
    )
