"""Directory-key prefetching policies (§3.3, §4 "Key Prefetching").

The prototype's default is *full-directory prefetch on the Nth miss*:
a per-directory miss counter triggers a batched fetch of every key in
the directory once a scanning workload is detected, and the fetch is
non-recursive so "any false positives are triggered by real accesses
to (related) files in the same directory".  The paper also evaluates a
random-prefetch scheme and prefetching on the 1st/3rd/10th miss
(§5.1.1); all of those are expressible here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.sim import SimRandom

__all__ = [
    "PrefetchDecision",
    "PrefetchPolicy",
    "NoPrefetch",
    "DirectoryPrefetch",
    "RandomPrefetch",
    "make_policy",
    "filter_inflight",
    "decision_attrs",
]


@dataclass(frozen=True)
class PrefetchDecision:
    """What to prefetch after a key-cache miss."""

    whole_directory: bool = False
    sample_count: int = 0


class PrefetchPolicy:
    """Interface: consulted on every blocking key-cache miss."""

    name = "abstract"

    def on_miss(self, directory: str) -> PrefetchDecision:
        raise NotImplementedError

    def on_directory_prefetched(self, directory: str) -> None:
        """Called after a whole-directory fetch completes."""

    def reset(self) -> None:
        """Forget all counters (e.g. across experiment phases)."""


class NoPrefetch(PrefetchPolicy):
    """Baseline: never prefetch (maximum audit precision)."""

    name = "none"

    def on_miss(self, directory: str) -> PrefetchDecision:
        return PrefetchDecision()


@dataclass
class DirectoryPrefetch(PrefetchPolicy):
    """Prefetch the whole directory on the Nth miss inside it.

    The prototype default is ``miss_threshold=3`` ("We adopted a
    prefetch-on-third-miss policy to strike a good balance between
    performance and auditing quality").
    """

    miss_threshold: int = 3
    _miss_counts: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.miss_threshold < 1:
            raise ValueError("miss threshold must be >= 1")
        self.name = f"dir-on-{self.miss_threshold}rd-miss"

    def on_miss(self, directory: str) -> PrefetchDecision:
        count = self._miss_counts.get(directory, 0) + 1
        self._miss_counts[directory] = count
        if count >= self.miss_threshold:
            # Counter resets after the prefetch completes, so a
            # directory whose keys have expired re-arms naturally once
            # fresh misses accumulate.
            return PrefetchDecision(whole_directory=True)
        return PrefetchDecision()

    def on_directory_prefetched(self, directory: str) -> None:
        self._miss_counts[directory] = 0

    def reset(self) -> None:
        self._miss_counts.clear()


@dataclass
class RandomPrefetch(PrefetchPolicy):
    """Prefetch ``sample_count`` random sibling keys on every miss.

    The scheme the paper evaluated and rejected in favour of
    full-directory prefetch (more false positives for no extra
    performance).
    """

    sample_count: int = 4

    def __post_init__(self) -> None:
        if self.sample_count < 1:
            raise ValueError("sample count must be >= 1")
        self.name = f"random-{self.sample_count}"

    def on_miss(self, directory: str) -> PrefetchDecision:
        return PrefetchDecision(sample_count=self.sample_count)


def make_policy(spec: str) -> PrefetchPolicy:
    """Parse a policy spec: 'none', 'dir:N', or 'random:K'."""
    if spec == "none":
        return NoPrefetch()
    kind, _, arg = spec.partition(":")
    if kind == "dir":
        return DirectoryPrefetch(miss_threshold=int(arg or 3))
    if kind == "random":
        return RandomPrefetch(sample_count=int(arg or 4))
    raise ValueError(f"unknown prefetch policy spec {spec!r}")


def decision_attrs(decision: PrefetchDecision, policy: PrefetchPolicy) -> dict:
    """Span attributes describing a prefetch decision (for tracing)."""
    if decision.whole_directory:
        mode = "directory"
    elif decision.sample_count:
        mode = f"random-{decision.sample_count}"
    else:
        mode = "none"
    return {"policy": policy.name, "mode": mode}


def filter_inflight(candidates: list, inflight_ids: set) -> list:
    """Drop prefetch candidates whose keys are already being fetched.

    ``candidates`` are ``(path, header)`` pairs; a concurrent process's
    in-flight fetch (see :meth:`ServiceSession.inflight_fetch_ids`)
    will populate the cache anyway, so spending a batch slot on the
    same audit ID is pure waste.
    """
    if not inflight_ids:
        return candidates
    return [
        (path, header)
        for path, header in candidates
        if header.audit_id not in inflight_ids
    ]


def choose_sample(
    rand: SimRandom, names: Sequence[str], count: int, exclude: Optional[str] = None
) -> list[str]:
    """Pick up to ``count`` random sibling names (for RandomPrefetch)."""
    candidates = [n for n in names if n != exclude]
    if len(candidates) <= count:
        return list(candidates)
    return rand.sample(candidates, count)
