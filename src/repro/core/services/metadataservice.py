"""The Keypad metadata service (also the IBE private-key generator).

Stores user-interpretable file metadata — ``directoryID/filename``
tuples keyed by audit ID, plus the directory registry — in append-only
logs, and acts as the Boneh-Franklin PKG (§3.4): the IBE private key
for an identity is released only *after* the identity (which embeds the
file's current path and audit ID) has been durably logged.  A thief who
lies about the path gets a private key that cannot unlock the file.

The metadata service "learns the file system's structure, but not the
access patterns" — it never sees key fetches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.costmodel import DEFAULT_COSTS, CostModel
from repro.crypto.ibe import TOY, PrivateKeyGenerator
from repro.errors import RpcError
from repro.net.rpc import RpcServer
from repro.sim import Simulation
from repro.auditstore.log import AppendOnlyLog

__all__ = ["MetadataService", "identity_string", "parse_identity"]

ROOT_DIR_ID = "d-root"


def identity_string(dir_id: str, name: str, audit_id: bytes) -> bytes:
    """The IBE public-key string: path tuple strongly bound to audit ID.

    "Its encrypted data key is further encrypted using IBE under a
    public key consisting of the file's path (directoryID/filename)
    and the audit ID."
    """
    return f"{dir_id}/{name}|{audit_id.hex()}".encode()


def parse_identity(identity: bytes) -> tuple[str, str, bytes]:
    try:
        text = identity.decode()
        path_part, audit_hex = text.rsplit("|", 1)
        dir_id, name = path_part.split("/", 1)
        return dir_id, name, bytes.fromhex(audit_hex)
    except (ValueError, UnicodeDecodeError) as exc:
        raise RpcError(f"malformed IBE identity {identity!r}") from exc


@dataclass(frozen=True)
class MetadataRecord:
    """Latest known placement of an audit ID."""

    audit_id: bytes
    dir_id: str
    name: str
    timestamp: float


class MetadataService:
    """Metadata registry + PKG.  Wraps an :class:`RpcServer`."""

    def __init__(
        self,
        sim: Simulation,
        costs: CostModel = DEFAULT_COSTS,
        ibe_params: str = TOY,
        master_seed: bytes = b"metadata-service-master",
        name: str = "metadata-service",
    ):
        self.sim = sim
        self.costs = costs
        self.server = RpcServer(sim, name, costs)
        self.pkg = PrivateKeyGenerator(ibe_params, master_seed=master_seed)
        self.metadata_log = AppendOnlyLog(name="metadata")
        # Latest-wins views derived from the append-only log.
        self._files: dict[bytes, MetadataRecord] = {}
        self._dirs: dict[str, tuple[str, str]] = {ROOT_DIR_ID: ("", "/")}

        self._xattrs: dict[bytes, dict[str, bytes]] = {}

        self.server.register("meta.register", self._handle_register)
        self.server.register("meta.register_ibe", self._handle_register_ibe)
        self.server.register("meta.register_dir", self._handle_register_dir)
        self.server.register("meta.register_xattr", self._handle_register_xattr)
        self.server.register("meta.register_xattr_batch",
                             self._handle_register_xattr_batch)

    def enroll_device(self, device_id: str, secret: bytes) -> None:
        self.server.enroll_device(device_id, secret)

    # -- registration handlers ------------------------------------------------
    def _record_file(
        self, device_id: str, audit_id: bytes, dir_id: str, name: str, via: str
    ) -> None:
        self.metadata_log.append(
            self.sim.now, device_id, "file",
            audit_id=audit_id, dir_id=dir_id, name=name, via=via,
        )
        self._files[audit_id] = MetadataRecord(
            audit_id=audit_id, dir_id=dir_id, name=name, timestamp=self.sim.now
        )

    def _handle_register(self, device_id: str, payload: dict) -> Generator:
        """Plain (blocking-mode) metadata registration."""
        audit_id = payload["audit_id"]
        dir_id = payload["dir_id"]
        name = payload["name"]
        yield self.sim.timeout(self.costs.service_log_append)
        yield self.sim.timeout(self.costs.service_metadata_update)
        self._record_file(device_id, audit_id, dir_id, name, via="plain")
        return {"ok": True}

    def _handle_register_ibe(self, device_id: str, payload: dict) -> Generator:
        """IBE-mode registration: log the identity, then extract.

        Returns the IBE private key for exactly the logged identity —
        this is what unlocks the file, and why avoiding or falsifying
        the registration leaves the file unreadable.
        """
        identity = payload["identity"]
        dir_id, name, audit_id = parse_identity(identity)
        yield self.sim.timeout(self.costs.service_log_append)
        yield self.sim.timeout(self.costs.service_metadata_update)
        self._record_file(device_id, audit_id, dir_id, name, via="ibe")
        yield self.sim.timeout(self.costs.keypad_ibe_extract)
        private = self.pkg.extract(identity)
        return {
            "identity": identity,
            "point_x": private.point.x.a,
            "point_y": private.point.y.a,
        }

    def _handle_register_dir(self, device_id: str, payload: dict) -> Generator:
        """Register (or re-register after rename) a directory."""
        dir_id = payload["dir_id"]
        parent_id = payload["parent_id"]
        name = payload["name"]
        if parent_id != "" and parent_id not in self._dirs:
            raise RpcError(f"unknown parent directory {parent_id!r}")
        yield self.sim.timeout(self.costs.service_log_append)
        yield self.sim.timeout(self.costs.service_metadata_update)
        self.metadata_log.append(
            self.sim.now, device_id, "dir",
            dir_id=dir_id, parent_id=parent_id, name=name,
        )
        self._dirs[dir_id] = (parent_id, name)
        return {"ok": True}

    def _handle_register_xattr(self, device_id: str, payload: dict) -> Generator:
        """Extension: record an extended-attribute update (§4).

        Like pathnames, xattr values are user-interpretable metadata a
        forensic analyst needs up to date (e.g. classification labels).
        """
        audit_id = payload["audit_id"]
        name = payload["name"]
        value = payload["value"]
        yield self.sim.timeout(self.costs.service_log_append)
        yield self.sim.timeout(self.costs.service_metadata_update)
        self.metadata_log.append(
            self.sim.now, device_id, "xattr",
            audit_id=audit_id, name=name, value=value,
        )
        self._xattrs.setdefault(audit_id, {})[name] = value
        return {"ok": True}

    def _handle_register_xattr_batch(self, device_id: str, payload: dict) -> Generator:
        """Write-behind xattr registrations: one durable append + one
        metadata update charge per batch, original timestamps kept (the
        audit trail reflects when the attribute changed on the device).
        """
        items = payload.get("items", [])
        yield self.sim.timeout(self.costs.service_log_append)
        yield self.sim.timeout(self.costs.service_metadata_update)
        for item in items:
            audit_id = item["audit_id"]
            name = item["name"]
            value = item["value"]
            self.metadata_log.append(
                float(item["timestamp"]), device_id, "xattr",
                audit_id=audit_id, name=name, value=value,
            )
            self._xattrs.setdefault(audit_id, {})[name] = value
        return {"accepted": len(items)}

    def xattrs_of(self, audit_id: bytes) -> dict[str, bytes]:
        """Latest registered extended attributes for an audit ID."""
        return dict(self._xattrs.get(audit_id, {}))

    # -- forensic-side accessors (not RPC) ------------------------------------
    def record_for(self, audit_id: bytes) -> Optional[MetadataRecord]:
        return self._files.get(audit_id)

    def path_of(self, audit_id: bytes) -> Optional[str]:
        """Reconstruct the latest full path for an audit ID."""
        record = self._files.get(audit_id)
        if record is None:
            return None
        return self._dir_path(record.dir_id, record.name)

    def _dir_path(self, dir_id: str, leaf: str) -> str:
        parts = [leaf]
        seen = set()
        current = dir_id
        while current and current != ROOT_DIR_ID:
            if current in seen:
                return "<cycle>/" + "/".join(parts)
            seen.add(current)
            entry = self._dirs.get(current)
            if entry is None:
                return "<unknown>/" + "/".join(parts)
            parent_id, name = entry
            parts.insert(0, name)
            current = parent_id
        return "/" + "/".join(parts)

    def history_of(self, audit_id: bytes) -> list[dict]:
        """Every registration ever made for an audit ID (append-only)."""
        return [
            dict(e.fields, timestamp=e.timestamp)
            for e in self.metadata_log.entries(kind="file")
            if e.fields["audit_id"] == audit_id
        ]

    def file_count(self) -> int:
        return len(self._files)
