"""Deprecation shim: the log primitives moved to
:mod:`repro.auditstore.log`.

``LogEntry``, ``AppendOnlyLog``, and ``ShardedLog`` now live inside the
event-sourced audit store subsystem alongside ``SegmentedAuditStore``
and the materialized views (see docs/AUDITSTORE.md).  Every historical
import keeps working, lazily, with a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import importlib
import warnings

_EXPORTS = {
    "LogEntry": "repro.auditstore.log",
    "AppendOnlyLog": "repro.auditstore.log",
    "ShardedLog": "repro.auditstore.log",
    "_entry_digest": "repro.auditstore.log",
}

__all__ = ["LogEntry", "AppendOnlyLog", "ShardedLog"]


def __getattr__(name: str):
    home = _EXPORTS.get(name)
    if home is None:
        raise AttributeError(
            f"module 'repro.core.services.logstore' has no attribute {name!r}"
        )
    warnings.warn(
        f"importing {name!r} from 'repro.core.services.logstore' is "
        f"deprecated; import it from '{home}' (or 'repro.api' for the "
        f"stable facade)",
        DeprecationWarning,
        stacklevel=2,
    )
    # Deliberately not cached in globals(): each use warns, so stale
    # imports stay visible instead of going quiet after the first hit.
    return getattr(importlib.import_module(home), name)


def __dir__() -> list[str]:
    return sorted(set(list(globals()) + __all__))
