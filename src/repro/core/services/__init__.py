"""The remote audit services: key service and metadata service (PKG)."""

from repro.core.services.keyservice import AUDIT_ID_LEN, KeyService
from repro.auditstore.log import AppendOnlyLog, LogEntry, ShardedLog
from repro.core.services.metadataservice import (
    ROOT_DIR_ID,
    MetadataService,
    identity_string,
    parse_identity,
)

__all__ = [
    "KeyService",
    "MetadataService",
    "AppendOnlyLog",
    "ShardedLog",
    "LogEntry",
    "AUDIT_ID_LEN",
    "ROOT_DIR_ID",
    "identity_string",
    "parse_identity",
]
