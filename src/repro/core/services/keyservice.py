"""The Keypad key service.

Maintains the binding ``audit ID → remote key (K_R)`` and durably logs
every access before returning a key — the log *is* the audit trail.
The service sees only opaque 192-bit IDs and keys, never paths (§3.1:
"The key service sees only accesses to opaque IDs and keys"), which is
the privacy rationale for splitting it from the metadata service.

Remote control (§2, §6): keys are identified per device, so reporting a
device missing revokes every key it owns; subsequent fetches fail with
:class:`RevokedError` and are themselves logged.

Sharding (``shards > 1``): the escrow map and the access log are split
by audit-ID prefix, each shard with its own FIFO queue (a cooperative
:class:`~repro.sim.Lock`), so a batched fetch fans out one worker per
shard and the durable-log/lookup time is the *maximum* over shards
rather than the sum.  ``shards=1`` (the default) keeps the original
single-map, single-chain code path byte-for-byte.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.costmodel import DEFAULT_COSTS, CostModel
from repro.crypto.drbg import HmacDrbg
from repro.errors import ConfigError, RevokedError, RpcError
from repro.net.rpc import RpcServer
from repro.sim import Lock, Simulation
from repro.auditstore import make_audit_log
from repro.auditstore.durable import DurableAuditStore
from repro.auditstore.log import DISCLOSING_KINDS, LogEntry
from repro.storage.backend import BlobStore

__all__ = ["KeyService", "AUDIT_ID_LEN", "REMOTE_KEY_LEN", "DISCLOSING_KINDS"]

AUDIT_ID_LEN = 24  # 192-bit audit IDs ("randomly generated 192-bit integer")
REMOTE_KEY_LEN = 32



class KeyService:
    """Key escrow + access logging.  Wraps an :class:`RpcServer`."""

    def __init__(
        self,
        sim: Simulation,
        costs: CostModel = DEFAULT_COSTS,
        seed: bytes = b"key-service",
        name: str = "key-service",
        shards: int = 1,
        audit_store: str = "flat",
        segment_entries: int = 1024,
        auto_compact: bool = True,
        audit_durable: bool = False,
        audit_flush_policy: str = "every-seal",
        audit_flush_every: int = 64,
        audit_checkpoint_every: int = 0,
        audit_blobs=None,
    ):
        if shards < 1:
            raise ValueError("key service needs at least one shard")
        if audit_durable and audit_store != "segmented":
            raise ConfigError(
                "audit_durable requires audit_store='segmented'"
            )
        self.sim = sim
        self.costs = costs
        self.shards = shards
        self.server = RpcServer(sim, name, costs)
        self._drbg = HmacDrbg(seed, b"remote-keys")
        self._key_shards: list[dict[bytes, bytes]] = [
            {} for _ in range(shards)
        ]
        self._owner: dict[bytes, str] = {}
        self._revoked_devices: set[str] = set()
        # Shard locks model per-shard worker queues regardless of how
        # the log is stored; the segmented store keeps one global store
        # even with shards > 1 (group-committed segments subsume the
        # per-shard chain trick without changing simulated time).
        self._shard_locks: Optional[list[Lock]] = (
            None if shards == 1 else [Lock(sim) for _ in range(shards)]
        )
        # Durability seam: a durable store spills into a write-once
        # blob namespace (`audit/<service-name>/`) on the rig's shared
        # BlobStore; standalone services get a private in-memory one.
        self.audit_durable = audit_durable
        self.audit_namespace = f"audit/{name}"
        if audit_durable and audit_blobs is None:
            audit_blobs = BlobStore("memory", costs).namespace(
                self.audit_namespace
            )
        self._audit_blobs = audit_blobs
        self._audit_knobs = {
            "store": audit_store,
            "shards": shards,
            "segment_entries": segment_entries,
            "auto_compact": auto_compact,
            "durable": audit_durable,
            "flush_policy": audit_flush_policy,
            "flush_every": audit_flush_every,
        }
        self.audit_checkpoint_every = max(0, int(audit_checkpoint_every))
        self._last_checkpoint = 0
        self._crashed = False
        self._entries_at_crash: Optional[int] = None
        #: set by :meth:`restart` — what the last recovery found.
        self.recovery_stats: Optional[dict] = None
        self.access_log = make_audit_log(
            name="key-access",
            store=audit_store,
            shards=shards,
            router=self._route_record,
            segment_entries=segment_entries,
            auto_compact=auto_compact,
            durable=audit_durable,
            blobs=audit_blobs,
            flush_policy=audit_flush_policy,
            flush_every=audit_flush_every,
            costs=costs,
        )

        # Retry dedup: token -> time of the entry it logged.  A retried
        # fetch carrying the same token inside its dedup window returns
        # the key without a second audit record (see _handle_fetch).
        self._fetch_tokens: dict[bytes, float] = {}

        self.server.register("key.create", self._handle_create)
        self.server.register("key.health", self._handle_health)
        self.server.register("key.put", self._handle_put)
        self.server.register("key.fetch", self._handle_fetch)
        self.server.register("key.fetch_batch", self._handle_fetch_batch)
        self.server.register("key.evict_notify", self._handle_evict_notify)
        self.server.register("key.evict_notify_batch",
                             self._handle_evict_notify_batch)
        self.server.register("key.report_batch", self._handle_report_batch)

    # -- sharding -----------------------------------------------------------
    def _shard_of(self, audit_id: bytes) -> int:
        """Audit-ID-prefix routing (IDs are uniformly random, §3.1)."""
        return audit_id[0] % self.shards if audit_id else 0

    def _shard_map(self, audit_id: bytes) -> dict[bytes, bytes]:
        return self._key_shards[self._shard_of(audit_id)]

    def _route_record(self, device_id: str, kind: str, fields: dict) -> int:
        audit_id = fields.get("audit_id")
        if isinstance(audit_id, (bytes, bytearray)) and audit_id:
            return self._shard_of(bytes(audit_id))
        # Non-key records (revocations, evictions) ride on a stable
        # device-derived shard.
        return device_id.encode()[0] if device_id else 0

    def _shard_queue(self, shard: int) -> Generator:
        """Enter a shard's FIFO queue (no-op with a single shard)."""
        if self._shard_locks is not None:
            yield from self._shard_locks[shard].acquire()
        return None

    def _shard_release(self, shard: int) -> None:
        if self._shard_locks is not None:
            self._shard_locks[shard].release()

    # -- audit durability ---------------------------------------------------
    def _audit_sync(self) -> Generator:
        """Charge any banked durable-flush cost to the sim timeline.

        Called by every handler right after it appends: the durable
        store's blob writes happen synchronously (log-before-disclose),
        but their simulated cost lands here, at the handler's next
        yield point.  Also drives the automatic checkpoint cadence.
        With a non-durable log this yields nothing — the flags-off
        timeline is untouched.
        """
        log = self.access_log
        take = getattr(log, "take_pending_cost", None)
        if take is None:
            return None
        if (
            self.audit_checkpoint_every
            and len(log) - self._last_checkpoint
            >= self.audit_checkpoint_every
        ):
            log.checkpoint()
            self._last_checkpoint = len(log)
        cost = take()
        if cost > 0.0:
            yield cost
        return None

    def audit_checkpoint(self) -> int:
        """Persist a view snapshot now (``ctl.audit_checkpoint``)."""
        if not hasattr(self.access_log, "checkpoint"):
            raise ConfigError(
                "audit checkpoints need a durable audit store "
                "(audit_durable=True)"
            )
        upto = self.access_log.checkpoint()
        self._last_checkpoint = upto
        return upto

    def crash(self) -> int:
        """Simulate process death: the RPC server goes away and every
        in-memory structure that lives in the process — the audit log's
        unflushed tail, fetch-dedup tokens — is lost.  The escrow map
        models the service's durable key database and survives.
        Returns the audit entry count at the moment of death, which
        :meth:`restart` uses to report the exact loss.
        """
        self.server.available = False
        self._crashed = True
        log = self.access_log
        if hasattr(log, "crash"):
            self._entries_at_crash = log.crash()
        else:
            self._entries_at_crash = len(log)
        return self._entries_at_crash

    def restart(self) -> dict:
        """Recover from a :meth:`crash` and resume serving.

        A durable store reloads its spilled segments, re-verifies the
        full seal chain, and restores views from the checkpoint; on
        tamper or truncation it raises
        :class:`~repro.errors.AuditRecoveryError` and the service
        *stays unavailable* — a log that cannot be trusted must not
        answer forensic queries.  A non-durable log restarts empty,
        with the total loss reported.  Returns the recovery stats.
        """
        if not self._crashed:
            raise ConfigError(
                f"service {self.server.name!r} is not crashed"
            )
        knobs = self._audit_knobs
        before = self._entries_at_crash or 0
        if knobs["durable"]:
            # Raises AuditRecoveryError on damage; server.available
            # stays False in that case (refuse to serve).
            self.access_log = DurableAuditStore.recover(
                self._audit_blobs,
                name="key-access",
                segment_entries=knobs["segment_entries"],
                auto_compact=knobs["auto_compact"],
                costs=self.costs,
                flush_policy=knobs["flush_policy"],
                flush_every=knobs["flush_every"],
                entries_before=before,
            )
            self.recovery_stats = dict(self.access_log.recovery)
            self.recovery_stats["durable"] = True
        else:
            self.access_log = make_audit_log(
                name="key-access",
                store=knobs["store"],
                shards=knobs["shards"],
                router=self._route_record,
                segment_entries=knobs["segment_entries"],
                auto_compact=knobs["auto_compact"],
            )
            self.recovery_stats = {
                "durable": False,
                "recovered_entries": 0,
                "entries_before": before,
                "lost_entries": before,
                "checkpoint_used": False,
            }
        self._last_checkpoint = min(
            self._last_checkpoint, len(self.access_log)
        )
        self._fetch_tokens.clear()
        self._crashed = False
        self._entries_at_crash = None
        self.server.available = True
        return self.recovery_stats

    def recover_drill(self) -> dict:
        """Dry-run recovery against the live blobs (``ctl.audit_recover``
        on a healthy service): proves the spilled state would recover,
        without touching the serving log."""
        if not hasattr(self.access_log, "verify_blobs"):
            raise ConfigError(
                "recovery drills need a durable audit store "
                "(audit_durable=True)"
            )
        return self.access_log.verify_blobs()

    def rebind_audit_blobs(self, blobs) -> None:
        """Re-point the audit namespace after a backend swap.

        ``blobs`` is the new stack's :class:`BlobStore` (or an
        already-prefixed namespace).  Only reachable when nothing was
        spilled — spilled segments veto the swap itself.
        """
        ns = (
            blobs.namespace(self.audit_namespace)
            if hasattr(blobs, "namespace")
            else blobs
        )
        self._audit_blobs = ns
        if hasattr(self.access_log, "rebind_blobs"):
            self.access_log.rebind_blobs(ns)

    # -- server-side frontend (fleet scale; see repro.server) ---------------
    def install_frontend(
        self,
        workers: int = 8,
        queue_limit: int = 64,
        policy: str = "drr",
        shed: bool = True,
        coalesce: int = 8,
        quantum: int = 1,
    ):
        """Bound this service's concurrency with a scheduler frontend.

        The legacy server runs every request the moment it arrives; a
        frontend gives the service ``workers`` of real capacity, fair
        queueing across devices, deadline-aware load shedding, and
        cross-device group commit of ``key.fetch`` (one durable-log
        write amortised over the group via :meth:`fetch_group`).
        Returns the installed :class:`~repro.server.ServiceFrontend`.
        """
        from repro.server import ServiceFrontend

        frontend = ServiceFrontend(
            self.sim,
            self.server,
            workers=workers,
            queue_limit=queue_limit,
            policy=policy,
            shed=shed,
            coalesce=coalesce,
            quantum=quantum,
            service_estimate=(
                self.costs.service_log_append + self.costs.service_key_lookup
            ),
            group_methods={"key.fetch": self.fetch_group},
        )
        self.server.install_frontend(frontend)
        return frontend

    @property
    def frontend(self):
        return self.server.frontend

    # -- administration (out of band, by the victim / IT department) -------
    def preload_key(self, device_id: str, audit_id: bytes, key: bytes) -> None:
        """Out-of-band provisioning: bind an existing ``(ID, K_R)``.

        Used by the fleet load generator and tests to stand up a
        device's working set without an RPC per key — the binding
        models keys created before the measurement window, so no audit
        record is written (creates are only evidence when they happen
        inside the window).
        """
        if len(audit_id) != AUDIT_ID_LEN or len(key) != REMOTE_KEY_LEN:
            raise ValueError("malformed audit ID or key")
        self._shard_map(audit_id)[audit_id] = key
        self._owner[audit_id] = device_id

    def revoke_device(self, device_id: str) -> None:
        """Remote control: disable every key belonging to a device."""
        self._revoked_devices.add(device_id)
        self.access_log.append(
            self.sim.now, device_id, "revoke", reason="device reported lost"
        )

    def is_revoked(self, device_id: str) -> bool:
        return device_id in self._revoked_devices

    def enroll_device(self, device_id: str, secret: bytes) -> None:
        self.server.enroll_device(device_id, secret)

    # -- handlers -------------------------------------------------------------
    def _check_revoked(self, device_id: str) -> None:
        if device_id in self._revoked_devices:
            self.access_log.append(
                self.sim.now, device_id, "denied", reason="revoked"
            )
            raise RevokedError(f"device {device_id} reported lost or stolen")

    def _handle_create(self, device_id: str, payload: dict) -> Generator:
        """Create a fresh K_R bound to a new audit ID (blocking create)."""
        self._check_revoked(device_id)
        audit_id = payload["audit_id"]
        if len(audit_id) != AUDIT_ID_LEN:
            raise RpcError("malformed audit ID")
        shard = self._shard_of(audit_id)
        keys = self._key_shards[shard]
        if audit_id in keys:
            raise RpcError("audit ID already bound")
        key = self._drbg.generate(REMOTE_KEY_LEN)
        yield from self._shard_queue(shard)
        try:
            # Durable log BEFORE replying.
            yield self.costs.service_log_append
            self.access_log.append(
                self.sim.now, device_id, "create", audit_id=audit_id
            )
            yield from self._audit_sync()
            keys[audit_id] = key
            self._owner[audit_id] = device_id
        finally:
            self._shard_release(shard)
        return {"key": key}

    def _handle_put(self, device_id: str, payload: dict) -> Generator:
        """Bind a client-generated K_R (used by IBE-locked creates).

        Idempotent: re-uploading the same (ID, key) is a no-op, so the
        client may retry after network failures.
        """
        self._check_revoked(device_id)
        audit_id = payload["audit_id"]
        key = payload["key"]
        if len(audit_id) != AUDIT_ID_LEN or len(key) != REMOTE_KEY_LEN:
            raise RpcError("malformed key upload")
        shard = self._shard_of(audit_id)
        keys = self._key_shards[shard]
        existing = keys.get(audit_id)
        if existing is not None and existing != key:
            raise RpcError("audit ID already bound to a different key")
        yield from self._shard_queue(shard)
        try:
            yield self.costs.service_log_append
            self.access_log.append(
                self.sim.now, device_id, "create", audit_id=audit_id
            )
            yield from self._audit_sync()
            keys[audit_id] = key
            self._owner[audit_id] = device_id
        finally:
            self._shard_release(shard)
        return {"ok": True}

    def _fetch_one(self, device_id: str, audit_id: bytes, kind: str) -> bytes:
        key = self._shard_map(audit_id).get(audit_id)
        if key is None:
            raise RpcError("unknown audit ID")
        self.access_log.append(self.sim.now, device_id, kind, audit_id=audit_id)
        return key

    def _handle_health(self, device_id: str, payload: dict) -> dict:
        """Cheap liveness ping for failure-aware clients (not logged —
        it discloses no key material)."""
        return {"ok": True, "now": self.sim.now}

    def _handle_fetch(self, device_id: str, payload: dict) -> Generator:
        """The audited fetch: log durably, then return K_R.

        Idempotent under retries: the service logs *before* replying,
        so a client whose response was lost to the network retries a
        fetch the log already recorded.  A retry carrying the same
        ``token`` within ``window`` seconds of that record returns the
        key without appending a duplicate — exactly one entry per
        expiration window per logical fetch.  Tokenless fetches (the
        paper's prototype) log unconditionally, byte-for-byte as before.
        """
        self._check_revoked(device_id)
        audit_id = payload["audit_id"]
        kind = payload.get("kind", "fetch")
        token = payload.get("token")
        window = float(payload.get("window") or 0.0)
        shard = self._shard_of(audit_id)
        yield from self._shard_queue(shard)
        try:
            yield self.costs.service_log_append
            yield self.costs.service_key_lookup
            dedup = False
            if token is not None:
                logged_at = self._fetch_tokens.get(bytes(token))
                dedup = (logged_at is not None
                         and self.sim.now - logged_at <= window)
            if dedup:
                key = self._shard_map(audit_id).get(audit_id)
                if key is None:
                    raise RpcError("unknown audit ID")
            else:
                key = self._fetch_one(device_id, audit_id, kind)
                if token is not None:
                    self._fetch_tokens[bytes(token)] = self.sim.now
            yield from self._audit_sync()
        finally:
            self._shard_release(shard)
        return {"key": key}

    def _handle_fetch_batch(self, device_id: str, payload: dict) -> Generator:
        """Batched fetch used by directory-key prefetching.

        Every returned key is individually logged (prefetch entries are
        the audit log's false positives, §5.2).  With multiple shards
        the batch fans out one worker per shard, so the service time is
        the slowest shard, not the sum of all lookups.
        """
        self._check_revoked(device_id)
        audit_ids = payload["audit_ids"]
        kind = payload.get("kind", "prefetch")
        if self.shards == 1:
            yield self.costs.service_log_append
            keys = []
            for audit_id in audit_ids:
                yield self.costs.service_key_lookup
                if audit_id in self._key_shards[0]:
                    keys.append(self._fetch_one(device_id, audit_id, kind))
                else:
                    keys.append(b"")  # unknown IDs skipped, not fatal
            yield from self._audit_sync()
            return {"keys": keys}

        by_shard: dict[int, list[bytes]] = {}
        for audit_id in audit_ids:
            by_shard.setdefault(self._shard_of(audit_id), []).append(audit_id)
        results: dict[bytes, bytes] = {}
        workers = [
            self.sim.process(
                self._batch_shard_worker(device_id, shard, ids, kind, results),
                name=f"key-batch-s{shard}",
            )
            for shard, ids in by_shard.items()
        ]
        yield self.sim.all_of(workers)
        return {"keys": [results[a] for a in audit_ids]}

    def _batch_shard_worker(
        self,
        device_id: str,
        shard: int,
        audit_ids: list[bytes],
        kind: str,
        results: dict[bytes, bytes],
    ) -> Generator:
        yield from self._shard_queue(shard)
        try:
            yield self.costs.service_log_append
            for audit_id in audit_ids:
                yield self.costs.service_key_lookup
                if audit_id in self._key_shards[shard]:
                    results[audit_id] = self._fetch_one(device_id, audit_id, kind)
                else:
                    results[audit_id] = b""
            yield from self._audit_sync()
        finally:
            self._shard_release(shard)
        return None

    def fetch_group(self, requests: list[tuple[str, dict]]) -> Generator:
        """Cross-device group commit of ``key.fetch`` requests.

        Called by the server frontend, never as a wire method: when
        several tenants' fetches are queued at once, one worker serves
        the whole group and all members on a shard share one
        durable-log write (``service_log_append``), while escrow
        lookups — and, crucially, audit records — stay per request.
        Batching amortises the write, never the evidence: the log holds
        exactly the entries N individual fetches would have produced.

        ``requests`` is ``[(device_id, payload), ...]`` with
        ``key.fetch`` payloads (token dedup honoured, same as
        :meth:`_handle_fetch`).  Returns one ``("ok", {"key": K_R})``
        or ``("err", exc)`` outcome per request, in order.
        """
        outcomes: list = [None] * len(requests)
        by_shard: dict[int, list[int]] = {}
        for i, (_device_id, payload) in enumerate(requests):
            audit_id = payload.get("audit_id") or b""
            by_shard.setdefault(self._shard_of(audit_id), []).append(i)
        for shard in sorted(by_shard):
            yield from self._shard_queue(shard)
            try:
                # One durable write covers every member on this shard.
                yield self.costs.service_log_append
                records: list[tuple[float, str, str, dict]] = []
                for i in by_shard[shard]:
                    device_id, payload = requests[i]
                    yield self.costs.service_key_lookup
                    outcomes[i] = self._group_fetch_one(
                        device_id, payload, records
                    )
                self.access_log.append_many(records)
                yield from self._audit_sync()
            finally:
                self._shard_release(shard)
        return outcomes

    def _group_fetch_one(
        self,
        device_id: str,
        payload: dict,
        records: list[tuple[float, str, str, dict]],
    ) -> tuple:
        """One group member: same checks and records as a lone fetch."""
        try:
            if device_id in self._revoked_devices:
                records.append(
                    (self.sim.now, device_id, "denied", {"reason": "revoked"})
                )
                raise RevokedError(
                    f"device {device_id} reported lost or stolen"
                )
            audit_id = payload["audit_id"]
            kind = payload.get("kind", "fetch")
            token = payload.get("token")
            window = float(payload.get("window") or 0.0)
            key = self._shard_map(audit_id).get(audit_id)
            if key is None:
                raise RpcError("unknown audit ID")
            dedup = False
            if token is not None:
                logged_at = self._fetch_tokens.get(bytes(token))
                dedup = (logged_at is not None
                         and self.sim.now - logged_at <= window)
            if not dedup:
                records.append(
                    (self.sim.now, device_id, kind, {"audit_id": audit_id})
                )
                if token is not None:
                    self._fetch_tokens[bytes(token)] = self.sim.now
            return ("ok", {"key": key})
        except (RpcError, RevokedError) as exc:
            return ("err", exc)

    def _handle_evict_notify(self, device_id: str, payload: dict) -> Generator:
        """Record key evictions on hibernation (§6: "such evictions
        should be recorded on the audit servers")."""
        count = payload.get("count", 0)
        yield self.costs.service_log_append
        self.access_log.append(
            self.sim.now, device_id, "evict", count=count,
            reason=payload.get("reason", "hibernate"),
        )
        yield from self._audit_sync()
        return {"ok": True}

    def _handle_evict_notify_batch(self, device_id: str, payload: dict) -> Generator:
        """Write-behind eviction notices, one durable append per batch.

        Like ``key.report_batch``, each notice keeps the timestamp at
        which the eviction *happened* on the device, not the flush time.
        """
        notices = payload.get("notices", [])
        yield self.costs.service_log_append
        for notice in notices:
            self.access_log.append(
                float(notice["timestamp"]),
                device_id,
                "evict",
                count=int(notice.get("count", 0)),
                reason=notice.get("reason", "expired"),
            )
        yield from self._audit_sync()
        return {"accepted": len(notices)}

    def _handle_report_batch(self, device_id: str, payload: dict) -> Generator:
        """Bulk upload of a paired device's locally logged accesses.

        Records keep their phone-side timestamps: the audit trail must
        reflect when the access *happened*, not when it was uploaded.
        """
        records = payload.get("records", [])
        yield self.costs.service_log_append
        for record in records:
            self.access_log.append(
                float(record["timestamp"]),
                device_id,
                record.get("kind", "paired-fetch"),
                audit_id=record["audit_id"],
            )
        yield from self._audit_sync()
        return {"accepted": len(records)}

    # -- forensic / test access (server-side, not RPC) -------------------------
    def accesses_after(
        self, t: float, device_id: Optional[str] = None
    ) -> list[LogEntry]:
        """All key-disclosing log entries at or after time ``t``.

        With the segmented store this answers from the post-theft
        window view (one bisect, O(answer)); the flat log scans.
        Both return identical entries in append order.
        """
        views = getattr(self.access_log, "views", None)
        if views is not None:
            return views.accesses_after(t, device_id=device_id)
        return [
            e
            for e in self.access_log.entries(since=t, device_id=device_id)
            if e.kind in DISCLOSING_KINDS
        ]

    def known_audit_ids(self) -> set[bytes]:
        out: set[bytes] = set()
        for shard in self._key_shards:
            out.update(shard)
        return out

    def key_count(self) -> int:
        return sum(len(shard) for shard in self._key_shards)
