"""KeypadFS: the auditing file system (paper §3–§4).

Keypad extends the EncFS stacking with per-file keys escrowed on the
remote key service:

* every protected file gets a random 192-bit **audit ID** and a random
  **data key** K_D; K_D is stored in the file header wrapped under a
  **remote key** K_R known only to the key service;
* content reads/writes need K_D, so a cold access forces a ``key.fetch``
  RPC that the service *durably logs before answering* — the audit
  trail;
* fetched keys live in the expiring :class:`KeyCache` (§3.3), with
  directory-level prefetching to absorb scanning workloads;
* metadata updates (create/rename) either block on the metadata
  service, or — with IBE enabled (§3.4) — lock the wrapped data key
  under the identity ``directoryID/filename|auditID`` and complete
  asynchronously: the file stays usable for one second from cache,
  after which it is unreadable until the metadata service confirms the
  registration and releases the IBE private key;
* unprotected files (partial coverage, §3.6) behave exactly like EncFS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from repro.costmodel import DEFAULT_COSTS, CostModel
from repro.crypto.ibe import decrypt as ibe_decrypt
from repro.encfs.fs import StackedCryptFs
from repro.encfs.volume import Volume
from repro.errors import (
    KeypadError,
    LockedFileError,
    NetworkUnavailableError,
    RevokedError,
)
from repro.sim import Simulation
from repro.storage.backend import FsInterface
from repro.util.paths import basename, normalize, parent_of
from repro.core.client import (
    DirRegistration,
    EvictionNotice,
    FileRegistration,
    IbeRegistration,
    KeyCreate,
    KeyFetch,
    KeyUpload,
    ServiceSession,
    XattrRegistration,
)
from repro.core.header import (
    AUDIT_ID_LEN,
    DATA_KEY_LEN,
    KEYPAD_HEADER_LEN,
    KeypadHeader,
    pack_header,
    parse_header,
    unwrap_data_key,
    wrap_data_key,
)
from repro.core.context import OpContext, maybe_span
from repro.core.keycache import KeyCache
from repro.core.policy import KeypadConfig, PolicyEpoch
from repro.core.prefetch import decision_attrs, filter_inflight, make_policy
from repro.core.services.metadataservice import ROOT_DIR_ID, identity_string

__all__ = ["KeypadFS"]

_REMOTE_KEY_LEN = 32


@dataclass
class _PendingRegistration:
    """State of one in-flight IBE metadata registration.

    A rename of a still-locked file *supersedes* the registration
    (updates identity/path) rather than blocking on it — the background
    process keeps registering until the acked identity matches the
    current one, so the service always ends up with the latest path
    (intermediate paths land in the append-only log as history).
    """

    audit_id: bytes
    wrapped: bytes
    identity: bytes
    path_hint: str
    event: Any
    upload_key: Optional[bytes]


class KeypadFS(StackedCryptFs):
    """The Keypad client file system."""

    HEADER_LEN = KEYPAD_HEADER_LEN

    def __init__(
        self,
        sim: Simulation,
        lower: FsInterface,
        volume: Volume,
        services: ServiceSession,
        config: KeypadConfig = KeypadConfig(),
        costs: CostModel = DEFAULT_COSTS,
        drbg_seed: bytes = b"keypad-device",
        verify_content: bool = False,
    ):
        super().__init__(sim, lower, volume, costs, drbg_seed=drbg_seed,
                         verify_content=verify_content)
        self.services = services
        # The mount-held policy cell.  A plain KeypadConfig is wrapped;
        # passing a PolicyEpoch shares the cell (the control server
        # updates it and this FS observes the change).
        self.policy = (
            config if isinstance(config, PolicyEpoch) else PolicyEpoch(config)
        )
        self.policy.subscribe(self._on_policy_change)
        # Set by ControlServer.attach: ops then mint an OpContext (and
        # with it a per-op policy snapshot) even when tracing is off.
        self.control_enabled = False
        # The session owns the TraceCollector (if any); the FS mints a
        # per-VFS-op OpContext against it (see _op_context).
        self.tracer = services.tracer
        self.key_cache = KeyCache(
            sim,
            refresh_fn=self._refresh_key,
            on_evict=self._note_eviction if services.write_behind else None,
            tracer=self.tracer,
        )
        self.prefetch_policy = make_policy(self.policy.config.prefetch)
        self.ibe_params = services.metadata_service.pkg.params
        self.ibe_public = services.metadata_service.pkg.public(
            seed=drbg_seed + b"|ibe"
        )
        self._dir_ids: dict[str, str] = {"/": ROOT_DIR_ID}
        self._next_dir_serial = 0
        self._pending_unlocks: dict[bytes, Any] = {}
        # Extension state: launch profiles + async dir registration acks.
        from repro.core.launchprofile import LaunchProfiler

        self.launch_profiler = LaunchProfiler()
        self._dir_acks: dict[str, Any] = {}  # dir_id -> Event (pending)
        self._prand = None  # lazy SimRandom for random prefetch sampling
        self.stats: dict[str, int] = {
            "blocking_key_fetches": 0,
            "prefetch_batches": 0,
            "prefetched_keys": 0,
            "blocking_metadata_ops": 0,
            "async_metadata_ops": 0,
            "ibe_locks": 0,
            "ibe_unlocks": 0,
            "unlock_waits": 0,
            "blocking_unlocks": 0,
        }

    # ------------------------------------------------------------------
    # Cost charging (Keypad is a modified EncFS; same base CPU costs).
    # ------------------------------------------------------------------
    def _charge(self, op: str) -> Generator:
        extra = {
            "read": self.costs.encfs_read_extra,
            "write": self.costs.encfs_write_extra,
            "create": self.costs.encfs_create_extra,
            "rename": self.costs.encfs_rename_extra,
            "mkdir": self.costs.encfs_mkdir_extra,
        }[op]
        yield self.sim.timeout(extra)
        return None

    # ------------------------------------------------------------------
    # Live policy (PolicyEpoch) access.
    # ------------------------------------------------------------------
    @property
    def config(self) -> KeypadConfig:
        """The current epoch's config.  Assignment replaces it wholesale
        (validated) — the historical test seam for flipping knobs."""
        return self.policy.config

    @config.setter
    def config(self, value: KeypadConfig) -> None:
        self.policy.replace_config(value)

    def is_protected(self, path: str) -> bool:
        return self.policy.coverage(path)

    def _cfg(self, ctx: Optional[OpContext] = None) -> KeypadConfig:
        """The policy snapshot governing this op: the one stamped on its
        context when there is one, the current epoch otherwise."""
        if ctx is not None and ctx.config is not None:
            return ctx.config
        return self.policy.config

    def _on_policy_change(self, old: KeypadConfig, new: KeypadConfig) -> None:
        """Epoch-change subscriber: re-target live derived state."""
        if new.texp != old.texp:
            self.key_cache.retarget_texp(new.texp)
        if new.prefetch != old.prefetch:
            self.prefetch_policy = make_policy(new.prefetch)

    # ------------------------------------------------------------------
    # Per-operation contexts (deadline / retry budget / trace spans).
    # ------------------------------------------------------------------
    def _op_context(self, op: str, path: str) -> Optional[OpContext]:
        """Mint the op's context, or None when observability is off.

        With a control server attached, every op gets a context purely
        to carry its policy snapshot — a mid-op ``ctl.set-texp`` must
        not hand one VFS op a mix of two epochs' knobs.
        """
        cfg = self.policy.snapshot()
        if (self.tracer is None and cfg.op_deadline is None
                and not cfg.op_retry_budget and not self.control_enabled):
            return None
        deadline = (
            None if cfg.op_deadline is None else self.sim.now + cfg.op_deadline
        )
        return OpContext(
            self.sim,
            op,
            device_id=self.services.device_id,
            path=normalize(path),
            deadline=deadline,
            retry_budget=cfg.op_retry_budget or None,
            collector=self.tracer,
            config=cfg,
        )

    def _background_context(self, op: str, path: str = "") -> Optional[OpContext]:
        """Context for maintenance processes (registrations); traced,
        but never deadline-bounded — the op that spawned them already
        returned."""
        if self.tracer is None:
            return None
        return OpContext(
            self.sim,
            op,
            device_id=self.services.device_id,
            path=normalize(path) if path else None,
            collector=self.tracer,
        )

    # ------------------------------------------------------------------
    # Directory identifiers (metadata is dir_id/filename tuples).
    # ------------------------------------------------------------------
    def _dir_id(self, dir_path: str) -> str:
        dir_path = normalize(dir_path)
        try:
            return self._dir_ids[dir_path]
        except KeyError:
            raise KeypadError(
                f"directory {dir_path} has no registered ID "
                "(was it created through KeypadFS?)"
            ) from None

    def _new_dir_id(self) -> str:
        self._next_dir_serial += 1
        token = self.drbg.generate(8).hex()
        return f"d-{token}-{self._next_dir_serial}"

    def _ensure_dir_id(self, dir_path: str, ctx: Optional[OpContext] = None) -> Generator:
        """Resolve (registering lazily) a protected directory's ID.

        Directories normally get IDs at mkdir, but a directory can
        *move into* the protected domain (a rename across the coverage
        boundary) or predate protection.  Registration is blocking and
        parent-first so the service can always resolve full paths.
        """
        dir_path = normalize(dir_path)
        existing = self._dir_ids.get(dir_path)
        if existing is not None:
            return existing
        parent_id = ROOT_DIR_ID
        if dir_path != "/":
            parent_id = yield from self._ensure_dir_id(parent_of(dir_path), ctx)
        dir_id = self._new_dir_id()
        self._dir_ids[dir_path] = dir_id
        self.stats["blocking_metadata_ops"] += 1
        name = "/" if dir_path == "/" else basename(dir_path)
        yield from self.services.register(
            DirRegistration(dir_id=dir_id, parent_id=parent_id, name=name), ctx
        )
        return dir_id

    # ------------------------------------------------------------------
    # Header management.
    # ------------------------------------------------------------------
    def _parse_header(self, path: str, raw: bytes) -> Generator:
        return parse_header(raw, self.volume, self.ibe_params)
        yield  # pragma: no cover

    def _new_header(self, path: str) -> Generator:
        raise AssertionError("KeypadFS overrides create() directly")
        yield  # pragma: no cover

    def _store_header(self, path: str, header: KeypadHeader) -> Generator:
        raw = pack_header(header, self.volume, self.drbg, self.ibe_params)
        yield from self.lower.write(self._enc(path), 0, raw)
        self._header_cache[normalize(path)] = header
        return None

    # ------------------------------------------------------------------
    # Key acquisition: the heart of the audit protocol.
    # ------------------------------------------------------------------
    def _refresh_key(self, audit_id: bytes, ctx: Optional[OpContext] = None) -> Generator:
        key = yield from self.services.fetch(KeyFetch(audit_id, kind="refresh"), ctx)
        return key

    def _note_eviction(self, audit_id: bytes, reason: str) -> None:
        self.services.enqueue(EvictionNotice(count=1, reason=reason))

    def _content_key(self, path: str, parsed: Any, write: bool,
                     ctx: Optional[OpContext] = None) -> Generator:
        header: KeypadHeader = parsed
        if not header.protected:
            return self.volume.content_stream_key(header.file_iv), header.file_iv

        audit_id = header.audit_id
        nonce = audit_id[:16].ljust(16, b"\x00")
        self.launch_profiler.note_access(normalize(path))
        entry = self.key_cache.get(audit_id, ctx=ctx)
        if entry is not None:
            yield self.sim.timeout(self.costs.keypad_hit_extra)
            return entry.data_key, nonce

        path = normalize(path)
        if header.locked:
            header = yield from self._await_unlocked(path, header, ctx)
            entry = self.key_cache.get(audit_id, ctx=ctx)
            if entry is not None:
                return entry.data_key, nonce

        # Blocking fetch from the key service (this is the audited path).
        self.stats["blocking_key_fetches"] += 1
        if self.services.phone is not None:
            # Directory-level hint so the phone can prefetch related
            # keys into its hoard (§3.5).
            directory = parent_of(path)
            self.services.phone.related_hint = [
                h.audit_id
                for p, h in self._header_cache.items()
                if h.protected and h.audit_id != audit_id
                and parent_of(p) == directory and not h.locked
            ][:32]
        with maybe_span(ctx, "key-fetch", audit_id=audit_id.hex()[:8]):
            remote_key = yield from self.services.fetch(KeyFetch(audit_id), ctx)
        yield self.sim.timeout(self.costs.keypad_header_crypt)
        data_key = unwrap_data_key(header.wrapped_kd, remote_key)
        self.key_cache.put(audit_id, remote_key, data_key,
                           texp=self._cfg(ctx).texp)
        yield from self._maybe_prefetch(path, ctx)
        return data_key, nonce

    def _await_unlocked(self, path: str, header: KeypadHeader,
                        ctx: Optional[OpContext] = None) -> Generator:
        """Resolve an IBE-locked header, waiting or unlocking inline."""
        pending = self._pending_unlocks.get(header.audit_id)
        if pending is not None:
            self.stats["unlock_waits"] += 1
            with maybe_span(ctx, "unlock-wait"):
                yield pending.event
        else:
            yield from self._unlock_blocking(path, header, ctx)
        refreshed = self._header_cache.get(normalize(path))
        if refreshed is None or refreshed.locked:
            # Re-read from disk (unlock may have landed before a crash).
            self._evict_header(normalize(path))
            refreshed = yield from self._header(path)
            if refreshed.locked:
                raise LockedFileError(f"{path} is still IBE-locked")
        return refreshed

    def _unlock_blocking(self, path: str, header: KeypadHeader,
                         ctx: Optional[OpContext] = None) -> Generator:
        """Foreground unlock: register the identity, decrypt, rewrite.

        This is the path a post-crash client — or a thief driving the
        Keypad software — takes: it cannot avoid presenting the
        correct identity (path + audit ID) to the metadata service.
        """
        self.stats["blocking_unlocks"] += 1
        with maybe_span(ctx, "ibe-unlock"):
            private_key = yield from self.services.register(
                IbeRegistration(identity=header.identity), ctx
            )
            if private_key is None:
                raise LockedFileError(
                    f"{path}: paired device deferred the registration; "
                    "the wrapped key is unavailable until service sync"
                )
            yield self.sim.timeout(self.costs.keypad_ibe_decrypt)
            wrapped = ibe_decrypt(self.ibe_params, private_key, header.ibe_blob)
            new_header = header.unlocked_copy(wrapped)
            yield from self._store_header(path, new_header)
        self.stats["ibe_unlocks"] += 1
        return new_header

    # ------------------------------------------------------------------
    # Prefetching.
    # ------------------------------------------------------------------
    def _maybe_prefetch(self, path: str, ctx: Optional[OpContext] = None) -> Generator:
        directory = parent_of(path)
        decision = self.prefetch_policy.on_miss(directory)
        if decision.whole_directory:
            with maybe_span(ctx, "prefetch",
                            **decision_attrs(decision, self.prefetch_policy)):
                yield from self._prefetch_directory(directory, exclude=path, ctx=ctx)
            self.prefetch_policy.on_directory_prefetched(directory)
        elif decision.sample_count:
            with maybe_span(ctx, "prefetch",
                            **decision_attrs(decision, self.prefetch_policy)):
                yield from self._prefetch_sample(
                    directory, decision.sample_count, exclude=path, ctx=ctx
                )
        return None

    def _prefetch_candidates(self, directory: str, exclude: str) -> Generator:
        """Sibling files whose keys are absent from the cache."""
        names = yield from self.lower.readdir(self._enc(directory))
        candidates = []
        for token in names:
            try:
                name = self.volume.decrypt_name(token)
            except Exception:
                continue
            child = normalize(f"{directory}/{name}")
            if child == exclude:
                continue
            attr = yield from self.lower.getattr(self._enc(child))
            if attr.is_dir:
                continue  # non-recursive by design
            try:
                child_header = yield from self._header(child)
            except Exception:
                continue
            if not child_header.protected or child_header.locked:
                continue
            if self.key_cache.get(child_header.audit_id, mark_used=False):
                continue
            candidates.append((child, child_header))
        return candidates

    def _prefetch_directory(self, directory: str, exclude: str,
                            ctx: Optional[OpContext] = None) -> Generator:
        candidates = yield from self._prefetch_candidates(directory, exclude)
        if not candidates:
            return None
        yield from self._prefetch_fetch(candidates, ctx)
        return None

    def _prefetch_sample(self, directory: str, count: int, exclude: str,
                         ctx: Optional[OpContext] = None) -> Generator:
        candidates = yield from self._prefetch_candidates(directory, exclude)
        if not candidates:
            return None
        if len(candidates) > count:
            if self._prand is None:
                from repro.sim import SimRandom

                self._prand = SimRandom(self.drbg.generate(16), "prefetch")
            candidates = self._prand.sample(candidates, count)
        yield from self._prefetch_fetch(candidates, ctx)
        return None

    def _prefetch_fetch(self, candidates: list,
                        ctx: Optional[OpContext] = None) -> Generator:
        # IDs already being fetched by a concurrent process will land in
        # the cache anyway; don't spend batch slots on them.
        candidates = filter_inflight(
            candidates, self.services.inflight_fetch_ids()
        )
        if not candidates:
            return None
        keys = yield from self.services.fetch_many(
            [KeyFetch(h.audit_id, kind="prefetch") for _, h in candidates], ctx
        )
        self.stats["prefetch_batches"] += 1
        for (child, child_header), remote_key in zip(candidates, keys):
            if not remote_key:
                continue
            data_key = unwrap_data_key(child_header.wrapped_kd, remote_key)
            self.key_cache.put(
                child_header.audit_id,
                remote_key,
                data_key,
                texp=self._cfg(ctx).texp,
                prefetched=True,
            )
            self.stats["prefetched_keys"] += 1
        return None

    # ------------------------------------------------------------------
    # Creation (Fig. 3 flows).
    # ------------------------------------------------------------------
    def create(self, path: str) -> Generator:
        self._count("create")
        ctx = self._op_context("create", path)
        try:
            yield from self._create_inner(normalize(path), ctx)
        except BaseException as exc:
            if ctx is not None:
                ctx.finish(exc)
            raise
        if ctx is not None:
            ctx.finish()
        return None

    def _create_inner(self, path: str, ctx: Optional[OpContext]) -> Generator:
        yield from self._charge("create")
        if not self.is_protected(path):
            yield from self._create_unprotected(path)
            return None

        dir_id = yield from self._ensure_dir_id(parent_of(path), ctx)
        name = basename(path)
        audit_id = self.drbg.generate(AUDIT_ID_LEN)
        data_key = self.drbg.generate(DATA_KEY_LEN)
        yield from self.lower.create(self._enc(path))
        self._logical_sizes[path] = 0

        if self._cfg(ctx).ibe_enabled:
            yield from self._create_with_ibe(
                path, dir_id, name, audit_id, data_key, ctx
            )
        else:
            yield from self._create_blocking(
                path, dir_id, name, audit_id, data_key, ctx
            )
        return None

    def _create_unprotected(self, path: str) -> Generator:
        yield from self.lower.create(self._enc(path))
        self._logical_sizes[path] = 0
        header = KeypadHeader(protected=False, file_iv=self.drbg.generate(16))
        yield from self._store_header(path, header)
        return None

    def _create_blocking(
        self, path: str, dir_id: str, name: str, audit_id: bytes,
        data_key: bytes, ctx: Optional[OpContext] = None
    ) -> Generator:
        """Non-IBE create: key-create and metadata-register run
        concurrently, but both must ack before the create returns
        (§3.1: "Keypad must confirm that both requests complete before
        it allows access to the new file")."""
        self.stats["blocking_metadata_ops"] += 1
        # Both sub-processes share the op's ctx; their RPC spans attach
        # (non-stacked) so the interleaving cannot mis-nest.
        key_proc = self.sim.process(
            self.services.create(KeyCreate(audit_id=audit_id), ctx),
            name="create-key",
        )
        meta_proc = self.sim.process(
            self.services.register(
                FileRegistration(audit_id=audit_id, dir_id=dir_id, name=name),
                ctx,
            ),
            name="create-meta",
        )
        results = yield self.sim.all_of([key_proc, meta_proc])
        remote_key = results[0]
        yield self.sim.timeout(self.costs.keypad_header_crypt)
        wrapped = wrap_data_key(data_key, remote_key, self.drbg)
        header = KeypadHeader(protected=True, audit_id=audit_id, wrapped_kd=wrapped)
        yield from self._store_header(path, header)
        self.key_cache.put(audit_id, remote_key, data_key,
                           texp=self._cfg(ctx).texp)
        return None

    def _create_with_ibe(
        self, path: str, dir_id: str, name: str, audit_id: bytes,
        data_key: bytes, ctx: Optional[OpContext] = None
    ) -> Generator:
        """IBE create: lock the header locally, register asynchronously.

        The remote key is generated client-side and uploaded in the
        same background process (idempotent ``key.put``); until the
        metadata service acks, the file is readable only via the
        1-second in-flight cache entry.
        """
        remote_key = self.drbg.generate(_REMOTE_KEY_LEN)
        yield self.sim.timeout(self.costs.keypad_header_crypt)
        wrapped = wrap_data_key(data_key, remote_key, self.drbg)
        identity = identity_string(dir_id, name, audit_id)
        yield self.sim.timeout(self.costs.keypad_ibe_encrypt)
        blob = self.ibe_public.encrypt(identity, wrapped)
        header = KeypadHeader(
            protected=True, audit_id=audit_id, ibe_blob=blob, identity=identity
        )
        yield from self._store_header(path, header)
        self.key_cache.put(
            audit_id, remote_key, data_key,
            texp=self._cfg(ctx).texp_inflight, refreshable=False,
        )
        self.stats["ibe_locks"] += 1
        self.stats["async_metadata_ops"] += 1
        if ctx is not None and ctx.traced:
            ctx.event("ibe-lock", audit_id=audit_id.hex()[:8])
        self._spawn_registration(
            audit_id, identity, path, wrapped, upload_key=remote_key
        )
        return None

    # ------------------------------------------------------------------
    # Rename (Fig. 3b).
    # ------------------------------------------------------------------
    def rename(self, old: str, new: str) -> Generator:
        self._count("rename")
        ctx = self._op_context("rename", old)
        try:
            yield from self._rename_inner(normalize(old), normalize(new), ctx)
        except BaseException as exc:
            if ctx is not None:
                ctx.finish(exc)
            raise
        if ctx is not None:
            ctx.finish()
        return None

    def _rename_inner(self, old: str, new: str,
                      ctx: Optional[OpContext]) -> Generator:
        yield from self._charge("rename")
        attr = yield from self.lower.getattr(self._enc(old))
        if attr.is_dir:
            yield from self._rename_directory(old, new, ctx)
            return None

        header = yield from self._header(old)
        if not header.protected:
            yield from self.lower.rename(self._enc(old), self._enc(new))
            self._move_header(old, new)
            return None

        dir_id = yield from self._ensure_dir_id(parent_of(new), ctx)
        name = basename(new)
        if header.locked and self._cfg(ctx).ibe_enabled:
            pending = self._pending_unlocks.get(header.audit_id)
            if pending is not None:
                # Supersede the in-flight registration: re-lock under
                # the new identity without blocking (Fig. 3b's overlap
                # applies to back-to-back metadata updates too).
                yield from self._relock_pending(old, new, header, pending,
                                                dir_id, name)
                return None
            header = yield from self._await_unlocked(old, header, ctx)
        elif header.locked:
            header = yield from self._await_unlocked(old, header, ctx)

        if self._cfg(ctx).ibe_enabled:
            yield from self._rename_with_ibe(old, new, header, dir_id, name)
        else:
            yield from self.lower.rename(self._enc(old), self._enc(new))
            self._move_header(old, new)
            self.stats["blocking_metadata_ops"] += 1
            yield from self.services.register(
                FileRegistration(
                    audit_id=header.audit_id, dir_id=dir_id, name=name
                ),
                ctx,
            )
        return None

    def _relock_pending(
        self,
        old: str,
        new: str,
        header: KeypadHeader,
        pending: _PendingRegistration,
        dir_id: str,
        name: str,
    ) -> Generator:
        identity = identity_string(dir_id, name, header.audit_id)
        yield self.sim.timeout(self.costs.keypad_ibe_encrypt)
        blob = self.ibe_public.encrypt(identity, pending.wrapped)
        locked = header.locked_copy(blob, identity)
        yield from self._store_header(old, locked)
        yield from self.lower.rename(self._enc(old), self._enc(new))
        self._move_header(old, new)
        pending.identity = identity
        pending.path_hint = normalize(new)
        self.key_cache.restrict(header.audit_id, self._cfg().texp_inflight)
        self.stats["ibe_locks"] += 1
        self.stats["async_metadata_ops"] += 1
        return None

    def _rename_with_ibe(
        self, old: str, new: str, header: KeypadHeader, dir_id: str, name: str
    ) -> Generator:
        identity = identity_string(dir_id, name, header.audit_id)
        yield self.sim.timeout(self.costs.keypad_ibe_encrypt)
        blob = self.ibe_public.encrypt(identity, header.wrapped_kd)
        locked = header.locked_copy(blob, identity)
        yield from self._store_header(old, locked)
        yield from self.lower.rename(self._enc(old), self._enc(new))
        self._move_header(old, new)
        # Shorten the cached key's life to the in-flight window.
        self.key_cache.restrict(header.audit_id, self._cfg().texp_inflight)
        self.stats["ibe_locks"] += 1
        self.stats["async_metadata_ops"] += 1
        self._spawn_registration(
            header.audit_id, identity, new, header.wrapped_kd, upload_key=None
        )
        return None

    def _rename_directory(self, old: str, new: str,
                          ctx: Optional[OpContext] = None) -> Generator:
        yield from self.lower.rename(self._enc(old), self._enc(new))
        self._move_subtree(old, new)
        if self.is_protected(new):
            dir_id = self._dir_ids.get(normalize(new))
            if dir_id is None:
                # The directory moved INTO the protected domain: give
                # it (and any missing ancestors) IDs now.
                yield from self._ensure_dir_id(new, ctx)
                return None
            parent_id = yield from self._ensure_dir_id(parent_of(new), ctx)
            # Directory metadata updates do not use IBE in the
            # prototype ("it does not apply it to directory metadata
            # operations"), so this blocks on the service.
            self.stats["blocking_metadata_ops"] += 1
            yield from self.services.register(
                DirRegistration(
                    dir_id=dir_id, parent_id=parent_id, name=basename(new)
                ),
                ctx,
            )
        return None

    def _move_subtree(self, old: str, new: str) -> None:
        """Rewrite path-keyed client state after a directory rename."""
        old_prefix = normalize(old)
        new_prefix = normalize(new)

        def remap(path: str) -> str:
            if path == old_prefix:
                return new_prefix
            if path.startswith(old_prefix + "/"):
                return new_prefix + path[len(old_prefix):]
            return path

        self._header_cache = {
            remap(p): h for p, h in self._header_cache.items()
        }
        self._dir_ids = {remap(p): d for p, d in self._dir_ids.items()}

    # ------------------------------------------------------------------
    # Background registration / unlock.
    # ------------------------------------------------------------------
    def _spawn_registration(
        self,
        audit_id: bytes,
        identity: bytes,
        path_hint: str,
        wrapped: bytes,
        upload_key: Optional[bytes],
    ) -> None:
        pending = _PendingRegistration(
            audit_id=audit_id,
            wrapped=wrapped,
            identity=identity,
            path_hint=normalize(path_hint),
            event=self.sim.event(),
            upload_key=upload_key,
        )
        self._pending_unlocks[audit_id] = pending
        self.sim.process(
            self._registration_process(pending),
            name=f"keypad-register-{audit_id.hex()[:8]}",
        )

    def _registration_process(self, pending: _PendingRegistration) -> Generator:
        audit_id = pending.audit_id
        attempts = 0
        # Background registrations are their own (never deadline-bounded)
        # operations in the trace; their RPCs count as blocking, same as
        # the channel counters always have.
        ctx = self._background_context("ibe-registration", pending.path_hint)
        # Extension ordering: if the file's directory registration is
        # still in flight (ibe_for_directories), wait for its ack so
        # the service can always resolve the file's full path.
        dir_id = pending.identity.split(b"/", 1)[0].decode()
        dir_ack = self._dir_acks.get(dir_id)
        if dir_ack is not None and not dir_ack.triggered:
            yield dir_ack
        while True:
            try:
                if pending.upload_key is not None:
                    yield from self.services.upload(
                        KeyUpload(audit_id=audit_id, key=pending.upload_key),
                        ctx,
                    )
                    pending.upload_key = None
                identity = pending.identity
                yield from self.services.register(
                    IbeRegistration(identity=identity), ctx
                )
                if identity == pending.identity:
                    break
                # Superseded by a rename while the RPC was in flight:
                # register the newest identity too (the service's log
                # is append-only; intermediate paths become history).
            except (NetworkUnavailableError, KeypadError) as exc:
                if isinstance(exc, RevokedError):
                    self._pending_unlocks.pop(audit_id, None)
                    pending.event.fail(exc)
                    if ctx is not None:
                        ctx.finish(exc)
                    return None
                attempts += 1
                if attempts >= self._cfg(ctx).registration_max_retries:
                    self._pending_unlocks.pop(audit_id, None)
                    failure = LockedFileError(
                        f"metadata registration for {pending.path_hint} "
                        f"failed after {attempts} attempts"
                    )
                    pending.event.fail(failure)
                    if ctx is not None:
                        ctx.finish(failure)
                    return None
                yield self.sim.timeout(self._cfg(ctx).registration_retry_delay)

        # Unlock: the paper decrypts the on-disk key with IBE in a
        # background thread.  We hold the cleartext wrapped blob from
        # the lock step, so the IBE decryption cost is charged without
        # redundantly recomputing the identical bytes.  (A client that
        # crashed in between takes the _unlock_blocking path instead,
        # which performs the real IBE decryption.)
        yield self.sim.timeout(self.costs.keypad_ibe_decrypt)
        path_hint = pending.path_hint
        exists = yield from self.lower.exists(self._enc(path_hint))
        if exists:
            current = self._header_cache.get(path_hint)
            if current is not None and current.audit_id == audit_id and current.locked:
                new_header = current.unlocked_copy(pending.wrapped)
                yield from self._store_header(path_hint, new_header)
                self.stats["ibe_unlocks"] += 1
                # Restore the full expiration now that metadata is safe.
                self.key_cache.extend(audit_id, self._cfg(ctx).texp)
        self._pending_unlocks.pop(audit_id, None)
        if not pending.event.triggered:
            pending.event.succeed()
        if ctx is not None:
            ctx.finish()
        return None

    # ------------------------------------------------------------------
    # Remaining namespace operations.
    # ------------------------------------------------------------------
    def mkdir(self, path: str) -> Generator:
        self._count("mkdir")
        ctx = self._op_context("mkdir", path)
        try:
            yield from self._mkdir_inner(normalize(path), ctx)
        except BaseException as exc:
            if ctx is not None:
                ctx.finish(exc)
            raise
        if ctx is not None:
            ctx.finish()
        return None

    def _mkdir_inner(self, path: str, ctx: Optional[OpContext]) -> Generator:
        yield from self._charge("mkdir")
        yield from self.lower.mkdir(self._enc(path))
        if self.is_protected(path):
            parent_id = self._dir_id(parent_of(path))
            dir_id = self._new_dir_id()
            self._dir_ids[path] = dir_id
            if self._cfg(ctx).ibe_for_directories:
                # Extension: asynchronous directory registration.  Any
                # file registered under this directory waits (in the
                # background) for the dir ack, so its IBE lock cannot
                # resolve before the directory's metadata is durable.
                self.stats["async_metadata_ops"] += 1
                self._dir_acks[dir_id] = self.sim.event()
                self.sim.process(
                    self._register_dir_process(
                        dir_id, parent_id, basename(path)
                    ),
                    name=f"keypad-dirreg-{dir_id}",
                )
            else:
                self.stats["blocking_metadata_ops"] += 1
                yield from self.services.register(
                    DirRegistration(
                        dir_id=dir_id, parent_id=parent_id, name=basename(path)
                    ),
                    ctx,
                )
        return None

    def _register_dir_process(
        self, dir_id: str, parent_id: str, name: str
    ) -> Generator:
        attempts = 0
        ctx = self._background_context("dir-registration", name)
        while True:
            try:
                yield from self.services.register(
                    DirRegistration(
                        dir_id=dir_id, parent_id=parent_id, name=name
                    ),
                    ctx,
                )
                break
            except (NetworkUnavailableError, KeypadError) as exc:
                attempts += 1
                if attempts >= self._cfg(ctx).registration_max_retries:
                    if ctx is not None:
                        ctx.finish(exc)
                    return None  # ack never fires; files stay locked
                yield self.sim.timeout(self._cfg(ctx).registration_retry_delay)
        event = self._dir_acks.pop(dir_id, None)
        if event is not None and not event.triggered:
            event.succeed()
        if ctx is not None:
            ctx.finish()
        return None

    def rmdir(self, path: str) -> Generator:
        yield from super().rmdir(path)
        self._dir_ids.pop(normalize(path), None)
        return None

    def unlink(self, path: str) -> Generator:
        path = normalize(path)
        header = self._header_cache.get(path)
        yield from super().unlink(path)
        if header is not None and header.protected:
            self.key_cache.evict(header.audit_id)
        return None

    def truncate(self, path: str, size: int) -> Generator:
        """Truncation is a content operation: it must be audited too."""
        self._count("truncate")
        ctx = self._op_context("truncate", path)
        try:
            yield from self._charge("write")
            header = yield from self._header(path)
            if header.protected:
                yield from self._content_key(path, header, write=True, ctx=ctx)
            yield from self.lower.truncate(
                self._enc(path), self.HEADER_LEN + size
            )
            self._note_truncate(normalize(path), size)
        except BaseException as exc:
            if ctx is not None:
                ctx.finish(exc)
            raise
        if ctx is not None:
            ctx.finish()
        return None

    def set_xattr(self, path: str, name: str, value: bytes) -> Generator:
        """Extension: xattr updates are registered as metadata (§4)."""
        ctx = self._op_context("set_xattr", path)
        try:
            yield from self.lower.set_xattr(self._enc(path), name, value)
            if self._cfg(ctx).track_xattrs:
                header = yield from self._header(path)
                if header.protected:
                    request = XattrRegistration(
                        audit_id=header.audit_id, name=name, value=value
                    )
                    if self.services.write_behind:
                        # Xattr registrations need not block the caller;
                        # the session flushes them in batches.
                        self.stats["async_metadata_ops"] += 1
                        self.services.enqueue(request)
                        if ctx is not None and ctx.traced:
                            ctx.event("write-behind-enqueue")
                    else:
                        self.stats["blocking_metadata_ops"] += 1
                        yield from self.services.register(request, ctx)
        except BaseException as exc:
            if ctx is not None:
                ctx.finish(exc)
            raise
        if ctx is not None:
            ctx.finish()
        return None

    # ------------------------------------------------------------------
    # Extension: application-launch key-profile prefetching (§5.1.2).
    # ------------------------------------------------------------------
    def begin_launch_profile(self, app: str) -> None:
        self.launch_profiler.begin(app)

    def end_launch_profile(self) -> list[str]:
        return self.launch_profiler.end()

    def prefetch_launch_profile(self, app: str) -> Generator:
        """Batch-prefetch the keys an app's launch profile names."""
        candidates = []
        for path in self.launch_profiler.profile_for(app):
            exists = yield from self.lower.exists(self._enc(path))
            if not exists:
                continue
            try:
                header = yield from self._header(path)
            except Exception:
                continue
            if not header.protected or header.locked:
                continue
            if self.key_cache.get(header.audit_id, mark_used=False):
                continue
            candidates.append((path, header))
        if not candidates:
            return 0
        ctx = self._background_context("launch-prefetch")
        if ctx is not None:
            ctx.root.attrs["app"] = app
        try:
            keys = yield from self.services.fetch_many(
                [KeyFetch(h.audit_id, kind="profile-prefetch")
                 for _, h in candidates],
                ctx,
            )
        except BaseException as exc:
            if ctx is not None:
                ctx.finish(exc)
            raise
        if ctx is not None:
            ctx.finish()
        fetched = 0
        for (_path, header), remote_key in zip(candidates, keys):
            if not remote_key:
                continue
            data_key = unwrap_data_key(header.wrapped_kd, remote_key)
            self.key_cache.put(
                header.audit_id, remote_key, data_key,
                texp=self._cfg(ctx).texp, prefetched=True,
            )
            fetched += 1
        self.stats["prefetched_keys"] += fetched
        return fetched

    # ------------------------------------------------------------------
    # Device lifecycle.
    # ------------------------------------------------------------------
    def hibernate(self) -> Generator:
        """Evict all cached keys and (best-effort) notify the service.

        §6: "Cached keys should be evicted from memory upon device
        hibernation, and such evictions should be recorded on the
        audit servers."
        """
        count = self.key_cache.evict_all()
        ctx = self._background_context("hibernate")
        try:
            if self.services.write_behind:
                # Drain deferred traffic before sleeping: the notice
                # must not sit in a queue on a powered-down device.
                yield from self.services.flush()
            yield from self.services.notify(
                EvictionNotice(count=count, reason="hibernate"), ctx
            )
        except (NetworkUnavailableError, KeypadError) as exc:
            if ctx is not None:
                ctx.finish(exc)
            return None
        if ctx is not None:
            ctx.finish()
        return None

    def audit_id_of(self, path: str) -> Generator:
        """The audit ID bound to a protected file (forensics/tests)."""
        header = yield from self._header(path)
        return header.audit_id if header.protected else None

    @property
    def cache_stats(self) -> dict[str, int]:
        return {
            "hits": self.key_cache.hits,
            "misses": self.key_cache.misses,
            "refreshes": self.key_cache.refreshes,
            "expirations": self.key_cache.expirations,
        }
