"""``keypad-audit``: the victim-side forensic report tool.

The paper: "To support forensic analysis we built a simple Python tool;
given a Tloss timestamp and an expiration time, Texp, the tool
reconstructs a full-fidelity audit report of all accesses after
Tloss − Texp, including full path names and access timestamps."

Subcommands:

* ``keypad-audit report --bundle LOGS.json --tloss T --texp X``
  Produce the audit report from an exported log bundle.
* ``keypad-audit demo [--steal]``
  Run a small end-to-end simulation, export its logs, and report —
  a self-contained smoke test of the whole pipeline.
* ``keypad-audit forensics [--bundle LOGS.json] --view timeline|file-set|post-theft``
  Answer forensic queries from the materialized views
  (:mod:`repro.auditstore`), always reconciling each answer against
  the raw-log scan; exits 2 if any view disagrees with the log.
* ``keypad-audit cluster-demo [--replicas M --threshold K --crash I]``
  Run the same demo against a k-of-m replicated key-service cluster
  (optionally crashing a replica mid-run), merge the per-replica audit
  logs into one timeline, and cross-check them for divergences.
* ``keypad-audit bench --name fig7 [--jobs N --scale S --out DIR]``
  Regenerate one of the paper's figures/tables through the parallel
  experiment engine, rendering the table and writing the
  machine-readable ``BENCH_<name>.json`` perf record.
* ``keypad-audit trace [--check --fast --deadline S]``
  Run a small traced workload and print each operation's span tree
  (cache hit vs. blocking fetch vs. IBE work, with wire sizes), then
  reconcile the trace's blocking-RPC spans against the transport
  counters; exits 2 if the two bookkeeping paths disagree.
* ``keypad-audit fleet [--devices N --policy drr|fifo|none ...]``
  Drive a simulated device fleet against one key service (or a
  replicated cluster) through the server-side scheduler frontend and
  print the throughput / latency / fairness / shed summary.
* ``keypad-audit ctl <verb>`` — set-texp / revoke / add-dir / drain /
  tail-trace.  Each verb mounts a self-contained rig, opens the live
  control channel (docs/CONTROL.md), issues the admin command mid-run,
  and prints what changed — the runtime-reconfiguration pipeline end
  to end.

Exit codes map the error taxonomy (:mod:`repro.errors`): 0 success,
1 other Keypad error, 2 integrity/reconciliation mismatch,
3 deadline expired, 4 service unavailable, 5 overload shed,
6 control-channel error.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import (
    ControlError,
    DeadlineExpiredError,
    NetworkUnavailableError,
    OverloadSheddedError,
    ReproError,
    ServiceUnavailableError,
)
from repro.forensics.audit import AuditTool
from repro.forensics.export import export_logs, load_bundle

__all__ = ["main", "exit_code_for"]

#: Distinct exit codes per error class (most specific first; 2 is
#: reserved for integrity/reconciliation mismatches reported inline).
EXIT_DEADLINE = 3
EXIT_UNAVAILABLE = 4
EXIT_SHED = 5
EXIT_CONTROL = 6


def exit_code_for(exc: BaseException) -> int:
    """The ``keypad-audit`` exit code for an error from the taxonomy."""
    if isinstance(exc, ControlError):
        return EXIT_CONTROL
    if isinstance(exc, OverloadSheddedError):
        return EXIT_SHED
    if isinstance(exc, DeadlineExpiredError):
        return EXIT_DEADLINE
    if isinstance(exc, (ServiceUnavailableError, NetworkUnavailableError)):
        return EXIT_UNAVAILABLE
    return 1


def _cmd_report(args: argparse.Namespace) -> int:
    with open(args.bundle, "r", encoding="utf-8") as handle:
        text = handle.read()
    key_log, metadata = load_bundle(text)
    tool = AuditTool(key_log, metadata)
    report = tool.report(t_loss=args.tloss, texp=args.texp,
                         device_id=args.device)
    print(report.render())
    return 0 if report.logs_intact else 2


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.api import KeypadConfig
    from repro.harness import build_keypad_rig
    from repro.api import THREE_G

    rig = build_keypad_rig(
        network=THREE_G,
        config=KeypadConfig(texp=args.texp, prefetch="dir:3",
                            ibe_enabled=True),
    )

    def owner():
        yield from rig.fs.mkdir("/home")
        for name in ("medical.txt", "taxes.pdf", "notes.md"):
            yield from rig.fs.create(f"/home/{name}")
            yield from rig.fs.write(f"/home/{name}", 0, b"confidential")
        yield rig.sim.timeout(600.0)

    rig.run(owner())
    t_loss = rig.sim.now

    if args.steal:
        def thief():
            yield from rig.fs.read("/home/taxes.pdf", 0, 12)

        rig.run(thief())

    bundle = export_logs(rig.key_service, rig.metadata_service)
    if args.export:
        with open(args.export, "w", encoding="utf-8") as handle:
            handle.write(bundle)
        print(f"log bundle written to {args.export}", file=sys.stderr)

    key_log, metadata = load_bundle(bundle)
    tool = AuditTool(key_log, metadata)
    report = tool.report(t_loss=t_loss, texp=args.texp)
    print(report.render())
    return 0


def _forensics_demo_bundle(texp: float) -> tuple[str, float]:
    """A small stolen-device world, exported: the standalone input for
    ``forensics`` when no ``--bundle`` is given."""
    from repro.api import THREE_G, KeypadConfig
    from repro.harness import build_keypad_rig

    rig = build_keypad_rig(
        network=THREE_G,
        config=KeypadConfig(texp=texp, prefetch="dir:3", ibe_enabled=True),
    )

    def owner():
        yield from rig.fs.mkdir("/home")
        for name in ("medical.txt", "taxes.pdf", "notes.md"):
            yield from rig.fs.create(f"/home/{name}")
            yield from rig.fs.write(f"/home/{name}", 0, b"confidential")
        yield rig.sim.timeout(600.0)

    rig.run(owner())
    t_loss = rig.sim.now

    def thief():
        yield from rig.fs.read("/home/taxes.pdf", 0, 12)

    rig.run(thief())
    return export_logs(rig.key_service, rig.metadata_service), t_loss


def _entry_keys(entries) -> list[tuple[int, bytes]]:
    """The identity of an answer, for view-vs-scan reconciliation."""
    return [(e.sequence, e.chain_hash) for e in entries]


def _forensics_export_image(args: argparse.Namespace) -> int:
    """Run the stolen-device demo with a *durable* audit store and
    write its spilled blobs to a directory — the seized-disk input
    ``forensics --recover`` consumes."""
    import os

    from repro.api import THREE_G, KeypadConfig
    from repro.harness import build_keypad_rig

    config = (
        KeypadConfig.builder(
            KeypadConfig(texp=args.texp, prefetch="dir:3", ibe_enabled=True)
        )
        .audit_store("segmented", segment_entries=4, durable=True,
                     flush_policy="every-append")
        .build()
    )
    rig = build_keypad_rig(network=THREE_G, config=config)

    def owner():
        yield from rig.fs.mkdir("/home")
        for name in ("medical.txt", "taxes.pdf", "notes.md"):
            yield from rig.fs.create(f"/home/{name}")
            yield from rig.fs.write(f"/home/{name}", 0, b"confidential")
        yield rig.sim.timeout(600.0)

    rig.run(owner())
    t_loss = rig.sim.now

    def thief():
        yield from rig.fs.read("/home/taxes.pdf", 0, 12)

    rig.run(thief())
    rig.key_service.audit_checkpoint()

    stack = rig.extras["backend"]
    namespace = stack.blobs.namespace(rig.key_service.audit_namespace)
    os.makedirs(args.export_image, exist_ok=True)
    for name in sorted(namespace.names()):
        with open(os.path.join(args.export_image, name), "wb") as handle:
            handle.write(namespace.get(name))
    print(f"wrote {len(namespace)} audit blob(s) to {args.export_image} "
          f"(tloss={t_loss:.3f}); recover with:\n"
          f"  keypad-audit forensics --recover {args.export_image} "
          f"--segment-entries 4 --tloss {t_loss:.3f}")
    return 0


def _forensics_recover(args: argparse.Namespace) -> int:
    """Rebuild the audit log and its views from serialized segment
    blobs alone (a directory written by ``--export-image`` or pulled
    off a seized server disk), re-verify the seal chain, and reconcile
    every view answer against the recovered raw log.  Exit 2 on chain
    breaks or any view/scan disagreement."""
    import os

    from repro.auditstore import BlobImage, DurableAuditStore
    from repro.auditstore.log import DISCLOSING_KINDS
    from repro.errors import AuditRecoveryError

    image: dict[str, bytes] = {}
    for entry in sorted(os.listdir(args.recover)):
        path = os.path.join(args.recover, entry)
        if os.path.isfile(path):
            with open(path, "rb") as handle:
                image[entry] = handle.read()
    if not image:
        print(f"keypad-audit: no blobs found in {args.recover}",
              file=sys.stderr)
        return 1

    try:
        store = DurableAuditStore.recover(
            BlobImage(image),
            name=args.name,
            segment_entries=args.segment_entries,
        )
    except AuditRecoveryError as exc:
        print(f"RECOVERY FAILED: {exc}", file=sys.stderr)
        return 2

    stats = store.recovery
    if stats["checkpoint_used"]:
        checkpoint = f"used (upto {stats['checkpoint_upto']})"
    elif stats["checkpoint_discarded"] is not None:
        checkpoint = f"discarded ({stats['checkpoint_discarded']})"
    else:
        checkpoint = "absent"
    print(f"recovered {stats['recovered_entries']} entries from "
          f"{stats['sealed_segments']} sealed segment(s) + "
          f"{stats['tail_entries']} tail entries "
          f"(tail {stats['tail_state']}, checkpoint {checkpoint})")

    if not store.verify_chain():
        print("RECOVERY FAILED: the recovered seal chain does not "
              "verify", file=sys.stderr)
        return 2

    views = store.views
    mismatches = 0
    t_loss = args.tloss
    if t_loss is None:
        entries = store.entries()
        t_loss = entries[-1].timestamp if entries else 0.0
    window_start = t_loss - args.texp

    for device in views.devices():
        view_answer = views.device_timeline(device, since=window_start)
        scan_answer = store.entries(since=window_start, device_id=device)
        if _entry_keys(view_answer) != _entry_keys(scan_answer):
            mismatches += 1
            print(f"MISMATCH [timeline:{device}]: view answered "
                  f"{len(view_answer)}, raw scan {len(scan_answer)}",
                  file=sys.stderr)
        print(f"timeline {device}: {len(view_answer)} entries in window")
    post_theft = views.accesses_after(window_start)
    scan_answer = [
        e for e in store.entries(since=window_start)
        if e.kind in DISCLOSING_KINDS
    ]
    if _entry_keys(post_theft) != _entry_keys(scan_answer):
        mismatches += 1
        print(f"MISMATCH [post-theft]: view answered {len(post_theft)}, "
              f"raw scan {len(scan_answer)}", file=sys.stderr)
    print(f"post-theft window (since {window_start:.3f}): "
          f"{len(post_theft)} disclosing accesses")
    for entry in post_theft[:args.limit]:
        print(f"  [{entry.timestamp:10.3f}] {entry.device_id:<12} "
              f"{entry.kind}")

    if mismatches:
        print(f"RECONCILIATION FAILED: {mismatches} view/scan "
              f"mismatch(es)", file=sys.stderr)
        return 2
    print("recovered log chain intact; every rebuilt view answer "
          "matches the recovered raw scan")
    return 0


def _cmd_forensics(args: argparse.Namespace) -> int:
    """Answer forensic queries from the materialized views, then
    reconcile every answer against the raw-log scan (exit 2 on any
    disagreement — same contract as ``trace --check``)."""
    from repro.auditstore.log import DISCLOSING_KINDS

    if args.export_image is not None:
        return _forensics_export_image(args)
    if args.recover is not None:
        return _forensics_recover(args)

    if args.bundle is not None:
        if args.tloss is None:
            print("keypad-audit: forensics --bundle requires --tloss",
                  file=sys.stderr)
            return 1
        with open(args.bundle, "r", encoding="utf-8") as handle:
            text = handle.read()
        t_loss = args.tloss
    else:
        text, t_loss = _forensics_demo_bundle(args.texp)
        if args.tloss is not None:
            t_loss = args.tloss
    key_log, metadata = load_bundle(text)
    log = key_log.access_log
    views = key_log.views
    window_start = t_loss - args.texp

    mismatches = 0

    def reconcile(label: str, view_answer, scan_answer) -> None:
        nonlocal mismatches
        if _entry_keys(view_answer) != _entry_keys(scan_answer):
            mismatches += 1
            print(f"MISMATCH [{label}]: view answered "
                  f"{len(view_answer)} entries, raw scan "
                  f"{len(scan_answer)}", file=sys.stderr)

    def describe(entry) -> str:
        audit_id = entry.fields.get("audit_id")
        path = metadata.path_of(audit_id) if audit_id else None
        where = f" path={path}" if path else ""
        return (f"[{entry.timestamp:10.3f}] {entry.device_id:<12} "
                f"{entry.kind}{where}")

    print(f"view={args.view} window_start={window_start:.3f} "
          f"(tloss={t_loss:.3f} texp={args.texp})")

    if args.view == "timeline":
        devices = [args.device] if args.device else views.devices()
        for device in devices:
            view_answer = views.device_timeline(device, since=window_start)
            reconcile(
                f"timeline:{device}",
                view_answer,
                log.entries(since=window_start, device_id=device),
            )
            print(f"timeline {device}: {len(view_answer)} entries")
            for entry in view_answer[:args.limit]:
                print("  " + describe(entry))
    elif args.view == "file-set":
        if args.audit_id:
            audit_ids = [bytes.fromhex(args.audit_id)]
        else:
            audit_ids = views.audit_ids()
        for audit_id in audit_ids:
            view_answer = views.file_accesses(audit_id, since=window_start)
            scan_answer = [
                e for e in log.entries(since=window_start)
                if e.kind in DISCLOSING_KINDS
                and e.fields.get("audit_id") == audit_id
            ]
            reconcile(f"file-set:{audit_id.hex()[:12]}",
                      view_answer, scan_answer)
            path = metadata.path_of(audit_id) or f"id {audit_id.hex()[:12]}…"
            accessors = sorted({e.device_id for e in view_answer})
            print(f"{path}: {len(view_answer)} accesses by "
                  f"{', '.join(accessors) if accessors else 'nobody'}")
    else:  # post-theft
        view_answer = views.accesses_after(window_start,
                                           device_id=args.device)
        scan_answer = [
            e for e in log.entries(since=window_start,
                                   device_id=args.device)
            if e.kind in DISCLOSING_KINDS
        ]
        reconcile("post-theft", view_answer, scan_answer)
        print(f"post-theft window: {len(view_answer)} disclosing "
              f"accesses")
        for entry in view_answer[:args.limit]:
            print("  " + describe(entry))

    chain_ok = log.verify_chain()
    print(f"log chain: {'intact' if chain_ok else 'BROKEN'}; "
          f"view stats: {views.stats()}")
    if mismatches or not chain_ok:
        print(f"RECONCILIATION FAILED: {mismatches} view/scan "
              f"mismatch(es), chain_ok={chain_ok}", file=sys.stderr)
        return 2
    print("reconciled: every view answer matches the raw-log scan")
    return 0


def _cmd_cluster_demo(args: argparse.Namespace) -> int:
    from repro.cluster import FaultEvent, FaultInjector, FaultPlan
    from repro.api import KeypadConfig
    from repro.harness import build_keypad_rig
    from repro.harness.experiment import DEVICE_ID
    from repro.api import THREE_G

    config = (
        KeypadConfig.builder()
        .texp(args.texp)
        .prefetch("dir:3")
        .replication(args.threshold, args.replicas)
        .build()
    )
    rig = build_keypad_rig(network=THREE_G, config=config)

    injector = FaultInjector(
        rig.sim,
        {link.name: link for link in rig.replica_links},
        rig.replica_group,
    )
    if args.crash is not None:
        injector.run(FaultPlan([
            FaultEvent(at=args.crash_at, action="crash",
                       target=f"replica:{args.crash}",
                       duration=args.crash_duration),
        ]))

    def owner():
        yield from rig.fs.mkdir("/home")
        for name in ("medical.txt", "taxes.pdf", "notes.md"):
            yield from rig.fs.create(f"/home/{name}")
            yield from rig.fs.write(f"/home/{name}", 0, b"confidential")
        # Re-read after the caches expire so fetches hit the cluster,
        # including inside any injected crash window.
        yield rig.sim.timeout(args.texp + 10.0)
        for name in ("medical.txt", "taxes.pdf", "notes.md"):
            yield from rig.fs.read(f"/home/{name}", 0, 12)
        yield rig.sim.timeout(600.0)

    rig.run(owner())
    t_loss = rig.sim.now

    if args.steal:
        def thief():
            yield from rig.fs.read("/home/taxes.pdf", 0, 12)

        rig.run(thief())

    cluster_log = rig.cluster_audit_log()
    tool = AuditTool(cluster_log, rig.metadata_service)
    report = tool.report(t_loss=t_loss, texp=args.texp)
    print(report.render())
    print()
    print(f"MERGED CLUSTER TIMELINE ({args.threshold}-of-{args.replicas})")
    for access in cluster_log.merged():
        print("  " + access.describe())
    divergences = cluster_log.divergences(DEVICE_ID)
    print(f"  divergences: {len(divergences)}")
    for divergence in divergences:
        print("  !! " + divergence.describe())
    if injector.trace:
        print("  faults injected:")
        for at, what in injector.trace:
            print(f"    [{at:.3f}] {what}")
    metrics = rig.services.cluster.metrics.as_dict()
    print("  client metrics: "
          + ", ".join(f"{k}={v}" for k, v in metrics.items() if v))
    return 0 if not divergences and report.logs_intact else 2


#: CLI bench name -> module-level table builder (all accept jobs=;
#: the compile-based ones also accept scale=).
_BENCHES = {
    "fig6a": ("repro.harness.microbench", "fig6a_content_ops", False),
    "fig6b": ("repro.harness.microbench", "fig6b_metadata_ops", False),
    "fig7": ("repro.harness.compilebench", "fig7_key_expiration", True),
    "fig8a": ("repro.harness.compilebench", "fig8a_ibe_effect", True),
    "fig8b": ("repro.harness.compilebench", "fig8b_paired_device", True),
    "fig10": ("repro.harness.compilebench", "fig10_fs_comparison", True),
    "fig11": ("repro.harness.exposurebench", "fig11_key_exposure", False),
    "prefetch": ("repro.harness.compilebench",
                 "prefetch_policy_comparison", True),
    "ablation-ibe": ("repro.harness.compilebench", "ablation_ibe_cost", True),
}


def _cmd_bench(args: argparse.Namespace) -> int:
    import importlib

    from repro.harness.runner import write_bench_json

    module_name, fn_name, takes_scale = _BENCHES[args.name]
    fn = getattr(importlib.import_module(module_name), fn_name)
    kwargs = {"jobs": args.jobs}
    if takes_scale and args.scale is not None:
        kwargs["scale"] = args.scale
    table = fn(**kwargs)
    print(table.render())
    perf = getattr(table, "perf", None)
    if perf is not None:
        path = write_bench_json(perf, args.out)
        print(f"perf record written to {path}", file=sys.stderr)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.api import KeypadConfig
    from repro.harness import build_keypad_rig
    from repro.api import THREE_G

    config = KeypadConfig(
        texp=args.texp, prefetch="dir:3", ibe_enabled=True,
    ).with_tracing(op_deadline=args.deadline)
    if args.fast:
        config = config.with_fast_transport()
    rig = build_keypad_rig(network=THREE_G, config=config)

    def workload():
        yield from rig.fs.mkdir("/home")
        for name in ("medical.txt", "taxes.pdf", "notes.md", "diary.txt"):
            yield from rig.fs.create(f"/home/{name}")
            yield from rig.fs.write(f"/home/{name}", 0, b"confidential")
        # Let every cached key expire, then re-read: the reads force
        # blocking fetches and (on the third miss) a directory prefetch.
        yield rig.sim.timeout(args.texp + 10.0)
        for name in ("medical.txt", "taxes.pdf", "notes.md", "diary.txt"):
            yield from rig.fs.read(f"/home/{name}", 0, 12)
        # Drain background registrations / write-behind flushes.
        yield rig.sim.timeout(30.0)

    rig.run(workload())
    collector = rig.tracer
    if not args.check:
        print(collector.render(max_ops=args.max_ops))
        print()

    merged = rig.services.channel_metrics()
    counter_blocking = (merged.calls - merged.handshakes
                        - rig.services.metrics.write_behind_flushes)
    trace_blocking = collector.blocking_rpcs()
    print(f"trace: {collector.op_count} ops, "
          f"{collector.rpc_total} RPC spans "
          f"({collector.rpc_handshakes} handshakes, "
          f"{collector.rpc_nonblocking} non-blocking), "
          f"deadline expiries: {collector.deadline_expiries}")
    print(f"reconciliation: blocking RPC spans = {trace_blocking}, "
          f"channel counters (calls - handshakes - flushes) = "
          f"{counter_blocking}")
    if trace_blocking != counter_blocking:
        print("MISMATCH: the span tree and the transport counters "
              "disagree about blocking round-trips", file=sys.stderr)
        return 2
    print("reconciled: span tree matches the blocking-RPC counters")
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.api import run_fleet

    frontend = None
    if args.policy != "none":
        frontend = {
            "workers": args.workers,
            "queue_limit": args.queue_limit,
            "policy": args.policy,
            "coalesce": args.coalesce,
        }
    result = run_fleet(
        devices=args.devices,
        duration=args.duration,
        seed=args.seed.encode(),
        scanner_fraction=args.scanners,
        frontend=frontend,
        replicas=args.replicas,
        threshold=args.threshold,
    )
    summary = result.summary()
    print(f"fleet: {summary['devices']} devices, "
          f"{summary['duration_s']:.0f}s, policy={summary['policy']}")
    print(f"  requested={summary['requested']} "
          f"completed={summary['completed']} shed={summary['shed']} "
          f"expired={summary['expired']} failed={summary['failed']}")
    print(f"  throughput={summary['throughput_keys_per_s']:.1f} keys/s  "
          f"p50={summary['fetch_p50_ms']:.2f} ms  "
          f"p99={summary['fetch_p99_ms']:.2f} ms  "
          f"shed_rate={summary['shed_rate']:.3f}")
    fairness = summary["fairness_nonscanner"]
    print("  fairness (worst non-scanner max/min goodput): "
          + (f"{fairness:.2f}" if fairness is not None else
             "n/a (a device was starved)"))
    for name, row in sorted(summary["per_profile"].items()):
        print(f"    {name:<9} n={row['devices']:<6} "
              f"goodput={row['mean_goodput_keys_per_s']:.2f} keys/s/dev  "
              f"shed={row['shed']}")
    return 0


def _ctl_rig(args: argparse.Namespace):
    """One small mounted world for a ``ctl`` verb demo."""
    from repro.api import KeypadConfig, open_control
    from repro.harness import build_keypad_rig

    builder = (
        KeypadConfig.builder()
        .texp(args.texp)
        .tracing()
        .frontend(workers=4)
        .storage(args.backend)
    )
    rig = build_keypad_rig(config=builder.build())

    def owner():
        yield from rig.fs.mkdir("/home")
        for name in ("medical.txt", "taxes.pdf", "notes.md"):
            yield from rig.fs.create(f"/home/{name}")
            yield from rig.fs.write(f"/home/{name}", 0, b"confidential")

    rig.run(owner())
    return rig, open_control(rig)


def _fed_rig(args: argparse.Namespace):
    """One small federated world for the ``ctl region-*`` verbs: the
    configured regions with the device homed in the first."""
    from repro.api import KeypadConfig, Topology, open_control
    from repro.harness import build_keypad_rig

    topo = Topology.symmetric(
        regions=tuple(name.strip() for name in args.regions.split(",")),
        replicas_per_region=args.replicas_per_region,
        threshold=args.k,
        rtt_ms=args.rtt_ms,
    )
    config = (
        KeypadConfig.builder()
        .texp(args.texp)
        .federation(topology=topo)
        .build()
    )
    rig = build_keypad_rig(config=config, home_region=topo.region_names[0])
    return rig, open_control(rig), topo


def _cmd_ctl_region(args: argparse.Namespace) -> int:
    from repro.cluster import FaultInjector, FaultPlan

    rig, ctl, topo = _fed_rig(args)
    group = rig.replica_group
    home = topo.region_names[0]
    fs = rig.fs
    files = ("medical.txt", "taxes.pdf", "notes.md")

    if args.verb == "region-status":
        def scenario():
            yield from fs.mkdir("/home")
            yield from fs.write_file("/home/probe.txt", b"probe")
            if args.crash_region:
                for i in topo.replica_indices(args.crash_region):
                    group.crash(i)
            # Let gossip converge on the (possibly degraded) view.
            yield rig.sim.timeout(3 * topo.dead_after)
            status = yield from ctl.region_status()
            return status

        status = rig.run(scenario())
        print(f"federation status at t={status['at']:.3f}")
        degraded = []
        for name in topo.region_names:
            row = status["regions"][name]
            if not row["available"]:
                degraded.append(name)
            print(f"  region {name:<8} replicas={row['replicas']} "
                  f"available={row['available']} "
                  f"[{'ok' if row['available'] else 'DOWN'}]")
        for member, state in sorted(status["members"].items()):
            print(f"  member {member:<16} {state}")
        for shard in sorted(status["leaders"], key=int):
            holder = status["leaders"][shard]
            print(f"  shard {shard}: leader={holder or 'none'}")
        if degraded:
            print("regions without an available replica: "
                  + ", ".join(degraded), file=sys.stderr)
            return EXIT_UNAVAILABLE
        return 0

    # partition-report
    region = args.partition or home
    injector = FaultInjector(
        rig.sim,
        {link.name: link for link in rig.replica_links},
        group,
    )
    injector.register_region(
        region,
        [link for j, link in enumerate(rig.replica_links)
         if (group.region_labels[j] == region) != (home == region)]
        + group.gossip_links_crossing(region),
    )

    def scenario():
        yield from fs.mkdir("/home")
        for name in files:
            yield from fs.write_file(f"/home/{name}", b"confidential")
        yield rig.sim.timeout(5.0)  # let background registration settle
        injector.run(FaultPlan.region_partition(
            region, at=0.0, duration=args.duration))
        # Fetch during the split: evict caches so reads hit the cluster.
        fs.key_cache.evict_all()
        for name in files:
            try:
                yield from fs.read_all(f"/home/{name}")
            except ReproError:
                pass  # under-threshold inside the split — expected
        # Register a fresh key inside the split: it cannot reach a
        # threshold of replicas, but the reachable in-region replicas
        # still log the attempt — the confined entries the merge
        # classifies as a region-split.
        import hashlib

        from repro.core.client import KeyCreate

        try:
            yield from rig.services.create(KeyCreate(
                audit_id=hashlib.sha256(b"partition-demo").digest()[:24]))
        except ReproError:
            pass  # needs k acks; the split allows fewer
        # Outlast the window, then prove a post-heal read converges.
        # Only one file is re-read: the others' split-confined audit
        # entries stay visible in the partition report.
        yield rig.sim.timeout(args.duration + 3 * topo.dead_after)
        fs.key_cache.evict_all()
        data = yield from fs.read_all(f"/home/{files[0]}")
        assert data == b"confidential"
        report = yield from ctl.region_partition_report()
        return report

    report = rig.run(scenario())
    print(f"partitioned region {region!r} for {args.duration:g}s")
    for at, what in injector.trace:
        print(f"  [{at:.3f}] {what}")
    print(f"region splits detected: {report['split_count']}")
    for detail in report["splits"]:
        print("  !! " + detail)
    conv = report["convergence"]
    print(f"post-heal merge: {conv['merged_accesses']} accesses from "
          f"{conv['entries']} entries; missing={conv['missing_entries']} "
          f"duplicates={conv['duplicate_groups']} "
          f"lost={conv['lost_entries']}")
    if not conv["converged"]:
        print("CONVERGENCE FAILED: the healed merge lost or duplicated "
              "entries", file=sys.stderr)
        return 2
    print("converged: every entry from both sides of the split appears "
          "exactly once")
    return 0


def _cmd_ctl(args: argparse.Namespace) -> int:
    if args.verb in ("region-status", "partition-report"):
        return _cmd_ctl_region(args)
    rig, ctl = _ctl_rig(args)
    fs = rig.fs

    if args.verb == "set-texp":
        def scenario():
            before = yield from ctl.status()
            result = yield from ctl.set_texp(args.value, args.inflight)
            return before, result

        before, result = rig.run(scenario())
        print(f"texp: {before['texp']} -> {result['texp']} "
              f"(inflight {result['texp_inflight']}, "
              f"policy epoch {before['epoch']} -> {result['epoch']})")
        return 0

    if args.verb == "revoke":
        device = args.device or rig.services.device_id

        def scenario():
            result = yield from ctl.revoke(device)
            fs.key_cache.evict_all()
            try:
                yield from fs.read("/home/taxes.pdf", 0, 12)
            except ReproError as exc:
                return result, f"{type(exc).__name__}: {exc}"
            return result, None

        result, refusal = rig.run(scenario())
        print(f"revoked {result['revoked']} at "
              f"{result['services']} service(s)")
        if refusal is None:
            print("ERROR: a cold read still succeeded after revocation",
                  file=sys.stderr)
            return 2
        print(f"cold read refused: {refusal}")
        return 0

    if args.verb == "add-dir":
        def scenario():
            result = yield from ctl.add_dir(args.path)
            return result

        result = rig.run(scenario())
        print(f"protected prefixes (epoch {result['epoch']}): "
              + " ".join(result["protected_prefixes"]))
        return 0

    if args.verb == "drain":
        def scenario():
            result = yield from ctl.drain(args.index)
            fs.key_cache.evict_all()
            try:
                yield from fs.read("/home/taxes.pdf", 0, 12)
                shed = False
            except OverloadSheddedError:
                shed = True
            yield from ctl.admit(args.index)
            yield from fs.read("/home/taxes.pdf", 0, 12)
            return result, shed

        result, shed = rig.run(scenario())
        frontends = rig.extras.get("frontends", [])
        print(f"drained {result['draining']} frontend(s); cold read while "
              f"draining was {'shed' if shed else 'NOT shed'}; "
              "re-admitted and served")
        for i, frontend in enumerate(frontends):
            print(f"  frontend[{i}]: "
                  f"shed_draining={frontend.metrics.shed_draining}")
        return 0 if shed else 2

    # tail-trace
    def scenario():
        fs.key_cache.evict_all()
        for name in ("medical.txt", "taxes.pdf", "notes.md"):
            yield from fs.read(f"/home/{name}", 0, 12)
        page = yield from ctl.tail_trace(cursor=args.cursor,
                                         limit=args.limit)
        return page

    page = rig.run(scenario())
    print(f"trace: {page['total']} ops total, cursor -> {page['cursor']}")
    for op in page["ops"]:
        print(f"  [{op['start']:9.3f}] {op['op']:<8} {op['path']:<20} "
              f"{op['status']:<6} {op['duration'] * 1e3:8.2f} ms "
              f"({op['spans']} spans)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="keypad-audit",
        description="Keypad forensic audit report tool",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="report from an exported bundle")
    report.add_argument("--bundle", required=True,
                        help="path to the exported JSON log bundle")
    report.add_argument("--tloss", type=float, required=True,
                        help="Tloss: last time the owner had the device")
    report.add_argument("--texp", type=float, default=100.0,
                        help="key expiration time Texp (default 100s)")
    report.add_argument("--device", default=None,
                        help="restrict to one device id")
    report.set_defaults(func=_cmd_report)

    demo = sub.add_parser("demo", help="self-contained simulation demo")
    demo.add_argument("--steal", action="store_true",
                      help="include a post-loss thief access")
    demo.add_argument("--texp", type=float, default=100.0)
    demo.add_argument("--export", default=None,
                      help="also write the log bundle to this path")
    demo.set_defaults(func=_cmd_demo)

    forensics = sub.add_parser(
        "forensics",
        help="answer forensic queries from materialized views, "
             "reconciled against the raw-log scan",
    )
    forensics.add_argument("--bundle", default=None,
                           help="exported JSON log bundle (default: run "
                                "a self-contained stolen-device demo)")
    forensics.add_argument("--view",
                           choices=("timeline", "file-set", "post-theft"),
                           default="post-theft",
                           help="which materialized view answers "
                                "(default post-theft)")
    forensics.add_argument("--tloss", type=float, default=None,
                           help="Tloss (required with --bundle; the demo "
                                "provides its own)")
    forensics.add_argument("--texp", type=float, default=100.0,
                           help="key expiration time Texp (default 100s)")
    forensics.add_argument("--device", default=None,
                           help="restrict to one device id")
    forensics.add_argument("--audit-id", default=None,
                           help="hex audit ID for --view file-set "
                                "(default: every known file)")
    forensics.add_argument("--limit", type=int, default=20,
                           help="max entries printed per answer "
                                "(default 20)")
    forensics.add_argument("--recover", default=None, metavar="DIR",
                           help="rebuild log + views from serialized "
                                "segment blobs in DIR alone (exit 2 on "
                                "chain breaks)")
    forensics.add_argument("--export-image", default=None, metavar="DIR",
                           help="run the durable stolen-device demo and "
                                "write its audit blobs to DIR for "
                                "--recover")
    forensics.add_argument("--name", default="key-access",
                           help="audit log name for --recover "
                                "(default key-access)")
    forensics.add_argument("--segment-entries", type=int, default=1024,
                           help="segment capacity for --recover "
                                "(default 1024)")
    forensics.set_defaults(func=_cmd_forensics)

    cluster = sub.add_parser(
        "cluster-demo",
        help="replicated key-service demo with fault injection",
    )
    cluster.add_argument("--replicas", type=int, default=3,
                         help="replica count m (default 3)")
    cluster.add_argument("--threshold", type=int, default=2,
                         help="share threshold k (default 2)")
    cluster.add_argument("--texp", type=float, default=100.0)
    cluster.add_argument("--steal", action="store_true",
                         help="include a post-loss thief access")
    cluster.add_argument("--crash", type=int, default=None, metavar="I",
                         help="crash replica I during the run")
    cluster.add_argument("--crash-at", type=float, default=100.0,
                         help="crash start time (default 100)")
    cluster.add_argument("--crash-duration", type=float, default=60.0,
                         help="crash window length (default 60)")
    cluster.set_defaults(func=_cmd_cluster_demo)

    bench = sub.add_parser(
        "bench",
        help="regenerate a figure/table via the parallel experiment engine",
    )
    bench.add_argument("--name", required=True, choices=sorted(_BENCHES),
                       help="which figure/table to regenerate")
    bench.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: KEYPAD_BENCH_JOBS "
                            "or 1 = serial)")
    bench.add_argument("--scale", type=float, default=None,
                       help="workload scale for compile-based benches "
                            "(default: KEYPAD_BENCH_SCALE or 0.3)")
    bench.add_argument("--out", default="benchmarks/results",
                       help="directory for the BENCH_<name>.json record")
    bench.set_defaults(func=_cmd_bench)

    trace = sub.add_parser(
        "trace",
        help="per-op span trees from a traced workload, reconciled "
             "against the transport counters",
    )
    trace.add_argument("--texp", type=float, default=100.0)
    trace.add_argument("--deadline", type=float, default=None,
                       help="per-operation deadline in sim seconds "
                            "(default: none)")
    trace.add_argument("--fast", action="store_true",
                       help="enable the v2 transport (pipelining, "
                            "coalescing, write-behind)")
    trace.add_argument("--max-ops", type=int, default=40,
                       help="cap on rendered per-op trees (default 40)")
    trace.add_argument("--check", action="store_true",
                       help="reconciliation only (no trees); exit 2 on "
                            "mismatch")
    trace.set_defaults(func=_cmd_trace)

    fleet = sub.add_parser(
        "fleet",
        help="drive a simulated device fleet through the server frontend",
    )
    fleet.add_argument("--devices", type=int, default=100,
                       help="fleet size (default 100)")
    fleet.add_argument("--duration", type=float, default=30.0,
                       help="simulated seconds to run (default 30)")
    fleet.add_argument("--policy", choices=("drr", "fifo", "none"),
                       default="drr",
                       help="frontend scheduler; 'none' = the legacy "
                            "unbounded server (default drr)")
    fleet.add_argument("--workers", type=int, default=8,
                       help="concurrent server workers (default 8)")
    fleet.add_argument("--queue-limit", type=int, default=64,
                       help="per-device pending-request bound (default 64)")
    fleet.add_argument("--coalesce", type=int, default=8,
                       help="max cross-device group-commit size (default 8)")
    fleet.add_argument("--scanners", type=float, default=0.10,
                       help="fraction of file-scanner devices (default 0.1)")
    fleet.add_argument("--seed", default="fleet",
                       help="deterministic fleet seed (default 'fleet')")
    fleet.add_argument("--replicas", type=int, default=1,
                       help="key-service replicas (default 1 = single)")
    fleet.add_argument("--threshold", type=int, default=1,
                       help="secret-share threshold k (default 1)")
    fleet.set_defaults(func=_cmd_fleet)

    ctl = sub.add_parser(
        "ctl",
        help="runtime control-channel verbs against a demo rig",
    )
    ctl.add_argument("--texp", type=float, default=100.0,
                     help="mount-time Texp (default 100s)")
    ctl.add_argument("--backend", choices=("ext3", "memory", "cas"),
                     default="ext3",
                     help="storage backend to mount (default ext3)")
    ctl_sub = ctl.add_subparsers(dest="verb", required=True)

    set_texp = ctl_sub.add_parser(
        "set-texp", help="change Texp on the live mount")
    set_texp.add_argument("value", type=float,
                          help="new Texp in seconds (0 disables caching)")
    set_texp.add_argument("--inflight", type=float, default=None,
                          help="also change the in-flight Texp bound")

    revoke = ctl_sub.add_parser(
        "revoke", help="revoke a device, then prove cold reads fail")
    revoke.add_argument("--device", default=None,
                        help="device id (default: the rig's laptop)")

    add_dir = ctl_sub.add_parser(
        "add-dir", help="add a protected directory prefix")
    add_dir.add_argument("path", help="absolute directory path")

    drain = ctl_sub.add_parser(
        "drain", help="drain the frontend, show the shed, re-admit")
    drain.add_argument("--index", type=int, default=None,
                       help="frontend index (default: all)")

    tail = ctl_sub.add_parser(
        "tail-trace", help="stream live per-op trace spans")
    tail.add_argument("--cursor", type=int, default=0,
                      help="resume cursor from a previous page (default 0)")
    tail.add_argument("--limit", type=int, default=50,
                      help="max ops per page (default 50)")

    region_status = ctl_sub.add_parser(
        "region-status",
        help="per-region availability, gossip membership, and shard "
             "leaders of a federated rig (exit 4 if a region has no "
             "available replica)")
    region_status.add_argument(
        "--crash-region", default=None, metavar="NAME",
        help="crash every replica in this region first, to demo the "
             "degraded view")

    partition_report = ctl_sub.add_parser(
        "partition-report",
        help="sever a region mid-run, heal it, and print the merged "
             "audit timeline's region-split and convergence report "
             "(exit 2 if the merge lost or duplicated entries)")
    partition_report.add_argument(
        "--partition", default=None, metavar="NAME",
        help="region to sever (default: the device's home region)")
    partition_report.add_argument(
        "--duration", type=float, default=20.0,
        help="partition window in sim seconds (default 20)")

    for fed in (region_status, partition_report):
        fed.add_argument("--regions", default="us,eu,ap",
                         help="comma-separated region names "
                              "(default us,eu,ap)")
        fed.add_argument("--replicas-per-region", type=int, default=2,
                         help="replicas hosted per region (default 2)")
        fed.add_argument("--k", type=int, default=3,
                         help="secret-share threshold (default 3, so a "
                              "severed region is under-threshold)")
        fed.add_argument("--rtt-ms", type=float, default=60.0,
                         help="inter-region RTT in ms (default 60)")

    ctl.set_defaults(func=_cmd_ctl)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"keypad-audit: {type(exc).__name__}: {exc}", file=sys.stderr)
        return exit_code_for(exc)


if __name__ == "__main__":
    raise SystemExit(main())
