"""Gossip-based membership for the federated key-service cluster.

Each replica hosts one :class:`GossipAgent` that runs seeded
anti-entropy rounds over the ordinary :class:`~repro.net.rpc.RpcChannel`
wire (``gossip.exchange`` is just another authenticated verb on the
replica's server).  Every round the agent bumps its own heartbeat,
picks ``fanout`` peers from its seeded stream, and push-pulls its
member view; a peer whose heartbeat stops advancing decays through
``alive -> suspect -> dead`` on the local clock.  Because the draws,
the link delays, and the event kernel are all deterministic, two
same-seed runs produce identical membership transition traces — the
property the fault-plan tests pin down.

A crashed replica (``server.available == False``) neither emits rounds
nor answers exchanges, so the rest of the federation sees its heartbeat
stall and marks it dead; a region partition downs the inter-region
gossip links, so each side marks the *other* side dead and re-merges
heartbeats after heal.  Lease tables for per-shard leader election
(:mod:`repro.cluster.election`) piggyback on the same exchanges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.errors import (
    NetworkUnavailableError,
    RpcError,
    ServiceUnavailableError,
)
from repro.sim import Simulation
from repro.sim.rand import SimRandom

__all__ = ["ALIVE", "SUSPECT", "DEAD", "MemberView", "GossipAgent"]

#: membership states, in decay order
ALIVE, SUSPECT, DEAD = "alive", "suspect", "dead"

#: exchange failures that mean "peer unreachable this round", not a bug
_EXCHANGE_FAILURES = (
    NetworkUnavailableError,
    ServiceUnavailableError,
    RpcError,
)


@dataclass
class MemberView:
    """One member as seen locally: the highest heartbeat we have heard
    and the *local* time we heard it advance (freshness is always
    judged on the observer's clock, never the peer's)."""

    member_id: str
    region: str
    heartbeat: int
    advanced_at: float

    def to_wire(self) -> dict:
        return {
            "id": self.member_id,
            "region": self.region,
            "heartbeat": self.heartbeat,
        }


class GossipAgent:
    """The per-replica membership daemon.

    Registers ``gossip.exchange`` on the replica's own RPC server and
    gossips outward over per-peer channels installed via
    :meth:`connect`.  The agent never invents state: its view advances
    only on heartbeats (its own or merged ones), so a partitioned or
    crashed member can only *decay*, never flap alive.
    """

    def __init__(
        self,
        sim: Simulation,
        member_id: str,
        region: str,
        server: Any,
        rng: SimRandom,
        interval: float = 0.5,
        fanout: int = 2,
        suspect_after: float = 2.0,
        dead_after: float = 5.0,
        leases: Optional[Any] = None,
    ):
        if interval <= 0:
            raise ValueError("gossip interval must be positive")
        self.sim = sim
        self.member_id = member_id
        self.region = region
        self.server = server
        self.rng = rng
        self.interval = interval
        self.fanout = max(1, fanout)
        self.suspect_after = suspect_after
        self.dead_after = dead_after
        #: optional :class:`~repro.cluster.election.LeaseManager`
        self.leases = leases
        self.view: Dict[str, MemberView] = {
            member_id: MemberView(member_id, region, 0, sim.now)
        }
        self.peers: Dict[str, Any] = {}
        self.rounds = 0
        #: (time, member, status) transition trace; same-seed runs
        #: produce byte-identical traces.
        self.transitions: List[Tuple[float, str, str]] = []
        self._statuses: Dict[str, str] = {member_id: ALIVE}
        # Stagger the first round so m agents don't all fire at t=0 in
        # lockstep; the phase comes from the seeded stream.
        self._phase = self.rng.uniform(0.0, interval)
        server.register("gossip.exchange", self._handle_exchange)

    # -- wiring ------------------------------------------------------------
    def connect(self, member_id: str, channel: Any, region: str) -> None:
        """Attach the outbound channel for one peer and seed its view
        entry (heartbeat 0: known, but not yet heard from)."""
        self.peers[member_id] = channel
        if member_id not in self.view:
            self.view[member_id] = MemberView(member_id, region, 0, self.sim.now)
            self._statuses[member_id] = ALIVE

    # -- view --------------------------------------------------------------
    def _export(self) -> List[dict]:
        return [self.view[mid].to_wire() for mid in sorted(self.view)]

    def _merge(self, records: List[dict]) -> None:
        now = self.sim.now
        for rec in records:
            try:
                mid = str(rec["id"])
                region = str(rec["region"])
                heartbeat = int(rec["heartbeat"])
            except (KeyError, TypeError, ValueError):
                continue  # malformed entry: ignore, never crash the round
            known = self.view.get(mid)
            if known is None:
                self.view[mid] = MemberView(mid, region, heartbeat, now)
            elif heartbeat > known.heartbeat:
                known.heartbeat = heartbeat
                known.advanced_at = now

    def status_of(self, member_id: str, now: Optional[float] = None) -> str:
        """alive/suspect/dead by local heartbeat freshness."""
        if now is None:
            now = self.sim.now
        if member_id == self.member_id:
            return ALIVE if self.server.available else DEAD
        view = self.view[member_id]
        age = now - view.advanced_at
        if age >= self.dead_after:
            return DEAD
        if age >= self.suspect_after:
            return SUSPECT
        return ALIVE

    def statuses(self) -> Dict[str, str]:
        now = self.sim.now
        return {mid: self.status_of(mid, now) for mid in sorted(self.view)}

    def alive_members(self) -> List[str]:
        return [m for m, s in self.statuses().items() if s == ALIVE]

    def _poll_transitions(self) -> None:
        now = self.sim.now
        for mid, status in self.statuses().items():
            if self._statuses.get(mid) != status:
                self._statuses[mid] = status
                self.transitions.append((now, mid, status))

    # -- the exchange verb (server side) -----------------------------------
    def _handle_exchange(self, device_id: str, payload: dict) -> dict:
        self._merge(payload.get("members") or [])
        if self.leases is not None:
            self.leases.merge(payload.get("leases") or [], self.sim.now)
        return {
            "members": self._export(),
            "leases": self.leases.export() if self.leases is not None else [],
        }

    # -- the anti-entropy loop (client side) --------------------------------
    def _pick_peers(self) -> List[str]:
        ids = sorted(self.peers)
        if len(ids) <= self.fanout:
            return ids
        return sorted(self.rng.sample(ids, self.fanout))

    def run(self) -> Generator:
        """Sim process: one anti-entropy round per interval, forever."""
        yield self.sim.timeout(self._phase)
        while True:
            yield self.sim.timeout(self.interval)
            if not self.server.available:
                # A crashed replica is silent: no heartbeat, no gossip.
                # Peers watch the stall and decay it to dead.
                continue
            self.rounds += 1
            mine = self.view[self.member_id]
            mine.heartbeat += 1
            mine.advanced_at = self.sim.now
            for peer_id in self._pick_peers():
                try:
                    reply = yield from self.peers[peer_id].call(
                        "gossip.exchange",
                        members=self._export(),
                        leases=(
                            self.leases.export()
                            if self.leases is not None
                            else []
                        ),
                    )
                except _EXCHANGE_FAILURES:
                    continue  # unreachable this round; freshness decays
                self._merge(reply.get("members") or [])
                if self.leases is not None:
                    self.leases.merge(
                        reply.get("leases") or [], self.sim.now
                    )
            if self.leases is not None:
                self.leases.tick(self.alive_members(), self.sim.now)
            self._poll_transitions()
