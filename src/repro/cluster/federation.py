"""Multi-region key-service federation behind a declarative topology.

PR 2's cluster is a static k-of-m :class:`ReplicaGroup` behind one
client; this module makes it self-organizing and geo-aware.  The whole
shape of a federation is one frozen value object:

    topo = Topology.symmetric(regions=("us", "eu", "ap"),
                              replicas_per_region=2, threshold=2,
                              rtt_ms=80.0)
    config = KeypadConfig.builder().federation(topology=topo).build()

* :class:`Region` / :class:`Topology` — regions, replicas-per-region,
  the k/m share threshold, and the inter-region RTT matrix, plus the
  gossip/lease protocol knobs.  Hashable and comparable, so it rides
  inside the frozen :class:`~repro.core.policy.KeypadConfig`.
* :class:`FederationGroup` — a :class:`ReplicaGroup` whose replicas
  carry region labels and host :class:`~repro.cluster.gossip.GossipAgent`
  membership daemons with piggybacked per-shard leader leases
  (:mod:`repro.cluster.election`).
* :class:`FederatedKeyClient` — geo-routing: endpoints are ranked by
  live link RTT, so a device prefers its nearest healthy region and
  falls back across regions through the inherited deadline / hedging /
  retry machinery when the local region degrades.

Everything is flag-gated: without ``builder().federation(...)`` none of
this is constructed and the single-service and plain-cluster paths are
untouched.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.costmodel import DEFAULT_COSTS, CostModel
from repro.net.link import Link
from repro.net.netem import LAN, NetEnv
from repro.net.rpc import RpcChannel
from repro.sim import Simulation, SimRandom
from repro.cluster.client import (
    ReplicatedDeviceServices,
    ReplicatedKeyClient,
)
from repro.cluster.election import LeaseManager
from repro.cluster.gossip import GossipAgent
from repro.cluster.replica import ReplicaGroup

__all__ = [
    "Region",
    "Topology",
    "FederationGroup",
    "FederatedKeyClient",
    "FederatedDeviceServices",
]


@dataclass(frozen=True)
class Region:
    """One region: a name and how many full replicas it hosts."""

    name: str
    replicas: int = 2

    def __post_init__(self):
        if not self.name or not isinstance(self.name, str):
            raise ValueError("region name must be a non-empty string")
        if self.replicas < 1:
            raise ValueError(
                f"region {self.name!r} needs at least one replica"
            )


@dataclass(frozen=True)
class Topology:
    """The declarative shape of a federation.

    ``rtt_ms`` is the symmetric inter-region round-trip matrix in
    milliseconds (zero diagonal), indexed like ``regions``.  The
    remaining fields are the gossip/lease protocol knobs; defaults suit
    the simulated second-scale experiments.  Instances are immutable
    and hashable so they can live inside a frozen ``KeypadConfig``.
    """

    regions: Tuple[Region, ...]
    threshold: int = 2
    rtt_ms: Tuple[Tuple[float, ...], ...] = ()
    gossip_interval: float = 0.5
    gossip_fanout: int = 2
    suspect_after: float = 2.0
    dead_after: float = 5.0
    lease_duration: float = 5.0
    election_shards: int = 4

    def __post_init__(self):
        # Coerce sequences so list-built topologies stay hashable.
        object.__setattr__(self, "regions", tuple(self.regions))
        object.__setattr__(
            self,
            "rtt_ms",
            tuple(tuple(float(v) for v in row) for row in self.rtt_ms),
        )

    # -- construction ------------------------------------------------------
    @classmethod
    def symmetric(
        cls,
        regions: Sequence[str] | int = ("us", "eu", "ap"),
        replicas_per_region: int = 2,
        threshold: int = 2,
        rtt_ms: float = 80.0,
        **knobs: Any,
    ) -> "Topology":
        """All-pairs-equal RTT topology, the common experiment shape."""
        if isinstance(regions, int):
            names: Tuple[str, ...] = tuple(
                f"r{i}" for i in range(regions)
            )
        else:
            names = tuple(regions)
        n = len(names)
        matrix = tuple(
            tuple(0.0 if i == j else float(rtt_ms) for j in range(n))
            for i in range(n)
        )
        return cls(
            regions=tuple(
                Region(name, replicas_per_region) for name in names
            ),
            threshold=threshold,
            rtt_ms=matrix,
            **knobs,
        )

    # -- validation --------------------------------------------------------
    def validate(self) -> None:
        if not self.regions:
            raise ValueError("topology needs at least one region")
        names = [r.name for r in self.regions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate region names: {names}")
        total = self.total_replicas
        if not 1 <= self.threshold <= total:
            raise ValueError(
                f"need 1 <= threshold <= {total} replicas, "
                f"got threshold={self.threshold}"
            )
        n = len(self.regions)
        if len(self.rtt_ms) != n or any(len(row) != n for row in self.rtt_ms):
            raise ValueError(
                f"rtt_ms must be a {n}x{n} matrix matching regions"
            )
        for i in range(n):
            if self.rtt_ms[i][i] != 0.0:
                raise ValueError(
                    f"rtt_ms diagonal must be zero (region {names[i]!r})"
                )
            for j in range(n):
                if self.rtt_ms[i][j] < 0:
                    raise ValueError("rtt_ms entries cannot be negative")
                if self.rtt_ms[i][j] != self.rtt_ms[j][i]:
                    raise ValueError(
                        f"rtt_ms must be symmetric "
                        f"({names[i]!r} <-> {names[j]!r})"
                    )
        if self.gossip_interval <= 0:
            raise ValueError("gossip_interval must be positive")
        if self.gossip_fanout < 1:
            raise ValueError("gossip_fanout must be at least 1")
        if not 0 < self.suspect_after < self.dead_after:
            raise ValueError(
                "need 0 < suspect_after < dead_after "
                f"(got {self.suspect_after} / {self.dead_after})"
            )
        if self.lease_duration <= 0:
            raise ValueError("lease_duration must be positive")
        if self.election_shards < 1:
            raise ValueError("need at least one election shard")

    # -- shape -------------------------------------------------------------
    @property
    def total_replicas(self) -> int:
        return sum(r.replicas for r in self.regions)

    @property
    def region_names(self) -> Tuple[str, ...]:
        return tuple(r.name for r in self.regions)

    def region_index(self, name: str) -> int:
        for i, region in enumerate(self.regions):
            if region.name == name:
                return i
        raise ValueError(
            f"unknown region {name!r}; topology has {self.region_names}"
        )

    def region_of(self, replica_index: int) -> str:
        """Region name for a flat replica index (regions in order)."""
        i = replica_index
        for region in self.regions:
            if i < region.replicas:
                return region.name
            i -= region.replicas
        raise IndexError(
            f"replica index {replica_index} out of range "
            f"({self.total_replicas} replicas)"
        )

    def replica_indices(self, name: str) -> Tuple[int, ...]:
        start = 0
        for region in self.regions:
            if region.name == name:
                return tuple(range(start, start + region.replicas))
            start += region.replicas
        raise ValueError(f"unknown region {name!r}")

    def rtt_s(self, a: str, b: str) -> float:
        """Inter-region RTT in seconds (zero within a region)."""
        return self.rtt_ms[self.region_index(a)][self.region_index(b)] / 1000.0

    # -- wire --------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "regions": [
                {"name": r.name, "replicas": r.replicas}
                for r in self.regions
            ],
            "threshold": self.threshold,
            "rtt_ms": [list(row) for row in self.rtt_ms],
            "gossip_interval": self.gossip_interval,
            "gossip_fanout": self.gossip_fanout,
            "suspect_after": self.suspect_after,
            "dead_after": self.dead_after,
            "lease_duration": self.lease_duration,
            "election_shards": self.election_shards,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Topology":
        return cls(
            regions=tuple(
                Region(str(r["name"]), int(r["replicas"]))
                for r in data["regions"]
            ),
            threshold=int(data["threshold"]),
            rtt_ms=tuple(tuple(row) for row in data["rtt_ms"]),
            gossip_interval=float(data.get("gossip_interval", 0.5)),
            gossip_fanout=int(data.get("gossip_fanout", 2)),
            suspect_after=float(data.get("suspect_after", 2.0)),
            dead_after=float(data.get("dead_after", 5.0)),
            lease_duration=float(data.get("lease_duration", 5.0)),
            election_shards=int(data.get("election_shards", 4)),
        )


class FederationGroup(ReplicaGroup):
    """A replica group whose members carry region labels and gossip.

    Server-side only, like its base: the geo-routing transport lives in
    :class:`FederatedKeyClient`.  ``install_gossip()`` wires the full
    inter-replica mesh (intra-region links at LAN RTT, cross-region
    links at the topology matrix RTT) and ``start_gossip()`` spawns the
    anti-entropy processes.
    """

    def __init__(
        self,
        sim: Simulation,
        topology: Topology,
        costs: CostModel = DEFAULT_COSTS,
        seed: bytes = b"federation",
        **replica_knobs: Any,
    ):
        topology.validate()
        super().__init__(
            sim,
            topology.total_replicas,
            topology.threshold,
            costs=costs,
            seed=seed,
            **replica_knobs,
        )
        self.topology = topology
        #: region name per flat replica index
        self.region_labels: List[str] = [
            topology.region_of(i) for i in range(self.m)
        ]
        self._costs = costs
        self._seed = seed
        self.agents: List[GossipAgent] = []
        #: gossip mesh links by name, for fault plans
        self.gossip_links: Dict[str, Link] = {}
        self._gossip_procs: List[Any] = []

    # -- membership / election mesh ----------------------------------------
    def member_id(self, index: int) -> str:
        return f"key-replica-{index}"

    def install_gossip(self, intra_rtt: float = LAN.rtt) -> List[GossipAgent]:
        """Build one gossip agent per replica plus the full mesh of
        authenticated channels between them.  Idempotent."""
        if self.agents:
            return self.agents
        topo = self.topology
        names = [self.member_id(i) for i in range(self.m)]
        secrets = [
            hashlib.sha256(
                self._seed + b"|gossip-secret|" + names[i].encode()
            ).digest()
            for i in range(self.m)
        ]
        for i in range(self.m):
            self.agents.append(
                GossipAgent(
                    self.sim,
                    names[i],
                    self.region_labels[i],
                    self.replicas[i].server,
                    rng=SimRandom(self._seed, f"gossip-{i}"),
                    interval=topo.gossip_interval,
                    fanout=topo.gossip_fanout,
                    suspect_after=topo.suspect_after,
                    dead_after=topo.dead_after,
                    leases=LeaseManager(
                        names[i], topo.election_shards, topo.lease_duration
                    ),
                )
            )
        for i in range(self.m):
            for j in range(self.m):
                if i == j:
                    continue
                rtt = intra_rtt + topo.rtt_s(
                    self.region_labels[i], self.region_labels[j]
                )
                link = Link(self.sim, rtt=rtt, name=f"gossip-{i}-{j}")
                self.gossip_links[link.name] = link
                self.replicas[j].enroll_device(
                    f"gossip:{names[i]}", secrets[i]
                )
                channel = RpcChannel(
                    self.sim, link, self.replicas[j].server,
                    f"gossip:{names[i]}", secrets[i], costs=self._costs,
                )
                self.agents[i].connect(
                    names[j], channel, self.region_labels[j]
                )
        return self.agents

    def start_gossip(self) -> List[GossipAgent]:
        """Spawn the anti-entropy loops (installs the mesh if needed)."""
        agents = self.install_gossip()
        if not self._gossip_procs:
            self._gossip_procs = [
                self.sim.process(a.run(), name=f"gossip-{a.member_id}")
                for a in agents
            ]
        return agents

    def gossip_links_crossing(self, region: str) -> List[Link]:
        """Mesh links with exactly one endpoint inside ``region`` —
        the links a region partition severs."""
        self.topology.region_index(region)
        crossing = []
        for i in range(self.m):
            for j in range(self.m):
                if i == j:
                    continue
                name = f"gossip-{i}-{j}"
                link = self.gossip_links.get(name)
                if link is None:
                    continue
                inside = (self.region_labels[i] == region,
                          self.region_labels[j] == region)
                if inside[0] != inside[1]:
                    crossing.append(link)
        return crossing

    # -- device-side wiring --------------------------------------------------
    def device_links(
        self,
        net: NetEnv,
        home_region: str,
        label_prefix: str,
    ) -> List[Link]:
        """Per-replica links for a device homed in ``home_region``:
        the access-network RTT plus the inter-region RTT to each
        replica's region."""
        self.topology.region_index(home_region)
        links = []
        for j in range(self.m):
            rtt = net.rtt + self.topology.rtt_s(
                home_region, self.region_labels[j]
            )
            links.append(
                Link(
                    self.sim,
                    rtt=rtt,
                    bandwidth_bps=net.bandwidth_bps,
                    name=f"{label_prefix}-r{j}",
                )
            )
        return links

    # -- introspection -------------------------------------------------------
    def region_status(self) -> dict:
        """The ``ctl.region_status`` payload: per-region availability,
        the membership view of a live observer, and the per-shard
        leaders (highest-term lease across live observers)."""
        now = self.sim.now
        regions: Dict[str, dict] = {}
        for name in self.topology.region_names:
            idxs = self.topology.replica_indices(name)
            regions[name] = {
                "replicas": len(idxs),
                "available": sum(
                    1 for i in idxs if self.replicas[i].server.available
                ),
            }
        observers = [
            agent
            for agent, replica in zip(self.agents, self.replicas)
            if replica.server.available
        ]
        members: Dict[str, str] = {}
        leaders: Dict[str, Optional[str]] = {}
        if observers:
            members = observers[0].statuses()
            best: Dict[int, Any] = {}
            for agent in observers:
                if agent.leases is None:
                    continue
                for shard, lease in agent.leases.table.items():
                    cur = best.get(shard)
                    if cur is None or lease._order() > cur._order():
                        best[shard] = lease
            leaders = {
                str(shard): (
                    lease.holder if lease.expires_at > now else None
                )
                for shard, lease in sorted(best.items())
            }
        return {
            "at": now,
            "regions": regions,
            "members": members,
            "leaders": leaders,
            "gossip_rounds": [a.rounds for a in self.agents],
            "topology": self.topology.to_dict(),
        }


class FederatedKeyClient(ReplicatedKeyClient):
    """Geo-routing transport: nearest healthy region first.

    Endpoint ranking swaps PR 2's stable index order for live link RTT
    (cooling-down endpoints still sort last), so a device homed in
    ``eu`` gathers its k shares from the ``eu`` replicas and only
    crosses an ocean when the home region is degraded — at which point
    the inherited deadline race, hedging, and retry/backoff machinery
    drive the cross-region fallback.
    """

    def __init__(
        self,
        sim: Simulation,
        device_id: str,
        device_secret: bytes,
        group: FederationGroup,
        links: List[Link],
        home_region: Optional[str] = None,
        **kwargs: Any,
    ):
        topology = getattr(group, "topology", None)
        if topology is None:
            raise ValueError(
                "FederatedKeyClient needs a FederationGroup built from "
                "a Topology; for a flat ReplicaGroup use "
                "ReplicatedKeyClient"
            )
        if home_region is None:
            home_region = topology.region_names[0]
        topology.region_index(home_region)  # validates the name
        super().__init__(sim, device_id, device_secret, group, links,
                         **kwargs)
        self.topology = topology
        self.home_region = home_region

    def _rank_key(self, endpoint, now) -> tuple:
        # Live RTT (microsecond-quantized for a stable total order)
        # instead of replica index: nearest region first, cross-region
        # fallback ordered by distance, cooling endpoints last.
        cooling = 0 if endpoint.down_until <= now else 1
        return (cooling, round(endpoint.link.rtt * 1e6), endpoint.index)


class FederatedDeviceServices(ReplicatedDeviceServices):
    """The device-facing session facade over a federation: the
    :class:`ReplicatedDeviceServices` surface with the cluster transport
    swapped for a geo-routing :class:`FederatedKeyClient`."""

    def __init__(self, *args: Any, home_region: Optional[str] = None,
                 **kwargs: Any):
        super().__init__(
            *args,
            cluster_cls=FederatedKeyClient,
            cluster_kwargs={"home_region": home_region},
            **kwargs,
        )
        self.home_region = self.cluster.home_region
