"""Replicated key-service cluster (high availability + stronger audit).

Implements the paper's "Improving Availability / Multiple Key Services"
direction: K_R is secret-shared k-of-m across a :class:`ReplicaGroup`
of key services, so a fetch needs k shares and *every* contacted
share-holder independently logs the access.  The failure-aware
:class:`ReplicatedKeyClient` adds per-request deadlines, exponential
backoff with jitter, hedged requests, and health-tracking failover;
:mod:`repro.cluster.faults` injects deterministic outages to prove it
out, and :mod:`repro.cluster.merge` folds the per-replica audit logs
back into one forensic timeline with divergence detection.

On top of the flat cluster, :mod:`repro.cluster.federation` adds the
multi-region layer: a declarative :class:`Topology` (regions,
replicas-per-region, k/m, inter-region RTT matrix), gossip-based
membership (:mod:`repro.cluster.gossip`), per-shard leader leases
(:mod:`repro.cluster.election`), and a geo-routing
:class:`FederatedKeyClient` that prefers the nearest healthy region.

Everything here is flag-gated: ``KeypadConfig(replicas=1)`` (the
default) never touches this package.
"""

from repro.cluster.client import (
    ReplicatedDeviceServices,
    ReplicatedKeyClient,
    ReplicatedServiceSession,
)
from repro.cluster.faults import FaultEvent, FaultInjector, FaultPlan
from repro.cluster.federation import (
    FederatedDeviceServices,
    FederatedKeyClient,
    FederationGroup,
    Region,
    Topology,
)
from repro.cluster.merge import ClusterAuditLog, Divergence, MergedAccess
from repro.cluster.replica import ReplicaGroup

__all__ = [
    "ReplicaGroup",
    "ReplicatedKeyClient",
    "ReplicatedServiceSession",
    "ReplicatedDeviceServices",
    "Region",
    "Topology",
    "FederationGroup",
    "FederatedKeyClient",
    "FederatedDeviceServices",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "ClusterAuditLog",
    "MergedAccess",
    "Divergence",
]
