"""Deterministic fault injection for availability experiments.

A :class:`FaultPlan` is an ordered list of :class:`FaultEvent` records —
replica crashes, link outages, delay spikes, jitter (reordered
delivery), and partitions — either written by hand or generated from a
seeded :class:`~repro.sim.rand.SimRandom` stream so the same seed always
yields the same outage schedule.  A :class:`FaultInjector` replays the
plan inside the simulation, driving :class:`~repro.net.link.Link` state
and :class:`~repro.cluster.replica.ReplicaGroup` crash hooks, and
records everything it did in an event trace; two same-seed runs must
produce identical injector *and* link traces (asserted by the test
suite and ``bench_availability``).

The on-disk format (``docs/FAULTS.md``) is a JSON list of events::

    [{"at": 4.0, "action": "crash",     "target": "replica:1", "duration": 6.0},
     {"at": 9.5, "action": "link-down", "target": "link:keys-r0", "duration": 2.0},
     {"at": 12.0, "action": "delay",    "target": "link:keys-r2", "value": 0.8,
      "duration": 3.0}]

Actions with a ``duration`` are automatically reverted (crash→recover,
link-down→link-up, delay/jitter→restore) when the window ends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.net.link import Link
from repro.sim import Simulation, SimRandom, SimulationError
from repro.cluster.replica import ReplicaGroup

__all__ = ["FaultEvent", "FaultPlan", "FaultInjector", "ACTIONS"]

#: Every action the injector understands.  ``partition`` takes a
#: comma-separated list of link targets and downs them together.
#: ``crash`` is a transient outage (state survives, auto-revert just
#: resumes serving); ``kill`` is process death — the revert runs real
#: audit recovery from the replica's spilled blobs.
ACTIONS = (
    "crash", "recover",
    "kill", "restart",
    "link-down", "link-up", "sever",
    "delay", "jitter",
    "partition",
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``target`` is ``"replica:<index>"`` or ``"link:<name>"``
    (``partition`` allows a comma list mixing ``link:<name>`` and
    ``region:<name>``, the latter expanding to a registered region's
    boundary links).  ``duration`` > 0 makes
    the fault a window that auto-reverts; ``value`` carries the extra
    seconds for ``delay``/``jitter``.
    """

    at: float
    action: str
    target: str
    duration: float = 0.0
    value: float = 0.0

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}")
        if self.at < 0 or self.duration < 0 or self.value < 0:
            raise ValueError("fault times must be non-negative")

    def to_dict(self) -> dict:
        d = {"at": self.at, "action": self.action, "target": self.target}
        if self.duration:
            d["duration"] = self.duration
        if self.value:
            d["value"] = self.value
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "FaultEvent":
        return cls(
            at=float(d["at"]),
            action=str(d["action"]),
            target=str(d["target"]),
            duration=float(d.get("duration", 0.0)),
            value=float(d.get("value", 0.0)),
        )


@dataclass
class FaultPlan:
    """An ordered fault schedule."""

    events: list[FaultEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.events = sorted(self.events, key=lambda e: (e.at, e.target, e.action))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def add(self, event: FaultEvent) -> "FaultPlan":
        self.events.append(event)
        self.events.sort(key=lambda e: (e.at, e.target, e.action))
        return self

    def to_list(self) -> list[dict]:
        return [e.to_dict() for e in self.events]

    @classmethod
    def from_list(cls, items: list[dict]) -> "FaultPlan":
        return cls([FaultEvent.from_dict(d) for d in items])

    # -- generators ----------------------------------------------------------
    @classmethod
    def replica_crash(cls, index: int, at: float, duration: float) -> "FaultPlan":
        return cls([FaultEvent(at, "crash", f"replica:{index}", duration)])

    @classmethod
    def replica_kill(cls, index: int, at: float, duration: float) -> "FaultPlan":
        """Process death at ``at``; restart + audit recovery after
        ``duration`` seconds."""
        return cls([FaultEvent(at, "kill", f"replica:{index}", duration)])

    @classmethod
    def region_partition(
        cls, region: str, at: float, duration: float
    ) -> "FaultPlan":
        """Sever a whole region from the rest of the federation at
        ``at`` and heal it after ``duration`` seconds.

        The injector expands ``region:<name>`` (via
        :meth:`FaultInjector.register_region`) into every link that
        crosses the region boundary — device links into/out of the
        region and the inter-region gossip mesh — and downs them
        together; intra-region links stay up, so devices homed there
        keep reaching their local replicas.
        """
        return cls([FaultEvent(at, "partition", f"region:{region}", duration)])

    @classmethod
    def random_outages(
        cls,
        rng: SimRandom,
        horizon: float,
        replica_count: int,
        link_names: list[str],
        rate: float = 0.05,
        mean_duration: float = 3.0,
        delay_spike: float = 0.5,
    ) -> "FaultPlan":
        """A seeded random schedule of crashes / outages / delay spikes.

        Fault arrivals are Poisson with the given rate; each picks a
        random kind and target and lasts an exponential duration.  All
        draws come from ``rng``, so a forked stream with the same seed
        reproduces the schedule exactly.
        """
        events: list[FaultEvent] = []
        t = 0.0
        kinds = ["crash", "link-down", "delay", "jitter"]
        while True:
            t += rng.expovariate(rate)
            if t >= horizon:
                break
            kind = rng.choice(kinds)
            duration = min(rng.expovariate(1.0 / mean_duration), horizon - t)
            if duration <= 0:
                continue
            if kind == "crash" and replica_count > 0:
                target = f"replica:{rng.randint(0, replica_count - 1)}"
                events.append(FaultEvent(t, "crash", target, duration))
            elif link_names:
                target = f"link:{rng.choice(link_names)}"
                value = rng.uniform(0.0, delay_spike) if kind in ("delay", "jitter") else 0.0
                action = kind if kind != "crash" else "link-down"
                events.append(FaultEvent(t, action, target, duration, value))
        return cls(events)


class FaultInjector:
    """Replays a :class:`FaultPlan` against links and replicas."""

    def __init__(
        self,
        sim: Simulation,
        links: Optional[dict[str, Link]] = None,
        group: Optional[ReplicaGroup] = None,
        jitter_rng: Optional[SimRandom] = None,
    ):
        self.sim = sim
        self.links = dict(links or {})
        self.group = group
        self._jitter_rng = jitter_rng or SimRandom(0, "fault-jitter")
        #: region name -> boundary links a region partition severs
        self.region_links: dict[str, list[Link]] = {}
        # (time, description) apply/revert trace; same-seed runs must
        # produce identical traces.
        self.trace: list[tuple[float, str]] = []

    # -- wiring --------------------------------------------------------------
    def register_link(self, name: str, link: Link) -> None:
        self.links[name] = link

    def register_region(self, name: str, boundary_links: list[Link]) -> None:
        """Wire a region for ``partition region:<name>`` events: the
        links that cross the region's boundary (downed and healed as
        one)."""
        self.region_links[name] = list(boundary_links)

    def _link(self, name: str) -> Link:
        try:
            return self.links[name]
        except KeyError:
            raise SimulationError(f"fault plan names unknown link {name!r}") from None

    def _replica_index(self, target: str) -> int:
        index = int(target.split(":", 1)[1])
        if self.group is None:
            raise SimulationError("fault plan crashes a replica but no group is wired")
        if not 0 <= index < len(self.group):
            raise SimulationError(f"fault plan names unknown replica {index}")
        return index

    def _split(self, target: str) -> tuple[str, str]:
        if ":" not in target:
            raise SimulationError(f"malformed fault target {target!r}")
        return tuple(target.split(":", 1))  # type: ignore[return-value]

    def _partition_links(self, target: str) -> list[Link]:
        """Expand a partition target list: ``link:`` parts name one
        link each, ``region:`` parts expand to the region's registered
        boundary links."""
        links: list[Link] = []
        for part in target.split(","):
            kind, name = self._split(part.strip())
            if kind == "region":
                try:
                    links.extend(self.region_links[name])
                except KeyError:
                    raise SimulationError(
                        f"fault plan partitions unknown region {name!r}"
                    ) from None
            else:
                links.append(self._link(name))
        return links

    # -- execution -----------------------------------------------------------
    def run(self, plan: FaultPlan) -> "list":
        """Spawn one sim process per fault event; returns the processes."""
        return [
            self.sim.process(
                self._one(event), name=f"fault-{event.action}@{event.at:g}"
            )
            for event in plan
        ]

    def _one(self, event: FaultEvent) -> Generator:
        if event.at > 0:
            yield self.sim.timeout(event.at)
        self._apply(event)
        if event.duration > 0:
            yield self.sim.timeout(event.duration)
            self._revert(event)

    def _record(self, text: str) -> None:
        self.trace.append((self.sim.now, text))

    def _apply(self, event: FaultEvent) -> None:
        action, target = event.action, event.target
        if action == "crash":
            index = self._replica_index(target)
            self.group.crash(index)
            self._record(f"crash {target}")
        elif action == "recover":
            index = self._replica_index(target)
            self.group.recover(index)
            self._record(f"recover {target}")
        elif action == "kill":
            index = self._replica_index(target)
            entries = self.group.kill(index)
            self._record(f"kill {target} entries={entries}")
        elif action == "restart":
            index = self._replica_index(target)
            stats = self.group.restart(index)
            self._record(
                f"restart {target} "
                f"recovered={stats.get('recovered_entries')} "
                f"lost={stats.get('lost_entries')}"
            )
        elif action == "link-down":
            self._link(self._split(target)[1]).set_down()
            self._record(f"down {target}")
        elif action == "link-up":
            self._link(self._split(target)[1]).set_up()
            self._record(f"up {target}")
        elif action == "sever":
            self._link(self._split(target)[1]).sever()
            self._record(f"sever {target}")
        elif action == "delay":
            link = self._link(self._split(target)[1])
            link.rtt += event.value
            self._record(f"delay {target} +{event.value:g}")
        elif action == "jitter":
            link = self._link(self._split(target)[1])
            link.set_jitter(event.value, self._jitter_rng)
            self._record(f"jitter {target} {event.value:g}")
        elif action == "partition":
            for link in self._partition_links(target):
                link.set_down()
            self._record(f"partition {target}")
        else:  # pragma: no cover - guarded by FaultEvent validation
            raise SimulationError(f"unknown fault action {action!r}")

    def _revert(self, event: FaultEvent) -> None:
        action, target = event.action, event.target
        if action == "crash":
            self.group.recover(self._replica_index(target))
            self._record(f"recover {target}")
        elif action == "kill":
            stats = self.group.restart(self._replica_index(target))
            self._record(
                f"restart {target} "
                f"recovered={stats.get('recovered_entries')} "
                f"lost={stats.get('lost_entries')}"
            )
        elif action == "link-down":
            self._link(self._split(target)[1]).set_up()
            self._record(f"up {target}")
        elif action == "delay":
            link = self._link(self._split(target)[1])
            link.rtt = max(0.0, link.rtt - event.value)
            self._record(f"delay {target} -{event.value:g}")
        elif action == "jitter":
            self._link(self._split(target)[1]).set_jitter(0.0)
            self._record(f"jitter {target} 0")
        elif action == "partition":
            for link in self._partition_links(target):
                link.set_up()
            self._record(f"heal {target}")
        # link-up / recover / sever have no windowed revert.
