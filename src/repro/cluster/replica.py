"""A group of key-service replicas holding secret shares of K_R.

Each replica is a full :class:`~repro.core.services.keyservice.KeyService`
— same wire protocol, same durable-log-before-reply discipline, same
revocation support — whose escrow map stores *one share* of each remote
key instead of the key itself (shares are exactly ``REMOTE_KEY_LEN``
bytes; the Shamir evaluation point is the replica's index, carried
implicitly).  A thief must therefore appear in at least
``threshold`` replicas' logs to reconstruct any key, which is strictly
stronger auditing than the single-service design.

The group is pure server-side state; the failure-aware transport lives
in :class:`~repro.cluster.client.ReplicatedKeyClient`.
"""

from __future__ import annotations

from repro.costmodel import DEFAULT_COSTS, CostModel
from repro.sim import Simulation
from repro.core.services.keyservice import KeyService

__all__ = ["ReplicaGroup"]


class ReplicaGroup:
    """m key-service replicas with a k-of-m share threshold."""

    def __init__(
        self,
        sim: Simulation,
        m: int,
        k: int,
        costs: CostModel = DEFAULT_COSTS,
        seed: bytes = b"replica-group",
        shards: int = 1,
        audit_store: str = "flat",
        segment_entries: int = 1024,
        auto_compact: bool = True,
        audit_durable: bool = False,
        audit_flush_policy: str = "every-seal",
        audit_flush_every: int = 64,
        audit_checkpoint_every: int = 0,
        audit_blobs=None,
    ):
        if not 1 <= k <= m:
            raise ValueError(f"need 1 <= k <= m, got k={k} m={m}")
        self.sim = sim
        self.m = m
        self.k = k
        self.replicas = [
            KeyService(
                sim,
                costs=costs,
                seed=seed + b"|r%d" % i,
                name=f"key-replica-{i}",
                shards=shards,
                audit_store=audit_store,
                segment_entries=segment_entries,
                auto_compact=auto_compact,
                audit_durable=audit_durable,
                audit_flush_policy=audit_flush_policy,
                audit_flush_every=audit_flush_every,
                audit_checkpoint_every=audit_checkpoint_every,
                # Each replica spills into its own namespace on the
                # shared store (audit/key-replica-<i>/...).
                audit_blobs=(
                    audit_blobs.namespace(f"audit/key-replica-{i}")
                    if audit_blobs is not None
                    and hasattr(audit_blobs, "namespace")
                    else audit_blobs
                ),
            )
            for i in range(m)
        ]

    def __len__(self) -> int:
        return self.m

    def __getitem__(self, index: int) -> KeyService:
        return self.replicas[index]

    # -- administration (fans out to every replica) -------------------------
    def enroll_device(self, device_id: str, secret: bytes) -> None:
        for replica in self.replicas:
            replica.enroll_device(device_id, secret)

    def revoke_device(self, device_id: str) -> None:
        """Remote control: a report of loss disables the device's keys
        on every replica (each logs the revocation independently)."""
        for replica in self.replicas:
            replica.revoke_device(device_id)

    def is_revoked(self, device_id: str) -> bool:
        return any(r.is_revoked(device_id) for r in self.replicas)

    def install_frontends(self, **knobs) -> list:
        """Install a scheduler frontend on every replica (fleet scale).

        Keyword arguments are forwarded to
        :meth:`~repro.core.services.keyservice.KeyService.install_frontend`;
        each replica gets its own independent scheduler (fair queueing
        and group commit are per-replica concerns — shares of one fetch
        still land on k distinct logs).  Returns the frontends.
        """
        return [replica.install_frontend(**knobs) for replica in self.replicas]

    # -- introspection -------------------------------------------------------
    def available_count(self) -> int:
        return sum(1 for r in self.replicas if r.server.available)

    def crash(self, index: int) -> None:
        """Test/fault hook: take one replica's server down.

        A *transient* outage (network flap, overload) — in-process
        state survives and :meth:`recover` simply resumes serving.
        For process death with audit-log loss, use :meth:`kill`.
        """
        self.replicas[index].server.available = False

    def recover(self, index: int) -> None:
        self.replicas[index].server.available = True

    def kill(self, index: int) -> int:
        """Fault hook: process death for one replica.

        Unlike :meth:`crash`, the replica's in-memory audit state dies
        with it; :meth:`restart` runs real recovery from the spilled
        blobs.  Returns the audit entry count at death.
        """
        return self.replicas[index].crash()

    def restart(self, index: int) -> dict:
        """Bring a killed replica back through audit recovery.

        Returns the replica's recovery stats; raises
        :class:`~repro.errors.AuditRecoveryError` (leaving the replica
        unavailable) if its spilled log fails verification.
        """
        return self.replicas[index].restart()

    def recovery_stats(self) -> list:
        """Each replica's last recovery outcome (``None`` if never
        restarted) — surfaced by ``ctl.audit_stats`` and consumed by
        the merge layer's divergence report."""
        return [r.recovery_stats for r in self.replicas]
