"""Per-shard leader election with lease renewal, piggybacked on gossip.

Leadership in the federation is advisory — shares of a fetch still land
on k distinct audit logs regardless of who leads — but per-shard leaders
give the control plane a stable coordinator for shard-scoped work
(compaction, checkpoint scheduling, future cross-region repair).  The
mechanism is a lease table replicated by the gossip exchanges:

* a :class:`Lease` is ``(shard, holder, term, expires_at)``;
* tables merge by the total order ``(term, expires_at, holder)`` —
  higher term always wins, so every member converges to the same
  winner no matter the merge order;
* the holder renews when less than half the lease duration remains;
* when a lease expires, or its holder is dead in the local membership
  view, exactly one member is the *deterministic candidate* for the
  shard — ``sorted(alive)[shard % len(alive)]`` — and only the
  candidate claims, at ``term + 1``.

Re-election after a leader crash is therefore deterministic: every
member computes the same candidate from the same (converged) alive set,
and same-seed runs elect the same successors at the same sim times.
During a partition each side may elect its own leader for a shard; the
post-heal merge resolves to the higher term, mirroring how the audit
merge resolves divergent region logs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["Lease", "LeaseManager"]


@dataclass
class Lease:
    """One shard's leadership claim."""

    shard: int
    holder: str
    term: int
    expires_at: float

    def to_wire(self) -> dict:
        return {
            "shard": self.shard,
            "holder": self.holder,
            "term": self.term,
            "expires_at": self.expires_at,
        }

    def _order(self) -> Tuple[int, float, str]:
        return (self.term, self.expires_at, self.holder)


class LeaseManager:
    """One member's view of every shard's lease.

    Driven by its :class:`~repro.cluster.gossip.GossipAgent`:
    :meth:`merge` on every exchange, :meth:`tick` once per round with
    the current alive set.
    """

    def __init__(self, member_id: str, shards: int, duration: float):
        if shards < 1:
            raise ValueError("need at least one election shard")
        if duration <= 0:
            raise ValueError("lease duration must be positive")
        self.member_id = member_id
        self.shards = shards
        self.duration = duration
        self.table: Dict[int, Lease] = {}
        #: (time, event) claim/renew trace; deterministic per seed.
        self.events: List[Tuple[float, str]] = []

    # -- replication -------------------------------------------------------
    def export(self) -> List[dict]:
        return [self.table[s].to_wire() for s in sorted(self.table)]

    def merge(self, records: List[dict], now: float) -> None:
        for rec in records:
            try:
                lease = Lease(
                    int(rec["shard"]),
                    str(rec["holder"]),
                    int(rec["term"]),
                    float(rec["expires_at"]),
                )
            except (KeyError, TypeError, ValueError):
                continue  # malformed claim: ignore
            if not 0 <= lease.shard < self.shards:
                continue
            current = self.table.get(lease.shard)
            if current is None or lease._order() > current._order():
                self.table[lease.shard] = lease

    # -- election ----------------------------------------------------------
    def tick(self, alive: List[str], now: float) -> None:
        """Renew held leases; claim expired/orphaned shards if (and
        only if) this member is the deterministic candidate."""
        alive = sorted(alive)
        if not alive:
            return
        for shard in range(self.shards):
            current = self.table.get(shard)
            if (
                current is not None
                and current.expires_at > now
                and current.holder in alive
            ):
                if (
                    current.holder == self.member_id
                    and current.expires_at - now < self.duration / 2
                ):
                    self.table[shard] = Lease(
                        shard, self.member_id, current.term,
                        now + self.duration,
                    )
                    self.events.append(
                        (now, f"renew shard={shard} term={current.term}")
                    )
                continue
            candidate = alive[shard % len(alive)]
            if candidate != self.member_id:
                continue
            term = (current.term if current is not None else 0) + 1
            self.table[shard] = Lease(
                shard, self.member_id, term, now + self.duration
            )
            self.events.append((now, f"claim shard={shard} term={term}"))

    # -- introspection -----------------------------------------------------
    def leader_of(self, shard: int, now: float) -> Optional[str]:
        lease = self.table.get(shard)
        if lease is None or lease.expires_at <= now:
            return None
        return lease.holder

    def leaders(self, now: float) -> Dict[int, Optional[str]]:
        return {s: self.leader_of(s, now) for s in range(self.shards)}
